"""Crash-point matrix for the durable alert bus (WAL + replay).

Exactly-once delivery is exercised at both crash points, for a single hub
and for a 2-shard cluster:

* **after WAL append, before sink emit** — injected with the
  ``REPRO_WAL_FAILPOINT=kill-after-alert:N`` failpoint, which fsyncs the Nth
  alert append and then SIGKILLs the process from inside the WAL, so the
  alert is durable but no sink ever saw it;
* **after emit, before checkpoint** — an external SIGKILL between a
  checkpoint and the next one, so alerts were delivered live but the
  checkpoint does not yet cover them.

In every cell the client stitches the pre-crash and post-restart alert
streams, deduplicates by the per-monitor sequence number, and must recover
*exactly* the alert stream of an uninterrupted run: nothing lost, duplicates
only as ``redelivered``-flagged WAL replays.

Also here: the cluster-manifest/WAL mis-assembly regression — resuming a
sharded cluster against WAL directories whose identity or segment sequence
disagrees with the manifest must refuse with ``SnapshotError`` instead of
replaying another cluster's alerts.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import ShardError, SnapshotError
from repro.serving import MonitorHub, QueueSink, ShardedHub, route_shard
from repro.serving.wal import FAILPOINT_ENV, WAL_META_FILENAME

REPO_ROOT = Path(__file__).resolve().parents[2]

_DETECTOR = "DDM"


def _error_values():
    """A 1000-element binary error stream with a mid-stream error-rate jump.

    DDM over it fires 6 alerts (warnings at 196/205/209/509/764, a drift at
    522) — enough structure to land alerts on both sides of every crash
    point in the matrix.
    """
    rng = np.random.default_rng(7)
    return np.concatenate(
        [(rng.random(500) < 0.1), (rng.random(500) < 0.65)]
    ).astype(float)


def _reference_alerts(values):
    """``seq -> (kind, position)`` of an uninterrupted run of one monitor."""
    queue = QueueSink()
    hub = MonitorHub(sinks=[queue])
    hub.register("t", "m", _DETECTOR)
    hub.observe("t", "m", values)
    hub.close()
    return {alert.seq: (alert.kind, alert.position) for alert in queue.drain()}


def _assert_exactly_once(received, reference, monitor_key=None):
    """Dedup ``received`` alert dicts by seq; must equal ``reference``.

    Duplicates are tolerated only when at least one copy is a flagged WAL
    redelivery, and every copy of a seq must describe the same event.
    """
    by_seq = {}
    duplicates = set()
    for alert in received:
        if monitor_key is not None and (
            alert["tenant"],
            alert["monitor_id"],
        ) != monitor_key:
            continue
        seq = alert["seq"]
        event = (alert["kind"], alert["position"])
        if seq in by_seq:
            duplicates.add(seq)
            previous, any_redelivered = by_seq[seq]
            assert event == previous, f"seq {seq} delivered two different events"
            by_seq[seq] = (previous, any_redelivered or alert["redelivered"])
        else:
            by_seq[seq] = (event, alert["redelivered"])
    assert {seq: event for seq, (event, _) in by_seq.items()} == reference
    for seq in duplicates:
        assert by_seq[seq][1], f"seq {seq} duplicated without a WAL redelivery"


# ----------------------------------------------------------- subprocess rig


class _Client:
    """Blocking JSON-lines client that reports a died server as ``None``."""

    def __init__(self, port: int) -> None:
        self._sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self._file = self._sock.makefile("rwb")

    def rpc(self, request: dict):
        try:
            self._file.write((json.dumps(request) + "\n").encode())
            self._file.flush()
            line = self._file.readline()
        except OSError:
            return None
        if not line:
            return None
        return json.loads(line)

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass


def _start_server(checkpoint_dir: Path, wal_dir: Path, failpoint=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env.pop(FAILPOINT_ENV, None)
    if failpoint is not None:
        env[FAILPOINT_ENV] = failpoint
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serving",
            "--port",
            "0",
            "--checkpoint-dir",
            str(checkpoint_dir),
            "--wal-dir",
            str(wal_dir),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    ready = process.stdout.readline()
    assert ready.startswith("READY "), f"unexpected startup line: {ready!r}"
    fields = dict(part.split("=") for part in ready.split()[1:])
    return process, int(fields["port"])


def _drain(client, received):
    response = client.rpc({"op": "alerts"})
    if response is None:
        return False
    received.extend(response["alerts"])
    return True


def _register(client, exist_ok=False):
    return client.rpc(
        {
            "op": "register",
            "tenant": "t",
            "monitor": "m",
            "detector": _DETECTOR,
            "exist_ok": exist_ok,
        }
    )


def _finish_stream_and_verify(client, values, received, reference):
    """Post-restart half of every single-hub cell: replay + verify."""
    # The WAL tail past the last checkpoint comes back as flagged replays.
    response = client.rpc({"op": "alerts"})
    assert response is not None and response["ok"]
    assert all(alert["redelivered"] for alert in response["alerts"])
    assert response["alerts"], "restart re-delivered nothing from the WAL"
    received.extend(response["alerts"])

    # The producer resumes from the restored position and replays the rest;
    # re-fires of replayed alerts are suppressed, new alerts keep flowing.
    registered = _register(client, exist_ok=True)
    assert registered["ok"], registered
    position = registered["n_seen"]
    for start in range(position, len(values), 100):
        response = client.rpc(
            {
                "op": "observe",
                "tenant": "t",
                "monitor": "m",
                "values": values[start : start + 100].tolist(),
            }
        )
        assert response is not None and response["ok"]
        assert _drain(client, received)

    # The durable history op serves the stitched stream too.
    history = client.rpc({"op": "alerts_history", "tenant": "t"})
    assert history["ok"]
    history_seqs = {alert["seq"] for alert in history["alerts"]}
    assert set(reference) <= history_seqs

    metrics = client.rpc({"op": "metrics"})["metrics"]
    assert metrics["n_wal_replayed"] >= 1
    assert metrics["wal"]["n_alerts"] >= 1

    _assert_exactly_once(received, reference)


def test_single_hub_sigkill_after_wal_append_before_emit(tmp_path):
    """Failpoint cell: the dying process logged an alert no sink ever saw."""
    values = _error_values()
    reference = _reference_alerts(values)
    ckpt, wal = tmp_path / "ckpt", tmp_path / "wal"

    process, port = _start_server(ckpt, wal, failpoint="kill-after-alert:4")
    received = []
    try:
        client = _Client(port)
        assert _register(client)["ok"]
        died = False
        for start in range(0, len(values), 100):
            response = client.rpc(
                {
                    "op": "observe",
                    "tenant": "t",
                    "monitor": "m",
                    "values": values[start : start + 100].tolist(),
                }
            )
            if response is None or not _drain(client, received):
                died = True
                break
        assert died, "failpoint never fired"
        assert process.wait(timeout=30) == -signal.SIGKILL
        client.close()
    finally:
        if process.poll() is None:  # pragma: no cover - defensive
            process.kill()

    # Alert 4 is durable in the WAL but was never emitted; alerts 1-3 were
    # delivered live before the kill.
    assert {alert["seq"] for alert in received} == {1, 2, 3}

    process, port = _start_server(ckpt, wal)
    try:
        client = _Client(port)
        _finish_stream_and_verify(client, values, received, reference)
        client.close()
    finally:
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=30)


def test_single_hub_sigkill_after_emit_before_checkpoint(tmp_path):
    """External-SIGKILL cell: delivered alerts the checkpoint doesn't cover."""
    values = _error_values()
    reference = _reference_alerts(values)
    ckpt, wal = tmp_path / "ckpt", tmp_path / "wal"

    process, port = _start_server(ckpt, wal)
    received = []
    try:
        client = _Client(port)
        assert _register(client)["ok"]
        response = client.rpc(
            {"op": "observe", "tenant": "t", "monitor": "m", "values": values[:500].tolist()}
        )
        assert response["ok"] and _drain(client, received)
        assert client.rpc({"op": "snapshot"})["ok"]  # checkpoint covers seq 1-3
        response = client.rpc(
            {"op": "observe", "tenant": "t", "monitor": "m", "values": values[500:600].tolist()}
        )
        assert response["ok"] and _drain(client, received)
        client.close()
    finally:
        process.kill()  # SIGKILL: no shutdown checkpoint
        process.wait(timeout=30)

    # Seqs 4-5 were delivered live after the checkpoint — the restart will
    # re-deliver exactly those from the WAL (flagged), making them the only
    # tolerated duplicates.
    assert {alert["seq"] for alert in received} == {1, 2, 3, 4, 5}

    process, port = _start_server(ckpt, wal)
    try:
        client = _Client(port)
        registered = _register(client, exist_ok=True)
        assert registered["n_seen"] == 500  # resumed at the checkpoint
        _finish_stream_and_verify(client, values, received, reference)
        client.close()
    finally:
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=30)


# ------------------------------------------------------------- sharded cells


def _two_monitor_ids(n_shards: int = 2):
    """Two monitor ids under one tenant that route to different shards."""
    first = "m-0"
    target = 1 - route_shard("t", first, n_shards)
    index = 1
    while route_shard("t", f"m-{index}", n_shards) != target:
        index += 1
    return [first, f"m-{index}"]


def _dict_alerts(alerts):
    return [alert.to_dict() for alert in alerts]


def test_sharded_sigkill_after_wal_append_before_emit(tmp_path, monkeypatch):
    """Failpoint cell on a 2-shard cluster: one worker dies mid-append."""
    values = _error_values()
    reference = _reference_alerts(values)
    monitors = _two_monitor_ids()
    ckpt, wal = tmp_path / "ckpt", tmp_path / "wal"

    monkeypatch.setenv(FAILPOINT_ENV, "kill-after-alert:4")
    received = []
    hub = ShardedHub(2, checkpoint_dir=ckpt, wal_dir=wal)
    try:
        for monitor in monitors:
            hub.register("t", monitor, _DETECTOR)
        died = False
        for start in range(0, len(values), 100):
            chunk = values[start : start + 100]
            try:
                hub.ingest([("t", monitor, chunk) for monitor in monitors])
            except ShardError:
                died = True
                break
            received.extend(_dict_alerts(hub.drain_alerts()[0]))
        assert died, "failpoint never fired in any shard worker"
        deadline = time.time() + 30
        while not hub.dead_shards():
            assert time.time() < deadline, "killed worker never reaped"
            time.sleep(0.05)
        received.extend(_dict_alerts(hub.drain_alerts()[0]))
    finally:
        monkeypatch.delenv(FAILPOINT_ENV)
        hub.close()

    # Fresh cluster over the same directories: the workers replay their WALs
    # into their alert queues during construction.
    hub = ShardedHub(2, checkpoint_dir=ckpt, wal_dir=wal)
    try:
        replayed = _dict_alerts(hub.drain_alerts()[0])
        assert replayed and all(alert["redelivered"] for alert in replayed)
        received.extend(replayed)
        for monitor in monitors:
            hub.register("t", monitor, _DETECTOR, exist_ok=True)
            position = hub.stats("t", monitor)["n_seen"]
            for start in range(position, len(values), 100):
                hub.observe("t", monitor, values[start : start + 100])
                received.extend(_dict_alerts(hub.drain_alerts()[0]))
        metrics = hub.metrics()
        assert metrics["n_wal_replayed"] >= 1
        assert metrics["n_alive_shards"] == 2
    finally:
        hub.close()

    for monitor in monitors:
        _assert_exactly_once(received, reference, monitor_key=("t", monitor))


def test_sharded_sigkill_after_emit_before_checkpoint(tmp_path):
    """External-SIGKILL cell on a 2-shard cluster, recovered by respawn."""
    values = _error_values()
    reference = _reference_alerts(values)
    monitors = _two_monitor_ids()
    ckpt, wal = tmp_path / "ckpt", tmp_path / "wal"

    received = []
    with ShardedHub(2, checkpoint_dir=ckpt, wal_dir=wal) as hub:
        for monitor in monitors:
            hub.register("t", monitor, _DETECTOR)
        hub.ingest([("t", monitor, values[:500]) for monitor in monitors])
        received.extend(_dict_alerts(hub.drain_alerts()[0]))
        hub.checkpoint()  # covers seq 1-3 of both monitors
        hub.ingest([("t", monitor, values[500:600]) for monitor in monitors])
        received.extend(_dict_alerts(hub.drain_alerts()[0]))

        victim = hub.shard_of("t", monitors[0])
        os.kill(hub.worker_pid(victim), signal.SIGKILL)
        deadline = time.time() + 30
        while victim not in hub.dead_shards():
            assert time.time() < deadline, "worker never registered as dead"
            time.sleep(0.05)

        hub.respawn_shard(victim)
        # The respawned worker replayed its WAL tail (seqs 4-5 of the victim
        # monitor) into its fresh alert queue during construction.
        replayed = _dict_alerts(hub.drain_alerts()[0])
        assert replayed
        assert all(alert["redelivered"] for alert in replayed)
        assert {alert["monitor_id"] for alert in replayed} == {monitors[0]}
        received.extend(replayed)

        for monitor in monitors:
            hub.register("t", monitor, _DETECTOR, exist_ok=True)
            position = hub.stats("t", monitor)["n_seen"]
            for start in range(position, len(values), 100):
                hub.observe("t", monitor, values[start : start + 100])
                received.extend(_dict_alerts(hub.drain_alerts()[0]))

        # Cluster history stitches both shards' WALs.
        history_seqs = {
            (alert["monitor_id"], alert["seq"])
            for alert in hub.alerts_history(tenant="t")
        }
        for monitor in monitors:
            assert {(monitor, seq) for seq in reference} <= history_seqs

    for monitor in monitors:
        _assert_exactly_once(received, reference, monitor_key=("t", monitor))


# ------------------------------------------------- manifest/WAL mis-assembly


def test_manifest_refuses_mismatched_wal_directories(tmp_path):
    """Regression: a WAL that disagrees with the cluster manifest must not replay."""
    values = _error_values()
    ckpt, wal = tmp_path / "ckpt", tmp_path / "wal"
    with ShardedHub(2, checkpoint_dir=ckpt, wal_dir=wal) as hub:
        monitors = _two_monitor_ids()
        for monitor in monitors:
            hub.register("t", monitor, _DETECTOR)
        hub.ingest([("t", monitor, values) for monitor in monitors])
        hub.checkpoint()
    pristine = tmp_path / "pristine"
    shutil.copytree(tmp_path / "wal", pristine)

    def restore():
        shutil.rmtree(wal, ignore_errors=True)
        shutil.copytree(pristine, wal)

    # Control: untouched directories resume cleanly.
    with ShardedHub(2, checkpoint_dir=ckpt, wal_dir=wal) as hub:
        assert len(hub) == 2

    # (a) Segment sequence went backwards: the manifest recorded a segment
    # head that no longer exists on disk (deleted segment / older backup).
    shard_wal = wal / "shard-00"
    for segment in shard_wal.glob("wal-*.log"):
        segment.unlink()
    with pytest.raises(SnapshotError, match="segment"):
        ShardedHub(2, checkpoint_dir=ckpt, wal_dir=wal)

    # (b) A different cluster's WAL (same layout, different wal_id).
    restore()
    meta_path = wal / "shard-01" / WAL_META_FILENAME
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    meta["wal_id"] = "feedfacefeedface"
    meta_path.write_text(json.dumps(meta), encoding="utf-8")
    with pytest.raises(SnapshotError, match="wal_id"):
        ShardedHub(2, checkpoint_dir=ckpt, wal_dir=wal)

    # (c) The WAL directory is gone entirely.
    restore()
    shutil.rmtree(wal / "shard-00")
    with pytest.raises(SnapshotError, match="holds none"):
        ShardedHub(2, checkpoint_dir=ckpt, wal_dir=wal)

    # And after restoring the real directories, resume works again.
    restore()
    with ShardedHub(2, checkpoint_dir=ckpt, wal_dir=wal) as hub:
        assert len(hub) == 2
