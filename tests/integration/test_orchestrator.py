"""Determinism, resume, and parity suite for the experiment orchestrator.

The contract under test: decomposing a grid into cells, fanning it out over
worker processes, chunking the detector feed, and resuming from persisted
partial results must all be *observationally invisible* — the summaries are
bit-identical to the sequential scalar reference path.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.evaluation.drift_metrics import evaluate_detections
from repro.evaluation.prequential import run_prequential
from repro.experiments import orchestrator, table1, table2
from repro.experiments.config import paper_detectors, table2_detectors
from repro.learners.naive_bayes import NaiveBayes

_SRC = Path(__file__).resolve().parents[2] / "src"


def _detections(summaries):
    return {
        name: [run.detections for run in summary.runs]
        for name, summary in summaries.items()
    }


def _rows(summaries):
    return {name: summary.as_row() for name, summary in summaries.items()}


class TestCellDecomposition:
    def test_cells_are_deterministically_seeded(self):
        cells = orchestrator.decompose_grid("blk", ["A", "B"], n_repetitions=3, base_seed=7)
        assert len(cells) == 6
        assert cells[0] == orchestrator.ExperimentCell("blk", "A", 0, 7)
        assert {cell.seed for cell in cells if cell.repetition == 2} == {9}

    def test_config_hash_is_stable_and_discriminating(self):
        payload = {"kind": "value", "block": "x", "detectors": [["A", "repr"]]}
        assert orchestrator.grid_config_hash(payload) == orchestrator.grid_config_hash(
            dict(payload)
        )
        other = dict(payload, block="y")
        assert orchestrator.grid_config_hash(payload) != orchestrator.grid_config_hash(other)

    def test_stable_tokens_carry_no_process_addresses(self):
        """repr() of functions/partials embeds per-process memory addresses;
        the configuration hash must use process-independent tokens or
        resume-from-partial silently never matches across restarts."""
        import functools

        from repro.core.optwin import Optwin
        from repro.experiments.table1 import ClassificationStreamBuilder

        tokens = [
            orchestrator.stable_token(orchestrator.default_learner_factory),
            orchestrator.stable_token(functools.partial(Optwin, rho=0.5, w_max=5_000)),
            orchestrator.stable_token(Optwin),
            orchestrator.stable_token(ClassificationStreamBuilder("stagger", 500, 1, 1)),
            orchestrator.stable_token(None),
        ]
        assert tokens[0] == "repro.experiments.orchestrator.default_learner_factory"
        for token in tokens:
            assert "0x" not in token, token

    def test_persistence_rejects_process_local_factories(self, tmp_path):
        from repro.core.optwin import Optwin
        from repro.exceptions import ConfigurationError
        from repro.experiments.table1 import _BinaryStreamFactory

        factories = {"OPTWIN": lambda: Optwin(rho=0.5, w_max=5_000)}
        stream_factory = _BinaryStreamFactory(500, (0.2, 0.6), 1)
        # Inline, in-memory grids accept lambdas...
        orchestrator.run_value_grid(stream_factory, factories, n_repetitions=1)
        # ...but persistence needs tokens that survive a process restart.
        with pytest.raises(ConfigurationError):
            orchestrator.run_value_grid(
                stream_factory,
                factories,
                n_repetitions=1,
                out_path=str(tmp_path / "grid.jsonl"),
            )


class TestValueGridGolden:
    """Acceptance criterion: an orchestrated Table-1 block with n_jobs >= 2
    and detector_batch_size >= 64 is bit-identical to the sequential scalar
    path (detector_batch_size=1 feeds the literal element-by-element loop)."""

    @pytest.fixture(scope="class")
    def scalar_reference(self):
        return table1.run_sudden_binary(
            n_repetitions=3, segment_length=1_000, w_max=5_000, detector_batch_size=1
        )

    def test_batched_sequential_matches_scalar(self, scalar_reference):
        batched = table1.run_sudden_binary(
            n_repetitions=3, segment_length=1_000, w_max=5_000, detector_batch_size=64
        )
        assert _detections(batched) == _detections(scalar_reference)
        assert _rows(batched) == _rows(scalar_reference)

    def test_parallel_batched_matches_scalar(self, scalar_reference):
        parallel = table1.run_sudden_binary(
            n_repetitions=3,
            segment_length=1_000,
            w_max=5_000,
            n_jobs=4,
            detector_batch_size=64,
        )
        assert _detections(parallel) == _detections(scalar_reference)
        assert _rows(parallel) == _rows(scalar_reference)

    def test_whole_stream_batch_matches_scalar(self, scalar_reference):
        whole = table1.run_sudden_binary(
            n_repetitions=3, segment_length=1_000, w_max=5_000, detector_batch_size=None
        )
        assert _detections(whole) == _detections(scalar_reference)


class TestClassificationGridGolden:
    def test_parallel_matches_sequential(self):
        sequential = table1.run_stagger(
            n_repetitions=2, n_instances=2_000, drift_every=1_000, w_max=5_000
        )
        parallel = table1.run_stagger(
            n_repetitions=2,
            n_instances=2_000,
            drift_every=1_000,
            w_max=5_000,
            n_jobs=2,
        )
        assert _detections(parallel) == _detections(sequential)
        assert _rows(parallel) == _rows(sequential)

    def test_shared_materialization_matches_per_detector_regeneration(self):
        """The orchestrator materializes each (stream, seed) once and replays
        it to every detector; that must equal the historical driver, which
        regenerated the stream for every (detector, repetition) cell."""
        n_rep, n_inst, drift_every, w_max = 2, 2_000, 1_000, 5_000
        n_drifts = max(n_inst // drift_every - 1, 1)
        positions = [drift_every * (index + 1) for index in range(n_drifts)]
        factories = paper_detectors(binary=True, w_max=w_max)

        legacy = {}
        for name, factory in factories.items():
            legacy[name] = []
            for repetition in range(n_rep):
                stream = table1._stagger_stream(1 + repetition, drift_every, n_drifts, 1)
                learner = NaiveBayes(schema=stream.schema, n_classes=stream.n_classes)
                result = run_prequential(
                    stream=stream, learner=learner, detector=factory(), n_instances=n_inst
                )
                evaluation = evaluate_detections(
                    drift_positions=positions,
                    detections=result.detections,
                    stream_length=n_inst,
                )
                legacy[name].append((result.detections, evaluation.as_dict()))

        orchestrated = table1.run_stagger(
            n_repetitions=n_rep, n_instances=n_inst, drift_every=drift_every, w_max=w_max
        )
        for name, summary in orchestrated.items():
            assert [
                (run.detections, run.evaluation.as_dict()) for run in summary.runs
            ] == legacy[name]


class TestAccuracyGridGolden:
    def test_table2_parallel_matches_sequential_exactly(self):
        builders = table2.dataset_builders(n_instances=1_500, drift_every=750)
        subset = {
            name: builders[name] for name in ("STAGGER (sudden)", "Electricity")
        }
        sequential = table2.run_table2(
            n_instances=1_500, drift_every=750, n_repetitions=2, w_max=5_000, datasets=subset
        )
        parallel = table2.run_table2(
            n_instances=1_500,
            drift_every=750,
            n_repetitions=2,
            w_max=5_000,
            datasets=subset,
            n_jobs=2,
        )
        assert sequential == parallel
        assert set(sequential) == set(table2_detectors())


class TestPersistenceAndResume:
    def test_resume_from_partial_results_is_equivalent(self, tmp_path, monkeypatch):
        out = tmp_path / "grid.jsonl"
        kwargs = dict(n_repetitions=3, segment_length=800, w_max=5_000)
        full = table1.run_sudden_binary(out_path=str(out), **kwargs)

        lines = out.read_text().strip().splitlines()
        assert len(lines) == 3 * 8  # 3 repetitions x 8 detectors
        # Keep repetition 0 plus a torn final line (simulated interruption).
        kept = [line for line in lines if json.loads(line)["repetition"] == 0]
        out.write_text("\n".join(kept) + "\n" + lines[-1][: len(lines[-1]) // 2])

        executed = []
        original = orchestrator._execute_task
        monkeypatch.setattr(
            orchestrator,
            "_execute_task",
            lambda task: executed.append(task["repetition"]) or original(task),
        )
        resumed = table1.run_sudden_binary(out_path=str(out), **kwargs)
        assert sorted(executed) == [1, 2]  # repetition 0 was loaded, not recomputed
        assert _detections(resumed) == _detections(full)
        assert _rows(resumed) == _rows(full)

        # The file now holds the full grid again: a third run computes nothing.
        executed.clear()
        rerun = table1.run_sudden_binary(out_path=str(out), **kwargs)
        assert executed == []
        assert _detections(rerun) == _detections(full)

    def test_different_configurations_share_one_file(self, tmp_path):
        out = tmp_path / "grid.jsonl"
        first = table1.run_sudden_binary(
            n_repetitions=1, segment_length=600, w_max=5_000, out_path=str(out)
        )
        # Different stream config -> different hash -> independent cells.
        second = table1.run_sudden_binary(
            n_repetitions=1, segment_length=700, w_max=5_000, out_path=str(out)
        )
        configs = {
            json.loads(line)["config"] for line in out.read_text().strip().splitlines()
        }
        assert len(configs) == 2
        # Re-running either configuration still resumes cleanly.
        again = table1.run_sudden_binary(
            n_repetitions=1, segment_length=600, w_max=5_000, out_path=str(out)
        )
        assert _detections(again) == _detections(first)
        assert _detections(again) != _detections(second)

    def test_prequential_resume_restores_full_results(self, tmp_path):
        out = tmp_path / "grid.jsonl"
        kwargs = dict(
            n_repetitions=1, n_instances=1_500, drift_every=750, w_max=5_000
        )
        fresh = table1.run_stagger(out_path=str(out), **kwargs)
        resumed = table1.run_stagger(out_path=str(out), **kwargs)
        assert _detections(resumed) == _detections(fresh)
        assert _rows(resumed) == _rows(fresh)


class TestCli:
    def test_cli_runs_a_block_and_persists(self, tmp_path):
        out = tmp_path / "cli.jsonl"
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "sudden-binary",
                "--repetitions",
                "1",
                "--segment-length",
                "600",
                "--w-max",
                "2000",
                "--jobs",
                "1",
                "--batch-size",
                "64",
                "--out",
                str(out),
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(_SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        )
        assert completed.returncode == 0, completed.stderr
        assert "OPTWIN" in completed.stdout
        assert out.exists() and out.read_text().strip()

    def test_cli_resume_works_across_processes(self, tmp_path):
        """A classification grid persisted by one process must be resumed —
        not recomputed under a fresh config hash — by the next process."""
        out = tmp_path / "stagger.jsonl"
        command = [
            sys.executable,
            "-m",
            "repro.experiments",
            "stagger",
            "--repetitions",
            "1",
            "--instances",
            "1000",
            "--drift-every",
            "500",
            "--w-max",
            "2000",
            "--out",
            str(out),
        ]
        env = {"PYTHONPATH": str(_SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"}
        first = subprocess.run(command, capture_output=True, text=True, env=env)
        assert first.returncode == 0, first.stderr
        persisted = out.read_text()
        second = subprocess.run(command, capture_output=True, text=True, env=env)
        assert second.returncode == 0, second.stderr
        assert out.read_text() == persisted  # nothing recomputed or re-appended
        assert first.stdout == second.stdout

    def test_cli_rejects_unknown_block(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "no-such-block"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(_SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        )
        assert completed.returncode != 0
