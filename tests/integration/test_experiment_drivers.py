"""Integration tests for the per-table/figure experiment drivers (small scale)."""

import pytest

from repro.evaluation.reporting import format_accuracy_table, format_detection_rows
from repro.experiments import ablations, figures, runtime, significance, table1, table2


@pytest.fixture(scope="module")
def small_sudden_binary():
    return table1.run_sudden_binary(n_repetitions=2, segment_length=1_200, w_max=5_000)


class TestTable1Drivers:
    def test_sudden_binary_rows(self, small_sudden_binary):
        rows = table1.summaries_to_rows(small_sudden_binary)
        assert len(rows) == 8  # 5 baselines + 3 OPTWIN configurations
        names = {row["detector"] for row in rows}
        assert {"ADWIN", "DDM", "EDDM", "STEPD", "ECDD"} <= names
        for row in rows:
            assert 0.0 <= row["f1"] <= 1.0
        text = format_detection_rows(rows, title="sudden binary")
        assert "OPTWIN" in text

    def test_optwin_f1_competitive(self, small_sudden_binary):
        rows = {r["detector"]: r for r in table1.summaries_to_rows(small_sudden_binary)}
        best_optwin = max(
            rows[name]["f1"] for name in rows if name.startswith("OPTWIN")
        )
        assert best_optwin >= rows["ECDD"]["f1"]
        assert best_optwin >= rows["EDDM"]["f1"]

    def test_nonbinary_excludes_binary_only_detectors(self):
        summaries = table1.run_sudden_nonbinary(
            n_repetitions=1, segment_length=800, w_max=5_000
        )
        assert "DDM" not in summaries and "ECDD" not in summaries
        assert "ADWIN" in summaries and "STEPD" in summaries

    def test_classification_block_small(self):
        summaries = table1.run_stagger(
            n_repetitions=1,
            n_instances=6_000,
            drift_every=2_000,
            w_max=5_000,
        )
        rows = {r["detector"]: r for r in table1.summaries_to_rows(summaries)}
        optwin = rows["OPTWIN rho=0.5"]
        assert optwin["recall"] >= 0.5
        assert optwin["f1"] >= 0.5


class TestTable2Driver:
    def test_small_grid(self):
        builders = table2.dataset_builders(n_instances=3_000, drift_every=1_500)
        subset = {name: builders[name] for name in ("STAGGER (sudden)", "Electricity")}
        accuracies = table2.run_table2(
            n_instances=3_000,
            drift_every=1_500,
            n_repetitions=1,
            w_max=5_000,
            datasets=subset,
        )
        assert "No drift detector" in accuracies
        for per_dataset in accuracies.values():
            assert set(per_dataset) == {"STAGGER (sudden)", "Electricity"}
            for accuracy in per_dataset.values():
                assert 0.3 <= accuracy <= 1.0
        # Drift-aware configurations beat the static baseline on STAGGER.
        static = accuracies["No drift detector"]["STAGGER (sudden)"]
        optwin = accuracies["OPTWIN rho=0.5"]["STAGGER (sudden)"]
        assert optwin >= static
        text = format_accuracy_table(
            accuracies, dataset_order=["STAGGER (sudden)", "Electricity"]
        )
        assert "No drift detector" in text


class TestFigureDrivers:
    def test_figure2_series(self):
        series = figures.run_figure2(segment_length=1_200, n_drifts=2, w_max=5_000)
        assert "OPTWIN rho=0.5" in series
        optwin = series["OPTWIN rho=0.5"]
        assert optwin.true_drifts == [1_200, 2_400]
        assert optwin.evaluation.true_positives >= 1
        row = optwin.as_row()
        assert {"detector", "tp", "fp", "mean_delay"} <= set(row)

    def test_figure3_series(self):
        series = figures.run_figure3(
            segment_length=1_500, n_drifts=1, width=400, w_max=5_000
        )
        for detection_series in series.values():
            assert detection_series.true_drifts
        assert series["OPTWIN rho=0.5"].evaluation.true_positives >= 1

    def test_false_positive_positions_disjoint_from_matches(self):
        series = figures.run_figure2(segment_length=1_200, n_drifts=2, w_max=5_000)
        for detection_series in series.values():
            matched = {
                match.detection_position
                for match in detection_series.evaluation.matches
                if match.detected
            }
            assert set(detection_series.false_positive_positions).isdisjoint(matched)


class TestAblationsAndRuntime:
    def test_ftest_ablation_shows_value_of_variance_test(self):
        summaries = ablations.run_ftest_ablation(n_repetitions=2, segment_length=1_500)
        with_f = summaries["OPTWIN (t + F tests)"].aggregate
        without_f = summaries["OPTWIN (t test only)"].aggregate
        assert with_f.recall > without_f.recall

    def test_rho_sensitivity_orders_delay(self):
        summaries = ablations.run_rho_sensitivity(
            rhos=[0.1, 1.0], n_repetitions=2, segment_length=1_500
        )
        delay_small_rho = summaries["OPTWIN rho=0.1"].aggregate.mean_delay
        delay_large_rho = summaries["OPTWIN rho=1.0"].aggregate.mean_delay
        assert delay_large_rho <= delay_small_rho

    def test_magnitude_gate_reduces_false_positives(self):
        summaries = ablations.run_magnitude_gate_ablation(
            n_repetitions=3, segment_length=2_500
        )
        gated = summaries["OPTWIN (with magnitude gate)"]
        ungated = summaries["OPTWIN (significance only)"]
        assert gated.mean_false_positives <= ungated.mean_false_positives

    def test_runtime_measurements(self):
        measurements = runtime.run_runtime_comparison(stream_lengths=(1_000,), seed=1)
        names = {m.detector_name for m in measurements}
        assert {
            "OPTWIN rho=0.5",
            "ADWIN",
            "DDM",
            "EDDM",
            "STEPD",
            "ECDD",
            "Page-Hinkley",
            "KSWIN",
            "RDDM",
            "HDDM-A",
        } == names
        assert all(m.seconds_per_element > 0 for m in measurements)
        # Every detector in the line-up now has a vectorised fast path and is
        # measured in both modes.
        modes = {(m.detector_name, m.mode) for m in measurements}
        for name in names:
            assert (name, "scalar") in modes
            assert (name, "batch") in modes

    def test_runtime_measurements_scalar_only(self):
        measurements = runtime.run_runtime_comparison(
            stream_lengths=(1_000,), seed=1, include_batch=False
        )
        assert all(m.mode == "scalar" for m in measurements)


class TestSignificanceDriver:
    def test_collect_and_compare(self):
        scores = significance.collect_f1_scores(
            n_repetitions=4, segment_length=900, w_max=5_000
        )
        assert any(name.startswith("OPTWIN") for name in scores)
        comparisons = significance.run_significance_analysis(scores)
        assert comparisons
        for comparison in comparisons:
            assert comparison.detector_a.startswith("OPTWIN")
            assert comparison.detector_b in ("ADWIN", "STEPD")
