"""Integration tests of the sharded serving layer.

Three scenarios:

* a 2-shard :class:`ShardedHub` fed an interleaved multi-tenant SEA error
  stream produces detections bit-identical to one :class:`MonitorHub` fed
  the same events;
* SIGKILL of one shard worker mid-stream, respawn from the shard's own
  checkpoint, per-monitor replay from ``n_seen`` — stitched drift positions
  identical to an uninterrupted run (the ``kill -9`` guarantee);
* the CLI server with ``--shards 2``: register/observe, SIGTERM (final
  cluster checkpoint), restart, observe the rest — stitched detections
  identical to uninterrupted in-process detectors.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.exceptions import ShardError
from repro.serving import MonitorHub, ShardedHub, build_detector
from tests.integration.test_serving_server import (
    _Client,
    _DRIFT_POSITION,
    _stop_server,
    sea_error_stream,
)

#: Multi-tenant fleet over the SEA error stream; ids picked so two shards
#: both host monitors (asserted in each test).
MONITORS = [
    ("acme", "checkout", "OPTWIN"),
    ("acme", "search", "DDM"),
    ("globex", "fraud", "ECDD"),
    ("globex", "payments", "DDM"),
]


def _register_fleet(hub):
    for tenant, monitor_id, detector in MONITORS:
        hub.register(
            tenant,
            monitor_id,
            detector,
            {"w_max": 2000} if detector == "OPTWIN" else None,
        )


def _interleaved_events(errors, start, stop, chunk=125):
    events = []
    for offset in range(start, stop, chunk):
        for tenant, monitor_id, _ in MONITORS:
            events.append((tenant, monitor_id, errors[offset : offset + chunk]))
    return events


def _uninterrupted_drifts(errors):
    expected = {}
    for tenant, monitor_id, detector in MONITORS:
        reference = build_detector(
            detector, {"w_max": 2000} if detector == "OPTWIN" else None
        )
        expected[(tenant, monitor_id)] = reference.update_batch(
            list(errors)
        ).drift_indices
    return expected


def test_sharded_sea_stream_bit_identical_to_single_hub():
    errors = sea_error_stream()
    single = MonitorHub()
    _register_fleet(single)
    collected_single = {}
    for outcome in single.ingest(_interleaved_events(errors, 0, len(errors))):
        collected_single.setdefault(
            (outcome.tenant, outcome.monitor_id), []
        ).extend(outcome.drift_positions)

    with ShardedHub(2) as sharded:
        _register_fleet(sharded)
        assert {sharded.shard_of(t, m) for t, m, _ in MONITORS} == {0, 1}
        collected = {}
        for outcome in sharded.ingest(_interleaved_events(errors, 0, len(errors))):
            collected.setdefault(
                (outcome.tenant, outcome.monitor_id), []
            ).extend(outcome.drift_positions)

    assert collected == collected_single
    # The injected drift was caught by the OPTWIN monitor.
    assert any(
        _DRIFT_POSITION <= position <= _DRIFT_POSITION + 800
        for position in collected[("acme", "checkout")]
    )


def test_sigkill_one_shard_then_respawn_resumes_bit_exactly(tmp_path):
    """The kill -9 guarantee, end to end.

    Phase A is checkpointed; phase B happens after the checkpoint; then one
    shard worker is SIGKILLed.  The dead shard rolls back to the checkpoint
    (phase B lost), the surviving shard keeps its phase-B state.  Producers
    replay each monitor from its reported ``n_seen``, and the stitched drift
    positions must equal an uninterrupted run for *every* monitor.
    """
    errors = sea_error_stream()
    # Checkpoint after A; kill after B.  Both splits are multiples of the
    # 125-element ingest chunk so phase boundaries align with event bounds.
    split_a, split_b = 1000, 1500
    expected = _uninterrupted_drifts(errors)

    hub = ShardedHub(2, checkpoint_dir=tmp_path)
    try:
        _register_fleet(hub)
        shards = {(t, m): hub.shard_of(t, m) for t, m, _ in MONITORS}
        assert set(shards.values()) == {0, 1}

        detections = {key: [] for key in shards}
        for outcome in hub.ingest(_interleaved_events(errors, 0, split_a)):
            detections[(outcome.tenant, outcome.monitor_id)].extend(
                outcome.drift_positions
            )
        hub.checkpoint()

        # Phase B: events the killed shard will lose.
        phase_b = {key: [] for key in shards}
        for outcome in hub.ingest(_interleaved_events(errors, split_a, split_b)):
            phase_b[(outcome.tenant, outcome.monitor_id)].extend(
                outcome.drift_positions
            )

        killed = shards[("acme", "checkout")]
        os.kill(hub.worker_pid(killed), signal.SIGKILL)
        deadline = time.time() + 10
        while hub.dead_shards() != [killed] and time.time() < deadline:
            time.sleep(0.05)
        assert hub.dead_shards() == [killed]

        # Touching the dead shard raises; the survivor keeps serving.
        with pytest.raises(ShardError):
            hub.observe("acme", "checkout", errors[split_b : split_b + 1])
        survivor_key = next(key for key, shard in shards.items() if shard != killed)
        assert hub.stats(*survivor_key)["n_seen"] == split_b
        # Degraded-cluster reads keep working: the hub-wide aggregate reports
        # the dead shard instead of raising, and draining alerts returns the
        # survivors' queues instead of throwing them away.
        degraded = hub.stats()
        assert degraded["n_alive_shards"] == 1
        assert degraded["n_shards"] == 2
        # (The surviving shard's monitors may not have alerted yet — the
        # guarantee is that the call succeeds and only returns their alerts.)
        survivor_alerts, _ = hub.drain_alerts()
        assert {(a.tenant, a.monitor_id) for a in survivor_alerts} <= {
            key for key, shard in shards.items() if shard != killed
        }

        # Phase-B detections of surviving monitors are real; the killed
        # shard's phase-B state rolled back to the checkpoint.
        for key, shard in shards.items():
            if shard != killed:
                detections[key].extend(phase_b[key])

        assert hub.respawn_dead_shards() == [killed]
        assert hub.dead_shards() == []
        assert len(hub) == len(MONITORS)

        # Replay every monitor from its own n_seen (checkpoint offset for the
        # killed shard, split_b for survivors), then finish the stream.
        for tenant, monitor_id, _ in MONITORS:
            key = (tenant, monitor_id)
            n_seen = hub.stats(tenant, monitor_id)["n_seen"]
            assert n_seen == (split_a if shards[key] == killed else split_b)
            outcome = hub.observe(tenant, monitor_id, errors[n_seen:])
            detections[key].extend(outcome.drift_positions)

        assert detections == expected
    finally:
        hub.close()


def test_server_ingest_op_spans_shards():
    """One ``ingest`` request fans an interleaved batch across both shards
    and reports per-monitor results identical to a single hub."""
    import asyncio

    from repro.serving import ServingServer

    errors = sea_error_stream()
    single = MonitorHub()
    _register_fleet(single)
    expected = {}
    for outcome in single.ingest(_interleaved_events(errors, 0, len(errors))):
        expected.setdefault((outcome.tenant, outcome.monitor_id), []).extend(
            outcome.drift_positions
        )

    async def scenario():
        hub = ShardedHub(2)
        server = ServingServer(hub, port=0)
        await server.start()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)

            async def rpc(request):
                writer.write((json.dumps(request) + "\n").encode())
                await writer.drain()
                return json.loads(await reader.readline())

            for tenant, monitor_id, detector in MONITORS:
                response = await rpc(
                    {
                        "op": "register",
                        "tenant": tenant,
                        "monitor": monitor_id,
                        "detector": detector,
                        "params": {"w_max": 2000} if detector == "OPTWIN" else None,
                    }
                )
                assert response["ok"], response

            collected = {}
            for start in range(0, len(errors), 500):
                events = [
                    [tenant, monitor_id, errors[start : start + 500]]
                    for tenant, monitor_id, _ in MONITORS
                ]
                response = await rpc({"op": "ingest", "events": events})
                assert response["ok"], response
                for result in response["results"]:
                    collected.setdefault(
                        (result["tenant"], result["monitor"]), []
                    ).extend(result["drifts"])

            # Malformed batches are rejected without killing the connection.
            assert not (await rpc({"op": "ingest", "events": []}))["ok"]
            assert not (await rpc({"op": "ingest", "events": [["t", "m"]]}))["ok"]
            assert (await rpc({"op": "ping"}))["ok"]

            writer.close()
            await server.stop()
            return collected
        finally:
            hub.close()

    assert asyncio.run(scenario()) == expected


def _start_sharded_server(checkpoint_dir, n_shards=2):
    import subprocess
    import sys
    from tests.integration.test_serving_server import REPO_ROOT

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serving",
            "--port",
            "0",
            "--shards",
            str(n_shards),
            "--checkpoint-dir",
            str(checkpoint_dir),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    ready = process.stdout.readline()
    assert ready.startswith("READY "), f"unexpected startup line: {ready!r}"
    fields = dict(part.split("=") for part in ready.split()[1:])
    assert fields["shards"] == str(n_shards)
    return process, int(fields["port"]), fields


def test_cli_sharded_server_restart_from_cluster_checkpoint(tmp_path):
    errors = sea_error_stream()
    split = 1200  # stop the first server before the injected drift
    expected = _uninterrupted_drifts(errors)

    process, port, _ = _start_sharded_server(tmp_path)
    try:
        client = _Client(port)
        first_half = {}
        for tenant, monitor_id, detector in MONITORS:
            response = client.rpc(
                {
                    "op": "register",
                    "tenant": tenant,
                    "monitor": monitor_id,
                    "detector": detector,
                    "params": {"w_max": 2000} if detector == "OPTWIN" else None,
                }
            )
            assert response["ok"], response
        for tenant, monitor_id, _ in MONITORS:
            response = client.rpc(
                {
                    "op": "observe",
                    "tenant": tenant,
                    "monitor": monitor_id,
                    "values": errors[:split],
                }
            )
            assert response["ok"], response
            first_half[(tenant, monitor_id)] = response
        stats = client.rpc({"op": "stats"})["stats"]
        assert stats["n_shards"] == 2 and stats["n_alive_shards"] == 2
        client.close()
    finally:
        _stop_server(process)

    # SIGTERM wrote the cluster checkpoint: manifest + one dir per shard.
    manifest = json.loads((tmp_path / "cluster-manifest.json").read_text())
    assert manifest["n_shards"] == 2
    assert (tmp_path / "shard-00" / "hub-checkpoint.json").is_file()
    assert (tmp_path / "shard-01" / "hub-checkpoint.json").is_file()

    process, port, fields = _start_sharded_server(tmp_path)
    try:
        assert fields["monitors"] == str(len(MONITORS))
        client = _Client(port)
        # Idempotent re-register of a resumed monitor.
        response = client.rpc(
            {
                "op": "register",
                "tenant": "acme",
                "monitor": "search",
                "detector": "DDM",
                "exist_ok": True,
            }
        )
        assert response["ok"] and response["n_seen"] == split

        for tenant, monitor_id, _ in MONITORS:
            response = client.rpc(
                {
                    "op": "observe",
                    "tenant": tenant,
                    "monitor": monitor_id,
                    "values": errors[split:],
                }
            )
            assert response["ok"], response
            stitched = first_half[(tenant, monitor_id)]["drifts"] + response["drifts"]
            assert stitched == expected[(tenant, monitor_id)], (tenant, monitor_id)
        alerts = client.rpc({"op": "alerts"})
        assert any(alert["kind"] == "drift" for alert in alerts["alerts"])
        assert alerts["n_dropped"] == 0
        client.close()
    finally:
        _stop_server(process)
