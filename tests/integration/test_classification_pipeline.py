"""Integration tests: Naive Bayes + drift detector over drifting streams.

This is the Table-1/Table-2 machinery end to end on scaled-down streams: the
classifier's errors feed the detector, the detector's drifts reset the
classifier, and the overall accuracy benefits from the resets.
"""

import pytest

from repro.core.optwin import Optwin
from repro.detectors.adwin import Adwin
from repro.evaluation.drift_metrics import evaluate_detections
from repro.evaluation.prequential import run_prequential
from repro.learners.naive_bayes import NaiveBayes
from repro.streams.drift import MultiConceptDriftStream
from repro.streams.real_world import ElectricitySurrogate
from repro.streams.synthetic import AgrawalGenerator, StaggerGenerator


def _stagger_stream(seed, drift_every=3_000, n_drifts=2, width=1):
    concepts = [
        StaggerGenerator(classification_function=(i % 3) + 1, seed=seed + i)
        for i in range(n_drifts + 1)
    ]
    positions = [drift_every * (i + 1) for i in range(n_drifts)]
    return MultiConceptDriftStream(concepts, positions, width=width, seed=seed)


def _agrawal_stream(seed, drift_every=4_000, n_drifts=1, width=1):
    concepts = [
        AgrawalGenerator(classification_function=i + 1, seed=seed + i)
        for i in range(n_drifts + 1)
    ]
    positions = [drift_every * (i + 1) for i in range(n_drifts)]
    return MultiConceptDriftStream(concepts, positions, width=width, seed=seed)


def test_optwin_detects_stagger_concept_switches():
    stream = _stagger_stream(seed=1)
    learner = NaiveBayes(schema=stream.schema, n_classes=stream.n_classes)
    result = run_prequential(
        stream, learner, Optwin(rho=0.5, w_max=25_000), n_instances=9_000
    )
    evaluation = evaluate_detections(
        drift_positions=[3_000, 6_000],
        detections=result.detections,
        stream_length=9_000,
    )
    assert evaluation.true_positives == 2
    assert evaluation.false_positives <= 2
    # STAGGER drifts are easy for NB, so detection is near-immediate (paper
    # reports delays below 1 element; allow some slack here).
    assert evaluation.mean_delay < 100


def test_detector_reset_improves_accuracy_on_stagger():
    with_detector_stream = _stagger_stream(seed=2)
    learner = NaiveBayes(schema=with_detector_stream.schema, n_classes=2)
    with_detector = run_prequential(
        with_detector_stream, learner, Optwin(rho=0.5, w_max=25_000), n_instances=9_000
    )

    without_detector_stream = _stagger_stream(seed=2)
    learner_static = NaiveBayes(schema=without_detector_stream.schema, n_classes=2)
    without_detector = run_prequential(
        without_detector_stream, learner_static, None, n_instances=9_000
    )
    assert with_detector.accuracy > without_detector.accuracy + 0.05


def test_optwin_and_adwin_on_agrawal_drift():
    results = {}
    for name, factory in {
        "OPTWIN": lambda: Optwin(rho=0.5, w_max=25_000),
        "ADWIN": Adwin,
    }.items():
        stream = _agrawal_stream(seed=3)
        learner = NaiveBayes(schema=stream.schema, n_classes=2)
        result = run_prequential(stream, learner, factory(), n_instances=8_000)
        evaluation = evaluate_detections(
            drift_positions=[4_000],
            detections=result.detections,
            stream_length=8_000,
        )
        results[name] = (result, evaluation)

    for name, (result, evaluation) in results.items():
        assert evaluation.true_positives == 1, f"{name} missed the AGRAWAL drift"
    # OPTWIN should not be (much) noisier than ADWIN on this stream.
    assert (
        results["OPTWIN"][1].false_positives
        <= results["ADWIN"][1].false_positives + 1
    )


def test_gradual_stagger_drift_detected():
    stream = _stagger_stream(seed=4, width=600)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    result = run_prequential(
        stream, learner, Optwin(rho=0.5, w_max=25_000), n_instances=9_000
    )
    assert len(result.detections) >= 2


def test_real_world_surrogate_pipeline_runs():
    stream = ElectricitySurrogate(n_instances=6_000, seed=5)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    result = run_prequential(
        stream, learner, Optwin(rho=0.5, w_max=25_000), n_instances=6_000
    )
    assert result.accuracy > 0.55
    # The surrogate contains hidden drifts; the pipeline should adapt at least
    # once without flooding the run with resets.
    assert 0 <= result.n_detections <= 30
