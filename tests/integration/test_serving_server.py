"""End-to-end tests of the serving layer's JSON-lines TCP server.

The subprocess test is the serving smoke the CI job runs: start the CLI
server, register monitors, stream a SEA error stream containing an injected
concept drift, assert the drift alert arrives, kill the server, restart it
from its checkpoint, and assert detections continue exactly as an
uninterrupted detector would have reported them.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.learners.naive_bayes import NaiveBayes
from repro.serving import MonitorHub, ServingServer, build_detector
from repro.streams.drift import ConceptDriftStream
from repro.streams.synthetic.sea import SeaGenerator

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Stream length of the SEA smoke and position of the injected drift.
_N_INSTANCES = 3000
_DRIFT_POSITION = 1500


def sea_error_stream(n_instances: int = _N_INSTANCES, seed: int = 5):
    """0/1 error indicators of a Naive Bayes over SEA with one injected drift.

    Mirrors the paper's "Concept Drift interface": the serving layer consumes
    the learner's error stream, not the raw instances.
    """
    stream = ConceptDriftStream(
        SeaGenerator(classification_function=1, noise_fraction=0.05, seed=seed),
        SeaGenerator(classification_function=4, noise_fraction=0.05, seed=seed + 1),
        position=_DRIFT_POSITION,
        width=1,
        seed=seed,
    )
    learner = NaiveBayes(schema=stream.schema, n_classes=stream.n_classes)
    errors = []
    for instance in stream.take(n_instances):
        prediction = learner.predict_one(instance)
        errors.append(1.0 if prediction != instance.y else 0.0)
        learner.learn_one(instance)
    return errors


# ------------------------------------------------------------- in-process


def test_server_protocol_in_process():
    errors = sea_error_stream()

    async def scenario():
        hub = MonitorHub()
        server = ServingServer(hub, port=0)
        await server.start()
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)

        async def rpc(request):
            writer.write((json.dumps(request) + "\n").encode())
            await writer.drain()
            return json.loads(await reader.readline())

        assert (await rpc({"op": "ping"}))["ok"]
        for monitor, detector in (
            ("checkout", "OPTWIN"),
            ("search", "DDM"),
            ("fraud", "ECDD"),
        ):
            response = await rpc(
                {
                    "op": "register",
                    "tenant": "acme",
                    "monitor": monitor,
                    "detector": detector,
                    "params": {"w_max": 2000} if detector == "OPTWIN" else None,
                }
            )
            assert response["ok"], response

        drifts = []
        for start in range(0, len(errors), 250):
            chunk = errors[start : start + 250]
            for monitor in ("checkout", "search", "fraud"):
                response = await rpc(
                    {
                        "op": "observe",
                        "tenant": "acme",
                        "monitor": monitor,
                        "values": chunk,
                    }
                )
                assert response["ok"], response
                if monitor == "checkout":
                    drifts.extend(response["drifts"])

        # The injected drift was detected shortly after its position.
        assert any(
            _DRIFT_POSITION <= position <= _DRIFT_POSITION + 800
            for position in drifts
        ), drifts

        alerts = (await rpc({"op": "alerts"}))["alerts"]
        assert any(alert["kind"] == "drift" for alert in alerts)

        stats = (await rpc({"op": "stats", "tenant": "acme"}))["stats"]
        assert stats["n_monitors"] == 3

        # Error paths keep the connection alive.
        assert not (await rpc({"op": "observe", "tenant": "acme"}))["ok"]
        assert not (await rpc({"op": "nope"}))["ok"]
        assert (await rpc({"op": "ping"}))["ok"]

        writer.close()
        await server.stop()

    asyncio.run(scenario())


# ------------------------------------------------------------- subprocess


class _Client:
    """Minimal blocking JSON-lines client for the subprocess smoke."""

    def __init__(self, port: int) -> None:
        import socket

        self._sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self._file = self._sock.makefile("rwb")

    def rpc(self, request: dict) -> dict:
        self._file.write((json.dumps(request) + "\n").encode())
        self._file.flush()
        line = self._file.readline()
        assert line, "server closed the connection"
        return json.loads(line)

    def close(self) -> None:
        self._file.close()
        self._sock.close()


def _start_server(checkpoint_dir: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serving",
            "--port",
            "0",
            "--checkpoint-dir",
            str(checkpoint_dir),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    ready = process.stdout.readline()
    assert ready.startswith("READY "), f"unexpected startup line: {ready!r}"
    fields = dict(part.split("=") for part in ready.split()[1:])
    return process, int(fields["port"]), fields


def _stop_server(process: subprocess.Popen) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:  # pragma: no cover - defensive
        process.kill()
        raise


def test_cli_server_restart_from_checkpoint(tmp_path):
    errors = sea_error_stream()
    split = 1200  # stop the first server before the injected drift

    monitors = [("checkout", "OPTWIN"), ("search", "DDM"), ("fraud", "ECDD")]

    process, port, _ = _start_server(tmp_path)
    try:
        client = _Client(port)
        for monitor, detector in monitors:
            response = client.rpc(
                {
                    "op": "register",
                    "tenant": "acme",
                    "monitor": monitor,
                    "detector": detector,
                }
            )
            assert response["ok"], response
        first_half = {}
        for monitor, _ in monitors:
            response = client.rpc(
                {
                    "op": "observe",
                    "tenant": "acme",
                    "monitor": monitor,
                    "values": errors[:split],
                }
            )
            assert response["ok"], response
            first_half[monitor] = response
        # Explicit snapshot op works and reports the checkpoint path.
        snapshot = client.rpc({"op": "snapshot"})
        assert snapshot["ok"] and snapshot["checkpoint"]
        client.close()
    finally:
        _stop_server(process)

    # The SIGTERM shutdown wrote a final checkpoint too.
    assert (tmp_path / "hub-checkpoint.json").is_file()

    # Restart from the checkpoint; monitors resume where they stopped.
    process, port, fields = _start_server(tmp_path)
    try:
        assert fields["monitors"] == "3"
        client = _Client(port)
        # Idempotent re-register of a resumed monitor.
        response = client.rpc(
            {
                "op": "register",
                "tenant": "acme",
                "monitor": "search",
                "detector": "DDM",
                "exist_ok": True,
            }
        )
        assert response["ok"] and response["n_seen"] == split

        for monitor, _ in monitors:
            response = client.rpc(
                {
                    "op": "observe",
                    "tenant": "acme",
                    "monitor": monitor,
                    "values": errors[split:],
                }
            )
            assert response["ok"], response
            # Bit-exact continuation: stitched detections equal an
            # uninterrupted in-process run of the same detector.
            reference = build_detector(dict(monitors)[monitor])
            expected = reference.update_batch(errors).drift_indices
            stitched = first_half[monitor]["drifts"] + response["drifts"]
            assert stitched == expected, monitor
            # The injected drift fired on the restarted server.
            if monitor == "checkout":
                assert any(
                    _DRIFT_POSITION <= position <= _DRIFT_POSITION + 800
                    for position in response["drifts"]
                )
        alerts = client.rpc({"op": "alerts"})["alerts"]
        assert any(alert["kind"] == "drift" for alert in alerts)
        client.close()
    finally:
        _stop_server(process)
