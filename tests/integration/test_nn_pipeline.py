"""Integration tests for the neural-network (Figure 5) pipeline."""

import numpy as np
import pytest

from repro.core.optwin import Optwin
from repro.detectors.adwin import Adwin
from repro.experiments.figure5 import run_figure5
from repro.learners.mlp import MLPClassifier
from repro.pipelines.image_stream import SyntheticImageStream
from repro.pipelines.online_learning import DriftAwarePipeline


@pytest.fixture(scope="module")
def figure5_results():
    """One small-scale run of the Figure-5 experiment for both detectors."""
    return run_figure5(
        n_batches=300,
        batch_size=24,
        n_drifts=3,
        n_features=32,
        n_classes=6,
        fine_tune_batches=25,
        pretrain_examples=2_000,
        pretrain_epochs=10,
        seed=3,
    )


def test_pretraining_reaches_high_accuracy(figure5_results):
    for result in figure5_results.values():
        assert result.pretrain_accuracy > 0.85


def test_both_detectors_catch_label_swaps(figure5_results):
    for name, result in figure5_results.items():
        assert result.true_positives >= 2, f"{name} missed most label swaps"


def test_optwin_produces_no_more_false_positives_than_adwin(figure5_results):
    optwin = figure5_results["OPTWIN rho=0.5"]
    adwin = figure5_results["ADWIN"]
    assert optwin.false_positives <= adwin.false_positives


def test_retraining_budget_scales_with_detections(figure5_results):
    for result in figure5_results.values():
        expected_max = result.report.n_detections * 25
        assert result.report.n_retraining_batches <= expected_max


def test_fine_tuning_recovers_accuracy():
    stream = SyntheticImageStream(
        n_classes=6,
        n_features=32,
        batch_size=24,
        n_batches=300,
        n_drifts=1,
        seed=9,
    )
    model = MLPClassifier(n_features=32, n_classes=6, hidden_sizes=(48, 24), seed=9)
    x, y = stream.pretraining_set(n_examples=2_000)
    model.pretrain(x, y, n_epochs=10)
    pipeline = DriftAwarePipeline(
        model, Optwin(rho=0.5, w_min=20, w_max=5_000), fine_tune_batches=40
    )
    report = pipeline.run(stream)
    drift_batch = stream.drift_batches[0]
    accuracy_dip = min(report.accuracies[drift_batch:drift_batch + 15])
    post_recovery = np.mean(report.accuracies[-30:])
    assert report.n_detections >= 1
    assert accuracy_dip < post_recovery - 0.15
    assert post_recovery > 0.9


def test_report_rows_have_expected_fields(figure5_results):
    row = figure5_results["ADWIN"].as_row()
    assert {
        "detector",
        "detections",
        "tp",
        "fp",
        "retraining_batches",
        "retraining_seconds",
        "total_seconds",
        "mean_accuracy",
    } <= set(row)
