"""Integration tests: every detector over shared drift scenarios.

These tests check the *relative* behaviours the paper reports rather than
individual implementation details: OPTWIN detects all the drifts with very few
false positives; the FP-prone baselines fire more often; binary-only baselines
still work on error indicators produced by a real learner.
"""

import numpy as np
import pytest

from repro.core.optwin import Optwin
from repro.detectors import Adwin, Ddm, Ecdd, Eddm, Stepd
from repro.evaluation.drift_metrics import evaluate_detections
from repro.evaluation.experiment import run_detector_on_values
from repro.streams.error_streams import BinarySegment, binary_error_stream

ALL_DETECTOR_FACTORIES = {
    "ADWIN": Adwin,
    "DDM": Ddm,
    "EDDM": Eddm,
    "STEPD": Stepd,
    "ECDD": Ecdd,
    "OPTWIN": lambda: Optwin(rho=0.5, w_max=25_000),
}


@pytest.fixture(scope="module")
def multi_drift_stream():
    """Four sudden drifts alternating between low and high error rates."""
    segments = [
        BinarySegment(3_000, 0.15),
        BinarySegment(3_000, 0.55),
        BinarySegment(3_000, 0.2),
        BinarySegment(3_000, 0.65),
        BinarySegment(3_000, 0.3),
    ]
    return binary_error_stream(segments, width=1, seed=17)


@pytest.mark.parametrize("name", list(ALL_DETECTOR_FACTORIES))
def test_every_detector_finds_the_error_increases(multi_drift_stream, name):
    detector = ALL_DETECTOR_FACTORIES[name]()
    result = run_detector_on_values(detector, multi_drift_stream)
    # Drifts 1 and 3 are error-rate *increases* that every detector targets.
    increase_positions = [multi_drift_stream.drift_positions[0],
                          multi_drift_stream.drift_positions[2]]
    evaluation = evaluate_detections(
        drift_positions=increase_positions,
        detections=result.detections,
        stream_length=len(multi_drift_stream),
        max_delay=3_000,
    )
    assert evaluation.true_positives >= 1, f"{name} missed every error increase"


def test_optwin_detects_all_increases_with_few_false_positives(multi_drift_stream):
    detector = Optwin(rho=0.5, w_max=25_000)
    result = run_detector_on_values(detector, multi_drift_stream)
    increase_positions = [multi_drift_stream.drift_positions[0],
                          multi_drift_stream.drift_positions[2]]
    evaluation = evaluate_detections(
        drift_positions=increase_positions,
        detections=result.detections,
        stream_length=len(multi_drift_stream),
        max_delay=3_000,
    )
    assert evaluation.true_positives == 2
    assert evaluation.false_positives <= 3


def test_optwin_precision_beats_fp_prone_baselines(multi_drift_stream):
    def false_positives(factory):
        result = run_detector_on_values(factory(), multi_drift_stream)
        return result.evaluation.false_positives

    optwin_fp = false_positives(lambda: Optwin(rho=0.5, w_max=25_000))
    ecdd_fp = false_positives(Ecdd)
    eddm_fp = false_positives(Eddm)
    assert optwin_fp <= ecdd_fp
    assert optwin_fp <= eddm_fp


def test_optwin_one_sided_ignores_error_decreases(multi_drift_stream):
    detector = Optwin(rho=0.5, w_max=25_000, one_sided=True)
    result = run_detector_on_values(detector, multi_drift_stream)
    decrease_positions = {multi_drift_stream.drift_positions[1],
                          multi_drift_stream.drift_positions[3]}
    # No detection should land within 500 elements after an error decrease
    # unless it is attributable to a later increase.
    for detection in result.detections:
        for position in decrease_positions:
            assert not (position <= detection < position + 500)


def test_gradual_drift_detected_by_optwin_and_adwin():
    stream = binary_error_stream(
        [BinarySegment(4_000, 0.2), BinarySegment(4_000, 0.6)], width=1_500, seed=23
    )
    for factory in (lambda: Optwin(rho=0.5, w_max=25_000), Adwin):
        detector = factory()
        detections = detector.update_many(stream.values)
        assert any(d >= stream.drift_positions[0] for d in detections)


def test_detectors_are_reusable_after_reset(multi_drift_stream):
    detector = Optwin(rho=0.5, w_max=25_000)
    first = detector.update_many(multi_drift_stream.values)
    detector.reset()
    second = detector.update_many(multi_drift_stream.values)
    assert first == second
