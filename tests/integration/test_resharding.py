"""Integration tests of live elastic resharding.

The contract under test: :meth:`ShardedHub.reshard` changes the cluster's
shape without changing its *behaviour* — stitched detections and alert
sequence numbers across any sequence of reshards are bit-identical to a
never-resharded single :class:`MonitorHub`, and a crash at any point of the
reshard protocol (worker SIGKILL mid-copy, coordinator death before or
after the manifest commit) leaves a checkpoint directory that resumes to
exactly one copy of every monitor.

Scenarios:

* online 2 → 4 → 3 reshard under an interleaved multi-tenant SEA stream,
  detections + alert seqs vs a single hub;
* SIGKILL of a source worker mid-reshard → abort → ``respawn_dead_shards``
  → retried reshard, stitched stream still bit-identical;
* coordinator crash *before* the manifest commit (``pending`` record on
  disk) and *after* it (``prev_assignment`` + stale source copies) — both
  resume cleanly;
* the ``reshard`` wire op on the CLI server (the CI smoke scenario).
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.exceptions import ConfigurationError, ShardError
from repro.serving import MANIFEST_FILENAME, MonitorHub, QueueSink, ShardedHub
from tests.integration.test_serving_server import (
    _Client,
    _DRIFT_POSITION,
    _stop_server,
    sea_error_stream,
)
from tests.integration.test_sharded_serving import (
    MONITORS,
    _interleaved_events,
    _register_fleet,
    _start_sharded_server,
)


def _alert_key(alert):
    return (alert.tenant, alert.monitor_id, alert.seq, alert.kind, alert.position)


def _reference_run(errors, splits):
    """Detections and alert keys of a never-resharded single hub, phase by
    phase over the same interleaved events the sharded run sees."""
    queue = QueueSink(maxlen=None)
    hub = MonitorHub(sinks=[queue])
    _register_fleet(hub)
    detections = {}
    bounds = [0, *splits, None]
    for start, stop in zip(bounds, bounds[1:]):
        stop = len(errors) if stop is None else stop
        for outcome in hub.ingest(_interleaved_events(errors, start, stop)):
            detections.setdefault(
                (outcome.tenant, outcome.monitor_id), []
            ).extend(outcome.drift_positions)
    alerts = sorted(_alert_key(a) for a in queue.drain())
    hub.close()
    return detections, alerts


def test_online_reshard_2_4_3_bit_identical_to_single_hub(tmp_path):
    """Grow mid-stream, shrink mid-stream; nothing observable changes."""
    errors = sea_error_stream()
    split_a, split_b = 1000, 2000  # multiples of the 125-element chunk
    expected_detections, expected_alerts = _reference_run(
        errors, (split_a, split_b)
    )

    hub = ShardedHub(2, checkpoint_dir=tmp_path / "cluster")
    try:
        _register_fleet(hub)
        detections = {key: [] for key in
                      {(t, m) for t, m, _ in MONITORS}}
        alerts = []

        for outcome in hub.ingest(_interleaved_events(errors, 0, split_a)):
            detections[(outcome.tenant, outcome.monitor_id)].extend(
                outcome.drift_positions
            )
        alerts.extend(hub.drain_alerts()[0])

        summary = hub.reshard(4)
        assert summary["n_shards"] == hub.n_shards == 4
        assert summary["n_slots_moved"] == 128
        # Routing stays self-consistent after the move.
        assert len(hub.assignment) == hub.n_slots == 256
        for tenant, monitor_id, shard in hub.monitor_keys():
            assert shard == hub.shard_of(tenant, monitor_id)
        assert len(hub) == len(MONITORS)

        for outcome in hub.ingest(_interleaved_events(errors, split_a, split_b)):
            detections[(outcome.tenant, outcome.monitor_id)].extend(
                outcome.drift_positions
            )
        alerts.extend(hub.drain_alerts()[0])

        summary = hub.reshard(3)
        assert summary["n_shards"] == hub.n_shards == 3
        for tenant, monitor_id, shard in hub.monitor_keys():
            assert shard == hub.shard_of(tenant, monitor_id)

        for outcome in hub.ingest(
            _interleaved_events(errors, split_b, len(errors))
        ):
            detections[(outcome.tenant, outcome.monitor_id)].extend(
                outcome.drift_positions
            )
        alerts.extend(hub.drain_alerts()[0])

        assert detections == expected_detections
        assert any(expected_detections.values())  # the stream does drift
        # Alert streams — including per-monitor seq continuity across both
        # reshards — are bit-identical (exactly-once survived the moves).
        assert sorted(_alert_key(a) for a in alerts) == expected_alerts
        assert expected_alerts  # and non-trivially so

        # The committed manifest reflects the final layout.
        manifest = json.loads(
            (tmp_path / "cluster" / MANIFEST_FILENAME).read_text()
        )
        assert manifest["n_shards"] == 3
        assert manifest["assignment"] == list(hub.assignment)
        assert manifest["pending"] is None
        assert manifest["prev_assignment"] is None
    finally:
        hub.close()


def test_sigkill_mid_reshard_then_recovery_bit_identical(tmp_path):
    """A source worker dies mid-copy: the reshard aborts to the old layout,
    ``respawn_dead_shards`` restores the victim from the baseline
    checkpoint the reshard took first, the retried reshard succeeds, and
    the stitched stream is still bit-identical — events and alert seqs."""
    errors = sea_error_stream()
    split = 1000
    expected_detections, expected_alerts = _reference_run(errors, (split,))

    hub = ShardedHub(2, checkpoint_dir=tmp_path / "cluster")
    try:
        _register_fleet(hub)
        detections = {(t, m): [] for t, m, _ in MONITORS}
        alerts = []
        for outcome in hub.ingest(_interleaved_events(errors, 0, split)):
            detections[(outcome.tenant, outcome.monitor_id)].extend(
                outcome.drift_positions
            )
        alerts.extend(hub.drain_alerts()[0])

        victim = hub.shard_of("acme", "checkout")

        def kill_source_mid_copy(stage):
            if stage == "imported":
                os.kill(hub.worker_pid(victim), signal.SIGKILL)
                deadline = time.time() + 10
                while not hub.dead_shards() and time.time() < deadline:
                    time.sleep(0.05)

        hub._reshard_test_hook = kill_source_mid_copy
        with pytest.raises(ShardError):
            hub.reshard(4)
        hub._reshard_test_hook = None

        # Abort rolled the cluster back to the 2-shard layout with one
        # dead worker; the manifest's intent record was cleared.
        assert hub.n_shards == 2
        assert hub.dead_shards() == [victim]
        manifest = json.loads(
            (tmp_path / "cluster" / MANIFEST_FILENAME).read_text()
        )
        assert manifest["n_shards"] == 2 and manifest["pending"] is None

        # Mid-reshard there is no ingest, so the baseline checkpoint the
        # reshard opened with makes the respawn loss-free.
        assert hub.respawn_dead_shards() == [victim]
        assert hub.dead_shards() == []
        for tenant, monitor_id, _ in MONITORS:
            assert hub.stats(tenant, monitor_id)["n_seen"] == split
        for tenant, monitor_id, shard in hub.monitor_keys():
            assert shard == hub.shard_of(tenant, monitor_id)

        # Retry, then finish the stream on the grown cluster.
        assert hub.reshard(4)["n_shards"] == 4
        for outcome in hub.ingest(
            _interleaved_events(errors, split, len(errors))
        ):
            detections[(outcome.tenant, outcome.monitor_id)].extend(
                outcome.drift_positions
            )
        alerts.extend(hub.drain_alerts()[0])

        assert detections == expected_detections
        assert sorted(_alert_key(a) for a in alerts) == expected_alerts
    finally:
        hub.close()


def _crash_cluster(hub):
    """Simulate a coordinator hard-crash: SIGKILL every worker, then reap
    the parent-side state without any graceful shutdown."""
    for index in range(len(hub._processes)):
        pid = hub.worker_pid(index)
        if pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
    hub.close()


def test_crash_before_commit_resumes_old_layout(tmp_path):
    """Coordinator dies after the intent manifest and the target-side
    copies, before the commit: resume under the old shard count sees the
    ``pending`` record, keeps the old layout authoritative, and a re-run
    reshard completes from scratch."""
    errors = sea_error_stream()
    split = 1000
    expected_detections, _ = _reference_run(errors, (split,))
    checkpoint_dir = tmp_path / "cluster"

    hub = ShardedHub(2, checkpoint_dir=checkpoint_dir)
    detections = {(t, m): [] for t, m, _ in MONITORS}
    try:
        _register_fleet(hub)
        for outcome in hub.ingest(_interleaved_events(errors, 0, split)):
            detections[(outcome.tenant, outcome.monitor_id)].extend(
                outcome.drift_positions
            )

        class _Crash(BaseException):
            pass

        def crash_before_commit(stage):
            if stage == "copied":
                raise _Crash()

        hub._reshard_test_hook = crash_before_commit
        # Simulate a hard crash: the abort path never runs.
        hub._abort_reshard = lambda *args, **kwargs: None
        with pytest.raises(_Crash):
            hub.reshard(4)
    finally:
        _crash_cluster(hub)

    # On disk: intent manifest (n_shards=2 + pending table for 4) and
    # copies of the moving monitors in the new shards' checkpoints.
    manifest = json.loads((checkpoint_dir / MANIFEST_FILENAME).read_text())
    assert manifest["n_shards"] == 2
    assert manifest["pending"]["n_shards"] == 4

    resumed = ShardedHub(2, checkpoint_dir=checkpoint_dir)
    try:
        assert len(resumed) == len(MONITORS)
        for tenant, monitor_id, _ in MONITORS:
            assert resumed.stats(tenant, monitor_id)["n_seen"] == split
        # The intent record is cleared by the resume.
        manifest = json.loads((checkpoint_dir / MANIFEST_FILENAME).read_text())
        assert manifest["pending"] is None
        # The re-run reshard and the rest of the stream behave as if the
        # crash never happened.
        assert resumed.reshard(4)["n_shards"] == 4
        for outcome in resumed.ingest(
            _interleaved_events(errors, split, len(errors))
        ):
            detections[(outcome.tenant, outcome.monitor_id)].extend(
                outcome.drift_positions
            )
        assert detections == expected_detections
    finally:
        resumed.close()


def test_crash_after_commit_resumes_new_layout(tmp_path):
    """Coordinator dies right after the manifest commit, before the
    sources forget the moved monitors: resume under the NEW shard count
    deduplicates via ``prev_assignment`` — the committed owner wins, the
    stale source copies are dropped, and the stream continues bit-exactly."""
    errors = sea_error_stream()
    split = 1000
    expected_detections, _ = _reference_run(errors, (split,))
    checkpoint_dir = tmp_path / "cluster"

    hub = ShardedHub(2, checkpoint_dir=checkpoint_dir)
    detections = {(t, m): [] for t, m, _ in MONITORS}
    try:
        _register_fleet(hub)
        for outcome in hub.ingest(_interleaved_events(errors, 0, split)):
            detections[(outcome.tenant, outcome.monitor_id)].extend(
                outcome.drift_positions
            )

        class _Crash(BaseException):
            pass

        def crash_after_commit(stage):
            if stage == "committed":
                raise _Crash()

        hub._reshard_test_hook = crash_after_commit
        with pytest.raises(_Crash):
            hub.reshard(4)
    finally:
        _crash_cluster(hub)

    manifest = json.loads((checkpoint_dir / MANIFEST_FILENAME).read_text())
    assert manifest["n_shards"] == 4
    assert manifest["prev_assignment"] is not None

    resumed = ShardedHub(4, checkpoint_dir=checkpoint_dir)
    try:
        # Exactly one copy of every monitor, owned per the committed table.
        assert len(resumed) == len(MONITORS)
        for tenant, monitor_id, shard in resumed.monitor_keys():
            assert shard == resumed.shard_of(tenant, monitor_id)
        for tenant, monitor_id, _ in MONITORS:
            assert resumed.stats(tenant, monitor_id)["n_seen"] == split
        for outcome in resumed.ingest(
            _interleaved_events(errors, split, len(errors))
        ):
            detections[(outcome.tenant, outcome.monitor_id)].extend(
                outcome.drift_positions
            )
        assert detections == expected_detections
    finally:
        resumed.close()


def test_reshard_guards(tmp_path):
    with ShardedHub(2) as hub:
        hub.register("t", "m", "DDM")
        with pytest.raises(ConfigurationError):
            hub.reshard(0)
        # Same count is a no-op, not an error.
        assert hub.reshard(2)["n_monitors_moved"] == 0
        os.kill(hub.worker_pid(0), signal.SIGKILL)
        deadline = time.time() + 10
        while not hub.dead_shards() and time.time() < deadline:
            time.sleep(0.05)
        with pytest.raises(ShardError, match="respawn_dead_shards"):
            hub.reshard(3)


def test_reshard_over_the_wire(tmp_path):
    """The CI smoke scenario: a 2-shard CLI server grows to 4 over the
    wire mid-stream; the stitched drift positions equal the
    never-resharded reference."""
    errors = sea_error_stream()
    split = 1000
    expected_detections, _ = _reference_run(errors, (split,))

    process, port, _ = _start_sharded_server(tmp_path / "cluster")
    client = _Client(port)
    try:
        for tenant, monitor_id, detector in MONITORS:
            request = {
                "op": "register",
                "tenant": tenant,
                "monitor": monitor_id,
                "detector": detector,
            }
            if detector == "OPTWIN":
                request["params"] = {"w_max": 2000}
            assert client.rpc(request)["ok"]

        detections = {(t, m): [] for t, m, _ in MONITORS}

        def ingest(start, stop):
            for offset in range(start, stop, 125):
                chunk = errors[offset : offset + 125]
                response = client.rpc(
                    {
                        "op": "ingest",
                        "events": [
                            [t, m, list(chunk)] for t, m, _ in MONITORS
                        ],
                    }
                )
                assert response["ok"], response
                for result in response["results"]:
                    detections[(result["tenant"], result["monitor"])].extend(
                        result["drifts"]
                    )

        ingest(0, split)

        # Bad requests are rejected without touching the cluster.
        assert not client.rpc({"op": "reshard"})["ok"]
        assert not client.rpc({"op": "reshard", "shards": 0})["ok"]

        response = client.rpc({"op": "reshard", "shards": 4})
        assert response["ok"], response
        assert response["n_shards"] == 4
        assert client.rpc({"op": "stats"})["stats"]["n_shards"] == 4

        ingest(split, len(errors))
        assert detections == expected_detections
        assert any(
            _DRIFT_POSITION <= position <= _DRIFT_POSITION + 800
            for positions in detections.values()
            for position in positions
        )
    finally:
        client.close()
        _stop_server(process)
