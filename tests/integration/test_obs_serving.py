"""Integration tests of the observability stack on a live sharded server.

One CLI server process (``--shards 2 --metrics-port 0 --trace-sample 1.0
--trace-dir … --journal-jsonl …``) is exercised end to end:

* the Prometheus endpoint serves a parseable exposition with merged totals
  plus per-shard labelled series and per-detector-class histograms;
* the ``metrics_prom`` wire op returns the same exposition over the JSON
  protocol;
* a sampled ingest produces one trace whose spans cover the server process
  *and both shard worker processes*, parent-linked back to the server root,
  and the ``trace`` op dumps it as Chrome JSON into ``--trace-dir``;
* the ``events`` wire op returns the operational journal.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import urllib.request

from tests.integration.test_serving_server import (
    REPO_ROOT,
    _Client,
    _stop_server,
    sea_error_stream,
)

MONITORS = [
    ("acme", "checkout", "OPTWIN"),
    ("acme", "search", "DDM"),
    ("globex", "fraud", "ECDD"),
    ("globex", "payments", "DDM"),
]


def _start_obs_server(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serving",
            "--port",
            "0",
            "--shards",
            "2",
            "--metrics-port",
            "0",
            "--trace-sample",
            "1.0",
            "--trace-dir",
            str(tmp_path / "traces"),
            "--journal-jsonl",
            str(tmp_path / "journal.jsonl"),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    ready = process.stdout.readline()
    assert ready.startswith("READY "), f"unexpected startup line: {ready!r}"
    port = int(dict(part.split("=") for part in ready.split()[1:])["port"])
    metrics_line = process.stdout.readline()
    assert metrics_line.startswith("METRICS "), repr(metrics_line)
    metrics_port = int(
        dict(part.split("=") for part in metrics_line.split()[1:])["port"]
    )
    return process, port, metrics_port


def _parse_exposition(text):
    """Validate format 0.0.4 structure; return {sample_line} and {family: type}."""
    families = {}
    samples = []
    current = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            current = line.split()[2]
        elif line.startswith("# TYPE "):
            fields = line.split()
            assert fields[2] == current, line
            assert fields[3] in ("counter", "gauge", "summary", "histogram", "untyped")
            families[current] = fields[3]
        elif line:
            name, _, value = line.rpartition(" ")
            float(value)  # every sample value must parse
            assert name, line
            samples.append(line)
    return families, samples


def test_sharded_server_observability_end_to_end(tmp_path):
    errors = sea_error_stream()
    process, port, metrics_port = _start_obs_server(tmp_path)
    try:
        client = _Client(port)
        for tenant, monitor_id, detector in MONITORS:
            response = client.rpc(
                {
                    "op": "register",
                    "tenant": tenant,
                    "monitor": monitor_id,
                    "detector": detector,
                    "params": {"w_max": 2000} if detector == "OPTWIN" else None,
                }
            )
            assert response["ok"], response

        # One sampled ingest fanning out to both shards.
        events = [
            [tenant, monitor_id, errors[:500]]
            for tenant, monitor_id, _ in MONITORS
        ]
        response = client.rpc({"op": "ingest", "events": events})
        assert response["ok"], response

        # --- Prometheus endpoint ------------------------------------------
        with urllib.request.urlopen(
            f"http://127.0.0.1:{metrics_port}/metrics", timeout=30
        ) as scrape:
            assert scrape.status == 200
            assert scrape.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            exposition = scrape.read().decode("utf-8")
        families, samples = _parse_exposition(exposition)
        assert families["repro_hub_n_events"] == "counter"
        assert "repro_hub_n_events 2000" in samples
        # Per-shard series for both live shards, merged histograms on top.
        for shard in ("0", "1"):
            assert any(
                line.startswith(f'repro_shard_n_events{{shard="{shard}"}}')
                for line in samples
            ), shard
        assert families["repro_detector_update_seconds"] == "histogram"
        for detector in ("Optwin", "Ddm", "Ecdd"):
            assert any(
                f'detector="{detector}"' in line
                for line in samples
                if line.startswith("repro_detector_update_seconds_bucket")
            ), detector
        assert any(
            line.startswith("repro_monitor_update_seconds_total") for line in samples
        )
        # 404 everywhere else.
        try:
            urllib.request.urlopen(
                f"http://127.0.0.1:{metrics_port}/other", timeout=30
            )
            raise AssertionError("expected HTTP 404")
        except urllib.error.HTTPError as error:
            assert error.code == 404

        # --- metrics_prom wire op -----------------------------------------
        over_wire = client.rpc({"op": "metrics_prom"})
        assert over_wire["ok"]
        wire_families, _ = _parse_exposition(over_wire["exposition"])
        assert wire_families.keys() == families.keys()

        # --- trace op: spans from the server AND both workers -------------
        response = client.rpc({"op": "trace"})
        assert response["ok"] and response["n_spans"] > 0
        trace_events = response["trace"]["traceEvents"]
        complete = [e for e in trace_events if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert {"server.ingest", "hub.fan_out", "hub.ingest"} <= names
        # Three distinct processes: the server plus two shard workers.
        server_pid = process.pid
        pids = {e["pid"] for e in complete}
        assert server_pid in pids and len(pids) >= 3
        worker_span_pids = {
            e["pid"] for e in complete if e["name"] == "hub.ingest"
        }
        assert len(worker_span_pids) == 2 and server_pid not in worker_span_pids
        # Every worker-side span links back into the sampled trace: its
        # parent chain reaches the server's root span.
        by_id = {e["args"]["span_id"]: e for e in complete}
        root = next(e for e in complete if e["name"] == "server.ingest")
        assert root["args"]["parent_id"] is None
        for event in complete:
            node = event
            for _ in range(10):
                parent_id = node["args"]["parent_id"]
                if parent_id is None:
                    break
                node = by_id[parent_id]
            assert node["args"]["span_id"] == root["args"]["span_id"], event["name"]
        # Cross-process flow arrows present for the fan-out edges.
        assert any(e["ph"] == "s" for e in trace_events)
        assert any(e.get("bp") == "e" for e in trace_events if e["ph"] == "f")
        # The dump landed in --trace-dir and is the same document.
        assert response["path"] is not None
        dumped = json.loads((tmp_path / "traces" / "trace-0001.json").read_text())
        assert dumped["traceEvents"] == trace_events
        # Drained: an immediate second call returns no spans and no file.
        again = client.rpc({"op": "trace"})
        assert again["ok"] and again["path"] is None

        # --- events wire op ------------------------------------------------
        respawned = client.rpc({"op": "events"})
        assert respawned["ok"]
        assert isinstance(respawned["events"], list)

        client.close()
    finally:
        _stop_server(process)

    # The journal mirror survived the process.
    mirror = (tmp_path / "journal.jsonl").read_text()
    for line in mirror.splitlines():
        json.loads(line)
