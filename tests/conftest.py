"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.error_streams import (
    BinarySegment,
    GaussianSegment,
    binary_error_stream,
    gaussian_error_stream,
)


@pytest.fixture
def rng():
    """A deterministic numpy random generator for the test."""
    return np.random.default_rng(12345)


@pytest.fixture
def sudden_binary_stream():
    """Binary error stream: error rate 0.2 -> 0.6, sudden drift at 2000."""
    return binary_error_stream(
        [BinarySegment(2_000, 0.2), BinarySegment(2_000, 0.6)], width=1, seed=7
    )


@pytest.fixture
def gradual_binary_stream():
    """Binary error stream: error rate 0.2 -> 0.6, gradual drift (width 500)."""
    return binary_error_stream(
        [BinarySegment(2_000, 0.2), BinarySegment(2_000, 0.6)], width=500, seed=7
    )


@pytest.fixture
def sudden_gaussian_stream():
    """Real-valued error stream with a sudden mean shift at 2000."""
    return gaussian_error_stream(
        [GaussianSegment(2_000, 0.2, 0.05), GaussianSegment(2_000, 0.7, 0.05)],
        width=1,
        seed=7,
    )


@pytest.fixture
def variance_only_stream():
    """Real-valued error stream whose drift changes only the variance."""
    return gaussian_error_stream(
        [GaussianSegment(2_000, 0.5, 0.05), GaussianSegment(2_000, 0.5, 0.3)],
        width=1,
        seed=7,
    )


def feed(detector, values):
    """Feed ``values`` to ``detector`` and return the drift positions."""
    return detector.update_many(values)
