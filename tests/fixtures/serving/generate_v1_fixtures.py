"""Generate the checked-in v1 cluster-manifest fixtures.

Run once against the PRE-slot-routing serving code (manifest schema v1,
modulo routing).  The output directories are frozen test fixtures for the
v1 -> v2 manifest migration path; regenerating them with newer code would
defeat their purpose.
"""
import hashlib
import shutil
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, "/root/repo/src")

from repro.serving.sharded import ShardedHub, route_shard

ROOT = Path("/root/repo/tests/fixtures/serving")

TENANTS = ["acme", "globex"]
N_MONITORS = 8  # per tenant
N_VALUES = 120


def monitor_values(tenant: str, monitor_id: str) -> np.ndarray:
    seed = int.from_bytes(
        hashlib.blake2b(f"{tenant}:{monitor_id}".encode(), digest_size=4).digest(),
        "big",
    )
    rng = np.random.default_rng(seed)
    return (rng.random(N_VALUES) < 0.3).astype(np.float64)


def build(n_shards: int, dirname: str) -> None:
    target = ROOT / dirname
    if target.exists():
        shutil.rmtree(target)
    target.mkdir(parents=True)
    hub = ShardedHub(n_shards, checkpoint_dir=target, resume=False)
    events = []
    for tenant in TENANTS:
        for i in range(N_MONITORS):
            monitor_id = f"mon-{i}"
            hub.register(tenant, monitor_id, "DDM")
            events.append((tenant, monitor_id, monitor_values(tenant, monitor_id)))
    hub.ingest(events)
    hub.checkpoint()
    hub.close()
    # Report where the legacy modulo layout disagrees with the synthesized
    # 256-slot table ((digest % 256) % n) -- the 3-shard fixture must have
    # at least one such monitor so the migration relocation path is covered.
    n_moved = 0
    for tenant in TENANTS:
        for i in range(N_MONITORS):
            monitor_id = f"mon-{i}"
            digest = int.from_bytes(
                hashlib.blake2b(
                    f"{tenant}\x00{monitor_id}".encode(), digest_size=8
                ).digest(),
                "big",
            )
            legacy = digest % n_shards
            slotted = (digest % 256) % n_shards
            assert legacy == route_shard(tenant, monitor_id, n_shards)
            if legacy != slotted:
                n_moved += 1
                print(f"  {dirname}: {tenant}/{monitor_id} legacy={legacy} slotted={slotted}")
    print(f"{dirname}: n_shards={n_shards} monitors={2 * N_MONITORS} relocations={n_moved}")


build(2, "v1-cluster-2shard")
build(3, "v1-cluster-3shard")
