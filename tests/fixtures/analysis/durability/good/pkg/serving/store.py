"""Serving-layer module whose file I/O is read-only or string-producing."""

import json
import os


def load_checkpoint(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def render(document):
    # json.dumps produces a string; nothing touches disk.
    return json.dumps(document, sort_keys=True)


def read_raw(path):
    return os.open(str(path), os.O_RDONLY)
