"""Serving-layer writes with crash windows the durability rule must flag."""

import json
import os
import tempfile


def save_checkpoint(path, document):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


def append_record(path, line):
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def rewrite_note(path, text):
    path.write_text(text, encoding="utf-8")


def raw_create(path):
    return os.open(str(path), os.O_WRONLY | os.O_CREAT)


def scratch():
    return tempfile.NamedTemporaryFile("w", delete=False)
