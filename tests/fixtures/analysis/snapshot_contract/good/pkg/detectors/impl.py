"""Detector subclasses honouring the snapshot contract."""

import abc

from pkg.detectors.base import DriftDetector


class WindowedDetector(DriftDetector):
    """Abstract intermediate: exempt from the pair/registry checks."""

    @abc.abstractmethod
    def window(self):
        raise NotImplementedError


class _Scratch(DriftDetector):
    """Private helper: exempt by the underscore convention."""

    def update(self, value):
        return False


class Complete(DriftDetector):
    """Both snapshot halves, and registered below."""

    def update(self, value):
        return False

    def _state_dict(self):
        return {"cursor": 0}

    def _load_state(self, state):
        pass


def exported_detector_classes():
    return (Complete,)
