"""Detector subclasses violating the snapshot contract."""

from pkg.detectors.base import DriftDetector


class HalfBaked(DriftDetector):
    """Overrides one snapshot half only."""

    def _state_dict(self):
        return {"cursor": 0}


class Orphan(DriftDetector):
    """Both halves, but never registered."""

    def _state_dict(self):
        return {"cursor": 0}

    def _load_state(self, state):
        pass


def exported_detector_classes():
    return (HalfBaked,)
