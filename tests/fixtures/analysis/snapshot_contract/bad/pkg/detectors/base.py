"""Stand-in abstract base (same name as the real one, which is what the
rule keys on)."""

import abc


class DriftDetector(abc.ABC):
    @abc.abstractmethod
    def update(self, value):
        raise NotImplementedError
