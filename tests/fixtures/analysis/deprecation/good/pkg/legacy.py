"""Module defining a deprecated symbol (and legitimately touching it)."""


def old_route(key, n):
    """Route a key the pre-slot-table way.

    .. deprecated:: 0.9
       Use :func:`new_route`; the slot table owns placement now.
    """
    return hash(key) % n


def new_route(key, table):
    return table[hash(key) % len(table)]
