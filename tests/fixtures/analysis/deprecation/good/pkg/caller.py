"""Internal caller migrated to the replacement symbol."""

from pkg.legacy import new_route


def place(key, table):
    return new_route(key, table)
