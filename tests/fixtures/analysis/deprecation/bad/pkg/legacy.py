"""Module defining a deprecated symbol (and legitimately touching it)."""


def old_route(key, n):
    """Route a key the pre-slot-table way.

    .. deprecated:: 0.9
       Use :func:`new_route`; the slot table owns placement now.
    """
    return hash(key) % n


def new_route(key, table):
    return table[hash(key) % len(table)]


def _self_test():
    # References from the defining module are allowed (the deprecation
    # shim usually wraps or tests itself).
    return old_route("probe", 4)
