"""Internal caller still importing and using the deprecated symbol."""

from pkg.legacy import old_route


def place(key, n):
    return old_route(key, n)
