"""Broad handlers that each leave a trace: counter, re-raise, or reason."""


class Worker:
    def __init__(self):
        self._n_failures = 0

    def run(self, job):
        try:
            job()
        except Exception:
            self._n_failures += 1

    def call(self, job):
        try:
            return job()
        except Exception as exc:
            raise RuntimeError("job failed") from exc

    def close(self, transport):
        try:
            transport.close()
        except Exception:  # repro: allow(broad-except) -- best-effort close on the shutdown path; the transport is gone either way and there is no stats object left to count into
            pass
