"""Broad handlers that swallow failures invisibly."""


def run(job, log):
    try:
        job()
    except Exception:
        pass


def drain(queue):
    while True:
        try:
            item = queue.get_nowait()
        except BaseException:
            return None
        yield item


def best_effort(cleanup):
    try:
        cleanup()
    except:  # noqa: E722
        print("ignored")
