"""A serving coroutine that blocks its event loop four different ways."""

import os
import time


async def serve_line(conn, wal_path):
    line = conn.recv()
    _persist(wal_path, line)
    time.sleep(0.01)
    return line


def _persist(wal_path, line):
    handle = open(wal_path, "a")
    handle.write(line)
    os.fsync(handle.fileno())
    handle.close()
