"""The same serving coroutine with every blocking step offloaded.

``_persist`` still opens and fsyncs — it comes back clean because
``asyncio.to_thread`` passes it as an *argument* instead of calling it,
which is exactly the call-graph edge the rule walks.
"""

import asyncio
import os


async def serve_line(conn, wal_path):
    loop = asyncio.get_running_loop()
    line = await loop.run_in_executor(None, conn.recv)
    await asyncio.to_thread(_persist, wal_path, line)
    return line


def _persist(wal_path, line):
    with open(wal_path, "a") as handle:
        handle.write(line)
        os.fsync(handle.fileno())
