"""Sync batch path: blocking I/O is fine in a module with no async defs."""

import os


def compact(path, records):
    with open(path, "w") as handle:
        handle.write("\n".join(records))
        os.fsync(handle.fileno())
