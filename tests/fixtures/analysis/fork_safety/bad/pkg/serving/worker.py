"""Workers that reach back into parent-owned module state after fork."""

import random
import threading
from multiprocessing import Process

_STATE_LOCK = threading.Lock()
_AUDIT_LOG = open("audit.log", "a")
_RNG = random.Random(7)


def spawn(index):
    process = Process(target=_shard_worker_main, args=(index,), daemon=True)
    process.start()
    return process


def _shard_worker_main(index):
    jitter = random.random()
    with _STATE_LOCK:
        _AUDIT_LOG.write(str(index))
    _flush(jitter)


def _flush(value):
    return _RNG.random() + value
