"""Workers that receive shared state through arguments and build their own."""

import random
from multiprocessing import Process


def spawn(index, conn):
    process = Process(
        target=_shard_worker_main,
        args=(index, conn, 1031 * (index + 1)),
        daemon=True,
    )
    process.start()
    return process


def _shard_worker_main(index, conn, seed):
    rng = random.Random(seed)
    with open("audit-%d.log" % index, "a") as audit:
        audit.write("%.6f" % rng.random())
    conn.send(("ready", index))
