"""Handles that stay open on at least one CFG path."""

from multiprocessing import Pipe
from multiprocessing.shared_memory import SharedMemory


def forgets_close(path, payload):
    handle = open(path, "w")
    handle.write(payload)


def early_raise(name):
    block = SharedMemory(name=name)
    if block.size == 0:
        raise ValueError("empty segment")
    block.close()


def keeps_one_end():
    parent, child = Pipe(duplex=True)
    return parent
