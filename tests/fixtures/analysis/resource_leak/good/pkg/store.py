"""The same handle lifetimes with every path — including exception edges — covered."""

from multiprocessing import Pipe
from multiprocessing.shared_memory import SharedMemory


def with_managed(path, payload):
    with open(path, "w") as handle:
        handle.write(payload)


def finally_closed(name):
    block = SharedMemory(name=name)
    try:
        if block.size == 0:
            raise ValueError("empty segment")
    finally:
        block.close()


def guarded_close(path, payload):
    handle = None
    try:
        handle = open(path, "w")
        handle.write(payload)
    finally:
        if handle is not None:
            handle.close()


def hands_off_both_ends(registry, spawn):
    parent, child = Pipe(duplex=True)
    try:
        process = spawn(child)
    except Exception:
        parent.close()
        child.close()
        raise
    # The registry owns the parent's end before anything else can raise.
    registry["conn"] = parent
    child.close()
    return process
