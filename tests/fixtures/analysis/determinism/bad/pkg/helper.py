"""Unscoped module whose *function names* put it on the replay path."""

import random


def update_batch(values):
    # Not under detectors/, but update_batch is replay-path by name.
    random.shuffle(values)
    return values


def replay_alerts(alerts):
    # "replay" in the function name scopes it too.
    return random.choice(alerts)
