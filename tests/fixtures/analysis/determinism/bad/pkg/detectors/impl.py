"""Scoped module (under ``detectors/``) that violates determinism."""

import random
import time

import numpy as np


def decide(threshold):
    # Global-RNG draw inside a detectors/ package.
    return random.random() < threshold


def stamp():
    # Wall-clock read (banned everywhere, doubly so here).
    return time.time()


def make_rng():
    # Unseeded generators: both the stdlib and numpy forms.
    a = random.Random()
    b = np.random.default_rng()
    return a, b
