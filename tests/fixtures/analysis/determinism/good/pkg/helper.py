"""Unscoped module: monotonic clocks and seeded RNG are fine here."""

import random
import time


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def jitter(seed):
    return random.Random(seed).random()
