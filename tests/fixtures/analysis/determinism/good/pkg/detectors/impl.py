"""Scoped module that stays a pure function of inputs + seeded RNG."""

import random

import numpy as np


def make_rng(seed):
    # Seeded constructions are the sanctioned forms.
    a = random.Random(seed)
    b = np.random.default_rng(seed)
    return a, b


def decide(rng, threshold):
    return rng.random() < threshold
