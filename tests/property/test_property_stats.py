"""Property-based tests (hypothesis) for the statistical substrate."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.circular_buffer import CircularBuffer
from repro.stats.distributions import f_cdf, f_ppf, t_cdf, t_ppf
from repro.stats.ftest import f_statistic
from repro.stats.incremental import PrefixStats, RunningStats, WindowedStats
from repro.stats.welch import welch_degrees_of_freedom, welch_statistic

floats_list = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False), min_size=1, max_size=200
)


class TestRunningStatsProperties:
    @given(values=floats_list)
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy(self, values):
        stats = RunningStats()
        stats.update_many(values)
        assert stats.mean == pytest.approx(np.mean(values), rel=1e-7, abs=1e-7)
        if len(values) >= 2:
            assert stats.variance == pytest.approx(
                np.var(values, ddof=1), rel=1e-6, abs=1e-6
            )
        assert stats.variance >= 0.0

    @given(values=floats_list, scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_scaling_property(self, values, scale):
        plain = RunningStats()
        scaled = RunningStats()
        plain.update_many(values)
        scaled.update_many([v * scale for v in values])
        assert scaled.mean == pytest.approx(plain.mean * scale, rel=1e-6, abs=1e-6)
        assert scaled.std == pytest.approx(plain.std * scale, rel=1e-5, abs=1e-6)


class TestWindowedStatsProperties:
    @given(values=st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False),
                           min_size=3, max_size=100),
           n_remove=st.integers(min_value=0, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_add_then_remove_prefix(self, values, n_remove):
        n_remove = min(n_remove, len(values) - 1)
        stats = WindowedStats()
        for value in values:
            stats.add(value)
        for value in values[:n_remove]:
            stats.remove(value)
        remaining = values[n_remove:]
        assert stats.count == len(remaining)
        assert stats.mean == pytest.approx(np.mean(remaining), rel=1e-6, abs=1e-6)
        assert stats.variance >= 0.0


class TestPrefixStatsProperties:
    @given(values=st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False),
                           min_size=4, max_size=120),
           data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_range_matches_numpy(self, values, data):
        prefix = PrefixStats()
        for value in values:
            prefix.append(value)
        start = data.draw(st.integers(min_value=0, max_value=len(values) - 2))
        stop = data.draw(st.integers(min_value=start + 2, max_value=len(values)))
        segment = values[start:stop]
        assert prefix.mean(start, stop) == pytest.approx(
            np.mean(segment), rel=1e-7, abs=1e-7
        )
        assert prefix.variance(start, stop) == pytest.approx(
            np.var(segment, ddof=1), rel=1e-5, abs=1e-7
        )


class TestCircularBufferProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=30),
        operations=st.lists(
            st.one_of(
                st.tuples(st.just("append"), st.floats(-10, 10, allow_nan=False)),
                st.tuples(st.just("pop"), st.just(0.0)),
            ),
            max_size=200,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_behaves_like_a_deque(self, capacity, operations):
        from collections import deque

        buffer = CircularBuffer(capacity)
        reference = deque()
        for operation, value in operations:
            if operation == "append":
                if len(reference) < capacity:
                    buffer.append(value)
                    reference.append(value)
            else:
                if reference:
                    assert buffer.popleft() == reference.popleft()
        assert buffer.to_list() == list(reference)


class TestTestStatisticProperties:
    @given(
        confidence=st.floats(min_value=0.6, max_value=0.999),
        df=st.floats(min_value=1.0, max_value=500.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_t_ppf_cdf_roundtrip(self, confidence, df):
        assert t_cdf(t_ppf(confidence, df), df) == pytest.approx(confidence, abs=1e-6)

    @given(
        confidence=st.floats(min_value=0.6, max_value=0.999),
        dfn=st.floats(min_value=1.0, max_value=300.0),
        dfd=st.floats(min_value=1.0, max_value=300.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_f_ppf_cdf_roundtrip(self, confidence, dfn, dfd):
        assert f_cdf(f_ppf(confidence, dfn, dfd), dfn, dfd) == pytest.approx(
            confidence, abs=1e-6
        )

    @given(
        mean_a=st.floats(-10, 10, allow_nan=False),
        mean_b=st.floats(-10, 10, allow_nan=False),
        var_a=st.floats(0.01, 10.0),
        var_b=st.floats(0.01, 10.0),
        n_a=st.integers(2, 500),
        n_b=st.integers(2, 500),
    )
    @settings(max_examples=80, deadline=None)
    def test_welch_antisymmetry_and_df_bounds(self, mean_a, mean_b, var_a, var_b, n_a, n_b):
        forward = welch_statistic(mean_a, var_a, n_a, mean_b, var_b, n_b)
        backward = welch_statistic(mean_b, var_b, n_b, mean_a, var_a, n_a)
        assert forward == pytest.approx(-backward, rel=1e-9, abs=1e-12)
        df = welch_degrees_of_freedom(var_a, n_a, var_b, n_b)
        assert min(n_a, n_b) - 1 <= df + 1e-6
        assert df <= n_a + n_b - 2 + 1e-6

    @given(
        std_new=st.floats(0.0, 10.0),
        std_hist=st.floats(0.0, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_f_statistic_positive_and_monotone(self, std_new, std_hist):
        value = f_statistic(std_new, std_hist)
        assert value > 0.0
        larger = f_statistic(std_new + 1.0, std_hist)
        assert larger >= value
