"""Property-based tests for detector invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimal_cut import detectable_rho, optimal_split
from repro.core.optwin import Optwin
from repro.detectors import Adwin, Ddm, Eddm, NoDriftDetector, PageHinkley, Stepd

CONFIDENCE = 0.99 ** 0.25

bounded_values = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=300
)


class TestOptimalSplitProperties:
    @given(
        length=st.integers(min_value=10, max_value=2_000),
        rho=st.floats(min_value=0.05, max_value=3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_always_valid(self, length, rho):
        spec = optimal_split(length, rho, CONFIDENCE)
        assert 2 <= spec.nu_split <= length - 2
        assert spec.n_hist + spec.n_new == length
        assert spec.t_critical > 0.0
        assert spec.f_critical > 1.0
        if spec.solved:
            assert detectable_rho(spec.n_hist, spec.n_new, CONFIDENCE) <= rho + 1e-9

    @given(length=st.integers(min_value=200, max_value=1_500))
    @settings(max_examples=30, deadline=None)
    def test_larger_rho_never_shrinks_history(self, length):
        strict = optimal_split(length, 0.2, CONFIDENCE)
        loose = optimal_split(length, 1.0, CONFIDENCE)
        if strict.solved and loose.solved:
            assert loose.nu_split >= strict.nu_split


class TestDetectorInvariants:
    @given(values=bounded_values)
    @settings(max_examples=40, deadline=None)
    def test_detectors_never_crash_and_count_correctly(self, values):
        detectors = [
            Optwin(w_min=10, w_max=200),
            Adwin(),
            Ddm(),
            Eddm(),
            Stepd(),
            PageHinkley(),
            NoDriftDetector(),
        ]
        for detector in detectors:
            detections = detector.update_many(values)
            assert detector.n_seen == len(values)
            assert detector.n_drifts == len(detections)
            assert all(0 <= index < len(values) for index in detections)

    @given(values=bounded_values)
    @settings(max_examples=30, deadline=None)
    def test_reset_makes_runs_reproducible(self, values):
        detector = Optwin(w_min=10, w_max=200)
        first = detector.update_many(values)
        detector.reset()
        second = detector.update_many(values)
        assert first == second

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=50,
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_optwin_window_never_exceeds_w_max(self, values):
        detector = Optwin(w_min=10, w_max=60)
        for value in values:
            detector.update(value)
            assert detector.window_size <= 60

    @given(constant=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_constant_streams_never_trigger_optwin(self, constant):
        detector = Optwin(w_min=10, w_max=500)
        detections = detector.update_many([constant] * 300)
        assert detections == []

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        error_rate=st.floats(min_value=0.15, max_value=0.85),
    )
    @settings(max_examples=25, deadline=None)
    def test_optwin_false_positives_rare_on_stationary_bernoulli(self, seed, error_rate):
        # Very small/large error rates are excluded: the paper's t-test
        # assumption (approximately normal sub-window means) degrades for a
        # heavily skewed Bernoulli stream, which inflates the FP rate — a
        # documented limitation of the approach, not an implementation bug.
        rng = np.random.default_rng(seed)
        values = (rng.random(3_000) < error_rate).astype(float)
        detector = Optwin(rho=0.5, w_max=5_000)
        detections = detector.update_many(values)
        assert len(detections) <= 3
