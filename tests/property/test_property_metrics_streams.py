"""Property-based tests for drift scoring and the stream generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.drift_metrics import evaluate_detections, micro_average
from repro.streams.error_streams import BinarySegment, binary_error_stream
from repro.streams.synthetic import AgrawalGenerator, SeaGenerator, StaggerGenerator


class TestDriftMetricsProperties:
    @given(
        stream_length=st.integers(min_value=100, max_value=5_000),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_counting_identities(self, stream_length, data):
        drifts = sorted(
            data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=stream_length - 1), max_size=8
                )
            )
        )
        detections = sorted(
            data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=stream_length - 1), max_size=15
                )
            )
        )
        evaluation = evaluate_detections(drifts, detections, stream_length)
        assert evaluation.true_positives + evaluation.false_negatives == len(drifts)
        assert evaluation.true_positives + evaluation.false_positives == len(detections)
        assert 0.0 <= evaluation.precision <= 1.0
        assert 0.0 <= evaluation.recall <= 1.0
        assert 0.0 <= evaluation.f1_score <= 1.0
        assert all(delay >= 0 for delay in evaluation.delays)

    @given(
        stream_length=st.integers(min_value=100, max_value=2_000),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_micro_average_counts_are_sums(self, stream_length, data):
        evaluations = []
        for _ in range(3):
            drifts = sorted(
                data.draw(
                    st.sets(
                        st.integers(min_value=0, max_value=stream_length - 1),
                        max_size=4,
                    )
                )
            )
            detections = sorted(
                data.draw(
                    st.sets(
                        st.integers(min_value=0, max_value=stream_length - 1),
                        max_size=6,
                    )
                )
            )
            evaluations.append(evaluate_detections(drifts, detections, stream_length))
        merged = micro_average(evaluations)
        assert merged.true_positives == sum(e.true_positives for e in evaluations)
        assert merged.false_positives == sum(e.false_positives for e in evaluations)
        assert merged.false_negatives == sum(e.false_negatives for e in evaluations)


class TestStreamProperties:
    @given(
        lengths=st.lists(st.integers(min_value=5, max_value=200), min_size=1, max_size=5),
        rates=st.data(),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_binary_error_stream_structure(self, lengths, rates, seed):
        segments = [
            BinarySegment(length, rates.draw(st.floats(min_value=0.0, max_value=1.0)))
            for length in lengths
        ]
        stream = binary_error_stream(segments, seed=seed)
        assert len(stream) == sum(lengths)
        assert len(stream.drift_positions) == len(lengths) - 1
        assert set(np.unique(stream.values)).issubset({0.0, 1.0})
        assert all(0 < p < len(stream) for p in stream.drift_positions)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_generators_are_deterministic_given_seed(self, seed):
        for factory in (
            lambda: StaggerGenerator(seed=seed),
            lambda: SeaGenerator(seed=seed),
            lambda: AgrawalGenerator(seed=seed),
        ):
            first = factory().take(30)
            second = factory().take(30)
            assert [i.y for i in first] == [i.y for i in second]
            for a, b in zip(first, second):
                np.testing.assert_array_equal(a.x, b.x)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        function_id=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_agrawal_labels_are_binary(self, seed, function_id):
        stream = AgrawalGenerator(classification_function=function_id, seed=seed)
        for instance in stream.take(50):
            assert instance.y in (0, 1)
            assert instance.x.shape == (9,)
