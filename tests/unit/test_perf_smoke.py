"""Tier-1 perf smoke test for the batched OPTWIN execution engine.

Not a benchmark: the budgets are deliberately generous so the test is stable
on slow CI machines, but tight enough that a regression that silently drops
the vectorised fast path (falling back to the ~20 us/element scalar loop)
fails immediately.
"""

import time

import numpy as np

from repro.core.optwin import Optwin

_N_ELEMENTS = 50_000
_W_MAX = 25_000

#: Absolute ceiling for the batched pass over the 50k stream (hot path only;
#: the one-time dense-table build happens before the clock starts).  The
#: vectorised engine needs ~0.01 s here, the scalar loop ~1 s.
_BATCH_BUDGET_SECONDS = 2.0

#: The batched pass must also beat a scalar pass measured on the same machine
#: by a wide margin — this catches fast-path regressions independently of how
#: slow the machine is.  Typical speedup is far above 50x.
_MIN_SPEEDUP = 5.0


def test_batched_optwin_perf_smoke():
    rng = np.random.default_rng(7)
    values = (rng.random(_N_ELEMENTS) < 0.3).astype(np.float64)

    scalar_detector = Optwin(rho=0.5, w_max=_W_MAX)
    scalar_start = time.perf_counter()
    scalar_drifts = []
    for index, value in enumerate(values):
        if scalar_detector.update(value).drift_detected:
            scalar_drifts.append(index)
    scalar_seconds = time.perf_counter() - scalar_start

    batch_detector = Optwin(rho=0.5, w_max=_W_MAX)
    batch_detector.precompute_tables(_N_ELEMENTS)  # the paper's offline step
    batch_start = time.perf_counter()
    batch_drifts = batch_detector.update_many(values)
    batch_seconds = time.perf_counter() - batch_start

    # Identical detections, first and foremost.
    assert batch_drifts == scalar_drifts

    assert batch_seconds < _BATCH_BUDGET_SECONDS, (
        f"batched OPTWIN took {batch_seconds:.2f}s for {_N_ELEMENTS} elements "
        f"(budget {_BATCH_BUDGET_SECONDS}s) — did the fast path regress to "
        "the scalar loop?"
    )
    assert batch_seconds * _MIN_SPEEDUP < scalar_seconds, (
        f"batched OPTWIN ({batch_seconds:.3f}s) is less than "
        f"{_MIN_SPEEDUP}x faster than the scalar loop ({scalar_seconds:.3f}s)"
    )
