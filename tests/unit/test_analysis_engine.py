"""Engine-level tests for ``repro.analysis``: suppressions, baselines, CLI.

Rule behaviour is covered fixture-by-fixture in ``test_analysis_rules.py``;
here the subject is the machinery around the rules — suppression parsing and
hygiene, baseline fingerprints, syntax-error reporting, and the CLI's exit
codes and JSON output.  Files are written to ``tmp_path`` so no deliberately
broken source needs to live in the repository.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    RULE_SUPPRESSION_HYGIENE,
    RULE_SYNTAX_ERROR,
    RULE_UNUSED_SUPPRESSION,
    load_baseline,
    run_rules,
    scan_paths,
    select_rules,
    write_baseline,
)
from repro.analysis.__main__ import main

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "analysis"

#: A minimal broad-except violation used throughout.
_VIOLATION = """\
def run(job):
    try:
        job()
    except Exception:{comment}
        pass
"""


def _project(tmp_path: Path, source: str, name: str = "mod.py"):
    target = tmp_path / name
    target.write_text(source, encoding="utf-8")
    return scan_paths([target])


def _report(tmp_path: Path, source: str, rule_ids=("broad-except",)):
    project = _project(tmp_path, source)
    return run_rules(project, select_rules(list(rule_ids)))


# ------------------------------------------------------------ suppressions


def test_line_suppression_with_reason_silences_the_finding(tmp_path):
    report = _report(
        tmp_path,
        _VIOLATION.format(
            comment="  # repro: allow(broad-except) -- fixture: best effort"
        ),
    )
    assert report.clean and report.n_suppressed == 1


def test_file_suppression_silences_every_line(tmp_path):
    body = _VIOLATION.format(comment="")
    source = (
        "# repro: allow-file(broad-except) -- fixture: whole file is defensive\n"
        + body
        + "\n\n"
        + body.replace("run", "run2")
    )
    report = _report(tmp_path, source)
    assert report.clean and report.n_suppressed == 2


def test_suppression_without_reason_is_itself_a_finding(tmp_path):
    report = _report(
        tmp_path, _VIOLATION.format(comment="  # repro: allow(broad-except)")
    )
    hygiene = [f for f in report.findings if f.rule == RULE_SUPPRESSION_HYGIENE]
    assert len(hygiene) == 1
    assert "reason" in hygiene[0].message


def test_suppression_naming_unknown_rule_is_flagged(tmp_path):
    report = _report(
        tmp_path,
        _VIOLATION.format(comment="  # repro: allow(no-such-rule) -- why"),
    )
    assert any(
        f.rule == RULE_SUPPRESSION_HYGIENE and "unknown rule" in f.message
        for f in report.findings
    )
    # And the underlying violation still fires: the typo silenced nothing.
    assert any(f.rule == "broad-except" for f in report.findings)


def test_engine_rules_cannot_be_suppressed(tmp_path):
    report = _report(
        tmp_path,
        "x = 1  # repro: allow(syntax-error) -- trying to silence the engine\n",
    )
    assert any(
        f.rule == RULE_SUPPRESSION_HYGIENE and "cannot be suppressed" in f.message
        for f in report.findings
    )


def test_unused_suppression_is_flagged(tmp_path):
    report = _report(
        tmp_path, "x = 1  # repro: allow(broad-except) -- nothing to silence\n"
    )
    assert [f.rule for f in report.findings] == [RULE_UNUSED_SUPPRESSION]


def test_unused_suppression_not_flagged_when_its_rule_did_not_run(tmp_path):
    # --rules filtering must not call suppressions for unexecuted rules dead.
    report = _report(
        tmp_path,
        "x = 1  # repro: allow(determinism) -- covers a rule not run here\n",
        rule_ids=("broad-except",),
    )
    assert report.clean


def test_suppression_syntax_inside_docstring_is_not_parsed(tmp_path):
    source = (
        '"""Docs quoting the form ``# repro: allow(broad-except) -- why``."""\n'
        "x = 1\n"
    )
    report = _report(tmp_path, source)
    assert report.clean, [f.to_dict() for f in report.findings]


def test_syntax_error_is_reported_not_raised(tmp_path):
    report = _report(tmp_path, "def broken(:\n    pass\n")
    assert [f.rule for f in report.findings] == [RULE_SYNTAX_ERROR]


# --------------------------------------------------------------- baselines


def test_baseline_fingerprints_survive_line_shifts(tmp_path):
    source = _VIOLATION.format(comment="")
    project = _project(tmp_path, source)
    rules = select_rules(["broad-except"])
    report = run_rules(project, rules)
    assert len(report.findings) == 1

    baseline_path = tmp_path / "baseline.json"
    assert write_baseline(baseline_path, project, report.findings) == 1

    # Shift every line down; the fingerprint keys on the line *text*.
    shifted = _project(tmp_path, "# a new leading comment\n\n" + source)
    rerun = run_rules(shifted, rules, load_baseline(baseline_path))
    assert rerun.clean
    assert rerun.n_baselined == 1
    assert rerun.stale_baseline == []


def test_fixed_finding_turns_its_baseline_entry_stale(tmp_path):
    source = _VIOLATION.format(comment="")
    project = _project(tmp_path, source)
    rules = select_rules(["broad-except"])
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, project, run_rules(project, rules).findings)

    fixed = _project(
        tmp_path, source.replace("except Exception:", "except ValueError:")
    )
    rerun = run_rules(fixed, rules, load_baseline(baseline_path))
    assert rerun.clean
    assert len(rerun.stale_baseline) == 1


def test_baseline_rejects_unknown_schema_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema_version": 99, "entries": []}))
    with pytest.raises(ValueError):
        load_baseline(path)


# --------------------------------------------------------------------- CLI


def _cli(*argv):
    return main([str(arg) for arg in argv])


def test_cli_exits_zero_on_clean_tree(capsys):
    good = FIXTURES / "broad_except" / "good" / "pkg"
    assert _cli(good, "--no-baseline", "--no-lock") == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_exits_one_on_findings(capsys):
    bad = FIXTURES / "broad_except" / "bad" / "pkg"
    assert _cli(bad, "--no-baseline", "--no-lock") == 1
    out = capsys.readouterr().out
    assert "[broad-except]" in out


def test_cli_json_output_is_machine_readable(capsys):
    bad = FIXTURES / "durability" / "bad" / "pkg"
    assert _cli(bad, "--no-baseline", "--no-lock", "--format", "json") == 1
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["n_findings"] == len(document["findings"])
    first = document["findings"][0]
    assert {"rule", "path", "line", "col", "message"} <= set(first)


def test_cli_exits_two_on_unknown_rule(capsys):
    good = FIXTURES / "broad_except" / "good" / "pkg"
    assert _cli(good, "--rules", "no-such-rule") == 2
    assert "no-such-rule" in capsys.readouterr().err


def test_cli_exits_two_on_missing_path(capsys):
    assert _cli("/no/such/path", "--no-baseline", "--no-lock") == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_update_baseline_then_clean_run(tmp_path, capsys):
    bad = FIXTURES / "broad_except" / "bad" / "pkg"
    baseline = tmp_path / "baseline.json"
    assert _cli(bad, "--baseline", baseline, "--update-baseline", "--no-lock") == 0
    capsys.readouterr()
    assert _cli(bad, "--baseline", baseline, "--no-lock") == 0
    assert "3 baselined" in capsys.readouterr().out


def test_cli_list_rules_names_the_full_catalogue(capsys):
    assert _cli("--list-rules") == 0
    out = capsys.readouterr().out
    for rule_id in (
        "determinism",
        "durability",
        "snapshot-contract",
        "broad-except",
        "deprecated-symbol",
        "async-blocking",
        "resource-leak",
        "fork-safety",
        "syntax-error",
        "wire-protocol",
    ):
        assert rule_id in out
