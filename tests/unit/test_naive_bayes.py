"""Unit tests for the incremental Naive Bayes classifier."""

import numpy as np
import pytest

from repro.learners.naive_bayes import NaiveBayes
from repro.streams.base import Instance, nominal_attribute, numeric_attribute
from repro.streams.synthetic import SeaGenerator, StaggerGenerator


def _train(stream, learner, n):
    for instance in stream.take(n):
        learner.learn_one(instance)


def test_untrained_predicts_uniform():
    schema = [numeric_attribute("a"), nominal_attribute("b", 3)]
    learner = NaiveBayes(schema=schema, n_classes=4)
    probabilities = learner.predict_proba_one(Instance(x=np.array([0.0, 1.0]), y=0))
    np.testing.assert_allclose(probabilities, [0.25] * 4)


def test_probabilities_sum_to_one():
    stream = StaggerGenerator(seed=1)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    _train(stream, learner, 200)
    probabilities = learner.predict_proba_one(stream.next_instance())
    assert probabilities.sum() == pytest.approx(1.0)
    assert np.all(probabilities >= 0.0)


def test_learns_stagger_concept():
    stream = StaggerGenerator(classification_function=1, seed=2)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    _train(stream, learner, 1_500)
    test_instances = stream.take(500)
    accuracy = learner.evaluate_accuracy(test_instances)
    assert accuracy > 0.9


def test_learns_numeric_concept():
    stream = SeaGenerator(classification_function=1, seed=3)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    _train(stream, learner, 3_000)
    accuracy = learner.evaluate_accuracy(stream.take(1_000))
    assert accuracy > 0.8


def test_learn_counts():
    stream = StaggerGenerator(seed=1)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    _train(stream, learner, 50)
    assert learner.n_trained == 50


def test_reset_forgets_everything():
    stream = StaggerGenerator(classification_function=1, seed=2)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    _train(stream, learner, 500)
    learner.reset()
    assert learner.n_trained == 0
    probabilities = learner.predict_proba_one(stream.next_instance())
    np.testing.assert_allclose(probabilities, [0.5, 0.5])


def test_accuracy_drops_after_concept_switch_without_reset():
    concept_a = StaggerGenerator(classification_function=1, seed=4)
    concept_b = StaggerGenerator(classification_function=2, seed=5)
    learner = NaiveBayes(schema=concept_a.schema, n_classes=2)
    _train(concept_a, learner, 1_000)
    accuracy_a = learner.evaluate_accuracy(concept_a.take(400))
    accuracy_b = learner.evaluate_accuracy(concept_b.take(400))
    assert accuracy_a > accuracy_b


def test_unseen_nominal_value_is_smoothed():
    schema = [nominal_attribute("color", 3)]
    learner = NaiveBayes(schema=schema, n_classes=2)
    learner.learn_one(Instance(x=np.array([0.0]), y=0))
    learner.learn_one(Instance(x=np.array([1.0]), y=1))
    # Value 2 was never observed; prediction must still be finite/normalised.
    probabilities = learner.predict_proba_one(Instance(x=np.array([2.0]), y=0))
    assert probabilities.sum() == pytest.approx(1.0)


def test_clone_untrained():
    stream = StaggerGenerator(seed=1)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    _train(stream, learner, 100)
    clone = learner.clone_untrained()
    assert clone.n_trained == 0
    assert clone.n_classes == learner.n_classes


def test_evaluate_accuracy_empty_batch():
    stream = StaggerGenerator(seed=1)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    assert learner.evaluate_accuracy([]) == 0.0
