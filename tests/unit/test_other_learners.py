"""Unit tests for the perceptron, kNN, and Hoeffding-tree learners."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.learners.hoeffding_tree import HoeffdingTree
from repro.learners.knn import KnnClassifier
from repro.learners.perceptron import OnlinePerceptron
from repro.streams.synthetic import SeaGenerator, StaggerGenerator


def _prequential_accuracy(learner, stream, n):
    correct = 0
    for instance in stream.take(n):
        correct += int(learner.predict_one(instance) == instance.y)
        learner.learn_one(instance)
    return correct / n


class TestOnlinePerceptron:
    def test_learns_linear_concept(self):
        stream = SeaGenerator(classification_function=1, seed=2)
        learner = OnlinePerceptron(schema=stream.schema, n_classes=2)
        accuracy = _prequential_accuracy(learner, stream, 4_000)
        assert accuracy > 0.8

    def test_handles_nominal_attributes(self):
        stream = StaggerGenerator(classification_function=3, seed=2)
        learner = OnlinePerceptron(schema=stream.schema, n_classes=2)
        accuracy = _prequential_accuracy(learner, stream, 2_000)
        assert accuracy > 0.8

    def test_probabilities_sum_to_one(self):
        stream = SeaGenerator(seed=1)
        learner = OnlinePerceptron(schema=stream.schema, n_classes=2)
        learner.learn_one(stream.next_instance())
        probabilities = learner.predict_proba_one(stream.next_instance())
        assert probabilities.sum() == pytest.approx(1.0)

    def test_reset(self):
        stream = SeaGenerator(seed=1)
        learner = OnlinePerceptron(schema=stream.schema, n_classes=2)
        for instance in stream.take(100):
            learner.learn_one(instance)
        learner.reset()
        assert learner.n_trained == 0
        assert np.allclose(learner._weights, 0.0)


class TestKnn:
    def test_learns_simple_concept(self):
        stream = SeaGenerator(classification_function=1, seed=3)
        learner = KnnClassifier(schema=stream.schema, n_classes=2, k=7, window_size=500)
        accuracy = _prequential_accuracy(learner, stream, 2_000)
        assert accuracy > 0.8

    def test_window_bounds_memory(self):
        stream = SeaGenerator(seed=3)
        learner = KnnClassifier(schema=stream.schema, n_classes=2, window_size=100)
        for instance in stream.take(500):
            learner.learn_one(instance)
        assert len(learner._window) == 100

    def test_untrained_predicts_uniform(self):
        stream = SeaGenerator(seed=3)
        learner = KnnClassifier(schema=stream.schema, n_classes=2)
        probabilities = learner.predict_proba_one(stream.next_instance())
        np.testing.assert_allclose(probabilities, [0.5, 0.5])

    def test_invalid_parameters_raise(self):
        stream = SeaGenerator(seed=3)
        with pytest.raises(ConfigurationError):
            KnnClassifier(schema=stream.schema, n_classes=2, k=0)
        with pytest.raises(ConfigurationError):
            KnnClassifier(schema=stream.schema, n_classes=2, k=10, window_size=5)

    def test_reset(self):
        stream = SeaGenerator(seed=3)
        learner = KnnClassifier(schema=stream.schema, n_classes=2)
        for instance in stream.take(50):
            learner.learn_one(instance)
        learner.reset()
        assert learner.n_trained == 0
        assert len(learner._window) == 0


class TestHoeffdingTree:
    def test_learns_stagger(self):
        stream = StaggerGenerator(classification_function=1, seed=4)
        learner = HoeffdingTree(
            schema=stream.schema, n_classes=2, grace_period=100
        )
        accuracy = _prequential_accuracy(learner, stream, 4_000)
        assert accuracy > 0.85

    def test_tree_grows(self):
        stream = StaggerGenerator(classification_function=1, seed=4)
        learner = HoeffdingTree(schema=stream.schema, n_classes=2, grace_period=100)
        assert learner.n_leaves == 1
        for instance in stream.take(4_000):
            learner.learn_one(instance)
        assert learner.n_leaves > 1

    def test_numeric_splits(self):
        stream = SeaGenerator(classification_function=1, seed=4)
        learner = HoeffdingTree(schema=stream.schema, n_classes=2, grace_period=150)
        accuracy = _prequential_accuracy(learner, stream, 6_000)
        # Must clearly beat the majority-class baseline (~0.67 for SEA f1).
        assert accuracy > 0.72

    def test_max_depth_limits_growth(self):
        stream = SeaGenerator(seed=4)
        shallow = HoeffdingTree(
            schema=stream.schema, n_classes=2, grace_period=50, max_depth=1
        )
        for instance in stream.take(3_000):
            shallow.learn_one(instance)
        assert shallow.n_leaves <= 3

    def test_probabilities_valid(self):
        stream = StaggerGenerator(seed=4)
        learner = HoeffdingTree(schema=stream.schema, n_classes=2)
        for instance in stream.take(300):
            learner.learn_one(instance)
        probabilities = learner.predict_proba_one(stream.next_instance())
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.all(probabilities >= 0.0)

    def test_reset(self):
        stream = StaggerGenerator(seed=4)
        learner = HoeffdingTree(schema=stream.schema, n_classes=2, grace_period=50)
        for instance in stream.take(2_000):
            learner.learn_one(instance)
        learner.reset()
        assert learner.n_leaves == 1
        assert learner.n_trained == 0
