"""Packaging metadata sanity: pyproject.toml exists and matches the layout.

The setup shim (``setup.py``) declares that all real metadata lives in
``pyproject.toml``; these tests pin that promise so the distribution keeps a
name, a version, src-layout package discovery, and the numpy dependency.
"""

import pathlib

import pytest

tomllib = pytest.importorskip("tomllib")

_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _load_pyproject():
    with open(_ROOT / "pyproject.toml", "rb") as handle:
        return tomllib.load(handle)


def test_pyproject_exists_with_core_metadata():
    data = _load_pyproject()
    assert data["project"]["name"]
    assert any(dep.startswith("numpy") for dep in data["project"]["dependencies"])


def test_version_is_single_sourced_from_the_package():
    data = _load_pyproject()
    assert "version" in data["project"]["dynamic"]
    assert data["tool"]["setuptools"]["dynamic"]["version"]["attr"] == "repro.__version__"
    import repro

    assert repro.__version__


def test_pyproject_declares_src_layout():
    data = _load_pyproject()
    assert data["tool"]["setuptools"]["packages"]["find"]["where"] == ["src"]
    assert (_ROOT / "src" / "repro" / "__init__.py").exists()


def test_build_system_is_setuptools_pep621():
    data = _load_pyproject()
    assert data["build-system"]["build-backend"] == "setuptools.build_meta"
    assert any(req.startswith("setuptools") for req in data["build-system"]["requires"])


def test_package_discovery_finds_repro():
    setuptools = pytest.importorskip("setuptools")
    packages = setuptools.find_packages(where=str(_ROOT / "src"))
    assert "repro" in packages
    assert "repro.experiments" in packages
