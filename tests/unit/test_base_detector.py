"""Unit tests for the shared detector interface (:mod:`repro.core.base`)."""

import pytest

from repro.core.base import DetectionResult, DriftDetector, DriftType


class _EveryNth(DriftDetector):
    """Toy detector that flags a drift every ``n`` elements."""

    def __init__(self, n: int = 5) -> None:
        super().__init__()
        self._n = n
        self._count = 0

    def _update_one(self, value: float) -> DetectionResult:
        self._count += 1
        if self._count % self._n == 0:
            return DetectionResult(
                drift_detected=True, warning_detected=True, drift_type=DriftType.MEAN
            )
        if self._count % self._n == self._n - 1:
            return DetectionResult(warning_detected=True)
        return DetectionResult()

    def reset(self) -> None:
        self._count = 0
        self._reset_counters()


def test_detection_result_truthiness():
    assert not DetectionResult()
    assert DetectionResult(drift_detected=True)
    assert not DetectionResult(warning_detected=True)


def test_detection_result_defaults():
    result = DetectionResult()
    assert result.drift_type is None
    assert result.statistics == {}


def test_update_counts_and_properties():
    detector = _EveryNth(n=3)
    detector.update(0.0)
    assert detector.n_seen == 1
    assert not detector.drift_detected
    detector.update(0.0)
    assert detector.warning_detected
    detector.update(0.0)
    assert detector.drift_detected
    assert detector.n_drifts == 1
    assert detector.n_warnings == 2  # warning also set on the drift update


def test_update_many_returns_indices():
    detector = _EveryNth(n=4)
    detections = detector.update_many([0.0] * 12)
    assert detections == [3, 7, 11]
    assert detector.n_drifts == 3


def test_last_result_is_kept():
    detector = _EveryNth(n=2)
    detector.update(0.0)
    first = detector.last_result
    detector.update(0.0)
    assert detector.last_result is not first
    assert detector.last_result.drift_detected


def test_reset_counters():
    detector = _EveryNth(n=2)
    detector.update_many([0.0] * 6)
    detector.reset()
    assert detector.n_seen == 0
    assert detector.n_drifts == 0
    assert not detector.drift_detected


def test_seeded_running_argmin_tracks_ties_by_mode():
    import numpy as np

    from repro.core.base import seeded_running_argmin

    values = np.asarray([5.0, 3.0, 3.0, 4.0, 2.0, 2.0])
    # Ties advance the index when not strict (DDM-style <=) ...
    assert seeded_running_argmin(values, 10.0).tolist() == [0, 1, 2, 2, 4, 5]
    # ... and keep the earlier record when strict (HDDM-style <).
    assert seeded_running_argmin(values, 10.0, strict=True).tolist() == [
        0, 1, 1, 1, 4, 4,
    ]
    # A seed below every value means the prior record always holds.
    assert seeded_running_argmin(values, 1.0).tolist() == [-1] * 6


def test_drift_type_enum_values():
    assert DriftType.MEAN.value == "mean"
    assert DriftType.VARIANCE.value == "variance"
    assert DriftType.DISTRIBUTION.value == "distribution"
