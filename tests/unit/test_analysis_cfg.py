"""CFG builder and dataflow tests on the constructs that break naive builders.

Each test asserts the *complete* labeled edge set of a small function —
block labels are ``{NodeType}@{lineno}`` (``except@N`` for handlers), so the
expected sets read directly against the source strings.  The adversarial
shapes are the ones the serving stack actually contains: ``break`` through a
``finally``, ``with`` inside an ``except``, a bare re-``raise``,
``while``/``else``, ``return`` threading a ``finally``, and ``match``.
"""

from __future__ import annotations

import ast
import sys
import textwrap

import pytest

from repro.analysis import build_cfg, function_cfgs, run_forward


def _cfg(src: str):
    tree = ast.parse(textwrap.dedent(src))
    return build_cfg(tree.body[0])


def _block_id(cfg, label: str) -> int:
    matches = [bid for bid, block in cfg.blocks.items() if block.label == label]
    assert len(matches) == 1, f"label {label!r} matched blocks {matches}"
    return matches[0]


# ----------------------------------------------------------------- shapes


def test_linear_function_edges():
    cfg = _cfg(
        """\
        def f(x):
            y = x + 1
            return y
        """
    )
    assert cfg.labeled_edges() == {
        ("entry", "Assign@2", "normal"),
        ("Assign@2", "raise", "exception"),
        ("Assign@2", "Return@3", "normal"),
        ("Return@3", "raise", "exception"),
        ("Return@3", "exit", "return"),
    }


def test_if_else_branches_and_merge():
    cfg = _cfg(
        """\
        def f(x):
            if x:
                y = 1
            else:
                y = 2
            return y
        """
    )
    assert cfg.labeled_edges() == {
        ("entry", "If@2", "normal"),
        ("If@2", "raise", "exception"),
        ("If@2", "Assign@3", "normal"),
        ("If@2", "Assign@5", "normal"),
        ("Assign@3", "raise", "exception"),
        ("Assign@5", "raise", "exception"),
        ("Assign@3", "Return@6", "normal"),
        ("Assign@5", "Return@6", "normal"),
        ("Return@6", "raise", "exception"),
        ("Return@6", "exit", "return"),
    }


def test_while_else_break_skips_the_else():
    cfg = _cfg(
        """\
        def f(items):
            while items:
                item = items.pop()
                if item:
                    break
            else:
                item = None
            return item
        """
    )
    edges = cfg.labeled_edges()
    # break leaves the loop *and* skips the else body...
    assert ("Break@5", "Return@8", "break") in edges
    assert ("Break@5", "Assign@7", "break") not in edges
    # ...while normal exhaustion runs the else; the if falls back around.
    assert ("While@2", "Assign@7", "normal") in edges
    assert ("If@4", "While@2", "back") in edges


def test_break_through_finally_runs_cleanup_then_breaks():
    cfg = _cfg(
        """\
        def f(conns):
            for conn in conns:
                try:
                    conn.ping()
                    break
                finally:
                    conn.close()
            return conns
        """
    )
    assert cfg.labeled_edges() == {
        ("entry", "For@2", "normal"),
        ("For@2", "raise", "exception"),
        ("For@2", "Expr@4", "normal"),
        # ping blowing up routes through the finally...
        ("Expr@4", "Expr@7", "exception"),
        ("Expr@4", "Break@5", "normal"),
        # ...and so does the break; the finally then fans back out: the
        # pending break leaves the loop, the pending exception re-raises.
        ("Break@5", "Expr@7", "break"),
        ("Expr@7", "raise", "exception"),
        ("Expr@7", "raise", "raise"),
        ("Expr@7", "Return@8", "break"),
        ("For@2", "Return@8", "normal"),
        ("Return@8", "raise", "exception"),
        ("Return@8", "exit", "return"),
    }


def test_with_inside_except_and_bare_reraise():
    cfg = _cfg(
        """\
        def f(path, payload):
            try:
                handle = open(path)
            except OSError:
                with open(path, "w") as fallback:
                    fallback.write(payload)
                raise
            return handle
        """
    )
    assert cfg.labeled_edges() == {
        ("entry", "Assign@3", "normal"),
        # A non-catch-all handler: the exception may match OSError or
        # keep propagating, so the body carries both exception edges.
        ("Assign@3", "except@4", "exception"),
        ("Assign@3", "raise", "exception"),
        ("except@4", "With@5", "normal"),
        ("With@5", "raise", "exception"),
        ("With@5", "Expr@6", "normal"),
        ("Expr@6", "raise", "exception"),
        ("Expr@6", "Raise@7", "normal"),
        ("Raise@7", "raise", "raise"),
        ("Assign@3", "Return@8", "normal"),
        ("Return@8", "raise", "exception"),
        ("Return@8", "exit", "return"),
    }


def test_except_exception_counts_as_catch_all():
    cfg = _cfg(
        """\
        def f(task):
            try:
                task.run()
            except Exception:
                task.abort()
            return task
        """
    )
    edges = cfg.labeled_edges()
    assert ("Expr@3", "except@4", "exception") in edges
    # except Exception swallows the body's exception edge entirely (the
    # KeyboardInterrupt/SystemExit escapes are deliberately unmodelled);
    # only the handler's own body can still blow up.
    assert ("Expr@3", "raise", "exception") not in edges
    assert ("Expr@5", "raise", "exception") in edges


def test_return_threads_the_finally():
    cfg = _cfg(
        """\
        def f(wal):
            try:
                return wal.commit()
            finally:
                wal.close()
        """
    )
    assert cfg.labeled_edges() == {
        ("entry", "Return@3", "normal"),
        # Both the computed return and a commit() failure run the close...
        ("Return@3", "Expr@5", "return"),
        ("Return@3", "Expr@5", "exception"),
        ("Expr@5", "raise", "exception"),
        # ...after which the pending continuation resumes: the return
        # reaches exit, the in-flight exception re-raises.
        ("Expr@5", "exit", "return"),
        ("Expr@5", "raise", "raise"),
    }


@pytest.mark.skipif(sys.version_info < (3, 10), reason="match is 3.10+ syntax")
def test_match_fans_out_per_case():
    cfg = _cfg(
        """\
        def f(op):
            match op:
                case "ping":
                    return "pong"
                case _:
                    result = None
            return result
        """
    )
    assert cfg.labeled_edges() == {
        ("entry", "Match@2", "normal"),
        ("Match@2", "raise", "exception"),
        ("Match@2", "Return@4", "normal"),
        ("Return@4", "raise", "exception"),
        ("Return@4", "exit", "return"),
        ("Match@2", "Assign@6", "normal"),
        ("Assign@6", "raise", "exception"),
        ("Assign@6", "Return@7", "normal"),
        ("Return@7", "raise", "exception"),
        ("Return@7", "exit", "return"),
    }


@pytest.mark.skipif(sys.version_info < (3, 10), reason="match is 3.10+ syntax")
def test_match_without_wildcard_keeps_fall_through():
    cfg = _cfg(
        """\
        def f(op):
            match op:
                case "ping":
                    result = "pong"
            return result
        """
    )
    # No wildcard case: the subject may match nothing and fall through.
    assert ("Match@2", "Return@5", "normal") in cfg.labeled_edges()


# ---------------------------------------------------------------- queries


def test_nested_defs_stay_opaque_and_get_their_own_cfgs():
    tree = ast.parse(
        textwrap.dedent(
            """\
            def outer(x):
                def inner(y):
                    return y + 1
                return inner(x)
            """
        )
    )
    outer = tree.body[0]
    cfg = build_cfg(outer)
    # The nested def is one opaque block; its body has no blocks here.
    assert _block_id(cfg, "FunctionDef@2") is not None
    inner_return = outer.body[0].body[0]
    assert cfg.block_of(inner_return) is None
    assert cfg.block_of(outer.body[1]).label == "Return@4"
    assert {func.name for func, _ in function_cfgs(tree)} == {"outer", "inner"}


def test_statement_blocks_excludes_synthetics():
    cfg = _cfg(
        """\
        def f(x):
            y = x
            return y
        """
    )
    labels = [block.label for block in cfg.statement_blocks()]
    assert labels == ["Assign@2", "Return@3"]
    for synthetic in ("entry", "exit", "raise"):
        assert synthetic not in labels


# --------------------------------------------------------------- dataflow


def test_forward_exception_edges_drop_gen_and_honour_kill():
    cfg = _cfg(
        """\
        def f():
            h = acquire()
            h.close()
        """
    )
    assign = _block_id(cfg, "Assign@2")
    close = _block_id(cfg, "Expr@3")
    result = run_forward(cfg, {assign: {"h"}}, {close: {"h"}})
    # The fact exists after a completed acquisition...
    assert result.at_entry_of(close) == {"h"}
    # ...but not on the acquisition's own exception edge (the gen never
    # happened), and a raising close() still counts as the release attempt.
    assert result.at_entry_of(cfg.raise_exit) == set()
    assert result.at_entry_of(cfg.exit) == set()


def test_forward_join_is_may_union():
    cfg = _cfg(
        """\
        def f(x):
            if x:
                h = acquire()
            use(h)
        """
    )
    assign = _block_id(cfg, "Assign@3")
    use = _block_id(cfg, "Expr@4")
    result = run_forward(cfg, {assign: {"h"}}, {})
    # The skip branch joins in empty, the taken branch carries the fact;
    # a may-analysis keeps it.
    assert result.at_entry_of(use) == {"h"}
    assert result.at_entry_of(cfg.exit) == {"h"}


def test_forward_entry_state_seeds_the_analysis():
    cfg = _cfg(
        """\
        def f(h):
            h.close()
        """
    )
    close = _block_id(cfg, "Expr@2")
    result = run_forward(cfg, {}, {close: {"h"}}, entry_state=frozenset({"h"}))
    assert result.at_entry_of(close) == {"h"}
    assert result.at_entry_of(cfg.exit) == set()
    # The close's own exception edge honours the kill.
    assert result.at_entry_of(cfg.raise_exit) == set()
