"""Unit tests for the Page-Hinkley and KSWIN extension baselines."""

import numpy as np
import pytest

from repro.detectors.kswin import Kswin, _ks_statistic
from repro.detectors.no_detector import NoDriftDetector
from repro.detectors.page_hinkley import PageHinkley
from repro.exceptions import ConfigurationError


class TestPageHinkley:
    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            PageHinkley(delta=-0.1)
        with pytest.raises(ConfigurationError):
            PageHinkley(threshold=0.0)
        with pytest.raises(ConfigurationError):
            PageHinkley(alpha=0.0)
        with pytest.raises(ConfigurationError):
            PageHinkley(min_num_instances=0)

    def test_detects_mean_increase(self, sudden_gaussian_stream):
        detector = PageHinkley(delta=0.005, threshold=20.0)
        detections = detector.update_many(sudden_gaussian_stream.values)
        assert any(d >= 2_000 for d in detections)

    def test_no_drift_on_stationary_stream(self, rng):
        detector = PageHinkley()
        assert detector.update_many(rng.normal(0.3, 0.05, 10_000)) == []

    def test_reset_after_drift(self, sudden_gaussian_stream):
        detector = PageHinkley(threshold=20.0)
        for value in sudden_gaussian_stream.values:
            if detector.update(value).drift_detected:
                break
        assert detector.update(0.2).statistics["n"] == 1.0


class TestKsStatistic:
    def test_identical_samples_zero(self):
        sample = [0.1, 0.5, 0.9, 0.3]
        assert _ks_statistic(sample, sample) == 0.0

    def test_disjoint_samples_one(self):
        assert _ks_statistic([0.0, 0.1, 0.2], [0.8, 0.9, 1.0]) == pytest.approx(1.0)

    def test_matches_scipy(self, rng):
        from scipy import stats as scipy_stats

        a = rng.normal(0.0, 1.0, 50).tolist()
        b = rng.normal(0.5, 1.2, 60).tolist()
        expected = scipy_stats.ks_2samp(a, b).statistic
        assert _ks_statistic(a, b) == pytest.approx(expected)

    def test_handles_ties(self):
        a = [0.0] * 10 + [1.0] * 10
        b = [0.0] * 15 + [1.0] * 5
        assert _ks_statistic(a, b) == pytest.approx(0.25)


class TestKswin:
    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            Kswin(alpha=0.0)
        with pytest.raises(ConfigurationError):
            Kswin(window_size=50, stat_size=50)
        with pytest.raises(ConfigurationError):
            Kswin(stat_size=1, window_size=10)

    def test_window_must_hold_two_stat_samples(self):
        """Regression: ``stat_size < window_size < 2 * stat_size`` used to
        pass construction and then crash with ``ValueError`` in
        ``random.Random.sample`` at element ``window_size``, because the
        older window segment held fewer than ``stat_size`` values.  The
        constructor now rejects the configuration up front, naming both
        values."""
        with pytest.raises(
            ConfigurationError,
            match=r"window_size \(40\).*2 \* stat_size \(60\)",
        ):
            Kswin(window_size=40, stat_size=30)
        # The boundary configuration is legal and must survive past the
        # element that used to crash (the first full window) in both modes.
        stream = [float(v % 3) / 2.0 for v in range(150)]
        scalar = Kswin(window_size=60, stat_size=30)
        for value in stream:
            scalar.update(value)
        batched = Kswin(window_size=60, stat_size=30)
        batched.update_batch(stream)
        assert scalar.n_seen == batched.n_seen == 150

    def test_no_detection_until_window_full(self):
        detector = Kswin(window_size=100, stat_size=30)
        assert detector.update_many([0.5] * 99) == []

    def test_detects_distribution_shift(self, sudden_gaussian_stream):
        detector = Kswin(alpha=0.001, window_size=200, stat_size=40, seed=3)
        detections = detector.update_many(sudden_gaussian_stream.values)
        assert any(d >= 2_000 for d in detections)

    def test_reset(self):
        detector = Kswin()
        detector.update_many([0.5] * 150)
        detector.reset()
        assert detector.update_many([0.5] * 99) == []


class TestNoDriftDetector:
    def test_never_fires(self, rng):
        detector = NoDriftDetector()
        assert detector.update_many(rng.random(1_000)) == []
        assert detector.n_seen == 1_000
        assert not detector.warning_detected
        detector.reset()
        assert detector.n_seen == 0
