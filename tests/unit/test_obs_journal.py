"""Unit tests of :mod:`repro.obs.journal` — the bounded flight recorder."""

from __future__ import annotations

import json
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.journal import EventJournal


def test_record_and_query():
    journal = EventJournal()
    journal.record("shard_respawn", shard=3)
    journal.record("reshard_stage", stage="intent")
    journal.record("shard_respawn", shard=1)

    events = journal.events()
    assert [e["kind"] for e in events] == [
        "shard_respawn",
        "reshard_stage",
        "shard_respawn",
    ]
    assert all("ts" in e for e in events)
    assert [e["shard"] for e in journal.events(kind="shard_respawn")] == [3, 1]
    # limit keeps the newest events.
    assert [e["kind"] for e in journal.events(limit=1)] == ["shard_respawn"]
    assert journal.counts() == {"shard_respawn": 2, "reshard_stage": 1}
    stats = journal.stats()
    assert stats["n_journal_events"] == 3
    assert stats["n_journal_retained"] == 3
    assert stats["n_mirror_failures"] == 0


def test_ring_is_bounded_but_counts_are_lifetime():
    journal = EventJournal(capacity=2)
    for index in range(5):
        journal.record("tick", index=index)
    assert [e["index"] for e in journal.events()] == [3, 4]
    assert journal.counts()["tick"] == 5
    assert journal.stats()["n_journal_retained"] == 2


def test_invalid_capacity_rejected():
    with pytest.raises(ConfigurationError):
        EventJournal(capacity=0)


def test_events_returns_copies():
    journal = EventJournal()
    journal.record("tick")
    journal.events()[0]["kind"] = "mutated"
    assert journal.events()[0]["kind"] == "tick"


def test_jsonl_mirror_persists_the_full_history(tmp_path):
    path = tmp_path / "nested" / "journal.jsonl"
    journal = EventJournal(capacity=2, jsonl_path=path)
    for index in range(4):
        journal.record("tick", index=index)
    journal.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    # The ring dropped the oldest two; the mirror kept everything.
    assert [line["index"] for line in lines] == [0, 1, 2, 3]
    assert all(line["kind"] == "tick" for line in lines)


def test_mirror_failure_is_counted_not_raised(tmp_path):
    journal = EventJournal(jsonl_path=tmp_path / "journal.jsonl")
    journal._fh.close()  # simulate the mirror dying underneath the journal
    event = journal.record("tick")
    assert event["kind"] == "tick"
    assert journal.stats()["n_mirror_failures"] == 1
    assert len(journal.events()) == 1  # the ring still has it
    journal._fh = None
    journal.close()


def test_record_is_thread_safe():
    journal = EventJournal(capacity=10_000)
    n_threads, per_thread = 8, 250

    def worker(index):
        for _ in range(per_thread):
            journal.record(f"kind-{index}")

    threads = [
        threading.Thread(target=worker, args=(index,)) for index in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert journal.stats()["n_journal_events"] == n_threads * per_thread
    assert sum(journal.counts().values()) == n_threads * per_thread


def test_close_is_idempotent(tmp_path):
    journal = EventJournal(jsonl_path=tmp_path / "journal.jsonl")
    journal.record("tick")
    journal.close()
    journal.close()
