"""Unit tests for :mod:`repro.stats.distributions`."""

import math

import pytest
from scipy import stats as scipy_stats

from repro.exceptions import ConfigurationError
from repro.stats import distributions


class TestNormal:
    def test_cdf_symmetry(self):
        assert distributions.normal_cdf(0.0) == pytest.approx(0.5)
        assert distributions.normal_cdf(1.96) == pytest.approx(0.975, abs=1e-3)
        assert distributions.normal_cdf(-1.96) == pytest.approx(0.025, abs=1e-3)

    def test_ppf_matches_scipy(self):
        for p in (0.01, 0.1, 0.5, 0.9, 0.975, 0.999):
            assert distributions.normal_ppf(p) == pytest.approx(
                scipy_stats.norm.ppf(p), abs=1e-6
            )

    def test_ppf_cdf_roundtrip(self):
        for p in (0.05, 0.3, 0.7, 0.99):
            assert distributions.normal_cdf(distributions.normal_ppf(p)) == pytest.approx(
                p, abs=1e-6
            )

    def test_ppf_invalid_raises(self):
        with pytest.raises(ConfigurationError):
            distributions.normal_ppf(0.0)
        with pytest.raises(ConfigurationError):
            distributions.normal_ppf(1.0)


class TestStudentT:
    @pytest.mark.parametrize("df", [1.0, 2.5, 10.0, 62.0, 1000.0])
    @pytest.mark.parametrize("confidence", [0.9, 0.95, 0.99, 0.9975])
    def test_ppf_matches_scipy(self, df, confidence):
        assert distributions.t_ppf(confidence, df) == pytest.approx(
            scipy_stats.t.ppf(confidence, df), rel=1e-9
        )

    def test_cdf_matches_scipy(self):
        assert distributions.t_cdf(2.0, 30.0) == pytest.approx(
            scipy_stats.t.cdf(2.0, 30.0), rel=1e-9
        )

    def test_ppf_cdf_roundtrip(self):
        quantile = distributions.t_ppf(0.99, 25.0)
        assert distributions.t_cdf(quantile, 25.0) == pytest.approx(0.99, abs=1e-9)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ConfigurationError):
            distributions.t_ppf(1.5, 10.0)
        with pytest.raises(ConfigurationError):
            distributions.t_ppf(0.5, 0.0)
        with pytest.raises(ConfigurationError):
            distributions.t_cdf(1.0, -1.0)

    def test_larger_confidence_gives_larger_quantile(self):
        assert distributions.t_ppf(0.99, 30.0) > distributions.t_ppf(0.95, 30.0)


class TestFDistribution:
    @pytest.mark.parametrize("dfn,dfd", [(5.0, 10.0), (62.0, 936.0), (936.0, 62.0)])
    @pytest.mark.parametrize("confidence", [0.9, 0.99, 0.9975])
    def test_ppf_matches_scipy(self, dfn, dfd, confidence):
        assert distributions.f_ppf(confidence, dfn, dfd) == pytest.approx(
            scipy_stats.f.ppf(confidence, dfn, dfd), rel=1e-9
        )

    def test_cdf_matches_scipy(self):
        assert distributions.f_cdf(1.5, 10.0, 20.0) == pytest.approx(
            scipy_stats.f.cdf(1.5, 10.0, 20.0), rel=1e-9
        )

    def test_cdf_non_positive_is_zero(self):
        assert distributions.f_cdf(0.0, 5.0, 5.0) == 0.0
        assert distributions.f_cdf(-1.0, 5.0, 5.0) == 0.0

    def test_invalid_arguments_raise(self):
        with pytest.raises(ConfigurationError):
            distributions.f_ppf(0.99, 0.0, 5.0)
        with pytest.raises(ConfigurationError):
            distributions.f_ppf(0.99, 5.0, -1.0)
        with pytest.raises(ConfigurationError):
            distributions.f_cdf(1.0, 0.0, 5.0)

    def test_ppf_cdf_roundtrip(self):
        quantile = distributions.f_ppf(0.99, 12.0, 40.0)
        assert distributions.f_cdf(quantile, 12.0, 40.0) == pytest.approx(0.99, abs=1e-9)

    def test_quantile_above_one_for_high_confidence(self):
        assert distributions.f_ppf(0.99, 30.0, 30.0) > 1.0
