"""Unit tests for :class:`repro.serving.hub.MonitorHub`."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.detectors import Ddm
from repro.exceptions import ConfigurationError, SnapshotError
from repro.serving import (
    CHECKPOINT_FILENAME,
    HUB_SCHEMA_VERSION,
    CallbackSink,
    JsonlAuditSink,
    MonitorHub,
    QueueSink,
)
from repro.streams.error_streams import BinarySegment, binary_error_stream

VALUES = binary_error_stream(
    [BinarySegment(500, 0.1), BinarySegment(500, 0.65)], seed=7
).values


def _drifty_hub(**kwargs) -> MonitorHub:
    hub = MonitorHub(**kwargs)
    hub.register("acme", "checkout", "DDM")
    hub.register("acme", "search", "OPTWIN", {"w_max": 2000})
    hub.register("globex", "fraud", "ECDD")
    return hub


# ---------------------------------------------------------------- registry


def test_register_and_lookup():
    hub = _drifty_hub()
    assert len(hub) == 3
    assert ("acme", "checkout") in hub
    assert ("acme", "missing") not in hub
    assert type(hub.detector("acme", "search")).__name__ == "Optwin"
    listed = [(t, m) for t, m, _ in hub.monitors()]
    assert ("globex", "fraud") in listed


def test_register_duplicate_rejected():
    hub = _drifty_hub()
    with pytest.raises(ConfigurationError):
        hub.register("acme", "checkout", "DDM")
    # exist_ok with the same configuration returns the live detector.
    existing = hub.register("acme", "checkout", "DDM", exist_ok=True)
    assert existing is hub.detector("acme", "checkout")
    # exist_ok with a different configuration is a hard error.
    with pytest.raises(ConfigurationError):
        hub.register("acme", "checkout", "ADWIN", exist_ok=True)


def test_register_accepts_instances_and_rejects_params_with_instance():
    hub = MonitorHub()
    detector = Ddm(min_num_instances=50)
    assert hub.register("t", "m", detector) is detector
    with pytest.raises(ConfigurationError):
        hub.register("t", "m2", Ddm(), params={"min_num_instances": 5})


def test_unknown_detector_name_and_unknown_monitor():
    hub = MonitorHub()
    with pytest.raises(ConfigurationError):
        hub.register("t", "m", "NOT_A_DETECTOR")
    with pytest.raises(ConfigurationError):
        hub.observe("t", "ghost", [1.0])


# --------------------------------------------------------------- ingestion


def test_observe_matches_direct_detector():
    hub = MonitorHub()
    hub.register("t", "m", "DDM")
    reference = Ddm()
    expected = reference.update_batch(VALUES)

    outcome = hub.observe("t", "m", VALUES)
    assert outcome.batch.drift_indices == expected.drift_indices
    assert outcome.drift_positions == expected.drift_indices  # offset 0
    second = hub.observe("t", "m", VALUES[:100])
    assert second.offset == len(VALUES)


def test_ingest_groups_and_preserves_per_monitor_order():
    hub = _drifty_hub()
    # Interleave single events and chunks across monitors.
    events = []
    for index in range(0, 600, 3):
        events.append(("acme", "checkout", float(VALUES[index])))
        events.append(("acme", "search", VALUES[index : index + 3]))
        events.append(("globex", "fraud", float(VALUES[index])))
    results = hub.ingest(events)
    by_key = {(r.tenant, r.monitor_id): r for r in results}
    assert set(by_key) == {
        ("acme", "checkout"),
        ("acme", "search"),
        ("globex", "fraud"),
    }
    # Per-monitor order was preserved: "search" saw the full prefix once.
    assert by_key[("acme", "search")].n_processed == 600
    assert by_key[("acme", "checkout")].n_processed == 200

    # Equivalent to feeding the same per-monitor sequences directly.
    direct = MonitorHub()
    direct.register("acme", "search", "OPTWIN", {"w_max": 2000})
    expected = direct.observe("acme", "search", VALUES[:600])
    assert by_key[("acme", "search")].drift_positions == expected.drift_positions


def test_ingest_rejects_unregistered_monitor():
    hub = MonitorHub()
    with pytest.raises(ConfigurationError):
        hub.ingest([("t", "m", 1.0)])


# ------------------------------------------------------------------ alerts


def test_alert_transitions_not_per_element():
    queue = QueueSink()
    seen = []
    hub = MonitorHub(sinks=[queue, CallbackSink(seen.append)])
    hub.register("t", "m", "DDM")
    outcome = hub.observe("t", "m", VALUES)

    alerts = queue.drain()
    assert [a.to_dict() for a in alerts] == [a.to_dict() for a in seen]
    drift_alerts = [a for a in alerts if a.kind == "drift"]
    warning_alerts = [a for a in alerts if a.kind == "warning"]
    assert [a.position for a in drift_alerts] == outcome.drift_positions
    # One alert per warning *run*, not one per warning element.
    assert len(warning_alerts) < len(outcome.warning_positions)
    assert all(a.tenant == "t" and a.detector == "Ddm" for a in alerts)
    # Lifetime drift numbering.
    assert [a.n_drifts for a in drift_alerts] == list(
        range(1, len(drift_alerts) + 1)
    )


def test_warning_zone_continues_across_chunks():
    """A zone spanning a chunk boundary fires exactly one warning alert."""
    queue = QueueSink()
    hub = MonitorHub(sinks=[queue])
    hub.register("t", "m", "DDM")
    detector = Ddm()
    full = detector.update_batch(VALUES)
    first_warning = full.warning_indices[0]

    # Split right after the first warning element so the zone is open at the
    # chunk boundary.
    split = first_warning + 1
    hub.observe("t", "m", VALUES[:split])
    first_alerts = queue.drain()
    assert [a.kind for a in first_alerts] == ["warning"]

    hub.observe("t", "m", VALUES[split:])
    second_alerts = queue.drain()
    # The continuation of the same zone must not re-alert at position split.
    assert all(a.position != split or a.kind == "drift" for a in second_alerts)


def test_raising_sink_never_aborts_ingest():
    """The documented sink contract: a raising sink is a reporting problem.

    Detector state must stay authoritative — identical to a hub without any
    sink — the flush must complete, sinks after the raising one must still be
    delivered to, and the failures must be counted in ``stats()``.
    """

    def explode(alert):
        raise RuntimeError("notification backend is down")

    queue = QueueSink()
    hub = MonitorHub(sinks=[CallbackSink(explode), queue])
    hub.register("t", "m", "DDM")
    reference = MonitorHub()
    reference.register("t", "m", "DDM")

    # Neither observe nor ingest may raise.
    outcome = hub.observe("t", "m", VALUES[:600])
    hub.ingest([("t", "m", VALUES[600:])])
    expected_head = reference.observe("t", "m", VALUES[:600])
    expected_tail = reference.ingest([("t", "m", VALUES[600:])])[0]

    # Detector state is bit-identical to the sink-less hub.
    assert outcome.batch.drift_indices == expected_head.batch.drift_indices
    assert (
        hub.detector("t", "m").n_seen == reference.detector("t", "m").n_seen == len(VALUES)
    )
    assert hub.detector("t", "m").n_drifts == reference.detector("t", "m").n_drifts

    # Sinks after the raising one still received every alert.
    good_alerts = queue.drain()
    assert [a.position for a in good_alerts if a.kind == "drift"] == (
        expected_head.drift_positions + expected_tail.drift_positions
    )

    # Every failed delivery was counted.
    assert hub.n_sink_failures == len(good_alerts)
    assert hub.stats()["n_sink_failures"] == len(good_alerts)
    assert hub.stats()["n_sink_failures"] > 0


@pytest.mark.parametrize(
    "scalar",
    [
        np.int64(1),
        np.int32(0),
        np.float32(1.0),
        np.float64(0.0),
        np.array(1.0),
        # np.bool_ registers in no numbers ABC — yet it is exactly what
        # the idiomatic producer `y_pred != y_true` emits on numpy scalars.
        np.bool_(True),
    ],
    ids=["int64", "int32", "float32", "float64", "0d-array", "bool_"],
)
def test_observe_and_ingest_accept_numpy_scalars(scalar):
    """numpy scalars are ``numbers.Real`` but not ``int``/``float`` — they
    used to bypass the scalar branches and crash ``np.fromiter`` on a 0-d
    value."""
    hub = MonitorHub()
    hub.register("t", "m", "DDM")
    outcome = hub.observe("t", "m", scalar)
    assert outcome.n_processed == 1
    results = hub.ingest(
        [("t", "m", scalar), ("t", "m", [0.0, 1.0]), ("t", "m", scalar)]
    )
    assert results[0].n_processed == 4
    assert hub.detector("t", "m").n_seen == 5


def test_numpy_scalar_stream_matches_python_floats():
    """A numpy-typed event stream produces bit-identical detections."""
    hub_np = MonitorHub()
    hub_np.register("t", "m", "DDM")
    hub_py = MonitorHub()
    hub_py.register("t", "m", "DDM")

    np_events = [("t", "m", np.float64(v) if i % 2 else np.int64(int(v)))
                 for i, v in enumerate(VALUES[:400])]
    py_events = [("t", "m", float(v)) for v in VALUES[:400]]
    got = hub_np.ingest(np_events)[0]
    expected = hub_py.ingest(py_events)[0]
    assert got.batch.drift_indices == expected.batch.drift_indices
    assert got.batch.warning_indices == expected.batch.warning_indices


def test_queue_sink_counts_dropped_alerts():
    """A bounded QueueSink evicts oldest-first but never silently: every
    eviction increments ``n_dropped``, and the counter survives ``drain()``."""
    unbounded = QueueSink()
    bounded = QueueSink(maxlen=5)
    hub = MonitorHub(sinks=[unbounded, bounded])
    hub.register("t", "m", "DDM")
    hub.observe("t", "m", VALUES)

    all_alerts = unbounded.drain()
    assert len(all_alerts) > 5  # the stream produces more transitions than maxlen
    assert unbounded.n_dropped == 0

    assert len(bounded) == 5
    assert bounded.n_dropped == len(all_alerts) - 5
    # The newest five alerts survive, the oldest were evicted.
    kept = bounded.drain()
    assert [a.to_dict() for a in kept] == [a.to_dict() for a in all_alerts[-5:]]
    # n_dropped is a lifetime counter: drain() does not reset it.
    assert bounded.n_dropped == len(all_alerts) - 5


def test_jsonl_audit_sink(tmp_path):
    path = tmp_path / "alerts.jsonl"
    sink = JsonlAuditSink(str(path))
    hub = MonitorHub(sinks=[sink])
    hub.register("t", "m", "DDM")
    outcome = hub.observe("t", "m", VALUES)
    hub.close()

    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["position"] for r in lines if r["kind"] == "drift"] == (
        outcome.drift_positions
    )
    assert all(set(r) >= {"tenant", "monitor_id", "kind", "position"} for r in lines)


# ------------------------------------------------------------ checkpointing


def test_checkpoint_resume_bit_exact(tmp_path):
    hub = _drifty_hub(checkpoint_dir=tmp_path)
    hub.ingest(
        [
            ("acme", "checkout", VALUES[:700]),
            ("acme", "search", VALUES[:700]),
            ("globex", "fraud", VALUES[:700]),
        ]
    )
    path = hub.checkpoint()
    assert path.name == CHECKPOINT_FILENAME

    document = json.loads(path.read_text())
    assert document["schema_version"] == HUB_SCHEMA_VERSION
    assert document["config_hash"] == hub.composition_hash()
    assert len(document["monitors"]) == 3

    resumed = MonitorHub(checkpoint_dir=tmp_path)
    assert len(resumed) == 3
    assert resumed.n_events == hub.n_events
    for tenant, monitor_id, detector in hub.monitors():
        tail_live = detector.update_batch(VALUES[700:])
        tail_resumed = resumed.detector(tenant, monitor_id).update_batch(
            VALUES[700:]
        )
        assert tail_resumed.drift_indices == tail_live.drift_indices
        assert tail_resumed.warning_indices == tail_live.warning_indices


def test_composition_hash_is_order_independent(tmp_path):
    first = MonitorHub()
    first.register("a", "x", "DDM")
    first.register("b", "y", "ADWIN")
    second = MonitorHub()
    second.register("b", "y", "ADWIN")
    second.register("a", "x", "DDM")
    assert first.composition_hash() == second.composition_hash()
    third = MonitorHub()
    third.register("a", "x", "DDM")
    third.register("b", "y", "ADWIN", {"delta": 0.01})
    assert third.composition_hash() != first.composition_hash()


def test_auto_checkpoint_every(tmp_path):
    hub = MonitorHub(checkpoint_dir=tmp_path, checkpoint_every=100)
    hub.register("t", "m", "DDM")
    assert not (tmp_path / CHECKPOINT_FILENAME).exists()
    hub.observe("t", "m", VALUES[:99])
    assert not (tmp_path / CHECKPOINT_FILENAME).exists()
    hub.observe("t", "m", VALUES[99:200])
    assert (tmp_path / CHECKPOINT_FILENAME).exists()
    document = json.loads((tmp_path / CHECKPOINT_FILENAME).read_text())
    assert document["n_events"] == 200


def test_resume_false_ignores_checkpoint(tmp_path):
    hub = _drifty_hub(checkpoint_dir=tmp_path)
    hub.checkpoint()
    fresh = MonitorHub(checkpoint_dir=tmp_path, resume=False)
    assert len(fresh) == 0


def test_corrupt_checkpoint_raises(tmp_path):
    (tmp_path / CHECKPOINT_FILENAME).write_text("{not json")
    with pytest.raises(SnapshotError):
        MonitorHub(checkpoint_dir=tmp_path)
    (tmp_path / CHECKPOINT_FILENAME).write_text(
        json.dumps({"schema_version": 999, "n_events": 0, "monitors": []})
    )
    with pytest.raises(SnapshotError):
        MonitorHub(checkpoint_dir=tmp_path)


def test_checkpoint_requires_directory():
    hub = MonitorHub()
    with pytest.raises(ConfigurationError):
        hub.checkpoint()


def test_checkpoint_every_requires_directory():
    with pytest.raises(ConfigurationError):
        MonitorHub(checkpoint_every=1000)


def test_stats_views():
    hub = _drifty_hub()
    hub.observe("acme", "checkout", VALUES)
    overall = hub.stats()
    assert overall["n_monitors"] == 3
    assert overall["n_tenants"] == 2
    assert overall["n_events"] == len(VALUES)
    per_tenant = hub.stats("acme")
    assert per_tenant["n_monitors"] == 2
    per_monitor = hub.stats("acme", "checkout")
    assert per_monitor["n_seen"] == len(VALUES)
    assert per_monitor["detector"] == "Ddm"
    # A monitor id without its tenant is ambiguous, not a hub-wide query.
    with pytest.raises(ConfigurationError):
        hub.stats(None, "checkout")
