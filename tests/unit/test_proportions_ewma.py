"""Unit tests for the equality-of-proportions test and the EWMA estimator."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.stats.ewma import SUPPORTED_ARL0, EwmaEstimator, ecdd_control_limit
from repro.stats.proportions import (
    equal_proportions_statistics,
    equal_proportions_test,
)


class TestEqualProportions:
    def test_no_difference_gives_high_p_value(self):
        result = equal_proportions_test(24, 30, 240, 300)
        assert result.p_value > 0.3

    def test_accuracy_drop_gives_low_p_value(self):
        result = equal_proportions_test(10, 30, 280, 300)
        assert result.p_value < 0.001
        assert result.statistic > 3.0

    def test_accuracy_increase_not_flagged(self):
        # One-sided: getting better is never a drift signal.
        result = equal_proportions_test(30, 30, 150, 300)
        assert result.p_value >= 0.5

    def test_degenerate_all_correct(self):
        result = equal_proportions_test(30, 30, 300, 300)
        assert result.p_value == 1.0
        assert result.statistic == 0.0

    def test_invalid_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            equal_proportions_test(5, 0, 10, 20)
        with pytest.raises(ConfigurationError):
            equal_proportions_test(31, 30, 10, 20)
        with pytest.raises(ConfigurationError):
            equal_proportions_test(5, 30, 25, 20)


class TestEqualProportionsStatistics:
    def test_bit_identical_to_scalar_test(self):
        import numpy as np

        rng = np.random.default_rng(7)
        n_recent = 30
        n_older = rng.integers(30, 500, size=200)
        successes_recent = rng.integers(0, n_recent + 1, size=200).astype(float)
        successes_older = np.minimum(
            rng.integers(0, 500, size=200), n_older
        ).astype(float)
        vectorised = equal_proportions_statistics(
            successes_recent, n_recent, successes_older, n_older
        )
        for k in range(200):
            scalar = equal_proportions_test(
                successes_recent=float(successes_recent[k]),
                n_recent=n_recent,
                successes_older=float(successes_older[k]),
                n_older=int(n_older[k]),
            )
            pooled = (successes_recent[k] + successes_older[k]) / (
                n_recent + n_older[k]
            )
            degenerate = (
                pooled * (1.0 - pooled) * (1.0 / n_recent + 1.0 / n_older[k])
                <= 0.0
            )
            if degenerate:
                # Reported as -inf so the upper-tail p-value is exactly the
                # scalar short-circuit of 1.0.
                assert vectorised[k] == -math.inf
                assert scalar.p_value == 1.0
            else:
                assert vectorised[k] == scalar.statistic, k

    def test_degenerate_variance_reports_minus_inf(self):
        # Both segments all-success: the scalar test short-circuits to p=1.
        result = equal_proportions_statistics(30.0, 30, 100.0, 100)
        assert result == -math.inf


class TestEcddControlLimit:
    def test_supported_arl0_values(self):
        for arl0 in SUPPORTED_ARL0:
            limit = ecdd_control_limit(0.1, arl0)
            assert limit > 0.0

    def test_larger_arl0_gives_larger_limit_at_low_p(self):
        assert ecdd_control_limit(0.05, 1000) > ecdd_control_limit(0.05, 100)

    def test_p_is_clamped(self):
        assert ecdd_control_limit(0.9, 400) == ecdd_control_limit(0.5, 400)
        assert ecdd_control_limit(-0.5, 400) == ecdd_control_limit(0.0, 400)

    def test_intermediate_arl0_accepted(self):
        # Any ARL0 >= 2 is accepted; the limit interpolates smoothly.
        assert (
            ecdd_control_limit(0.1, 100)
            < ecdd_control_limit(0.1, 500)
            < ecdd_control_limit(0.1, 1000)
        )

    def test_invalid_arl0_raises(self):
        with pytest.raises(ConfigurationError):
            ecdd_control_limit(0.1, 1)
        with pytest.raises(ConfigurationError):
            ecdd_control_limit(0.1, 400, lambda_=0.0)


class TestEwmaEstimator:
    def test_first_value_initialises_z(self):
        ewma = EwmaEstimator(lambda_=0.2)
        ewma.update(1.0)
        assert ewma.z == 1.0
        assert ewma.p_estimate == 1.0
        assert ewma.count == 1

    def test_converges_to_mean(self):
        ewma = EwmaEstimator(lambda_=0.2)
        for index in range(2000):
            ewma.update(1.0 if index % 5 == 0 else 0.0)
        assert ewma.p_estimate == pytest.approx(0.2, abs=0.01)
        assert ewma.z == pytest.approx(0.2, abs=0.15)

    def test_z_std_formula(self):
        ewma = EwmaEstimator(lambda_=0.2)
        for index in range(100):
            ewma.update(float(index % 2))
        p = ewma.p_estimate
        factor = (0.2 / 1.8) * (1.0 - 0.8 ** 200)
        assert ewma.z_std == pytest.approx(math.sqrt(p * (1 - p) * factor))

    def test_reset(self):
        ewma = EwmaEstimator()
        ewma.update(1.0)
        ewma.reset()
        assert ewma.count == 0
        assert ewma.z == 0.0

    def test_invalid_lambda_raises(self):
        with pytest.raises(ConfigurationError):
            EwmaEstimator(lambda_=0.0)
        with pytest.raises(ConfigurationError):
            EwmaEstimator(lambda_=1.5)
