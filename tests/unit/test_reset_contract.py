"""Registry-driven ``reset()``-equals-fresh-instance contract suite.

The snapshot/restore machinery (and the hub's multi-tenant reuse of detector
instances) depends on ``reset()`` restoring *exactly* the post-``__init__``
state.  The serialized ``state_dict`` makes that invariant directly
checkable: a reset detector must serialize identically to a freshly
constructed one, and must then produce identical detections.
"""

from __future__ import annotations

import pytest

from repro.detectors import exported_detector_classes
from repro.streams.error_streams import BinarySegment, binary_error_stream

DETECTOR_CLASSES = exported_detector_classes()

_VALUES = binary_error_stream(
    [
        BinarySegment(350, 0.08),
        BinarySegment(350, 0.6),
        BinarySegment(350, 0.12),
        BinarySegment(350, 0.7),
    ],
    seed=23,
).values


@pytest.mark.parametrize("cls", DETECTOR_CLASSES, ids=lambda c: c.__name__)
def test_reset_state_equals_fresh_instance(cls):
    detector = cls()
    detector.update_batch(_VALUES)
    detector.reset()
    assert detector.state_dict() == cls().state_dict()


@pytest.mark.parametrize("cls", DETECTOR_CLASSES, ids=lambda c: c.__name__)
def test_reset_detections_equal_fresh_instance(cls):
    fresh = cls()
    reference = fresh.update_batch(_VALUES)

    recycled = cls()
    # Dirty the detector with a different prefix before resetting, so any
    # state surviving reset() changes the subsequent detections.
    recycled.update_batch(1.0 - _VALUES[:700])
    recycled.reset()
    replay = recycled.update_batch(_VALUES)

    assert replay.drift_indices == reference.drift_indices
    assert replay.warning_indices == reference.warning_indices
    assert recycled.n_seen == fresh.n_seen
    assert recycled.n_drifts == fresh.n_drifts
    assert recycled.n_warnings == fresh.n_warnings


@pytest.mark.parametrize("cls", DETECTOR_CLASSES, ids=lambda c: c.__name__)
def test_reset_in_scalar_mode(cls):
    fresh = cls()
    for value in _VALUES[:500]:
        fresh.update(float(value))

    recycled = cls()
    for value in _VALUES[500:900]:
        recycled.update(float(value))
    recycled.reset()
    for value in _VALUES[:500]:
        recycled.update(float(value))

    assert recycled.state_dict() == fresh.state_dict()
