"""Unit tests for the experiment runner and detector summaries."""

import pytest

from repro.core.optwin import Optwin
from repro.detectors.adwin import Adwin
from repro.evaluation.experiment import (
    DetectorSummary,
    ExperimentRunner,
    run_detector_on_values,
)
from repro.exceptions import ConfigurationError
from repro.streams.error_streams import BinarySegment, binary_error_stream


def _stream_factory(seed):
    return binary_error_stream(
        [BinarySegment(1_500, 0.2), BinarySegment(1_500, 0.7)], width=1, seed=seed
    )


def test_run_detector_on_values(sudden_binary_stream):
    result = run_detector_on_values(Optwin(rho=0.5, w_max=5_000), sudden_binary_stream)
    assert result.evaluation.true_positives == 1
    assert result.detections


def test_runner_produces_summary_per_detector():
    runner = ExperimentRunner(n_repetitions=3, base_seed=10)
    summaries = runner.run_value_experiment(
        detector_factories={
            "OPTWIN": lambda: Optwin(rho=0.5, w_max=5_000),
            "ADWIN": Adwin,
        },
        stream_factory=_stream_factory,
    )
    assert set(summaries) == {"OPTWIN", "ADWIN"}
    for summary in summaries.values():
        assert len(summary.runs) == 3
        row = summary.as_row()
        assert set(row) == {"detector", "delay", "fp", "precision", "recall", "f1"}
        assert 0.0 <= row["f1"] <= 1.0


def test_runner_detectors_see_same_streams():
    runner = ExperimentRunner(n_repetitions=2, base_seed=5)
    summaries = runner.run_value_experiment(
        detector_factories={
            "A": lambda: Optwin(rho=0.5, w_max=5_000),
            "B": lambda: Optwin(rho=0.5, w_max=5_000),
        },
        stream_factory=_stream_factory,
    )
    # Identical detectors over identical (paired) streams must agree exactly.
    assert summaries["A"].runs[0].detections == summaries["B"].runs[0].detections


def test_summary_aggregation_micro_average():
    summary = DetectorSummary(detector_name="X")
    runner = ExperimentRunner(n_repetitions=4, base_seed=2)
    summaries = runner.run_value_experiment(
        detector_factories={"X": lambda: Optwin(rho=0.5, w_max=5_000)},
        stream_factory=_stream_factory,
    )
    summary = summaries["X"]
    aggregate = summary.aggregate
    total_tp = sum(run.evaluation.true_positives for run in summary.runs)
    assert aggregate.true_positives == total_tp
    assert len(summary.per_run_f1) == 4
    assert summary.mean_false_positives == pytest.approx(
        sum(run.evaluation.false_positives for run in summary.runs) / 4
    )


def test_runner_validation():
    with pytest.raises(ConfigurationError):
        ExperimentRunner(n_repetitions=0)


def test_score_prequential_roundtrip():
    from repro.evaluation.prequential import PrequentialResult

    runner = ExperimentRunner(n_repetitions=1)
    results = {
        "X": [PrequentialResult(n_instances=1_000, n_correct=800, detections=[510])]
    }
    scored = runner.score_prequential(results, drift_positions=[500], n_instances=1_000)
    assert scored["X"].aggregate.true_positives == 1
    assert scored["X"].aggregate.delays == [10]
