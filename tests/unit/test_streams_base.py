"""Unit tests for the stream base abstractions."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.streams.base import (
    Attribute,
    Instance,
    ValueStream,
    nominal_attribute,
    numeric_attribute,
)
from repro.streams.synthetic import StaggerGenerator


class TestAttribute:
    def test_numeric_constructor(self):
        attribute = numeric_attribute("age")
        assert attribute.kind == "numeric"
        assert not attribute.is_nominal
        assert attribute.n_values == 0

    def test_nominal_constructor(self):
        attribute = nominal_attribute("color", 3)
        assert attribute.is_nominal
        assert attribute.n_values == 3

    def test_invalid_kind_raises(self):
        with pytest.raises(ConfigurationError):
            Attribute(name="x", kind="ordinal")

    def test_nominal_needs_two_values(self):
        with pytest.raises(ConfigurationError):
            nominal_attribute("flag", 1)


class TestInstanceStream:
    def test_take_and_counting(self):
        stream = StaggerGenerator(seed=3)
        instances = stream.take(25)
        assert len(instances) == 25
        assert stream.n_emitted == 25
        assert all(isinstance(instance, Instance) for instance in instances)

    def test_restart_reproduces_sequence(self):
        stream = StaggerGenerator(seed=3)
        first = [tuple(i.x) + (i.y,) for i in stream.take(50)]
        stream.restart()
        second = [tuple(i.x) + (i.y,) for i in stream.take(50)]
        assert first == second
        assert stream.n_emitted == 50

    def test_iteration_protocol(self):
        stream = StaggerGenerator(seed=1)
        iterator = iter(stream)
        instance = next(iterator)
        assert isinstance(instance, Instance)

    def test_schema_copy_is_defensive(self):
        stream = StaggerGenerator(seed=1)
        schema = stream.schema
        schema.pop()
        assert len(stream.schema) == 3

    def test_take_negative_raises(self):
        with pytest.raises(ConfigurationError):
            StaggerGenerator().take(-1)


class TestValueStream:
    def test_basic_properties(self):
        stream = ValueStream(values=np.array([0.1, 0.2, 0.3]), drift_positions=(1,))
        assert len(stream) == 3
        assert list(stream) == pytest.approx([0.1, 0.2, 0.3])
        assert stream.drift_widths == (1,)

    def test_default_widths_filled(self):
        stream = ValueStream(values=np.zeros(10), drift_positions=(3, 7))
        assert stream.drift_widths == (1, 1)

    def test_mismatched_widths_raise(self):
        with pytest.raises(ConfigurationError):
            ValueStream(values=np.zeros(5), drift_positions=(1, 2), drift_widths=(1,))

    def test_segment(self):
        stream = ValueStream(values=np.arange(10, dtype=float))
        np.testing.assert_allclose(stream.segment(2, 5), [2.0, 3.0, 4.0])
        np.testing.assert_allclose(stream.segment(8), [8.0, 9.0])
