"""Unit tests for the DDM and EDDM baselines."""

import numpy as np
import pytest

from repro.detectors.ddm import Ddm
from repro.detectors.eddm import Eddm
from repro.exceptions import ConfigurationError


class TestDdm:
    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            Ddm(min_num_instances=0)
        with pytest.raises(ConfigurationError):
            Ddm(warning_level=3.0, drift_level=2.0)
        with pytest.raises(ConfigurationError):
            Ddm(warning_level=-1.0)

    def test_no_detection_before_minimum(self):
        detector = Ddm(min_num_instances=30)
        for _ in range(29):
            assert not detector.update(1.0).drift_detected

    def test_error_rate_tracks_stream(self, rng):
        detector = Ddm()
        values = (rng.random(1_000) < 0.25).astype(float)
        detector.update_many(values)
        assert detector.error_rate == pytest.approx(np.mean(values), abs=0.02)

    def test_detects_error_rate_increase(self, sudden_binary_stream):
        detector = Ddm()
        detections = detector.update_many(sudden_binary_stream.values)
        post = [d for d in detections if d >= 2_000]
        assert post
        # DDM is accurate but known to be slow (cf. Table 1 of the paper).
        assert post[0] - 2_000 < 1_500

    def test_warning_before_drift(self, sudden_binary_stream):
        detector = Ddm()
        first_warning = None
        first_drift = None
        for index, value in enumerate(sudden_binary_stream.values):
            result = detector.update(value)
            if result.warning_detected and first_warning is None and index >= 2_000:
                first_warning = index
            if result.drift_detected and index >= 2_000:
                first_drift = index
                break
        assert first_drift is not None and first_warning is not None
        assert first_warning <= first_drift

    def test_low_false_positives_on_stationary_stream(self, rng):
        detector = Ddm()
        values = (rng.random(10_000) < 0.3).astype(float)
        assert len(detector.update_many(values)) <= 1

    def test_reset_after_drift(self, sudden_binary_stream):
        detector = Ddm()
        for value in sudden_binary_stream.values:
            if detector.update(value).drift_detected:
                break
        # After the internal reset the minimum statistics are re-initialised.
        assert detector.p_min == float("inf")

    def test_real_values_are_thresholded(self):
        detector = Ddm()
        # Values > 0.5 count as errors; a stream of 0.4s is error-free.
        for _ in range(100):
            result = detector.update(0.4)
        assert detector.error_rate == 0.0


class TestEddm:
    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            Eddm(alpha=0.9, beta=0.95)
        with pytest.raises(ConfigurationError):
            Eddm(alpha=1.2)
        with pytest.raises(ConfigurationError):
            Eddm(min_num_errors=0)

    def test_requires_minimum_errors(self):
        detector = Eddm(min_num_errors=30)
        # 20 errors only: never a drift, whatever their spacing.
        values = ([0.0] * 10 + [1.0]) * 20
        assert detector.update_many(values) == []

    def test_detects_shrinking_error_distance(self, rng):
        detector = Eddm()
        # Errors rare at first (distance large), then frequent (distance small).
        first = (rng.random(3_000) < 0.05).astype(float)
        second = (rng.random(2_000) < 0.5).astype(float)
        detections = detector.update_many(np.concatenate([first, second]))
        assert any(d >= 3_000 for d in detections)

    def test_distance_statistics(self):
        detector = Eddm()
        pattern = [0.0, 0.0, 0.0, 1.0] * 50  # error every 4 elements
        detector.update_many(pattern)
        assert detector.n_errors == 50
        assert detector.mean_distance == pytest.approx(4.0, abs=0.5)

    def test_reset(self):
        detector = Eddm()
        detector.update_many([1.0] * 40)
        detector.reset()
        assert detector.n_errors == 0
        assert detector.n_seen == 0
