"""Unit tests of the hub's durable alert bus: sequence numbers, WAL replay,
re-fire suppression, metrics, and the sink-side delivery counters."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SnapshotError
from repro.serving.hub import CHECKPOINT_FILENAME, MonitorHub
from repro.serving.sinks import DriftAlert, JsonlAuditSink, QueueSink


def _values():
    rng = np.random.default_rng(7)
    return np.concatenate(
        [(rng.random(500) < 0.1), (rng.random(500) < 0.65)]
    ).astype(float)


def _alert(seq: int, redelivered: bool = False) -> DriftAlert:
    return DriftAlert(
        tenant="t",
        monitor_id="m",
        kind="warning",
        position=seq,
        detector="Ddm",
        n_drifts=0,
        seq=seq,
        redelivered=redelivered,
    )


# ------------------------------------------------------------ sink counters


def test_queue_sink_counts_redeliveries_separately_from_drops():
    queue = QueueSink(maxlen=2)
    queue.emit(_alert(1))
    queue.emit(_alert(2, redelivered=True))
    assert queue.n_dropped == 0 and queue.n_redelivered == 1
    queue.emit(_alert(3))  # evicts seq 1: a capacity loss, not a replay
    assert queue.n_dropped == 1 and queue.n_redelivered == 1
    assert [alert.seq for alert in queue.drain()] == [2, 3]
    # Lifetime counters survive the drain.
    assert queue.stats() == {
        "n_buffered": 0,
        "n_dropped": 1,
        "n_redelivered": 1,
    }


def test_jsonl_audit_sink_fsync_mode(tmp_path):
    path = tmp_path / "audit.jsonl"
    sink = JsonlAuditSink(str(path), fsync=True)
    sink.emit(_alert(1))
    sink.emit(_alert(2, redelivered=True))
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [record["seq"] for record in records] == [1, 2]
    assert records[1]["redelivered"] is True
    assert sink.stats() == {"n_emitted": 2, "fsync": True}
    sink.close()


# -------------------------------------------------------------- hub + WAL


def test_replay_redelivers_tail_and_suppresses_refires(tmp_path):
    values = _values()
    queue = QueueSink()
    hub = MonitorHub(
        checkpoint_dir=tmp_path / "ckpt", sinks=[queue], wal_dir=tmp_path / "wal"
    )
    hub.register("t", "m", "DDM")
    hub.observe("t", "m", values[:500])
    hub.checkpoint()  # covers seqs 1-3
    hub.observe("t", "m", values[500:600])  # seqs 4-5, after the checkpoint
    original = [(a.seq, a.kind, a.position) for a in queue.drain()]
    assert [seq for seq, _, _ in original] == [1, 2, 3, 4, 5]
    # Crash: the process dies without another checkpoint or a clean close.
    hub._wal.commit()
    del hub

    queue2 = QueueSink()
    hub2 = MonitorHub(
        checkpoint_dir=tmp_path / "ckpt", sinks=[queue2], wal_dir=tmp_path / "wal"
    )
    replayed = [(a.seq, a.redelivered) for a in queue2.drain()]
    assert replayed == [(4, True), (5, True)]  # only past the checkpoint
    assert queue2.n_redelivered == 2

    # The producer replays from the restored position; the regenerated
    # seq-4/5 alerts are suppressed, new alerts flow with fresh numbers.
    position = hub2.detector("t", "m").n_seen
    assert position == 500
    hub2.observe("t", "m", values[position:])
    live = [(a.seq, a.kind, a.position, a.redelivered) for a in queue2.drain()]
    assert [entry[0] for entry in live] == [6]
    metrics = hub2.metrics()
    assert metrics["n_replay_suppressed"] == 2
    assert metrics["n_wal_replayed"] == 2
    hub2.close()


def test_replay_without_checkpoint_recovers_everything(tmp_path):
    values = _values()
    hub = MonitorHub(sinks=[QueueSink()], wal_dir=tmp_path / "wal")
    hub.register("t", "m", "DDM")
    hub.observe("t", "m", values[:600])  # seqs 1-5 logged, never checkpointed
    hub._wal.commit()
    del hub

    queue = QueueSink()
    hub2 = MonitorHub(sinks=[queue], wal_dir=tmp_path / "wal")
    assert [(a.seq, a.redelivered) for a in queue.drain()] == [
        (seq, True) for seq in (1, 2, 3, 4, 5)
    ]
    # A fresh registration replays the whole stream: all five regenerated
    # alerts are suppressed, the sixth is new.
    hub2.register("t", "m", "DDM")
    hub2.observe("t", "m", values)
    assert [a.seq for a in queue.drain()] == [6]
    hub2.close()


def test_second_restart_does_not_duplicate_replay(tmp_path):
    """The delivered marker bounds duplication across repeated crashes."""
    values = _values()
    hub = MonitorHub(sinks=[QueueSink()], wal_dir=tmp_path / "wal")
    hub.register("t", "m", "DDM")
    hub.observe("t", "m", values[:600])
    hub._wal.commit()
    del hub

    queue1 = QueueSink()
    hub2 = MonitorHub(sinks=[queue1], wal_dir=tmp_path / "wal")
    assert len(queue1.drain()) == 5  # first restart replays the tail
    hub2.close()  # clean close this time; delivered marker is on disk

    queue2 = QueueSink()
    hub3 = MonitorHub(sinks=[queue2], wal_dir=tmp_path / "wal")
    assert queue2.drain() == []  # nothing to re-deliver twice
    hub3.close()


def test_deferred_replay_waits_for_late_sinks(tmp_path):
    values = _values()
    hub = MonitorHub(sinks=[QueueSink()], wal_dir=tmp_path / "wal")
    hub.register("t", "m", "DDM")
    hub.observe("t", "m", values[:600])
    hub._wal.commit()
    del hub

    hub2 = MonitorHub(wal_dir=tmp_path / "wal", wal_auto_replay=False)
    assert hub2.wal_replay_pending
    late = QueueSink()
    hub2.add_sink(late)  # the TCP server's attach-after-construction shape
    assert hub2.replay_wal() == 5
    assert not hub2.wal_replay_pending
    assert hub2.replay_wal() == 0  # idempotent
    assert len(late.drain()) == 5
    hub2.close()


def test_alerts_history_and_watermarks(tmp_path):
    values = _values()
    hub = MonitorHub(sinks=[QueueSink()], wal_dir=tmp_path / "wal")
    hub.register("t", "m", "DDM")
    hub.observe("t", "m", values)
    history = hub.alerts_history(tenant="t", monitor_id="m")
    assert [record["seq"] for record in history] == [1, 2, 3, 4, 5, 6]
    assert hub.alerts_history(tenant="nobody") == []
    assert hub.wal_watermarks() == {("t", "m"): 1000}
    stats = hub.stats("t", "m")
    assert stats["alert_seq"] == 6 and stats["wal_watermark"] == 1000
    hub.close()


def test_alerts_history_requires_wal():
    hub = MonitorHub()
    with pytest.raises(ConfigurationError):
        hub.alerts_history()
    assert hub.wal_watermarks() == {}
    assert hub.wal_head() is None
    assert hub.metrics()["wal"] is None
    hub.close()


def test_metrics_shape(tmp_path):
    queue = QueueSink()
    hub = MonitorHub(sinks=[queue], wal_dir=tmp_path / "wal", wal_fsync="always")
    hub.register("t", "m", "DDM")
    hub.observe("t", "m", _values())
    metrics = hub.metrics()
    assert metrics["n_monitors"] == 1
    assert metrics["n_events"] == 1000
    assert metrics["n_flushes"] == 1
    assert metrics["ingest_rate"] > 0
    assert metrics["flush_latency_ms"]["count"] == 1
    assert metrics["flush_latency_ms"]["p95"] >= 0
    assert metrics["wal"]["fsync_mode"] == "always"
    assert metrics["wal"]["n_alerts"] == 6
    assert metrics["sinks"] == [
        {"sink": "QueueSink", "n_buffered": 6, "n_dropped": 0, "n_redelivered": 0}
    ]
    hub.close()


# ------------------------------------------------------- checkpoint schema


def test_version_1_checkpoints_still_restore(tmp_path):
    """Pre-WAL checkpoints (schema 1, no alert_seq) resume with seq 0."""
    values = _values()
    hub = MonitorHub(checkpoint_dir=tmp_path)
    hub.register("t", "m", "DDM")
    hub.observe("t", "m", values[:500])
    hub.checkpoint()
    hub.close()
    path = tmp_path / CHECKPOINT_FILENAME
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document["schema_version"] == 2
    assert [m["alert_seq"] for m in document["monitors"]] == [3]
    document["schema_version"] = 1
    for monitor in document["monitors"]:
        del monitor["alert_seq"]
    path.write_text(json.dumps(document), encoding="utf-8")

    queue = QueueSink()
    restored = MonitorHub(checkpoint_dir=tmp_path, sinks=[queue])
    assert restored.detector("t", "m").n_seen == 500
    restored.observe("t", "m", values[500:600])
    # Sequence numbering restarts from zero — the price of a v1 document,
    # which predates the WAL and so has nothing to deduplicate against.
    assert [a.seq for a in queue.drain()] == [1, 2]
    restored.close()

    document["schema_version"] = 99
    path.write_text(json.dumps(document), encoding="utf-8")
    with pytest.raises(SnapshotError):
        MonitorHub(checkpoint_dir=tmp_path)
