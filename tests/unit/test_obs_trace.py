"""Unit tests of :mod:`repro.obs.trace`.

Covers the sampling contract (deterministic counter, roots only), the
zero-cost disabled path, cross-process context propagation, the bounded
span ring, and the Chrome ``trace_event`` export (complete events, process
metadata, cross-process flow arrows).
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.trace import Tracer, chrome_trace, write_chrome_trace


def _fake_clock(start=100.0, step=0.25):
    state = {"t": start}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


def test_disabled_tracer_never_opens_roots():
    tracer = Tracer()  # sample_rate=0 is the default
    assert not tracer.enabled
    for _ in range(10):
        assert tracer.sample_root("server.ingest") is None
        assert tracer.begin("server.ingest") is None
    # No parent, no trace: the chainable no-op keeps call sites branch-free.
    assert tracer.start_span("child", None) is None
    stats = tracer.stats()
    assert stats["n_trace_roots"] == 0
    assert stats["n_trace_spans"] == 0


def test_sampling_is_a_deterministic_counter():
    tracer = Tracer(sample_rate=0.25)
    sampled = [tracer.sample_root("r") is not None for _ in range(8)]
    # Every round(1/0.25)=4th root, starting with the FIRST — a smoke test
    # at a low rate still produces a trace immediately.
    assert sampled == [True, False, False, False, True, False, False, False]
    stats = tracer.stats()
    assert stats["n_trace_roots"] == 8
    assert stats["n_trace_sampled"] == 2


def test_rate_one_samples_everything():
    tracer = Tracer(sample_rate=1.0)
    assert all(tracer.sample_root("r") is not None for _ in range(5))


@pytest.mark.parametrize("rate", [-0.1, 1.5])
def test_invalid_sample_rate_rejected(rate):
    with pytest.raises(ConfigurationError):
        Tracer(sample_rate=rate)


def test_invalid_capacity_rejected():
    with pytest.raises(ConfigurationError):
        Tracer(capacity=0)


def test_span_tree_records_parent_links():
    tracer = Tracer(sample_rate=1.0, clock=_fake_clock())
    root = tracer.sample_root("server.ingest", n_events=3)
    child = tracer.start_span("hub.fan_out", root)
    grandchild = tracer.start_span("monitor.update_batch", child, detector="Ddm")
    grandchild.end()
    child.end()
    root.add(n_monitors=2)
    root.end()

    spans = tracer.spans()
    assert [s["name"] for s in spans] == [
        "monitor.update_batch",
        "hub.fan_out",
        "server.ingest",
    ]
    by_name = {s["name"]: s for s in spans}
    assert by_name["server.ingest"]["parent_id"] is None
    assert by_name["hub.fan_out"]["parent_id"] == by_name["server.ingest"]["span_id"]
    assert (
        by_name["monitor.update_batch"]["parent_id"]
        == by_name["hub.fan_out"]["span_id"]
    )
    # One trace id throughout; annotations survive.
    assert len({s["trace_id"] for s in spans}) == 1
    assert by_name["server.ingest"]["args"] == {"n_events": 3, "n_monitors": 2}
    assert all(s["dur"] > 0 for s in spans)


def test_propagated_context_overrides_local_sampling():
    """A worker tracer at rate 0 must still record under a propagated root —
    sampling is the root's decision, not the worker's."""
    parent = Tracer(sample_rate=1.0, process="hub")
    worker = Tracer(sample_rate=0.0, process="shard-00")
    root = parent.sample_root("hub.fan_out")
    ctx = root.context()
    # The tuple shape survives a JSON round-trip (lists are accepted too).
    ctx = json.loads(json.dumps(ctx))
    span = worker.begin("hub.ingest", ctx)
    assert span is not None
    span.end()
    root.end()
    (recorded,) = worker.spans()
    assert recorded["trace_id"] == root.trace_id
    assert recorded["parent_id"] == root.span_id
    assert recorded["process"] == "shard-00"


def test_span_handle_is_a_context_manager_and_end_is_idempotent():
    tracer = Tracer(sample_rate=1.0)
    with tracer.sample_root("r") as span:
        pass
    span.end()  # second end is a no-op
    assert len(tracer.spans()) == 1


def test_ring_is_bounded_and_drain_clears():
    tracer = Tracer(sample_rate=1.0, capacity=4)
    for index in range(10):
        tracer.sample_root(f"r{index}").end()
    assert [s["name"] for s in tracer.spans()] == ["r6", "r7", "r8", "r9"]
    assert tracer.stats()["n_trace_spans"] == 10
    assert tracer.stats()["n_trace_retained"] == 4
    drained = tracer.drain()
    assert len(drained) == 4
    assert tracer.spans() == []
    assert tracer.stats()["n_trace_retained"] == 0


def test_chrome_trace_shape_and_flow_arrows():
    parent = Tracer(sample_rate=1.0, process="hub", clock=_fake_clock())
    worker = Tracer(sample_rate=0.0, process="shard-01", clock=_fake_clock())
    worker._pid = parent._pid + 1  # simulate the separate worker process
    root = parent.sample_root("hub.fan_out")
    child = worker.start_span("hub.ingest", root.context())
    local = parent.start_span("wal.commit", root)
    local.end()
    child.end()
    root.end()

    document = chrome_trace(parent.drain() + worker.drain())
    events = document["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    flows = [e for e in events if e["ph"] in ("s", "f")]
    assert {m["args"]["name"] for m in metadata} == {"hub", "shard-01"}
    assert {e["name"] for e in complete} == {"hub.fan_out", "hub.ingest", "wal.commit"}
    # Timestamps are microseconds and durations strictly positive.
    assert all(e["dur"] > 0 for e in complete)
    # Exactly one cross-process edge (hub.fan_out -> worker hub.ingest);
    # the same-process wal.commit edge draws no arrow.
    assert [e["ph"] for e in flows] == ["s", "f"]
    assert flows[0]["pid"] != flows[1]["pid"]
    assert flows[1]["bp"] == "e"


def test_write_chrome_trace_roundtrip(tmp_path):
    tracer = Tracer(sample_rate=1.0)
    tracer.sample_root("r").end()
    target = write_chrome_trace(tmp_path / "nested" / "trace.json", tracer.drain())
    loaded = json.loads(target.read_text())
    assert loaded["displayTimeUnit"] == "ms"
    assert any(e["ph"] == "X" for e in loaded["traceEvents"])
