"""Unit tests for concept-drift stream composition."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.streams.drift import ConceptDriftStream, MultiConceptDriftStream
from repro.streams.synthetic import SeaGenerator, StaggerGenerator


def _label_agreement(stream, reference_factory, n=400):
    """Fraction of instances whose label matches the reference concept."""
    reference = reference_factory()
    agreement = 0
    for instance in stream.take(n):
        expected = reference
        agreement += int(instance.y == _sea_label(instance.x, expected))
    return agreement / n


def _sea_label(x, generator):
    threshold = generator._threshold
    return int(x[0] + x[1] <= threshold)


class TestConceptDriftStream:
    def test_sudden_switch(self):
        base = SeaGenerator(classification_function=1, seed=1)
        drift = SeaGenerator(classification_function=3, seed=2)
        stream = ConceptDriftStream(base, drift, position=500, width=1, seed=3)
        # Before the drift the labels follow concept 1 (threshold 8).
        for instance in stream.take(400):
            assert instance.y == int(instance.x[0] + instance.x[1] <= 8.0)
        stream.take(200)  # cross the drift point
        mismatches = 0
        for instance in stream.take(400):
            if instance.y != int(instance.x[0] + instance.x[1] <= 7.0):
                mismatches += 1
        assert mismatches < 40  # overwhelmingly the new concept

    def test_probability_sigmoid(self):
        base = StaggerGenerator(seed=1)
        drift = StaggerGenerator(classification_function=2, seed=2)
        stream = ConceptDriftStream(base, drift, position=1_000, width=200, seed=3)
        assert stream.probability_of_new_concept(0) < 0.01
        assert stream.probability_of_new_concept(1_000) == pytest.approx(0.5)
        assert stream.probability_of_new_concept(2_000) > 0.99

    def test_drift_positions_metadata(self):
        base = StaggerGenerator(seed=1)
        drift = StaggerGenerator(classification_function=2, seed=2)
        sudden = ConceptDriftStream(base, drift, position=100, width=1)
        gradual = ConceptDriftStream(
            StaggerGenerator(seed=1), StaggerGenerator(seed=2), position=100, width=40
        )
        assert sudden.drift_positions == (100,)
        assert gradual.drift_positions == (80,)

    def test_schema_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            ConceptDriftStream(StaggerGenerator(), SeaGenerator(), position=10)

    def test_invalid_parameters_raise(self):
        base, drift = StaggerGenerator(seed=1), StaggerGenerator(seed=2)
        with pytest.raises(ConfigurationError):
            ConceptDriftStream(base, drift, position=0)
        with pytest.raises(ConfigurationError):
            ConceptDriftStream(base, drift, position=10, width=0)

    def test_restart(self):
        base = StaggerGenerator(seed=1)
        drift = StaggerGenerator(classification_function=2, seed=2)
        stream = ConceptDriftStream(base, drift, position=50, width=10, seed=3)
        first = [i.y for i in stream.take(120)]
        stream.restart()
        second = [i.y for i in stream.take(120)]
        assert first == second


class TestMultiConceptDriftStream:
    def _build(self, width=1):
        concepts = [
            SeaGenerator(classification_function=f, seed=10 + f) for f in (1, 2, 3)
        ]
        return MultiConceptDriftStream(concepts, [300, 600], width=width, seed=5)

    def test_drift_positions(self):
        stream = self._build()
        assert stream.drift_positions == (300, 600)
        assert stream.drift_widths == (1, 1)

    def test_concept_probabilities_sum_to_one(self):
        stream = self._build(width=100)
        for index in (0, 250, 300, 450, 600, 900):
            probabilities = stream._concept_probabilities(index)
            assert sum(probabilities) == pytest.approx(1.0)
            assert all(p >= 0.0 for p in probabilities)

    def test_active_concept_changes_over_time(self):
        stream = self._build()
        assert np.argmax(stream._concept_probabilities(0)) == 0
        assert np.argmax(stream._concept_probabilities(450)) == 1
        assert np.argmax(stream._concept_probabilities(900)) == 2

    def test_generates_instances_across_drifts(self):
        stream = self._build()
        instances = stream.take(900)
        assert len(instances) == 900

    def test_validation(self):
        concepts = [SeaGenerator(seed=1), SeaGenerator(seed=2)]
        with pytest.raises(ConfigurationError):
            MultiConceptDriftStream(concepts, [100, 200])
        with pytest.raises(ConfigurationError):
            MultiConceptDriftStream(concepts, [200, 100][:1], width=0)
        with pytest.raises(ConfigurationError):
            MultiConceptDriftStream([SeaGenerator(seed=1)], [])
        with pytest.raises(ConfigurationError):
            MultiConceptDriftStream(
                [SeaGenerator(seed=1), StaggerGenerator(seed=2)], [100]
            )
