"""Meta-tests: the linter passes on the repository it ships in, and the
lock manifests actually catch the drift they exist to catch.

The first test is the one CI's ``lint`` job re-runs as a command — the full
eight-rule catalogue plus both lock checks against the committed (empty)
baseline; keeping it in the suite too means ``pytest`` alone reproduces a
lint failure, with the offending findings in the assertion message.  The
tamper tests doctor copies of the committed locks and assert each class of
drift becomes findings: for the schema lock, removed/unregistered detectors,
changed persisted keys, and stale schema versions; for the wire lock,
phantom ops, removed ops, and changed request/response key sets.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    RULE_WIRE_PROTOCOL,
    default_baseline_path,
    default_lock_path,
    default_wire_lock_path,
    generate_wire_lock,
    load_baseline,
    run_rules,
    scan_paths,
    select_rules,
)
from repro.analysis.__main__ import main

REPRO_PACKAGE = Path(repro.__file__).resolve().parent
SERVER_PY = REPRO_PACKAGE / "serving" / "server.py"


@pytest.fixture(scope="module")
def repo_project():
    return scan_paths([REPRO_PACKAGE])


def test_repo_is_clean_against_committed_baseline(repo_project):
    repo_project.options["schema_lock_path"] = str(default_lock_path())
    repo_project.options["wire_lock_path"] = str(default_wire_lock_path())
    report = run_rules(
        repo_project, select_rules(), load_baseline(default_baseline_path())
    )
    assert report.clean, "\n".join(
        f"{f.path}:{f.line}: {f.message} [{f.rule}]" for f in report.findings
    )
    assert report.stale_baseline == [], (
        "baseline entries no longer fire; prune with --update-baseline: "
        f"{report.stale_baseline}"
    )


def test_committed_baseline_is_empty():
    # The repo carries no grandfathered debt: every finding is either fixed
    # or suppressed in place with a reason.  Keep it that way.
    document = json.loads(default_baseline_path().read_text(encoding="utf-8"))
    assert document["entries"] == []


def test_every_suppression_in_the_repo_carries_a_reason(repo_project):
    missing = [
        (info.rel_path, supp.line)
        for info in repo_project.modules
        for supp in info.suppressions
        if not supp.reason
    ]
    assert missing == []


# ------------------------------------------------------------- lock tamper


def _contract_findings(repo_project, lock_document, tmp_path):
    doctored = tmp_path / "doctored.lock.json"
    doctored.write_text(json.dumps(lock_document), encoding="utf-8")
    repo_project.options["schema_lock_path"] = str(doctored)
    try:
        report = run_rules(repo_project, select_rules(["snapshot-contract"]))
    finally:
        repo_project.options["schema_lock_path"] = str(default_lock_path())
    return report.findings


def _committed_lock():
    return json.loads(default_lock_path().read_text(encoding="utf-8"))


def test_committed_lock_matches_the_live_registry(repo_project, tmp_path):
    assert _contract_findings(repo_project, _committed_lock(), tmp_path) == []


def test_detector_removed_from_registry_is_caught(repo_project, tmp_path):
    # A detector present in the lock but gone from the live registry is what
    # an accidental unregistration looks like; fake one by adding a phantom
    # entry to the lock.
    lock = _committed_lock()
    lock["detectors"]["PhantomDetector"] = {
        "config_keys": ["x"],
        "state_keys": ["y"],
    }
    findings = _contract_findings(repo_project, lock, tmp_path)
    assert any(
        "PhantomDetector" in f.message and "no longer reachable" in f.message
        for f in findings
    )


def test_unlocked_detector_is_caught(repo_project, tmp_path):
    lock = _committed_lock()
    name, _ = sorted(lock["detectors"].items())[0]
    del lock["detectors"][name]
    findings = _contract_findings(repo_project, lock, tmp_path)
    assert any(
        name in f.message and "not in the schema lock" in f.message
        for f in findings
    )


def test_changed_state_keys_without_version_bump_is_caught(repo_project, tmp_path):
    lock = _committed_lock()
    name = sorted(lock["detectors"])[0]
    lock["detectors"][name]["state_keys"] = sorted(
        lock["detectors"][name]["state_keys"] + ["bogus_key"]
    )
    findings = _contract_findings(repo_project, lock, tmp_path)
    messages = [f.message for f in findings if name in f.message]
    assert any(
        "changed its persisted state keys" in m and "bogus_key" in m
        for m in messages
    )
    # The finding anchors at the detector's class definition, not a generic
    # location, so the operator lands on the code that drifted.
    anchored = [f for f in findings if name in f.message]
    assert all(f.path.endswith(".py") and f.line > 1 for f in anchored)


def test_schema_version_bump_requires_update_lock(repo_project, tmp_path):
    lock = _committed_lock()
    lock["snapshot_schema_version"] = lock["snapshot_schema_version"] + 1
    findings = _contract_findings(repo_project, lock, tmp_path)
    assert len(findings) == 1
    assert "--update-lock" in findings[0].message


# -------------------------------------------------------- wire-lock tamper


def _wire_findings(repo_project, lock_document, tmp_path):
    doctored = tmp_path / "doctored.wire.lock.json"
    doctored.write_text(json.dumps(lock_document), encoding="utf-8")
    repo_project.options["wire_lock_path"] = str(doctored)
    try:
        report = run_rules(repo_project, select_rules(["broad-except"]))
    finally:
        repo_project.options.pop("wire_lock_path", None)
    return [f for f in report.findings if f.rule == RULE_WIRE_PROTOCOL]


def _committed_wire_lock():
    return json.loads(default_wire_lock_path().read_text(encoding="utf-8"))


def test_committed_wire_lock_matches_the_live_dispatch(repo_project, tmp_path):
    assert _wire_findings(repo_project, _committed_wire_lock(), tmp_path) == []
    # And the committed file is byte-for-byte what extraction produces.
    live = generate_wire_lock(repo_project)
    assert live == _committed_wire_lock()


def test_wire_lock_findings_anchor_at_the_dispatch(repo_project, tmp_path):
    lock = _committed_wire_lock()
    lock["ops"]["phantom_op"] = {"request_keys": [], "response_keys": ["ok"]}
    findings = _wire_findings(repo_project, lock, tmp_path)
    assert len(findings) == 1
    assert findings[0].path.endswith("serving/server.py")
    assert findings[0].line > 1


def _doctor_phantom_op(lock):
    lock["ops"]["phantom_op"] = {"request_keys": [], "response_keys": ["ok"]}
    return "no longer dispatched"


def _doctor_removed_op(lock):
    del lock["ops"]["ping"]
    return "not in the wire lock"


def _doctor_changed_response_keys(lock):
    lock["ops"]["ping"]["response_keys"] = ["ok", "pong", "vanished"]
    return "changed its response keys"


@pytest.mark.parametrize(
    "doctor",
    [_doctor_phantom_op, _doctor_removed_op, _doctor_changed_response_keys],
    ids=["phantom-op", "removed-op", "changed-response-keys"],
)
def test_doctored_wire_lock_fails_cli_with_update_hint(doctor, tmp_path, capsys):
    lock = _committed_wire_lock()
    expected = doctor(lock)
    doctored = tmp_path / "doctored.wire.lock.json"
    doctored.write_text(json.dumps(lock), encoding="utf-8")
    exit_code = main(
        [str(SERVER_PY), "--no-baseline", "--no-lock", "--wire-lock", str(doctored)]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert expected in out
    assert "[wire-protocol]" in out
    assert "--update-wire-lock" in out


def test_cli_update_wire_lock_writes_a_lock_the_next_run_accepts(tmp_path, capsys):
    wire = tmp_path / "wire.lock.json"
    assert (
        main(
            [
                str(SERVER_PY),
                "--no-baseline",
                "--no-lock",
                "--wire-lock",
                str(wire),
                "--update-wire-lock",
            ]
        )
        == 0
    )
    assert "wrote" in capsys.readouterr().out
    assert (
        main([str(SERVER_PY), "--no-baseline", "--no-lock", "--wire-lock", str(wire)])
        == 0
    )


def test_missing_wire_lock_is_a_finding_not_a_crash(repo_project, tmp_path, capsys):
    repo_project.options["wire_lock_path"] = str(tmp_path / "nowhere.json")
    try:
        report = run_rules(repo_project, select_rules(["broad-except"]))
    finally:
        repo_project.options.pop("wire_lock_path", None)
    wire = [f for f in report.findings if f.rule == RULE_WIRE_PROTOCOL]
    assert len(wire) == 1
    assert "does not exist" in wire[0].message


def test_wire_protocol_cannot_be_suppressed(tmp_path):
    # An engine pseudo-rule: the sanctioned way to change the protocol is
    # --update-wire-lock, not an inline allow().
    source = "x = 1  # repro: allow(wire-protocol) -- trying anyway\n"
    target = tmp_path / "mod.py"
    target.write_text(source, encoding="utf-8")
    report = run_rules(scan_paths([target]), select_rules(["broad-except"]))
    assert any("cannot be suppressed" in f.message for f in report.findings)
