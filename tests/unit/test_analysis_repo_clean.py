"""Meta-tests: the linter passes on the repository it ships in, and the
schema-lock manifest actually catches the drift it exists to catch.

The first test is the one CI's ``lint`` job re-runs as a command; keeping it
in the suite too means ``pytest`` alone reproduces a lint failure, with the
offending findings in the assertion message.  The tamper tests doctor a copy
of the committed lock and assert the ``snapshot-contract`` rule turns each
class of drift — removed detector, unregistered detector, changed persisted
keys, stale schema version — into findings.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    default_baseline_path,
    default_lock_path,
    load_baseline,
    run_rules,
    scan_paths,
    select_rules,
)

REPRO_PACKAGE = Path(repro.__file__).resolve().parent


@pytest.fixture(scope="module")
def repo_project():
    return scan_paths([REPRO_PACKAGE])


def test_repo_is_clean_against_committed_baseline(repo_project):
    repo_project.options["schema_lock_path"] = str(default_lock_path())
    report = run_rules(
        repo_project, select_rules(), load_baseline(default_baseline_path())
    )
    assert report.clean, "\n".join(
        f"{f.path}:{f.line}: {f.message} [{f.rule}]" for f in report.findings
    )
    assert report.stale_baseline == [], (
        "baseline entries no longer fire; prune with --update-baseline: "
        f"{report.stale_baseline}"
    )


def test_every_suppression_in_the_repo_carries_a_reason(repo_project):
    missing = [
        (info.rel_path, supp.line)
        for info in repo_project.modules
        for supp in info.suppressions
        if not supp.reason
    ]
    assert missing == []


# ------------------------------------------------------------- lock tamper


def _contract_findings(repo_project, lock_document, tmp_path):
    doctored = tmp_path / "doctored.lock.json"
    doctored.write_text(json.dumps(lock_document), encoding="utf-8")
    repo_project.options["schema_lock_path"] = str(doctored)
    try:
        report = run_rules(repo_project, select_rules(["snapshot-contract"]))
    finally:
        repo_project.options["schema_lock_path"] = str(default_lock_path())
    return report.findings


def _committed_lock():
    return json.loads(default_lock_path().read_text(encoding="utf-8"))


def test_committed_lock_matches_the_live_registry(repo_project, tmp_path):
    assert _contract_findings(repo_project, _committed_lock(), tmp_path) == []


def test_detector_removed_from_registry_is_caught(repo_project, tmp_path):
    # A detector present in the lock but gone from the live registry is what
    # an accidental unregistration looks like; fake one by adding a phantom
    # entry to the lock.
    lock = _committed_lock()
    lock["detectors"]["PhantomDetector"] = {
        "config_keys": ["x"],
        "state_keys": ["y"],
    }
    findings = _contract_findings(repo_project, lock, tmp_path)
    assert any(
        "PhantomDetector" in f.message and "no longer reachable" in f.message
        for f in findings
    )


def test_unlocked_detector_is_caught(repo_project, tmp_path):
    lock = _committed_lock()
    name, _ = sorted(lock["detectors"].items())[0]
    del lock["detectors"][name]
    findings = _contract_findings(repo_project, lock, tmp_path)
    assert any(
        name in f.message and "not in the schema lock" in f.message
        for f in findings
    )


def test_changed_state_keys_without_version_bump_is_caught(repo_project, tmp_path):
    lock = _committed_lock()
    name = sorted(lock["detectors"])[0]
    lock["detectors"][name]["state_keys"] = sorted(
        lock["detectors"][name]["state_keys"] + ["bogus_key"]
    )
    findings = _contract_findings(repo_project, lock, tmp_path)
    messages = [f.message for f in findings if name in f.message]
    assert any(
        "changed its persisted state keys" in m and "bogus_key" in m
        for m in messages
    )
    # The finding anchors at the detector's class definition, not a generic
    # location, so the operator lands on the code that drifted.
    anchored = [f for f in findings if name in f.message]
    assert all(f.path.endswith(".py") and f.line > 1 for f in anchored)


def test_schema_version_bump_requires_update_lock(repo_project, tmp_path):
    lock = _committed_lock()
    lock["snapshot_schema_version"] = lock["snapshot_schema_version"] + 1
    findings = _contract_findings(repo_project, lock, tmp_path)
    assert len(findings) == 1
    assert "--update-lock" in findings[0].message
