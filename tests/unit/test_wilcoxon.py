"""Unit tests for the one-tailed Wilcoxon signed-rank test."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.exceptions import ConfigurationError
from repro.stats.wilcoxon import wilcoxon_signed_rank


def test_clearly_better_sample_is_significant():
    a = [0.9, 0.95, 0.92, 0.88, 0.97, 0.91, 0.94, 0.9, 0.93, 0.96]
    b = [0.5, 0.55, 0.52, 0.48, 0.57, 0.51, 0.54, 0.5, 0.53, 0.56]
    result = wilcoxon_signed_rank(a, b)
    assert result.significant
    assert result.p_value < 0.01


def test_identical_samples_not_significant():
    a = [0.5] * 10
    result = wilcoxon_signed_rank(a, a)
    assert not result.significant
    assert result.p_value == 1.0
    assert result.n_effective == 0


def test_worse_sample_not_significant():
    a = [0.3, 0.4, 0.35, 0.32, 0.38, 0.31, 0.36, 0.37]
    b = [0.8, 0.85, 0.8, 0.82, 0.88, 0.81, 0.86, 0.87]
    result = wilcoxon_signed_rank(a, b)
    assert not result.significant
    assert result.p_value > 0.5


def test_exact_p_value_matches_scipy_small_sample():
    a = [0.9, 0.8, 0.85, 0.7, 0.95, 0.88, 0.79, 0.91]
    b = [0.6, 0.82, 0.7, 0.72, 0.65, 0.8, 0.81, 0.6]
    ours = wilcoxon_signed_rank(a, b)
    expected = scipy_stats.wilcoxon(a, b, alternative="greater", mode="exact")
    assert ours.p_value == pytest.approx(expected.pvalue, abs=0.02)


def test_normal_approximation_matches_scipy_large_sample(rng):
    a = (rng.random(40) + 0.15).tolist()
    b = rng.random(40).tolist()
    ours = wilcoxon_signed_rank(a, b)
    expected = scipy_stats.wilcoxon(a, b, alternative="greater", mode="approx")
    assert ours.p_value == pytest.approx(expected.pvalue, abs=0.03)
    assert ours.significant == (expected.pvalue < 0.05)


def test_handles_ties_in_differences():
    a = [0.8, 0.8, 0.9, 0.9, 0.7, 0.7, 0.85, 0.95]
    b = [0.6, 0.6, 0.7, 0.7, 0.5, 0.5, 0.65, 0.75]
    result = wilcoxon_signed_rank(a, b)
    assert result.significant


def test_zero_differences_are_dropped():
    a = [0.5, 0.6, 0.7, 0.8, 0.9, 0.5]
    b = [0.5, 0.5, 0.6, 0.7, 0.8, 0.5]
    result = wilcoxon_signed_rank(a, b)
    assert result.n_effective == 4


def test_invalid_inputs_raise():
    with pytest.raises(ConfigurationError):
        wilcoxon_signed_rank([1.0, 2.0], [1.0])
    with pytest.raises(ConfigurationError):
        wilcoxon_signed_rank([1.0, 2.0], [1.0, 2.0])
    with pytest.raises(ConfigurationError):
        wilcoxon_signed_rank([1.0] * 5, [0.5] * 5, alpha=1.5)
