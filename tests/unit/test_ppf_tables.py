"""Unit tests for the cut-table cache (:mod:`repro.core.ppf_tables`)."""

import pytest

from repro.core.optimal_cut import optimal_split
from repro.core.ppf_tables import CutTable, clear_cut_table_cache, get_cut_table
from repro.exceptions import ConfigurationError

CONFIDENCE = 0.99 ** 0.25


def test_spec_matches_direct_computation():
    table = CutTable(rho=0.5, confidence=CONFIDENCE)
    for length in (40, 100, 333, 1_000):
        expected = optimal_split(length, 0.5, CONFIDENCE)
        actual = table.spec(length)
        assert actual.nu_split == expected.nu_split
        assert actual.t_critical == pytest.approx(expected.t_critical)
        assert actual.f_critical == pytest.approx(expected.f_critical)


def test_sequential_lengths_consistent_with_random_access():
    sequential = CutTable(rho=0.5, confidence=CONFIDENCE)
    for length in range(30, 300):
        sequential.spec(length)
    random_access = CutTable(rho=0.5, confidence=CONFIDENCE)
    for length in (299, 157, 30, 220):
        assert random_access.spec(length).nu_split == sequential.spec(length).nu_split


def test_caching_counts():
    table = CutTable(rho=0.5, confidence=CONFIDENCE)
    assert table.n_cached == 0
    table.spec(100)
    table.spec(100)
    assert table.n_cached == 1
    table.spec(101)
    assert table.n_cached == 2


def test_precompute_fills_every_length():
    table = CutTable(rho=1.0, confidence=CONFIDENCE, min_length=30)
    table.precompute(120)
    assert table.n_cached == 120 - 30 + 1


def test_below_minimum_raises():
    table = CutTable(rho=0.5, confidence=CONFIDENCE, min_length=30)
    with pytest.raises(ConfigurationError):
        table.spec(10)
    with pytest.raises(ConfigurationError):
        table.precompute(10)
    with pytest.raises(ConfigurationError):
        CutTable(rho=0.5, confidence=CONFIDENCE, min_length=2)


def test_process_wide_cache_reuses_tables():
    clear_cut_table_cache()
    first = get_cut_table(0.5, CONFIDENCE)
    second = get_cut_table(0.5, CONFIDENCE)
    other = get_cut_table(1.0, CONFIDENCE)
    assert first is second
    assert first is not other
    clear_cut_table_cache()
    third = get_cut_table(0.5, CONFIDENCE)
    assert third is not first


def test_nu_split_monotone_trend():
    # As the window grows the optimal historical share should not shrink by
    # more than a couple of elements (it is essentially non-decreasing).
    table = CutTable(rho=0.5, confidence=CONFIDENCE)
    previous = None
    for length in range(200, 400):
        current = table.spec(length).nu_split
        if previous is not None:
            assert current >= previous - 2
        previous = current
