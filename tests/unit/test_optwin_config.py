"""Unit tests for :class:`repro.core.config.OptwinConfig`."""

import pytest

from repro.core.config import OptwinConfig
from repro.exceptions import ConfigurationError


def test_defaults_match_paper():
    config = OptwinConfig()
    assert config.delta == 0.99
    assert config.w_min == 30
    assert config.w_max == 25_000
    assert config.eta == pytest.approx(1e-5)
    assert config.one_sided
    assert config.require_magnitude


def test_delta_prime_is_fourth_root():
    config = OptwinConfig(delta=0.99)
    assert config.delta_prime == pytest.approx(0.99 ** 0.25)


def test_warning_delta_prime():
    config = OptwinConfig(warning_delta=0.95)
    assert config.warning_enabled
    assert config.warning_delta_prime == pytest.approx(0.95 ** 0.25)


def test_warning_disabled():
    config = OptwinConfig(warning_delta=0.0)
    assert not config.warning_enabled
    assert config.warning_delta_prime == 0.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"delta": 0.0},
        {"delta": 1.0},
        {"rho": 0.0},
        {"rho": -1.0},
        {"w_min": 2},
        {"w_max": 10, "w_min": 30},
        {"eta": -1e-3},
        {"warning_delta": 1.0},
        {"warning_delta": 0.999, "delta": 0.99},
    ],
)
def test_invalid_configurations_raise(kwargs):
    with pytest.raises(ConfigurationError):
        OptwinConfig(**kwargs)


def test_config_is_hashable_and_frozen():
    config = OptwinConfig()
    assert hash(config) == hash(OptwinConfig())
    with pytest.raises(Exception):
        config.delta = 0.5  # type: ignore[misc]
