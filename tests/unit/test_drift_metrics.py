"""Unit tests for drift-detection scoring."""

import random
from typing import List, Optional, Tuple

import pytest

from repro.evaluation.drift_metrics import (
    DriftEvaluation,
    DriftMatch,
    evaluate_detections,
    micro_average,
)
from repro.exceptions import ConfigurationError


def test_perfect_detection():
    evaluation = evaluate_detections(
        drift_positions=[100, 200], detections=[105, 210], stream_length=300
    )
    assert evaluation.true_positives == 2
    assert evaluation.false_positives == 0
    assert evaluation.false_negatives == 0
    assert evaluation.precision == 1.0
    assert evaluation.recall == 1.0
    assert evaluation.f1_score == 1.0
    assert evaluation.delays == [5, 10]
    assert evaluation.mean_delay == 7.5


def test_missed_drift_is_false_negative():
    evaluation = evaluate_detections(
        drift_positions=[100, 200], detections=[105], stream_length=300
    )
    assert evaluation.true_positives == 1
    assert evaluation.false_negatives == 1
    assert evaluation.recall == 0.5


def test_detection_before_drift_is_false_positive():
    evaluation = evaluate_detections(
        drift_positions=[100], detections=[50, 110], stream_length=200
    )
    assert evaluation.true_positives == 1
    assert evaluation.false_positives == 1
    assert evaluation.precision == 0.5


def test_multiple_detections_in_window_count_once():
    evaluation = evaluate_detections(
        drift_positions=[100], detections=[105, 120, 150], stream_length=300
    )
    assert evaluation.true_positives == 1
    assert evaluation.false_positives == 2
    assert evaluation.delays == [5]


def test_acceptance_window_ends_at_next_drift():
    # The detection at 210 belongs to the second drift, not the first.
    evaluation = evaluate_detections(
        drift_positions=[100, 200], detections=[210], stream_length=300
    )
    assert evaluation.true_positives == 1
    assert evaluation.false_negatives == 1
    assert evaluation.matches[0].detected is False
    assert evaluation.matches[1].delay == 10


def test_max_delay_caps_window():
    evaluation = evaluate_detections(
        drift_positions=[100], detections=[180], stream_length=400, max_delay=50
    )
    assert evaluation.true_positives == 0
    assert evaluation.false_positives == 1
    assert evaluation.false_negatives == 1


def test_no_drifts_no_detections_is_perfect():
    evaluation = evaluate_detections(
        drift_positions=[], detections=[], stream_length=100
    )
    assert evaluation.precision == 1.0
    assert evaluation.recall == 1.0
    assert evaluation.f1_score == 1.0


def test_no_drifts_with_detections_gives_zero_precision():
    evaluation = evaluate_detections(
        drift_positions=[], detections=[10, 20], stream_length=100
    )
    assert evaluation.precision == 0.0
    assert evaluation.recall == 1.0


def test_all_missed_gives_zero_f1():
    evaluation = evaluate_detections(
        drift_positions=[50], detections=[], stream_length=100
    )
    assert evaluation.f1_score == 0.0
    assert evaluation.mean_delay == 0.0


def test_out_of_range_drift_raises():
    with pytest.raises(ConfigurationError):
        evaluate_detections(drift_positions=[500], detections=[], stream_length=100)


def test_micro_average_merges_counts():
    first = evaluate_detections([100], [105], stream_length=200)
    second = evaluate_detections([100], [90], stream_length=400)
    merged = micro_average([first, second])
    assert merged.true_positives == 1
    assert merged.false_positives == 1
    assert merged.false_negatives == 1
    assert merged.precision == pytest.approx(0.5)
    assert merged.recall == pytest.approx(0.5)


def test_as_dict_contains_all_fields():
    evaluation = evaluate_detections([100], [110], stream_length=200)
    summary = evaluation.as_dict()
    assert set(summary) == {"tp", "fp", "fn", "precision", "recall", "f1", "mean_delay"}


def test_empty_evaluation_defaults():
    evaluation = DriftEvaluation()
    assert evaluation.precision == 1.0
    assert evaluation.recall == 1.0
    assert evaluation.mean_delay == 0.0


# ------------------------------------------------- two-pointer equivalence


def _reference_match(
    drifts: List[int],
    flagged: List[int],
    stream_length: int,
    max_delay: Optional[int],
) -> List[DriftMatch]:
    """The pre-optimization matching loop, kept verbatim as the oracle.

    Rescans the full detection list for every acceptance window with a
    ``used_detections`` set — O(drifts x detections) — which is what the
    single-pass two-pointer in ``evaluate_detections`` replaced.
    """
    windows: List[Tuple[int, int]] = []
    for index, position in enumerate(drifts):
        end = drifts[index + 1] if index + 1 < len(drifts) else stream_length
        if max_delay is not None:
            end = min(end, position + max_delay)
        windows.append((position, end))

    matches: List[DriftMatch] = []
    used_detections = set()
    for position, end in windows:
        matched: Optional[int] = None
        for detection in flagged:
            if detection in used_detections:
                continue
            if position <= detection < end:
                matched = detection
                used_detections.add(detection)
                break
            if detection >= end:
                break
        if matched is None:
            matches.append(DriftMatch(position, None, None))
        else:
            matches.append(DriftMatch(position, matched, matched - position))
    return matches


@pytest.mark.parametrize("seed", range(25))
def test_two_pointer_matches_reference_randomized(seed):
    """Randomized cross-check: new matcher == old quadratic matcher.

    Random drift layouts and detection lists (duplicates, bursts before /
    inside / after windows, empty lists, random ``max_delay`` caps) must
    produce identical per-drift matches and identical TP/FP/FN/delay counts.
    """
    rng = random.Random(seed)
    for _ in range(40):
        stream_length = rng.randrange(1, 400)
        n_drifts = rng.randrange(0, 8)
        drifts = sorted(rng.randrange(0, stream_length + 1) for _ in range(n_drifts))
        n_detections = rng.randrange(0, 15)
        detections = [
            rng.randrange(0, stream_length + 1) for _ in range(n_detections)
        ]
        if detections and rng.random() < 0.5:  # force duplicates sometimes
            detections.append(rng.choice(detections))
        max_delay = rng.choice([None, rng.randrange(1, 80)])

        evaluation = evaluate_detections(
            drifts, detections, stream_length, max_delay=max_delay
        )
        expected = _reference_match(
            sorted(drifts), sorted(detections), stream_length, max_delay
        )
        assert evaluation.matches == expected
        expected_tp = sum(1 for match in expected if match.detected)
        assert evaluation.true_positives == expected_tp
        assert evaluation.false_negatives == len(expected) - expected_tp
        assert evaluation.false_positives == len(detections) - expected_tp
        assert evaluation.delays == [
            match.delay for match in expected if match.delay is not None
        ]
