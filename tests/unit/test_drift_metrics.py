"""Unit tests for drift-detection scoring."""

import pytest

from repro.evaluation.drift_metrics import (
    DriftEvaluation,
    evaluate_detections,
    micro_average,
)
from repro.exceptions import ConfigurationError


def test_perfect_detection():
    evaluation = evaluate_detections(
        drift_positions=[100, 200], detections=[105, 210], stream_length=300
    )
    assert evaluation.true_positives == 2
    assert evaluation.false_positives == 0
    assert evaluation.false_negatives == 0
    assert evaluation.precision == 1.0
    assert evaluation.recall == 1.0
    assert evaluation.f1_score == 1.0
    assert evaluation.delays == [5, 10]
    assert evaluation.mean_delay == 7.5


def test_missed_drift_is_false_negative():
    evaluation = evaluate_detections(
        drift_positions=[100, 200], detections=[105], stream_length=300
    )
    assert evaluation.true_positives == 1
    assert evaluation.false_negatives == 1
    assert evaluation.recall == 0.5


def test_detection_before_drift_is_false_positive():
    evaluation = evaluate_detections(
        drift_positions=[100], detections=[50, 110], stream_length=200
    )
    assert evaluation.true_positives == 1
    assert evaluation.false_positives == 1
    assert evaluation.precision == 0.5


def test_multiple_detections_in_window_count_once():
    evaluation = evaluate_detections(
        drift_positions=[100], detections=[105, 120, 150], stream_length=300
    )
    assert evaluation.true_positives == 1
    assert evaluation.false_positives == 2
    assert evaluation.delays == [5]


def test_acceptance_window_ends_at_next_drift():
    # The detection at 210 belongs to the second drift, not the first.
    evaluation = evaluate_detections(
        drift_positions=[100, 200], detections=[210], stream_length=300
    )
    assert evaluation.true_positives == 1
    assert evaluation.false_negatives == 1
    assert evaluation.matches[0].detected is False
    assert evaluation.matches[1].delay == 10


def test_max_delay_caps_window():
    evaluation = evaluate_detections(
        drift_positions=[100], detections=[180], stream_length=400, max_delay=50
    )
    assert evaluation.true_positives == 0
    assert evaluation.false_positives == 1
    assert evaluation.false_negatives == 1


def test_no_drifts_no_detections_is_perfect():
    evaluation = evaluate_detections(
        drift_positions=[], detections=[], stream_length=100
    )
    assert evaluation.precision == 1.0
    assert evaluation.recall == 1.0
    assert evaluation.f1_score == 1.0


def test_no_drifts_with_detections_gives_zero_precision():
    evaluation = evaluate_detections(
        drift_positions=[], detections=[10, 20], stream_length=100
    )
    assert evaluation.precision == 0.0
    assert evaluation.recall == 1.0


def test_all_missed_gives_zero_f1():
    evaluation = evaluate_detections(
        drift_positions=[50], detections=[], stream_length=100
    )
    assert evaluation.f1_score == 0.0
    assert evaluation.mean_delay == 0.0


def test_out_of_range_drift_raises():
    with pytest.raises(ConfigurationError):
        evaluate_detections(drift_positions=[500], detections=[], stream_length=100)


def test_micro_average_merges_counts():
    first = evaluate_detections([100], [105], stream_length=200)
    second = evaluate_detections([100], [90], stream_length=400)
    merged = micro_average([first, second])
    assert merged.true_positives == 1
    assert merged.false_positives == 1
    assert merged.false_negatives == 1
    assert merged.precision == pytest.approx(0.5)
    assert merged.recall == pytest.approx(0.5)


def test_as_dict_contains_all_fields():
    evaluation = evaluate_detections([100], [110], stream_length=200)
    summary = evaluation.as_dict()
    assert set(summary) == {"tp", "fp", "fn", "precision", "recall", "f1", "mean_delay"}


def test_empty_evaluation_defaults():
    evaluation = DriftEvaluation()
    assert evaluation.precision == 1.0
    assert evaluation.recall == 1.0
    assert evaluation.mean_delay == 0.0
