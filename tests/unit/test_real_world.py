"""Unit tests for the Electricity/Covertype surrogate streams."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, StreamExhaustedError
from repro.streams.real_world import CovertypeSurrogate, ElectricitySurrogate


class TestElectricitySurrogate:
    def test_schema_and_classes(self):
        stream = ElectricitySurrogate(n_instances=2_000, seed=1)
        assert stream.n_classes == 2
        assert stream.n_features == 6
        assert stream.n_instances == 2_000

    def test_features_bounded(self):
        stream = ElectricitySurrogate(n_instances=1_000, seed=1)
        for instance in stream.take(1_000):
            assert np.all(instance.x >= 0.0) and np.all(instance.x <= 1.0)
            assert instance.y in (0, 1)

    def test_both_classes_present(self):
        stream = ElectricitySurrogate(n_instances=3_000, seed=2)
        labels = [instance.y for instance in stream.take(3_000)]
        assert 0.2 < np.mean(labels) < 0.8

    def test_hidden_drifts_exist(self):
        stream = ElectricitySurrogate(n_instances=10_000, n_hidden_drifts=4, seed=3)
        positions = stream.metadata["hidden_drift_positions"]
        assert len(positions) == 4
        assert all(0 < p < 10_000 for p in positions)

    def test_restart_reproduces(self):
        stream = ElectricitySurrogate(n_instances=1_000, seed=4)
        first = [(tuple(i.x), i.y) for i in stream.take(500)]
        stream.restart()
        second = [(tuple(i.x), i.y) for i in stream.take(500)]
        assert first == second

    def test_concept_changes_affect_relationship(self):
        # A model fit on the first segment should degrade after a hidden drift,
        # which we approximate by checking that the label/feature correlation
        # flips sign across a drift point.
        stream = ElectricitySurrogate(n_instances=20_000, n_hidden_drifts=1, seed=5)
        drift = stream.metadata["hidden_drift_positions"][0]
        instances = stream.take(20_000)
        before = instances[max(drift - 3_000, 0):drift]
        after = instances[drift:drift + 3_000]

        def correlation(block):
            x = np.array([i.x[1] for i in block])
            y = np.array([float(i.y) for i in block])
            return float(np.corrcoef(x, y)[0, 1])

        assert correlation(before) * correlation(after) < 0.05

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            ElectricitySurrogate(n_instances=10)
        with pytest.raises(ConfigurationError):
            ElectricitySurrogate(n_hidden_drifts=-1)


class TestCovertypeSurrogate:
    def test_schema_and_classes(self):
        stream = CovertypeSurrogate(n_instances=2_000, seed=1)
        assert stream.n_classes == 7
        assert stream.n_features == 10

    def test_class_imbalance(self):
        stream = CovertypeSurrogate(n_instances=5_000, seed=2)
        labels = [instance.y for instance in stream.take(5_000)]
        counts = np.bincount(labels, minlength=7)
        assert counts[0] > counts[-1]
        assert set(labels).issubset(set(range(7)))

    def test_hidden_drifts_exist(self):
        stream = CovertypeSurrogate(n_instances=8_000, n_hidden_drifts=3, seed=3)
        assert len(stream.metadata["hidden_drift_positions"]) == 3

    def test_restart_reproduces(self):
        stream = CovertypeSurrogate(n_instances=1_000, seed=4)
        first = [(tuple(i.x), i.y) for i in stream.take(400)]
        stream.restart()
        second = [(tuple(i.x), i.y) for i in stream.take(400)]
        assert first == second

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            CovertypeSurrogate(n_instances=10)


class TestDeclaredLengthBound:
    """Both surrogates must honour their declared n_instances bound instead
    of silently emitting past the seeded drift layout."""

    def test_electricity_raises_past_declared_end(self):
        stream = ElectricitySurrogate(n_instances=100, seed=1)
        stream.take(100)
        with pytest.raises(StreamExhaustedError):
            stream.next_instance()

    def test_covertype_raises_past_declared_end(self):
        stream = CovertypeSurrogate(n_instances=100, seed=1)
        stream.take(100)
        with pytest.raises(StreamExhaustedError):
            stream.next_instance()

    def test_restart_allows_rereading(self):
        stream = ElectricitySurrogate(n_instances=100, seed=2)
        first = [(tuple(i.x), i.y) for i in stream.take(100)]
        with pytest.raises(StreamExhaustedError):
            stream.next_instance()
        stream.restart()
        second = [(tuple(i.x), i.y) for i in stream.take(100)]
        assert first == second

    def test_materialization_clamps_to_declared_bound(self):
        from repro.streams.base import MaterializedStream

        stream = CovertypeSurrogate(n_instances=150, seed=3)
        replay = MaterializedStream.from_stream(stream, 10_000)
        assert replay.n_instances == 150
        replay.take(150)
        with pytest.raises(StreamExhaustedError):
            replay.next_instance()
