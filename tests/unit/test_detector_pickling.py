"""Registry-driven pickle round-trip suite.

Detectors cross process boundaries in the sharded serving layer (registry
messages to shard workers, ``ProcessPoolExecutor`` fan-outs), so
``DriftDetector.__reduce__`` routes pickling through the bit-exact
``state_dict`` snapshot contract.  For every exported detector class the
tests pickle mid-stream — including inside warning zones — and assert the
unpickled instance continues *bit-identically* in both scalar and batch
mode.
"""

from __future__ import annotations

import pickle

import pytest

from repro.detectors import Optwin, exported_detector_classes
from repro.streams.error_streams import BinarySegment, binary_error_stream

DETECTOR_CLASSES = exported_detector_classes()

_SEGMENTS = [
    BinarySegment(400, 0.05),
    BinarySegment(300, 0.55),
    BinarySegment(300, 0.15),
    BinarySegment(400, 0.65),
]

#: Pickle offsets: early (window filling), mid-stream, just past the first
#: drift boundary.
_OFFSETS = (37, 450, 750)


def _stream_values():
    return binary_error_stream(_SEGMENTS, seed=11).values


@pytest.mark.parametrize("cls", DETECTOR_CLASSES, ids=lambda c: c.__name__)
@pytest.mark.parametrize("offset", _OFFSETS)
def test_pickle_roundtrip_continues_bit_exactly(cls, offset):
    values = _stream_values()
    uninterrupted = cls()
    full = uninterrupted.update_batch(values)

    original = cls()
    original.update_batch(values[:offset])
    clone = pickle.loads(pickle.dumps(original))

    assert type(clone) is cls
    assert clone.n_seen == original.n_seen
    assert clone.n_drifts == original.n_drifts
    assert clone.n_warnings == original.n_warnings

    tail = clone.update_batch(values[offset:])
    stitched_drifts = original.update_batch(values[offset:]).drift_indices
    assert tail.drift_indices == stitched_drifts
    # Stitched head + tail equals the uninterrupted run.
    head_drifts = [index for index in full.drift_indices if index < offset]
    assert head_drifts + [offset + index for index in tail.drift_indices] == (
        full.drift_indices
    )


def test_pickle_preserves_configuration():
    detector = Optwin(w_max=2000, rho=0.6)
    clone = pickle.loads(pickle.dumps(detector))
    assert clone._config_dict() == detector._config_dict()
