"""Unit tests for the ADWIN baseline."""

import numpy as np
import pytest

from repro.detectors.adwin import Adwin
from repro.exceptions import ConfigurationError


def test_invalid_parameters_raise():
    with pytest.raises(ConfigurationError):
        Adwin(delta=0.0)
    with pytest.raises(ConfigurationError):
        Adwin(delta=1.5)
    with pytest.raises(ConfigurationError):
        Adwin(clock=0)
    with pytest.raises(ConfigurationError):
        Adwin(max_buckets=0)


def test_width_and_estimation_track_stream():
    detector = Adwin()
    for _ in range(100):
        detector.update(1.0)
    assert detector.width == 100
    assert detector.estimation == pytest.approx(1.0)
    assert detector.variance_estimate == pytest.approx(0.0, abs=1e-9)


def test_estimation_matches_mean_of_mixed_stream(rng):
    values = rng.random(500)
    detector = Adwin()
    detector.update_many(values)
    assert detector.estimation == pytest.approx(np.mean(values), abs=0.05)


def test_detects_sudden_binary_drift(sudden_binary_stream):
    detector = Adwin()
    detections = detector.update_many(sudden_binary_stream.values)
    post = [d for d in detections if d >= 2_000]
    assert post
    assert post[0] - 2_000 < 500


def test_detects_mean_shift_in_real_values(sudden_gaussian_stream):
    detector = Adwin()
    detections = detector.update_many(sudden_gaussian_stream.values)
    assert any(d >= 2_000 for d in detections)


def test_window_shrinks_after_drift(sudden_binary_stream):
    detector = Adwin()
    width_before_drift = None
    for index, value in enumerate(sudden_binary_stream.values):
        result = detector.update(value)
        if result.drift_detected and index >= 2_000:
            assert detector.width < index + 1
            width_before_drift = index + 1
            break
    assert width_before_drift is not None


def test_no_drift_on_stationary_stream(rng):
    detector = Adwin(delta=0.002)
    values = (rng.random(5_000) < 0.3).astype(float)
    detections = detector.update_many(values)
    assert len(detections) <= 2


def test_memory_is_logarithmic_in_window():
    detector = Adwin(max_buckets=5)
    for _ in range(10_000):
        detector.update(0.5)
    n_buckets = sum(len(row.buckets) for row in detector._rows)
    # 5 buckets per level, ~log2(10000 / 5) levels.
    assert n_buckets < 100


def test_reset():
    detector = Adwin()
    detector.update_many([1.0] * 50)
    detector.reset()
    assert detector.width == 0
    assert detector.estimation == 0.0
    assert detector.n_seen == 0


def test_smaller_delta_is_more_conservative(rng):
    values = np.concatenate(
        [
            (rng.random(2_000) < 0.3).astype(float),
            (rng.random(2_000) < 0.45).astype(float),
        ]
    )
    sensitive = Adwin(delta=0.5)
    conservative = Adwin(delta=1e-5)
    n_sensitive = len(sensitive.update_many(values))
    n_conservative = len(conservative.update_many(values))
    assert n_sensitive >= n_conservative
