"""Unit tests for the image stream, retraining policies, and OL pipeline."""

import numpy as np
import pytest

from repro.core.optwin import Optwin
from repro.detectors.no_detector import NoDriftDetector
from repro.exceptions import ConfigurationError
from repro.learners.mlp import MLPClassifier
from repro.pipelines.image_stream import SyntheticImageStream
from repro.pipelines.online_learning import DriftAwarePipeline
from repro.pipelines.retraining import FineTunePolicy, ResetPolicy


class TestSyntheticImageStream:
    def test_basic_shape(self):
        stream = SyntheticImageStream(
            n_classes=5, n_features=16, batch_size=8, n_batches=20, n_drifts=2, seed=1
        )
        assert len(stream) == 20
        batch = stream.batch(0)
        assert batch.x.shape == (8, 16)
        assert batch.y.shape == (8,)
        assert set(batch.y).issubset(set(range(5)))

    def test_drift_batches_evenly_spaced(self):
        stream = SyntheticImageStream(n_batches=100, n_drifts=4, seed=1)
        assert stream.drift_batches == (20, 40, 60, 80)
        assert len(stream.swaps) == 4

    def test_batches_are_deterministic(self):
        stream = SyntheticImageStream(n_batches=10, seed=3)
        first = stream.batch(4)
        second = stream.batch(4)
        np.testing.assert_array_equal(first.x, second.x)
        np.testing.assert_array_equal(first.y, second.y)

    def test_label_swap_changes_labels_after_drift(self):
        stream = SyntheticImageStream(
            n_classes=4, n_features=8, batch_size=64, n_batches=40, n_drifts=1, seed=5
        )
        drift_batch = stream.drift_batches[0]
        mapping_before = stream._label_map_at(drift_batch - 1)
        mapping_after = stream._label_map_at(drift_batch)
        assert not np.array_equal(mapping_before, mapping_after)
        swapped = stream.swaps[0]
        assert mapping_after[swapped[0]] == mapping_before[swapped[1]]

    def test_pretraining_set_uses_original_labels(self):
        stream = SyntheticImageStream(n_classes=4, n_features=8, seed=5)
        x, y = stream.pretraining_set(n_examples=200)
        assert x.shape == (200, 8)
        assert set(y).issubset(set(range(4)))

    def test_iteration_yields_all_batches(self):
        stream = SyntheticImageStream(n_batches=15, seed=1)
        assert sum(1 for _ in stream) == 15

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            SyntheticImageStream(n_classes=1)
        with pytest.raises(ConfigurationError):
            SyntheticImageStream(n_batches=10, n_drifts=10)
        with pytest.raises(ConfigurationError):
            SyntheticImageStream(n_batches=5).batch(7)


class TestRetrainingPolicies:
    def test_fine_tune_policy_counts_down(self):
        policy = FineTunePolicy(n_batches=3)
        assert not policy.on_batch(False, False).train
        assert policy.on_batch(True, False).train
        assert policy.remaining == 2
        assert policy.on_batch(False, False).train
        assert policy.on_batch(False, False).train
        assert not policy.on_batch(False, False).train

    def test_fine_tune_policy_restarts_on_new_drift(self):
        policy = FineTunePolicy(n_batches=2)
        policy.on_batch(True, False)
        policy.on_batch(True, False)
        assert policy.remaining == 1
        policy.reset()
        assert policy.remaining == 0

    def test_reset_policy_resets_model_once(self):
        policy = ResetPolicy(n_batches=2)
        decision = policy.on_batch(True, False)
        assert decision.train and decision.reset_model
        decision = policy.on_batch(False, False)
        assert decision.train and not decision.reset_model
        assert not policy.on_batch(False, False).train

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            FineTunePolicy(n_batches=0)
        with pytest.raises(ConfigurationError):
            ResetPolicy(n_batches=0)


class TestDriftAwarePipeline:
    def _small_setup(self, detector, n_batches=80, n_drifts=1):
        stream = SyntheticImageStream(
            n_classes=4,
            n_features=16,
            batch_size=16,
            n_batches=n_batches,
            n_drifts=n_drifts,
            seed=2,
        )
        model = MLPClassifier(n_features=16, n_classes=4, hidden_sizes=(32,), seed=2)
        x, y = stream.pretraining_set(n_examples=800)
        model.pretrain(x, y, n_epochs=10)
        pipeline = DriftAwarePipeline(model, detector, fine_tune_batches=10)
        return stream, pipeline

    def test_report_structure(self):
        stream, pipeline = self._small_setup(NoDriftDetector())
        report = pipeline.run(stream)
        assert len(report.losses) == len(stream)
        assert len(report.accuracies) == len(stream)
        assert report.n_retraining_batches == 0
        assert report.total_seconds > 0.0

    def test_drift_triggers_fine_tuning(self):
        stream, pipeline = self._small_setup(Optwin(rho=0.5, w_min=20, w_max=2_000))
        report = pipeline.run(stream)
        assert report.n_detections >= 1
        assert report.n_retraining_batches >= 10
        assert report.retraining_seconds > 0.0

    def test_losses_jump_at_drift(self):
        stream, pipeline = self._small_setup(NoDriftDetector())
        report = pipeline.run(stream)
        drift_batch = stream.drift_batches[0]
        before = np.mean(report.losses[drift_batch - 10:drift_batch])
        after = np.mean(report.losses[drift_batch:drift_batch + 10])
        assert after > before
