"""Repository hygiene guards.

PR 3 accidentally committed 69 ``__pycache__/*.pyc`` files; this suite makes
sure that class of mistake fails CI immediately instead of riding along in a
later commit.
"""

from __future__ import annotations

import pathlib
import shutil
import subprocess

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: Path fragments that must never appear in the tracked file list.
_FORBIDDEN_FRAGMENTS = ("__pycache__", ".pytest_cache", ".egg-info")
#: File suffixes that must never be tracked.
_FORBIDDEN_SUFFIXES = (".pyc", ".pyo")


def _tracked_files():
    git = shutil.which("git")
    if git is None:
        pytest.skip("git executable not available")
    probe = subprocess.run(
        [git, "rev-parse", "--is-inside-work-tree"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if probe.returncode != 0 or probe.stdout.strip() != "true":
        pytest.skip("not running from a git checkout")
    listing = subprocess.run(
        [git, "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return listing.stdout.splitlines()


def test_no_bytecode_artifacts_tracked():
    offenders = [
        path
        for path in _tracked_files()
        if path.endswith(_FORBIDDEN_SUFFIXES)
        or any(fragment in path for fragment in _FORBIDDEN_FRAGMENTS)
    ]
    assert offenders == [], (
        "bytecode/cache artifacts are tracked in git; "
        f"run `git rm -r --cached` on: {offenders[:10]}"
    )


def test_gitignore_covers_bytecode():
    gitignore = REPO_ROOT / ".gitignore"
    assert gitignore.is_file(), ".gitignore is missing from the repository root"
    content = gitignore.read_text()
    for required in ("__pycache__/", "*.py[cod]", "*.egg-info/", ".pytest_cache/"):
        assert required in content, f".gitignore lost the `{required}` rule"
