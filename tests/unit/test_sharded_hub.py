"""Unit tests for :class:`repro.serving.sharded.ShardedHub`.

The suite runs real worker processes (2 shards, small streams) — routing
determinism, bit-identical detections versus a single-process
:class:`MonitorHub`, manifest/resume semantics, and failure paths.  The
SIGKILL/respawn integration lives in
``tests/integration/test_sharded_serving.py``.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.detectors import Ddm
from repro.exceptions import ConfigurationError, ShardError, SnapshotError
from repro.serving import (
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA_VERSION,
    MonitorHub,
    ShardedHub,
    route_shard,
)
from repro.streams.error_streams import BinarySegment, binary_error_stream

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

VALUES = binary_error_stream(
    [BinarySegment(500, 0.1), BinarySegment(500, 0.65)], seed=7
).values

#: Multi-tenant fleet: mixed detectors, ids chosen so 2 shards both get keys.
MONITORS = [
    ("acme", "checkout", "DDM", None),
    ("acme", "search", "OPTWIN", {"w_max": 2000}),
    ("globex", "fraud", "ECDD", None),
    ("globex", "payments", "DDM", None),
    ("initech", "latency", "DDM", None),
]


def _interleaved_events(values, chunk=3):
    events = []
    for start in range(0, 600, chunk):
        for tenant, monitor_id, _, _ in MONITORS:
            events.append((tenant, monitor_id, values[start : start + chunk]))
    return events


@pytest.fixture
def sharded(tmp_path):
    hub = ShardedHub(2, checkpoint_dir=tmp_path)
    try:
        yield hub
    finally:
        hub.close()


@pytest.fixture
def sharded_pickle():
    hub = ShardedHub(2, transport="pickle")
    try:
        yield hub
    finally:
        hub.close()


def _register_fleet(hub):
    for tenant, monitor_id, detector, params in MONITORS:
        hub.register(tenant, monitor_id, detector, params)


# ----------------------------------------------------------------- routing


def test_route_shard_is_deterministic_and_covers_shards():
    first = [route_shard(f"tenant-{i}", f"monitor-{i}", 4) for i in range(200)]
    second = [route_shard(f"tenant-{i}", f"monitor-{i}", 4) for i in range(200)]
    assert first == second
    assert set(first) == {0, 1, 2, 3}
    assert all(0 <= shard < 4 for shard in first)
    # The key components are delimited: ("a", "b/c") != ("a/b", "c").
    assert isinstance(route_shard("a", "b/c", 2), int)


def test_route_shard_stable_across_processes():
    """The routing hash must not depend on interpreter hash randomization."""
    keys = [("acme", "checkout"), ("globex", "fraud"), ("t", "m")]
    local = [route_shard(tenant, monitor, 8) for tenant, monitor in keys]
    script = (
        "from repro.serving.sharded import route_shard;"
        f"print([route_shard(t, m, 8) for t, m in {keys!r}])"
    )
    import os

    for seed in ("0", "1", "random"):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        env["PYTHONHASHSEED"] = seed
        output = subprocess.check_output(
            [sys.executable, "-c", script], env=env, text=True
        )
        assert json.loads(output) == local


def test_route_shard_rejects_bad_shard_count():
    with pytest.raises(ConfigurationError):
        route_shard("t", "m", 0)


def test_monitors_distribute_across_both_shards(sharded):
    _register_fleet(sharded)
    shards = {sharded.shard_of(t, m) for t, m, _, _ in MONITORS}
    assert shards == {0, 1}
    assert len(sharded) == len(MONITORS)
    assert ("acme", "checkout") in sharded
    listed = {(t, m): s for t, m, s in sharded.monitor_keys()}
    assert listed[("acme", "checkout")] == sharded.shard_of("acme", "checkout")


# ------------------------------------------------- single-hub equivalence


def test_sharded_ingest_bit_identical_to_single_hub(sharded):
    _register_fleet(sharded)
    single = MonitorHub()
    _register_fleet(single)

    events = _interleaved_events(VALUES)
    sharded_results = sharded.ingest(events)
    single_results = single.ingest(events)

    by_key = lambda results: {
        (r.tenant, r.monitor_id): (
            r.offset,
            r.batch.drift_indices,
            r.batch.warning_indices,
        )
        for r in results
    }
    assert by_key(sharded_results) == by_key(single_results)

    # observe() routes through the same worker state.
    tail_sharded = sharded.observe("acme", "checkout", VALUES[600:])
    tail_single = single.observe("acme", "checkout", VALUES[600:])
    assert tail_sharded.offset == tail_single.offset == 600
    assert tail_sharded.drift_positions == tail_single.drift_positions


def test_sharded_alerts_match_single_hub(sharded):
    from repro.serving import QueueSink

    _register_fleet(sharded)
    queue = QueueSink()
    single = MonitorHub(sinks=[queue])
    _register_fleet(single)

    events = _interleaved_events(VALUES)
    sharded.ingest(events)
    single.ingest(events)

    sharded_alerts, n_dropped = sharded.drain_alerts()
    assert n_dropped == 0
    key = lambda alerts: sorted(
        (a.tenant, a.monitor_id, a.kind, a.position, a.n_drifts) for a in alerts
    )
    assert key(sharded_alerts) == key(queue.drain())


def test_sharded_stats_aggregate(sharded):
    _register_fleet(sharded)
    single = MonitorHub()
    _register_fleet(single)
    events = _interleaved_events(VALUES)
    sharded.ingest(events)
    single.ingest(events)

    expected = single.stats()
    got = sharded.stats()
    for field in ("n_monitors", "n_tenants", "n_events", "n_drifts", "n_warnings"):
        assert got[field] == expected[field], field
    assert got["n_shards"] == 2
    assert got["n_alive_shards"] == 2
    assert sharded.n_events == single.n_events

    per_tenant = sharded.stats("acme")
    assert per_tenant["n_monitors"] == 2
    assert per_tenant["n_tenants"] == 1

    per_monitor = sharded.stats("acme", "checkout")
    single_monitor = single.stats("acme", "checkout")
    assert per_monitor == single_monitor


# ------------------------------------------------------------ registration


def test_register_semantics_through_pipes(sharded):
    info = sharded.register("t", "m", "DDM")
    assert info == {"detector": "Ddm", "n_seen": 0}
    with pytest.raises(ConfigurationError):
        sharded.register("t", "m", "DDM")
    assert sharded.register("t", "m", "DDM", exist_ok=True)["detector"] == "Ddm"
    with pytest.raises(ConfigurationError):
        sharded.register("t", "m", "ADWIN", exist_ok=True)
    with pytest.raises(ConfigurationError):
        sharded.register("t", "m2", "NOT_A_DETECTOR")
    with pytest.raises(ConfigurationError):
        sharded.observe("t", "ghost", [1.0])
    with pytest.raises(ConfigurationError):
        sharded.ingest([("t", "ghost", 1.0)])
    # Failed registrations must not pollute the parent registry.
    assert ("t", "m2") not in sharded
    assert len(sharded) == 1


def test_register_ships_detector_instance_bit_exactly(sharded):
    """A pre-positioned detector instance crosses the pipe via the snapshot
    pickle and continues exactly where it stopped."""
    reference = Ddm()
    reference.update_batch(VALUES[:300])
    shipped = Ddm()
    shipped.update_batch(VALUES[:300])

    info = sharded.register("t", "warm", shipped)
    assert info == {"detector": "Ddm", "n_seen": 300}
    outcome = sharded.observe("t", "warm", VALUES[300:])
    expected = reference.update_batch(VALUES[300:])
    assert outcome.offset == 300
    assert outcome.batch.drift_indices == expected.drift_indices


# ----------------------------------------------------------- checkpointing


def test_checkpoint_writes_manifest_and_shard_files(sharded, tmp_path):
    _register_fleet(sharded)
    sharded.ingest(_interleaved_events(VALUES))
    manifest_path = sharded.checkpoint()

    assert manifest_path == tmp_path / MANIFEST_FILENAME
    manifest = json.loads(manifest_path.read_text())
    assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
    assert manifest["n_shards"] == 2
    assert len(manifest["shards"]) == 2
    assert manifest["n_events"] == 600 * len(MONITORS)
    for shard in manifest["shards"]:
        shard_checkpoint = tmp_path / shard["dir"] / "hub-checkpoint.json"
        assert shard_checkpoint.is_file()
        document = json.loads(shard_checkpoint.read_text())
        assert document["config_hash"] == shard["config_hash"]
    assert manifest["cluster_hash"]


def test_resume_is_bit_exact(tmp_path):
    with ShardedHub(2, checkpoint_dir=tmp_path) as hub:
        _register_fleet(hub)
        hub.ingest(_interleaved_events(VALUES))
        hub.checkpoint()
        expected = {
            (t, m): hub.observe(t, m, VALUES[600:]).drift_positions
            for t, m, _, _ in MONITORS
        }

    with ShardedHub(2, checkpoint_dir=tmp_path) as resumed:
        assert len(resumed) == len(MONITORS)
        assert resumed.n_events == 600 * len(MONITORS)
        for t, m, _, _ in MONITORS:
            assert resumed.stats(t, m)["n_seen"] == 600
            assert resumed.observe(t, m, VALUES[600:]).drift_positions == (
                expected[(t, m)]
            )


def test_shard_count_change_is_rejected(tmp_path):
    with ShardedHub(2, checkpoint_dir=tmp_path) as hub:
        _register_fleet(hub)
        hub.checkpoint()
    with pytest.raises(SnapshotError, match="2-shard"):
        ShardedHub(3, checkpoint_dir=tmp_path)
    # resume=False starts fresh regardless.
    with ShardedHub(3, checkpoint_dir=tmp_path, resume=False) as fresh:
        assert len(fresh) == 0


def test_manifest_written_at_construction_guards_auto_checkpoint_clusters(
    tmp_path,
):
    """A cluster that only ever auto-checkpoints still gets a manifest.

    Per-shard ``checkpoint_every`` checkpoints never write the manifest, and
    without one a *divisor* reshard (4 → 2) would pass the routing check
    (``digest % 4 in {0, 1}`` implies the same ``digest % 2``) and silently
    drop the other shards' monitors.  The constructor-written manifest makes
    the shard-count guard fire instead.
    """
    manifest_path = tmp_path / MANIFEST_FILENAME
    with ShardedHub(4, checkpoint_dir=tmp_path, checkpoint_every=50) as hub:
        # Manifest exists before any explicit checkpoint() call.
        assert manifest_path.is_file()
        assert json.loads(manifest_path.read_text())["n_shards"] == 4
        _register_fleet(hub)
        hub.ingest(_interleaved_events(VALUES))  # crosses checkpoint_every
        n_registered = len(hub)
    # Auto-checkpoints produced shard files; no explicit checkpoint() ran.
    assert any(
        (tmp_path / f"shard-{i:02d}" / "hub-checkpoint.json").is_file()
        for i in range(4)
    )
    with pytest.raises(SnapshotError, match="4-shard"):
        ShardedHub(2, checkpoint_dir=tmp_path)
    # The matching shard count still resumes every monitor.
    with ShardedHub(4, checkpoint_dir=tmp_path) as resumed:
        assert len(resumed) == n_registered


def test_misassembled_shard_directories_are_rejected(tmp_path):
    """Shard checkpoints that do not route to their directory's index mean
    the directory tree was put together from a different cluster layout."""
    import multiprocessing

    with ShardedHub(2, checkpoint_dir=tmp_path) as hub:
        _register_fleet(hub)
        hub.checkpoint()
    shard0 = tmp_path / "shard-00" / "hub-checkpoint.json"
    shard1 = tmp_path / "shard-01" / "hub-checkpoint.json"
    text0, text1 = shard0.read_text(), shard1.read_text()
    shard0.write_text(text1)
    shard1.write_text(text0)
    with pytest.raises(SnapshotError, match="routes to shard"):
        ShardedHub(2, checkpoint_dir=tmp_path)
    # The failed constructor cleaned up after itself: no orphaned workers.
    leaked = [
        child
        for child in multiprocessing.active_children()
        if child.name.startswith("repro-shard-")
    ]
    assert leaked == []


def test_checkpoint_requires_directory():
    with ShardedHub(2) as hub:
        hub.register("t", "m", "DDM")
        with pytest.raises(ConfigurationError):
            hub.checkpoint()


def test_checkpoint_every_requires_directory():
    with pytest.raises(ConfigurationError):
        ShardedHub(2, checkpoint_every=100)


def test_invalid_shard_count():
    with pytest.raises(ConfigurationError):
        ShardedHub(0)


def test_unpicklable_payload_does_not_desync_pipes(sharded_pickle):
    """A payload the pickler rejects is a caller error, not a dead shard.

    The fan-out must still drain the shards that already received their
    message — otherwise their pending replies would be handed to the next
    unrelated request and every later op would return garbage.  Pinned to
    the pickle transport: the shm path converts payloads parent-side, so
    generators never reach a pickler there (see
    test_shm_transport_accepts_generator_payloads).
    """
    sharded = sharded_pickle
    _register_fleet(sharded)
    ordered = sorted(
        MONITORS, key=lambda spec: sharded.shard_of(spec[0], spec[1])
    )
    first, last = ordered[0], ordered[-1]
    assert sharded.shard_of(first[0], first[1]) != sharded.shard_of(last[0], last[1])

    with pytest.raises(TypeError):
        sharded.ingest(
            [
                (first[0], first[1], [1.0, 0.0]),
                # Generators work on MonitorHub (np.fromiter) but cannot
                # cross a process boundary.
                (last[0], last[1], (v for v in [1.0, 0.0])),
            ]
        )

    # Both shards still answer correctly-typed replies afterwards.
    stats = sharded.stats()
    assert stats["n_alive_shards"] == 2
    outcome = sharded.observe(first[0], first[1], [1.0])
    assert outcome.tenant == first[0] and outcome.monitor_id == first[1]
    outcome = sharded.observe(last[0], last[1], [1.0])
    assert outcome.monitor_id == last[1]


def test_request_timeout_kills_hung_worker(tmp_path):
    """A wedged (SIGSTOPped) worker is alive but unresponsive; with a
    request timeout it is killed — becoming a normal dead shard the respawn
    machinery recovers from its checkpoint."""
    import os
    import signal as signal_module

    hub = ShardedHub(2, checkpoint_dir=tmp_path, request_timeout=0.5)
    try:
        _register_fleet(hub)
        hub.ingest(_interleaved_events(VALUES))
        hub.checkpoint()
        victim = hub.shard_of(*next(iter([(t, m) for t, m, _, _ in MONITORS])))
        os.kill(hub.worker_pid(victim), signal_module.SIGSTOP)

        with pytest.raises(ShardError, match="did not reply"):
            hub.stats(*next((t, m) for t, m, _, _ in MONITORS
                            if hub.shard_of(t, m) == victim))
        assert victim in hub.dead_shards()
        assert hub.respawn_dead_shards() == [victim]
        # Resumed from the checkpoint taken before the hang.
        for tenant, monitor_id, _, _ in MONITORS:
            if hub.shard_of(tenant, monitor_id) == victim:
                assert hub.stats(tenant, monitor_id)["n_seen"] == 600
    finally:
        hub.close()


def test_tenant_scoped_stats():
    """Tenant-narrowed stats must scope every field to the tenant — n_events
    used to leak the hub-wide lifetime count next to filtered drift counts."""
    hub = MonitorHub()
    hub.register("a", "x", "DDM")
    hub.register("b", "y", "DDM")
    hub.observe("a", "x", VALUES[:100])
    hub.observe("b", "y", VALUES)

    assert hub.stats()["n_events"] == 100 + len(VALUES)
    assert hub.stats("a")["n_events"] == 100
    assert hub.stats("b")["n_events"] == len(VALUES)

    with ShardedHub(2) as sharded:
        sharded.register("a", "x", "DDM")
        sharded.register("b", "y", "DDM")
        sharded.observe("a", "x", VALUES[:100])
        sharded.observe("b", "y", VALUES)
        assert sharded.stats("a")["n_events"] == 100
        assert sharded.stats("b")["n_events"] == len(VALUES)
        assert sharded.stats()["n_events"] == 100 + len(VALUES)


# ------------------------------------------------------------------ close


def test_close_terminates_wedged_worker(tmp_path):
    """close() must not hang on a worker that is alive but unresponsive:
    the stop-reply wait is bounded and falls back to terminate()."""
    import os
    import signal as signal_module
    import time

    hub = ShardedHub(2, checkpoint_dir=tmp_path)
    hub._STOP_REPLY_TIMEOUT = 0.5  # keep the test fast
    hub.register("t", "m", "DDM")
    os.kill(hub.worker_pid(0), signal_module.SIGSTOP)
    start = time.monotonic()
    hub.close()
    assert time.monotonic() - start < 15
    assert all(
        process is None or not process.is_alive() for process in hub._processes
    )


def test_closed_hub_refuses_calls(tmp_path):
    hub = ShardedHub(2, checkpoint_dir=tmp_path)
    hub.register("t", "m", "DDM")
    hub.close()
    hub.close()  # idempotent
    with pytest.raises(ShardError):
        hub.observe("t", "m", [1.0])
    with pytest.raises(ShardError):
        hub.stats()
    # A recovery loop running after close() must not spawn orphan workers.
    with pytest.raises(ShardError):
        hub.respawn_dead_shards()


# -------------------------------------------------------- shm transport


def test_shm_transport_bit_identical_to_pickle():
    """Same stream through both transports: detections must not differ by
    a single position (the transports change *how* floats travel, never
    what the workers compute)."""
    collected = {}
    for transport in ("shm", "pickle"):
        hub = ShardedHub(2, transport=transport)
        try:
            assert hub.transport == transport
            _register_fleet(hub)
            detections = {}
            for outcome in hub.ingest(_interleaved_events(VALUES)):
                detections.setdefault(
                    (outcome.tenant, outcome.monitor_id), []
                ).extend(outcome.drift_positions)
            collected[transport] = detections
        finally:
            hub.close()
    assert collected["shm"] == collected["pickle"]
    assert any(collected["shm"].values())  # the stream does drift


def test_shm_transport_accepts_generator_payloads():
    """The shm path converts payloads parent-side, so generators — which
    the pickle transport must reject — simply work."""
    with ShardedHub(2, transport="shm") as hub:
        hub.register("t", "gen", "DDM")
        outcome = hub.ingest([("t", "gen", (v for v in [1.0, 0.0, 1.0]))])[0]
        assert outcome.n_processed == 3
        assert hub.stats("t", "gen")["n_seen"] == 3


def test_shm_block_grows_and_shrinks_with_batches():
    """A batch larger than the staging segment forces a bigger replacement
    segment; correctness is unaffected in either direction."""
    with ShardedHub(1, transport="shm") as hub:
        hub.register("t", "m", "DDM")
        hub.ingest([("t", "m", [0.0] * 8)])
        first = hub._shm_blocks[0].size
        big = 2 * first // 8 + 16  # elements, > capacity
        hub.ingest([("t", "m", [0.0] * big)])
        assert hub._shm_blocks[0].size > first
        hub.ingest([("t", "m", [0.0] * 4)])  # shrink back to small batches
        assert hub.stats("t", "m")["n_seen"] == 8 + big + 4


def test_shm_segments_are_released_on_close():
    hub = ShardedHub(2, transport="shm")
    hub.register("t", "m", "DDM")
    hub.ingest([("t", "m", [1.0, 0.0])])
    names = [block.name for block in hub._shm_blocks.values()]
    assert names
    hub.close()
    from multiprocessing import shared_memory

    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_transport_knob_is_validated():
    with pytest.raises(ConfigurationError):
        ShardedHub(2, transport="carrier-pigeon")


# ----------------------------------------------------- degraded cluster


def _kill_shard(hub, index):
    import os
    import signal as signal_module
    import time

    os.kill(hub.worker_pid(index), signal_module.SIGKILL)
    deadline = time.time() + 10
    while index not in hub.dead_shards() and time.time() < deadline:
        time.sleep(0.05)
    assert index in hub.dead_shards()


def test_degraded_reads_with_dead_shard(tmp_path):
    """metrics / alerts_history / stats keep answering on a degraded
    cluster — dead shards are absent from the sums, not an exception."""
    hub = ShardedHub(
        2, checkpoint_dir=tmp_path / "ck", wal_dir=tmp_path / "wal"
    )
    try:
        _register_fleet(hub)
        hub.ingest(_interleaved_events(VALUES))
        full_stats = hub.stats()
        full_history = hub.alerts_history()
        assert full_history  # the stream drifts, so the WAL has records
        victim = hub.shard_of("acme", "checkout")
        survivor_keys = {
            (t, m) for t, m, _, _ in MONITORS if hub.shard_of(t, m) != victim
        }
        _kill_shard(hub, victim)

        stats = hub.stats()
        assert stats["n_alive_shards"] == 1
        assert stats["n_shards"] == 2
        assert stats["n_events"] < full_stats["n_events"]

        metrics = hub.metrics()
        assert metrics["n_alive_shards"] == 1
        assert len(metrics["shards"]) == 1
        assert metrics["transport"] == "shm"

        history = hub.alerts_history()
        assert {(r["tenant"], r["monitor_id"]) for r in history} <= survivor_keys
        assert len(history) <= len(full_history)
    finally:
        hub.close()


def test_reshard_in_memory_grow_and_shrink():
    """reshard without a checkpoint_dir: pure in-memory migration (no
    manifest, no WAL) still preserves every monitor's state bit-exactly."""
    single = MonitorHub()
    _register_fleet(single)
    expected = {}
    for outcome in single.ingest(_interleaved_events(VALUES)):
        expected.setdefault((outcome.tenant, outcome.monitor_id), []).extend(
            outcome.drift_positions
        )

    hub = ShardedHub(2)
    try:
        _register_fleet(hub)
        collected = {}
        events = _interleaved_events(VALUES)
        third = len(events) // 3
        for batch, n_new in ((events[:third], 4), (events[third : 2 * third], 3), (events[2 * third :], None)):
            for outcome in hub.ingest(batch):
                collected.setdefault(
                    (outcome.tenant, outcome.monitor_id), []
                ).extend(outcome.drift_positions)
            if n_new is not None:
                hub.reshard(n_new)
                assert hub.n_shards == n_new
                for tenant, monitor_id, shard in hub.monitor_keys():
                    assert shard == hub.shard_of(tenant, monitor_id)
        assert collected == expected
    finally:
        hub.close()


def test_retired_shard_alerts_are_parked_not_lost():
    """A shrink retires workers; alerts still queued in them must surface
    from the next drain, not vanish with the process."""
    with ShardedHub(4) as hub:
        _register_fleet(hub)
        hub.ingest(_interleaved_events(VALUES))  # drifts → queued alerts
        # Do NOT drain before the shrink: the retiring workers' queues are
        # exactly what must survive.
        before = {
            (t, m) for t, m, _, _ in MONITORS
        }
        hub.reshard(2)
        alerts, _ = hub.drain_alerts()
        alerted = {(a.tenant, a.monitor_id) for a in alerts}
        assert alerted  # the stream drifts
        assert alerted <= before
        # Same fleet, same stream, never-resharded: identical alert keys.
    with ShardedHub(4) as reference:
        _register_fleet(reference)
        reference.ingest(_interleaved_events(VALUES))
        ref_alerts, _ = reference.drain_alerts()
    assert sorted(
        (a.tenant, a.monitor_id, a.seq, a.kind, a.position) for a in alerts
    ) == sorted(
        (a.tenant, a.monitor_id, a.seq, a.kind, a.position) for a in ref_alerts
    )
