"""Unit tests of the serving layer's alert write-ahead log.

Covers the storage format (CRC-checked records, torn-tail truncation on
open), segment rotation and retention, the absorbed watermark/delivered
bookkeeping, the ``alerts_history`` query, and the identity head the sharded
cluster manifest validates against.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.exceptions import ConfigurationError, SnapshotError
from repro.serving.sinks import DriftAlert
from repro.serving.wal import (
    WAL_META_FILENAME,
    AlertWal,
    read_wal_head,
)


def _alert(seq: int, kind: str = "warning", tenant: str = "t", monitor: str = "m"):
    return DriftAlert(
        tenant=tenant,
        monitor_id=monitor,
        kind=kind,
        position=100 + seq,
        detector="Ddm",
        n_drifts=1 if kind == "drift" else 0,
        seq=seq,
        ts=1000.0 + seq,
    )


def _segments(directory):
    return sorted(p.name for p in directory.iterdir() if p.suffix == ".log")


# ----------------------------------------------------------------- round trip


def test_records_round_trip_across_reopen(tmp_path):
    wal = AlertWal(tmp_path)
    wal.append_alert(_alert(1))
    wal.append_watermark("t", "m", 250)
    wal.append_alert(_alert(2, kind="drift"))
    wal.append_delivered("t", "m", 1)
    wal.commit()
    wal.close()

    reopened = AlertWal(tmp_path)
    records = list(reopened.iter_records())
    assert [r["t"] for r in records] == ["alert", "watermark", "alert", "delivered"]
    alerts = list(reopened.iter_alerts())
    assert [a["seq"] for a in alerts] == [1, 2]
    assert alerts[1]["kind"] == "drift"
    # Watermarks and delivered markers were absorbed during recovery.
    assert reopened.watermarks() == {("t", "m"): 250}
    assert reopened.delivered_through("t", "m") == 1
    assert reopened.delivered_through("t", "other") == 0
    reopened.close()


def test_uncommitted_appends_visible_to_readers(tmp_path):
    wal = AlertWal(tmp_path, fsync="off")
    wal.append_alert(_alert(1))
    # No commit: iter_records flushes the buffer so readers see the append.
    assert [a["seq"] for a in wal.iter_alerts()] == [1]
    wal.close()


# ------------------------------------------------------------- torn tails


def test_torn_header_is_truncated_on_open(tmp_path):
    wal = AlertWal(tmp_path)
    wal.append_alert(_alert(1))
    wal.append_alert(_alert(2))
    wal.commit()
    wal.close()
    segment = tmp_path / _segments(tmp_path)[-1]
    intact = segment.stat().st_size
    with open(segment, "ab") as handle:
        handle.write(b"\x07\x00")  # half a header: a crash mid-append

    reopened = AlertWal(tmp_path)
    assert [a["seq"] for a in reopened.iter_alerts()] == [1, 2]
    assert segment.stat().st_size == intact  # tail truncated away
    # The log keeps appending cleanly after recovery.
    reopened.append_alert(_alert(3))
    reopened.commit()
    assert [a["seq"] for a in reopened.iter_alerts()] == [1, 2, 3]
    reopened.close()


def test_torn_payload_is_truncated_on_open(tmp_path):
    wal = AlertWal(tmp_path)
    wal.append_alert(_alert(1))
    wal.commit()
    wal.close()
    segment = tmp_path / _segments(tmp_path)[-1]
    intact = segment.stat().st_size
    header = struct.Struct("<II")
    with open(segment, "ab") as handle:
        handle.write(header.pack(1000, 0) + b"only-part-of-the-payload")

    reopened = AlertWal(tmp_path)
    assert [a["seq"] for a in reopened.iter_alerts()] == [1]
    assert segment.stat().st_size == intact
    reopened.close()


def test_crc_mismatch_truncates_corrupt_record(tmp_path):
    wal = AlertWal(tmp_path)
    wal.append_alert(_alert(1))
    wal.commit()
    before = (tmp_path / _segments(tmp_path)[-1]).stat().st_size
    wal.append_alert(_alert(2))
    wal.commit()
    wal.close()
    segment = tmp_path / _segments(tmp_path)[-1]
    data = bytearray(segment.read_bytes())
    data[-3] ^= 0xFF  # flip a byte inside the second record's payload
    segment.write_bytes(bytes(data))

    reopened = AlertWal(tmp_path)
    assert [a["seq"] for a in reopened.iter_alerts()] == [1]
    assert segment.stat().st_size == before
    reopened.close()


# ------------------------------------------------------- rotation & retention


def test_rotation_preserves_order_and_retention_prunes(tmp_path):
    wal = AlertWal(tmp_path, segment_bytes=4096, retain_segments=2)
    seq = 0
    while wal.segment_index < 4:
        seq += 1
        wal.append_alert(_alert(seq))
        wal.commit()
    assert len(_segments(tmp_path)) >= 4
    # Order is preserved across every segment boundary.
    seqs = [a["seq"] for a in wal.iter_alerts()]
    assert seqs == sorted(seqs) and seqs[-1] == seq

    removed = wal.prune()
    assert removed >= 1
    assert len(_segments(tmp_path)) == 2
    # The retained tail still ends at the newest alert.
    remaining = [a["seq"] for a in wal.iter_alerts()]
    assert remaining == sorted(remaining) and remaining[-1] == seq
    # The open segment is never pruned, however small the retention.
    assert _segments(tmp_path)[-1] == f"wal-{wal.segment_index:08d}.log"
    wal.close()


def test_prune_is_noop_within_retention(tmp_path):
    wal = AlertWal(tmp_path)
    wal.append_alert(_alert(1))
    wal.commit()
    assert wal.prune() == 0
    assert len(_segments(tmp_path)) == 1
    wal.close()


# ------------------------------------------------------------ alerts history


def test_alerts_history_filters_and_limit(tmp_path):
    wal = AlertWal(tmp_path)
    for seq in range(1, 6):
        wal.append_alert(_alert(seq, tenant="acme"))
    wal.append_alert(_alert(1, tenant="globex", kind="drift"))
    wal.append_watermark("acme", "m", 500)  # not an alert: never in history
    wal.commit()

    assert len(wal.alerts_history()) == 6
    acme = wal.alerts_history(tenant="acme")
    assert [a["seq"] for a in acme] == [1, 2, 3, 4, 5]
    assert all("t" not in a for a in acme)  # record-type tag stripped
    assert [a["tenant"] for a in wal.alerts_history(monitor_id="m", tenant="globex")] == [
        "globex"
    ]
    # ts filters are inclusive; limit keeps the newest matches.
    assert [a["seq"] for a in wal.alerts_history(tenant="acme", since=1003.0)] == [3, 4, 5]
    assert [a["seq"] for a in wal.alerts_history(tenant="acme", until=1002.0)] == [1, 2]
    assert [a["seq"] for a in wal.alerts_history(tenant="acme", limit=2)] == [4, 5]
    with pytest.raises(ConfigurationError):
        wal.alerts_history(limit=0)
    wal.close()


# ------------------------------------------------------------- identity head


def test_wal_id_stable_across_reopen_and_read_head(tmp_path):
    assert read_wal_head(tmp_path / "nothing-here") is None
    wal = AlertWal(tmp_path)
    wal_id = wal.wal_id
    assert wal.head() == {"wal_id": wal_id, "segment_index": 1}
    wal.close()

    reopened = AlertWal(tmp_path)
    assert reopened.wal_id == wal_id
    reopened.close()

    head = read_wal_head(tmp_path)
    assert head == {"wal_id": wal_id, "segment_index": 1}

    (tmp_path / WAL_META_FILENAME).write_text("{not json", encoding="utf-8")
    with pytest.raises(SnapshotError):
        read_wal_head(tmp_path)
    with pytest.raises(SnapshotError):
        AlertWal(tmp_path)


def test_unsupported_meta_schema_version_rejected(tmp_path):
    wal = AlertWal(tmp_path)
    wal.close()
    meta_path = tmp_path / WAL_META_FILENAME
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    meta["schema_version"] = 99
    meta_path.write_text(json.dumps(meta), encoding="utf-8")
    with pytest.raises(SnapshotError):
        AlertWal(tmp_path)


# ------------------------------------------------------------- configuration


def test_configuration_validation(tmp_path):
    with pytest.raises(ConfigurationError):
        AlertWal(tmp_path, fsync="sometimes")
    with pytest.raises(ConfigurationError):
        AlertWal(tmp_path, segment_bytes=16)
    with pytest.raises(ConfigurationError):
        AlertWal(tmp_path, retain_segments=0)


def test_closed_wal_rejects_appends(tmp_path):
    wal = AlertWal(tmp_path)
    wal.close()
    wal.close()  # idempotent
    with pytest.raises(SnapshotError):
        wal.append_alert(_alert(1))


def test_stats_shape(tmp_path):
    wal = AlertWal(tmp_path, fsync="always")
    wal.append_alert(_alert(1))
    wal.append_watermark("t", "m", 10)
    stats = wal.stats()
    assert stats["fsync_mode"] == "always"
    assert stats["n_appends"] == 2
    assert stats["n_alerts"] == 1
    assert stats["n_segments"] == 1
    assert stats["bytes_written"] > 0
    # fsync="always" synced per append, so latency samples were recorded.
    assert stats["fsync_latency_ms"]["count"] == 2
    wal.close()
