"""Unit tests of :class:`repro.serving.sinks.WebhookSink`.

Delivery runs against an injectable fake transport, so the tests cover the
full retry/backoff/circuit-breaker/dead-letter policy without a network:
a flaky endpoint that recovers, a permanently-down endpoint that must never
block the hub's ingest path, breaker open/half-open/close transitions, and
queue-overflow dead-lettering.
"""

from __future__ import annotations

import json
import random
import threading
import time

import pytest

from repro.exceptions import ConfigurationError
from repro.serving.hub import MonitorHub
from repro.serving.sinks import DriftAlert, QueueSink, WebhookSink


def _alert(seq: int = 1) -> DriftAlert:
    return DriftAlert(
        tenant="t",
        monitor_id="m",
        kind="drift",
        position=100 + seq,
        detector="Ddm",
        n_drifts=seq,
        seq=seq,
        ts=float(seq),
    )


def _read_dead_letters(path):
    if not path.exists():
        return []
    return [json.loads(line) for line in path.read_text().splitlines()]


class _FlakyTransport:
    """Fails the first ``n_failures`` calls, then succeeds; thread-safe."""

    def __init__(self, n_failures: int) -> None:
        self.n_failures = n_failures
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, url: str, payload: bytes, timeout: float) -> None:
        with self._lock:
            self.calls += 1
            if self.calls <= self.n_failures:
                raise OSError(f"connection refused (call {self.calls})")


def test_flaky_endpoint_retries_until_delivered(tmp_path):
    transport = _FlakyTransport(n_failures=2)
    sink = WebhookSink(
        "http://example.invalid/hook",
        max_retries=4,
        backoff=0.0,
        dead_letter_path=str(tmp_path / "dead.jsonl"),
        transport=transport,
        rng=random.Random(0),
    )
    sink.emit(_alert(1))
    assert sink.flush(timeout=10.0)
    stats = sink.stats()
    assert stats["n_delivered"] == 1
    assert stats["n_retries"] == 2
    assert stats["n_failed"] == 0
    assert stats["n_dead_lettered"] == 0
    assert transport.calls == 3
    assert _read_dead_letters(tmp_path / "dead.jsonl") == []
    sink.close()


def test_down_endpoint_dead_letters_and_never_blocks_emit(tmp_path):
    def transport(url, payload, timeout):
        raise OSError("host unreachable")

    dead_path = tmp_path / "dead.jsonl"
    sink = WebhookSink(
        "http://example.invalid/hook",
        max_retries=2,
        backoff=0.01,
        breaker_threshold=100,  # keep the breaker out of this test
        dead_letter_path=str(dead_path),
        transport=transport,
        rng=random.Random(0),
    )
    started = time.perf_counter()
    for seq in range(1, 4):
        sink.emit(_alert(seq))
    # emit() only enqueues: three alerts cost microseconds even though every
    # delivery will burn retries in the worker thread.
    assert time.perf_counter() - started < 0.5
    assert sink.flush(timeout=10.0)
    stats = sink.stats()
    assert stats["n_failed"] == 3
    assert stats["n_dead_lettered"] == 3
    assert stats["n_retries"] == 6  # 2 retries per alert
    assert "host unreachable" in stats["last_error"]
    records = _read_dead_letters(dead_path)
    assert [r["seq"] for r in records] == [1, 2, 3]
    assert all(r["dead_letter_reason"] == "retries-exhausted" for r in records)
    assert all("host unreachable" in r["dead_letter_error"] for r in records)
    sink.close()


def test_circuit_breaker_opens_then_half_open_probe_recovers(tmp_path):
    now = [1000.0]
    healthy = [False]
    calls = [0]

    def transport(url, payload, timeout):
        calls[0] += 1
        if not healthy[0]:
            raise OSError("down")

    dead_path = tmp_path / "dead.jsonl"
    sink = WebhookSink(
        "http://example.invalid/hook",
        max_retries=0,
        backoff=0.0,
        breaker_threshold=2,
        breaker_reset=30.0,
        dead_letter_path=str(dead_path),
        transport=transport,
        clock=lambda: now[0],
        rng=random.Random(0),
    )
    # Two consecutive failed deliveries open the circuit.
    sink.emit(_alert(1))
    sink.emit(_alert(2))
    assert sink.flush(timeout=10.0)
    assert sink.circuit_open
    assert sink.stats()["n_circuit_opens"] == 1
    assert calls[0] == 2

    # While open, alerts go straight to the dead-letter file — no network.
    sink.emit(_alert(3))
    assert sink.flush(timeout=10.0)
    assert calls[0] == 2
    stats = sink.stats()
    assert stats["n_circuit_open_drops"] == 1
    reasons = [r["dead_letter_reason"] for r in _read_dead_letters(dead_path)]
    assert reasons == ["retries-exhausted", "retries-exhausted", "circuit-open"]

    # After breaker_reset the next delivery is a half-open probe; its
    # success closes the circuit and resets the failure streak.
    now[0] += 31.0
    healthy[0] = True
    sink.emit(_alert(4))
    assert sink.flush(timeout=10.0)
    assert calls[0] == 3
    stats = sink.stats()
    assert stats["n_delivered"] == 1
    assert stats["consecutive_failures"] == 0
    assert not sink.circuit_open
    sink.close()


def test_full_queue_dead_letters_immediately(tmp_path):
    in_flight = threading.Event()
    release = threading.Event()

    def transport(url, payload, timeout):
        in_flight.set()
        release.wait(timeout=10.0)

    dead_path = tmp_path / "dead.jsonl"
    sink = WebhookSink(
        "http://example.invalid/hook",
        queue_size=1,
        dead_letter_path=str(dead_path),
        transport=transport,
    )
    sink.emit(_alert(1))
    assert in_flight.wait(timeout=10.0)  # worker is stuck delivering #1
    sink.emit(_alert(2))  # fills the queue
    sink.emit(_alert(3))  # overflows: dead-lettered, emit still instant
    stats = sink.stats()
    assert stats["n_queue_full"] == 1
    records = _read_dead_letters(dead_path)
    assert [r["seq"] for r in records] == [3]
    assert records[0]["dead_letter_reason"] == "queue-full"
    release.set()
    assert sink.flush(timeout=10.0)
    assert sink.stats()["n_delivered"] == 2
    sink.close()


def test_close_dead_letters_remaining_queue(tmp_path):
    in_flight = threading.Event()
    release = threading.Event()

    def transport(url, payload, timeout):
        in_flight.set()
        release.wait(timeout=10.0)

    dead_path = tmp_path / "dead.jsonl"
    sink = WebhookSink(
        "http://example.invalid/hook",
        dead_letter_path=str(dead_path),
        transport=transport,
    )
    sink.emit(_alert(1))
    assert in_flight.wait(timeout=10.0)
    sink.emit(_alert(2))
    release.set()
    sink.close()
    sink.close()  # idempotent
    # Whatever the worker did not deliver before close() is on disk, and an
    # emit after close() never vanishes either.
    sink.emit(_alert(3))
    recorded = {r["seq"] for r in _read_dead_letters(dead_path)}
    delivered = sink.stats()["n_delivered"]
    assert 3 in recorded
    assert delivered + len(recorded) >= 3


def test_hub_ingest_never_blocks_on_down_webhook(tmp_path):
    import numpy as np

    def transport(url, payload, timeout):
        raise OSError("permanently down")

    webhook = WebhookSink(
        "http://example.invalid/hook",
        max_retries=3,
        backoff=0.05,
        dead_letter_path=str(tmp_path / "dead.jsonl"),
        transport=transport,
        rng=random.Random(0),
    )
    queue = QueueSink()
    hub = MonitorHub(sinks=[webhook, queue])
    hub.register("t", "m", "DDM")
    rng = np.random.default_rng(7)
    values = np.concatenate(
        [(rng.random(500) < 0.1), (rng.random(500) < 0.65)]
    ).astype(float)
    started = time.perf_counter()
    hub.observe("t", "m", values)
    elapsed = time.perf_counter() - started
    # The flush returns at detector speed: all webhook retries/backoff burn
    # in the worker thread (6 alerts x 3 retries x 50ms+ would dwarf this).
    assert elapsed < 1.0
    # The healthy sink saw every alert despite the dead webhook.
    assert [a.seq for a in queue.drain()] == [1, 2, 3, 4, 5, 6]
    hub.close()
    assert webhook.stats()["n_dead_lettered"] == 6


def test_configuration_validation():
    with pytest.raises(ConfigurationError):
        WebhookSink("http://x", max_retries=-1)
    with pytest.raises(ConfigurationError):
        WebhookSink("http://x", backoff=2.0, backoff_cap=1.0)
    with pytest.raises(ConfigurationError):
        WebhookSink("http://x", jitter=-0.1)
    with pytest.raises(ConfigurationError):
        WebhookSink("http://x", breaker_threshold=0)
    with pytest.raises(ConfigurationError):
        WebhookSink("http://x", queue_size=0)
