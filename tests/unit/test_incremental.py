"""Unit tests for :mod:`repro.stats.incremental`."""

import numpy as np
import pytest

from repro.exceptions import NotEnoughDataError
from repro.stats.incremental import PrefixStats, RunningStats, WindowedStats


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.std == 0.0

    def test_matches_numpy(self):
        values = [0.3, 0.7, 0.1, 0.9, 0.4, 0.4, 0.6]
        stats = RunningStats()
        stats.update_many(values)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.variance == pytest.approx(np.var(values, ddof=1))
        assert stats.std == pytest.approx(np.std(values, ddof=1))

    def test_population_variance(self):
        values = [1.0, 2.0, 3.0, 4.0]
        stats = RunningStats()
        stats.update_many(values)
        assert stats.population_variance == pytest.approx(np.var(values))
        assert stats.population_std == pytest.approx(np.std(values))

    def test_single_value(self):
        stats = RunningStats()
        stats.update(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0

    def test_reset(self):
        stats = RunningStats()
        stats.update_many([1.0, 2.0])
        stats.reset()
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_numerical_stability_constant_stream(self):
        stats = RunningStats()
        stats.update_many([1e9 + 0.1] * 10_000)
        assert stats.variance == pytest.approx(0.0, abs=1e-6)


class TestWindowedStats:
    def test_add_remove_matches_numpy(self):
        stats = WindowedStats()
        values = [0.2, 0.8, 0.5, 0.1, 0.9]
        for value in values:
            stats.add(value)
        stats.remove(values[0])
        stats.remove(values[1])
        remaining = values[2:]
        assert stats.count == 3
        assert stats.mean == pytest.approx(np.mean(remaining))
        assert stats.variance == pytest.approx(np.var(remaining, ddof=1))

    def test_remove_to_empty(self):
        stats = WindowedStats()
        stats.add(3.0)
        stats.remove(3.0)
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_remove_from_empty_raises(self):
        stats = WindowedStats()
        with pytest.raises(NotEnoughDataError):
            stats.remove(1.0)

    def test_variance_never_negative(self):
        stats = WindowedStats()
        for _ in range(1000):
            stats.add(0.1)
        for _ in range(999):
            stats.remove(0.1)
        assert stats.variance >= 0.0

    def test_reset(self):
        stats = WindowedStats()
        stats.add(1.0)
        stats.reset()
        assert stats.count == 0
        assert stats.total == 0.0


class TestPrefixStats:
    def test_range_statistics_match_numpy(self, rng):
        values = rng.random(200).tolist()
        prefix = PrefixStats()
        for value in values:
            prefix.append(value)
        assert len(prefix) == 200
        assert prefix.mean(0, 200) == pytest.approx(np.mean(values))
        assert prefix.variance(50, 150) == pytest.approx(
            np.var(values[50:150], ddof=1)
        )
        assert prefix.std(10, 60) == pytest.approx(np.std(values[10:60], ddof=1))
        assert prefix.range_sum(5, 15) == pytest.approx(sum(values[5:15]))

    def test_popleft_shifts_window(self):
        prefix = PrefixStats()
        for value in [1.0, 2.0, 3.0, 4.0]:
            prefix.append(value)
        assert prefix.popleft() == 1.0
        assert len(prefix) == 3
        assert prefix.to_list() == [2.0, 3.0, 4.0]
        assert prefix.mean(0, 3) == pytest.approx(3.0)
        assert prefix.value_at(0) == 2.0

    def test_popleft_empty_raises(self):
        prefix = PrefixStats()
        with pytest.raises(NotEnoughDataError):
            prefix.popleft()

    def test_invalid_range_raises(self):
        prefix = PrefixStats()
        prefix.append(1.0)
        with pytest.raises(IndexError):
            prefix.range_sum(0, 2)
        with pytest.raises(IndexError):
            prefix.value_at(5)

    def test_empty_range_statistics(self):
        prefix = PrefixStats()
        prefix.append(1.0)
        assert prefix.mean(0, 0) == 0.0
        assert prefix.variance(0, 1) == 0.0

    def test_compaction_preserves_values(self):
        prefix = PrefixStats()
        threshold = PrefixStats._COMPACT_THRESHOLD
        for value in range(threshold + 100):
            prefix.append(float(value))
        for _ in range(threshold + 10):
            prefix.popleft()
        expected = [float(v) for v in range(threshold + 10, threshold + 100)]
        assert prefix.to_list() == expected
        assert prefix.mean(0, len(expected)) == pytest.approx(np.mean(expected))

    def test_clear(self):
        prefix = PrefixStats()
        prefix.append(1.0)
        prefix.clear()
        assert len(prefix) == 0
