"""Unit tests for :mod:`repro.stats.incremental`."""

import numpy as np
import pytest

from repro.exceptions import NotEnoughDataError
from repro.stats.incremental import PrefixStats, RunningStats, WindowedStats


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.std == 0.0

    def test_matches_numpy(self):
        values = [0.3, 0.7, 0.1, 0.9, 0.4, 0.4, 0.6]
        stats = RunningStats()
        stats.update_many(values)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.variance == pytest.approx(np.var(values, ddof=1))
        assert stats.std == pytest.approx(np.std(values, ddof=1))

    def test_population_variance(self):
        values = [1.0, 2.0, 3.0, 4.0]
        stats = RunningStats()
        stats.update_many(values)
        assert stats.population_variance == pytest.approx(np.var(values))
        assert stats.population_std == pytest.approx(np.std(values))

    def test_single_value(self):
        stats = RunningStats()
        stats.update(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0

    def test_reset(self):
        stats = RunningStats()
        stats.update_many([1.0, 2.0])
        stats.reset()
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_numerical_stability_constant_stream(self):
        stats = RunningStats()
        stats.update_many([1e9 + 0.1] * 10_000)
        assert stats.variance == pytest.approx(0.0, abs=1e-6)


class TestWindowedStats:
    def test_add_remove_matches_numpy(self):
        stats = WindowedStats()
        values = [0.2, 0.8, 0.5, 0.1, 0.9]
        for value in values:
            stats.add(value)
        stats.remove(values[0])
        stats.remove(values[1])
        remaining = values[2:]
        assert stats.count == 3
        assert stats.mean == pytest.approx(np.mean(remaining))
        assert stats.variance == pytest.approx(np.var(remaining, ddof=1))

    def test_remove_to_empty(self):
        stats = WindowedStats()
        stats.add(3.0)
        stats.remove(3.0)
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_remove_from_empty_raises(self):
        stats = WindowedStats()
        with pytest.raises(NotEnoughDataError):
            stats.remove(1.0)

    def test_variance_never_negative(self):
        stats = WindowedStats()
        for _ in range(1000):
            stats.add(0.1)
        for _ in range(999):
            stats.remove(0.1)
        assert stats.variance >= 0.0

    def test_reset(self):
        stats = WindowedStats()
        stats.add(1.0)
        stats.reset()
        assert stats.count == 0
        assert stats.total == 0.0


class TestPrefixStats:
    def test_range_statistics_match_numpy(self, rng):
        values = rng.random(200).tolist()
        prefix = PrefixStats()
        for value in values:
            prefix.append(value)
        assert len(prefix) == 200
        assert prefix.mean(0, 200) == pytest.approx(np.mean(values))
        assert prefix.variance(50, 150) == pytest.approx(
            np.var(values[50:150], ddof=1)
        )
        assert prefix.std(10, 60) == pytest.approx(np.std(values[10:60], ddof=1))
        assert prefix.range_sum(5, 15) == pytest.approx(sum(values[5:15]))

    def test_popleft_shifts_window(self):
        prefix = PrefixStats()
        for value in [1.0, 2.0, 3.0, 4.0]:
            prefix.append(value)
        assert prefix.popleft() == 1.0
        assert len(prefix) == 3
        assert prefix.to_list() == [2.0, 3.0, 4.0]
        assert prefix.mean(0, 3) == pytest.approx(3.0)
        assert prefix.value_at(0) == 2.0

    def test_popleft_empty_raises(self):
        prefix = PrefixStats()
        with pytest.raises(NotEnoughDataError):
            prefix.popleft()

    def test_invalid_range_raises(self):
        prefix = PrefixStats()
        prefix.append(1.0)
        with pytest.raises(IndexError):
            prefix.range_sum(0, 2)
        with pytest.raises(IndexError):
            prefix.value_at(5)

    def test_empty_range_statistics(self):
        prefix = PrefixStats()
        prefix.append(1.0)
        assert prefix.mean(0, 0) == 0.0
        assert prefix.variance(0, 1) == 0.0

    def test_compaction_preserves_values(self):
        prefix = PrefixStats()
        threshold = PrefixStats._COMPACT_THRESHOLD
        for value in range(threshold + 100):
            prefix.append(float(value))
        for _ in range(threshold + 10):
            prefix.popleft()
        expected = [float(v) for v in range(threshold + 10, threshold + 100)]
        assert prefix.to_list() == expected
        assert prefix.mean(0, len(expected)) == pytest.approx(np.mean(expected))

    def test_clear(self):
        prefix = PrefixStats()
        prefix.append(1.0)
        prefix.clear()
        assert len(prefix) == 0

    def test_append_many_matches_scalar_appends_bitwise(self, rng):
        values = rng.random(1_000)
        scalar = PrefixStats()
        for value in values:
            scalar.append(float(value))
        batched = PrefixStats()
        batched.append_many(values[:137])
        batched.append_many(values[137:560])
        for value in values[560:700]:
            batched.append(float(value))
        batched.append_many(values[700:])
        assert len(batched) == len(scalar)
        # Bit-identical, not approximately equal: the batched cumulative sum
        # must perform the same addition sequence as scalar appends.
        for start, stop in [(0, 1000), (3, 997), (400, 600), (999, 1000)]:
            assert batched.range_sum(start, stop) == scalar.range_sum(start, stop)
            assert batched.range_sum_sq(start, stop) == scalar.range_sum_sq(
                start, stop
            )

    def test_append_many_empty_chunk(self):
        prefix = PrefixStats()
        prefix.append_many(np.empty(0))
        assert len(prefix) == 0
        prefix.append(1.0)
        prefix.append_many(np.empty(0))
        assert prefix.to_list() == [1.0]

    def test_popleft_many_matches_repeated_popleft(self):
        threshold = PrefixStats._COMPACT_THRESHOLD
        values = np.arange(threshold + 500, dtype=np.float64)
        one_by_one = PrefixStats()
        one_by_one.append_many(values)
        many = PrefixStats()
        many.append_many(values)
        for _ in range(threshold + 123):
            one_by_one.popleft()
        many.popleft_many(threshold + 123)  # crosses the compaction point
        assert many.to_list() == one_by_one.to_list()
        assert many.range_sum(0, len(many)) == one_by_one.range_sum(
            0, len(one_by_one)
        )
        assert many.dead_prefix == one_by_one.dead_prefix

    def test_popleft_many_validates(self):
        prefix = PrefixStats()
        prefix.append(1.0)
        with pytest.raises(NotEnoughDataError):
            prefix.popleft_many(2)
        with pytest.raises(NotEnoughDataError):
            prefix.popleft_many(-1)

    def test_truncate_last(self):
        prefix = PrefixStats()
        prefix.append_many(np.asarray([1.0, 2.0, 3.0, 4.0, 5.0]))
        prefix.truncate_last(2)
        assert prefix.to_list() == [1.0, 2.0, 3.0]
        assert prefix.range_sum(0, 3) == 6.0
        # Appending after a truncation continues from the surviving prefix.
        prefix.append(10.0)
        assert prefix.to_list() == [1.0, 2.0, 3.0, 10.0]
        assert prefix.range_sum(0, 4) == 16.0
        with pytest.raises(NotEnoughDataError):
            prefix.truncate_last(9)

    def test_compact_rebases_instead_of_recomputing(self, rng):
        threshold = PrefixStats._COMPACT_THRESHOLD
        values = rng.random(threshold + 200)
        prefix = PrefixStats()
        prefix.append_many(values)
        prefix.popleft_many(threshold)  # triggers the slice-and-rebase compact
        assert prefix.dead_prefix == 0
        remaining = values[threshold:]
        assert prefix.mean(0, len(remaining)) == pytest.approx(np.mean(remaining))
        assert prefix.variance(0, len(remaining)) == pytest.approx(
            np.var(remaining, ddof=1)
        )

    def test_raw_arrays_views(self):
        prefix = PrefixStats()
        prefix.append_many(np.asarray([1.0, 2.0, 3.0]))
        prefix.popleft()
        prefix_sums, prefix_sq, offset, end = prefix.raw_arrays()
        assert end - offset == 2
        assert prefix_sums[end] - prefix_sums[offset] == pytest.approx(5.0)
        assert prefix_sq[end] - prefix_sq[offset] == pytest.approx(13.0)

    def test_to_array(self):
        prefix = PrefixStats()
        prefix.append_many(np.asarray([1.0, 2.0, 3.0]))
        prefix.popleft()
        np.testing.assert_array_equal(prefix.to_array(), [2.0, 3.0])

    def test_capacity_growth_preserves_contents(self):
        prefix = PrefixStats(capacity=4)
        values = [float(v) for v in range(1_000)]
        for value in values[:500]:
            prefix.append(value)
        prefix.append_many(np.asarray(values[500:]))
        assert prefix.to_list() == values
        assert prefix.range_sum(0, 1_000) == pytest.approx(sum(values))
