"""Unit tests for :mod:`repro.stats.circular_buffer`."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotEnoughDataError
from repro.stats.circular_buffer import CircularBuffer


def test_starts_empty():
    buffer = CircularBuffer(4)
    assert len(buffer) == 0
    assert buffer.is_empty
    assert not buffer.is_full
    assert buffer.capacity == 4


def test_append_and_index():
    buffer = CircularBuffer(3)
    buffer.append(1.0)
    buffer.append(2.0)
    assert len(buffer) == 2
    assert buffer[0] == 1.0
    assert buffer[1] == 2.0
    assert buffer[-1] == 2.0


def test_popleft_returns_oldest():
    buffer = CircularBuffer(3)
    buffer.extend([1.0, 2.0, 3.0])
    assert buffer.popleft() == 1.0
    assert buffer.popleft() == 2.0
    assert len(buffer) == 1


def test_wraparound_preserves_order():
    buffer = CircularBuffer(3)
    buffer.extend([1.0, 2.0, 3.0])
    buffer.popleft()
    buffer.append(4.0)
    assert buffer.to_list() == [2.0, 3.0, 4.0]
    buffer.popleft()
    buffer.append(5.0)
    assert buffer.to_list() == [3.0, 4.0, 5.0]


def test_append_to_full_raises():
    buffer = CircularBuffer(2)
    buffer.extend([1.0, 2.0])
    assert buffer.is_full
    with pytest.raises(IndexError):
        buffer.append(3.0)


def test_popleft_empty_raises():
    buffer = CircularBuffer(2)
    with pytest.raises(NotEnoughDataError):
        buffer.popleft()


def test_invalid_capacity_raises():
    with pytest.raises(ConfigurationError):
        CircularBuffer(0)


def test_clear():
    buffer = CircularBuffer(3)
    buffer.extend([1.0, 2.0])
    buffer.clear()
    assert len(buffer) == 0
    buffer.append(9.0)
    assert buffer.to_list() == [9.0]


def test_setitem():
    buffer = CircularBuffer(3)
    buffer.extend([1.0, 2.0, 3.0])
    buffer[1] = 7.0
    assert buffer.to_list() == [1.0, 7.0, 3.0]


def test_index_out_of_range_raises():
    buffer = CircularBuffer(3)
    buffer.append(1.0)
    with pytest.raises(IndexError):
        _ = buffer[1]
    with pytest.raises(IndexError):
        _ = buffer[-2]


def test_to_array_contiguous_and_wrapped():
    buffer = CircularBuffer(3)
    buffer.extend([1.0, 2.0, 3.0])
    np.testing.assert_allclose(buffer.to_array(), [1.0, 2.0, 3.0])
    buffer.popleft()
    buffer.append(4.0)
    np.testing.assert_allclose(buffer.to_array(), [2.0, 3.0, 4.0])


def test_slice_array():
    buffer = CircularBuffer(5)
    buffer.extend([1.0, 2.0, 3.0, 4.0])
    np.testing.assert_allclose(buffer.slice_array(1, 3), [2.0, 3.0])
    np.testing.assert_allclose(buffer.slice_array(0, 0), [])
    with pytest.raises(IndexError):
        buffer.slice_array(2, 6)


def test_slice_array_wrapped():
    buffer = CircularBuffer(4)
    buffer.extend([1.0, 2.0, 3.0, 4.0])
    buffer.popleft()
    buffer.popleft()
    buffer.append(5.0)
    buffer.append(6.0)
    np.testing.assert_allclose(buffer.slice_array(0, 4), [3.0, 4.0, 5.0, 6.0])
    np.testing.assert_allclose(buffer.slice_array(1, 3), [4.0, 5.0])


def test_iteration_matches_to_list():
    buffer = CircularBuffer(4)
    buffer.extend([5.0, 6.0, 7.0])
    assert list(iter(buffer)) == buffer.to_list()
