"""Unit tests for the STEPD and ECDD baselines."""

import numpy as np
import pytest

from repro.detectors.ecdd import Ecdd
from repro.detectors.stepd import Stepd
from repro.exceptions import ConfigurationError


class TestStepd:
    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            Stepd(window_size=1)
        with pytest.raises(ConfigurationError):
            Stepd(alpha_drift=0.1, alpha_warning=0.05)
        with pytest.raises(ConfigurationError):
            Stepd(alpha_drift=0.0)

    def test_needs_two_full_windows(self):
        detector = Stepd(window_size=30)
        # Fewer than 60 observations can never trigger anything.
        assert detector.update_many([1.0] * 59) == []

    def test_detects_accuracy_drop(self, sudden_binary_stream):
        detector = Stepd()
        detections = detector.update_many(sudden_binary_stream.values)
        post = [d for d in detections if d >= 2_000]
        assert post
        assert post[0] - 2_000 < 300

    def test_overall_accuracy_property(self):
        detector = Stepd()
        # Errors interleaved uniformly so no drift fires and accuracy is 0.8.
        detector.update_many([0.0, 0.0, 0.0, 0.0, 1.0] * 20)
        assert detector.overall_accuracy == pytest.approx(0.8, abs=0.01)

    def test_no_drift_on_stationary_stream(self, rng):
        detector = Stepd()
        values = (rng.random(5_000) < 0.3).astype(float)
        assert len(detector.update_many(values)) <= 3

    def test_reset_after_drift(self, sudden_binary_stream):
        detector = Stepd()
        for value in sudden_binary_stream.values:
            if detector.update(value).drift_detected:
                break
        assert detector.overall_accuracy == 0.0


class TestEcdd:
    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            Ecdd(arl0=1)
        with pytest.raises(ConfigurationError):
            Ecdd(warning_fraction=1.5)
        with pytest.raises(ConfigurationError):
            Ecdd(min_num_instances=0)

    def test_p_estimate_tracks_error_rate(self):
        detector = Ecdd()
        # Strict alternation keeps the EWMA glued to 0.5, so the estimator is
        # never reset and the error-probability estimate converges to 0.5.
        detector.update_many([0.0, 1.0] * 1_000)
        assert detector.p_estimate == pytest.approx(0.5, abs=0.01)

    def test_detects_error_rate_increase(self, sudden_binary_stream):
        detector = Ecdd()
        detections = detector.update_many(sudden_binary_stream.values)
        post = [d for d in detections if d >= 2_000]
        assert post
        assert post[0] - 2_000 < 200

    def test_detection_is_fast_but_fp_prone(self, rng):
        # ECDD is known (and shown in the paper) to trade FPs for speed.
        detector = Ecdd(arl0=100)
        values = (rng.random(10_000) < 0.3).astype(float)
        detections = detector.update_many(values)
        assert len(detections) >= 1  # fires even without a true drift

    def test_higher_arl0_reduces_false_positives(self, rng):
        values = (rng.random(20_000) < 0.3).astype(float)
        fast = Ecdd(arl0=100)
        slow = Ecdd(arl0=1000)
        assert len(slow.update_many(values)) <= len(fast.update_many(values))

    def test_reset(self):
        detector = Ecdd()
        detector.update_many([1.0] * 100)
        detector.reset()
        assert detector.p_estimate == 0.0
        assert detector.z == 0.0
