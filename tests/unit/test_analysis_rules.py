"""Fixture-driven tests for every ``repro.analysis`` rule.

Each rule in the catalogue has a ``good/pkg`` tree it must pass and a
``bad/pkg`` tree it must flag under ``tests/fixtures/analysis/``; the trees
are miniature packages so the engine's path-component scoping (``detectors/``,
``serving/``) applies exactly as on the real source tree.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import run_rules, scan_paths, select_rules

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "analysis"

ALL_RULE_IDS = (
    "determinism",
    "durability",
    "snapshot-contract",
    "broad-except",
    "deprecated-symbol",
    "async-blocking",
    "resource-leak",
    "fork-safety",
)

#: rule id -> fixture directory name.
_FIXTURE_DIRS = {
    "determinism": "determinism",
    "durability": "durability",
    "snapshot-contract": "snapshot_contract",
    "broad-except": "broad_except",
    "deprecated-symbol": "deprecation",
    "async-blocking": "async_blocking",
    "resource-leak": "resource_leak",
    "fork-safety": "fork_safety",
}


def _run(rule_id: str, flavour: str):
    tree = FIXTURES / _FIXTURE_DIRS[rule_id] / flavour / "pkg"
    assert tree.is_dir(), f"missing fixture tree {tree}"
    project = scan_paths([tree])
    report = run_rules(project, select_rules([rule_id]))
    return report


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_good_fixture_is_clean(rule_id):
    report = _run(rule_id, "good")
    assert report.findings == [], [f.to_dict() for f in report.findings]


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_bad_fixture_is_flagged(rule_id):
    report = _run(rule_id, "bad")
    assert report.findings, f"bad fixture for {rule_id} produced no findings"
    assert {f.rule for f in report.findings} == {rule_id}


# ------------------------------------------------------------- determinism


def test_determinism_flags_each_violation_kind():
    report = _run("determinism", "bad")
    by_path = {}
    for finding in report.findings:
        by_path.setdefault(finding.path, []).append(finding.message)
    # Scoped package: global RNG, wall clock, unseeded stdlib + numpy rngs.
    impl = "\n".join(by_path["pkg/detectors/impl.py"])
    assert "random.random()" in impl
    assert "wall-clock read time.time()" in impl
    assert "unseeded random.Random()" in impl
    assert "unseeded np.random.default_rng()" in impl
    # Unscoped module: scoped purely by replay-path function names.
    helper = "\n".join(by_path["pkg/helper.py"])
    assert "random.shuffle()" in helper
    assert "random.choice()" in helper
    assert len(report.findings) == 6


def test_determinism_good_tree_permits_monotonic_clock_and_seeded_rng():
    # The good tree uses time.perf_counter() and random.Random(seed); the
    # clean run above is only meaningful if those forms are present.
    helper = (
        FIXTURES / "determinism" / "good" / "pkg" / "helper.py"
    ).read_text()
    assert "perf_counter" in helper and "random.Random(seed)" in helper


# -------------------------------------------------------------- durability


def test_durability_flags_every_raw_write_form():
    report = _run("durability", "bad")
    messages = "\n".join(f.message for f in report.findings)
    assert "json.dump()" in messages
    assert "open(..., 'w')" in messages
    assert "open(..., 'a')" in messages
    assert "write_text()" in messages
    assert "os.open() with O_WRONLY" in messages
    assert "temporary-file write" in messages
    assert len(report.findings) == 6
    # Every message routes the author at the blessed primitives.
    for finding in report.findings:
        assert "atomic_write_json" in finding.message


# ------------------------------------------------------------ broad-except


def test_broad_except_flags_bare_and_base_exception_too():
    report = _run("broad-except", "bad")
    assert len(report.findings) == 3
    messages = [f.message for f in report.findings]
    assert any(m.startswith("bare except") for m in messages)


def test_broad_except_good_counts_one_reasoned_suppression():
    report = _run("broad-except", "good")
    assert report.n_suppressed == 1


# ------------------------------------------------------- snapshot-contract


def test_snapshot_contract_pair_and_registry_violations():
    report = _run("snapshot-contract", "bad")
    by_message = {f.message.split(" ", 1)[0]: f for f in report.findings}
    assert set(by_message) == {"HalfBaked", "Orphan"}
    assert "_load_state" in by_message["HalfBaked"].message
    assert "exported_detector_classes" in by_message["Orphan"].message


# ------------------------------------------------------- deprecated-symbol


def test_deprecation_flags_import_and_use_but_not_definition_site():
    report = _run("deprecated-symbol", "bad")
    assert {f.path for f in report.findings} == {"pkg/caller.py"}
    hows = sorted(f.message.split(" ", 1)[0] for f in report.findings)
    assert hows == ["imports", "uses"]


# --------------------------------------------------------- async-blocking


def test_async_blocking_names_the_call_and_the_reaching_chain():
    report = _run("async-blocking", "bad")
    messages = "\n".join(f.message for f in report.findings)
    # Direct calls inside the coroutine itself...
    assert "blocking call <obj>.recv()" in messages
    assert "blocking call time.sleep()" in messages
    # ...and calls in a sync helper the coroutine reaches, with the chain.
    assert "blocking call open()" in messages
    assert "blocking call os.fsync()" in messages
    assert "via serve_line -> _persist" in messages
    assert len(report.findings) == 4
    for finding in report.findings:
        assert "run_in_executor" in finding.message


def test_async_blocking_offload_severs_the_call_graph_edge():
    # The good tree's _persist still fsyncs; the clean run above is only
    # meaningful because to_thread passes it as an argument, not a call.
    src = (
        FIXTURES / "async_blocking" / "good" / "pkg" / "server.py"
    ).read_text()
    assert "os.fsync" in src and "to_thread(_persist" in src


# ----------------------------------------------------------- resource-leak


def test_resource_leak_reports_which_paths_leak():
    report = _run("resource-leak", "bad")
    by_message = {f.message.split("'")[1]: f.message for f in report.findings}
    assert set(by_message) == {"handle", "block", "child"}
    # Never closed: both exits leak.
    assert "a normal return and an exception path" in by_message["handle"]
    # Closed on the happy path, leaked when the early raise fires.
    assert "an exception path leaves early_raise" in by_message["block"]
    assert "a normal return" not in by_message["block"]
    # One pipe end escapes via return, the other stays open.
    assert "child" in by_message["child"] and "Pipe" in by_message["child"]
    assert len(report.findings) == 3


def test_resource_leak_good_tree_exercises_every_clean_shape():
    # with-managed, finally-closed, guarded close, and the escape-then-
    # close pipe hand-off must all be present for the clean run to mean
    # anything.
    src = (FIXTURES / "resource_leak" / "good" / "pkg" / "store.py").read_text()
    for shape in ("with open", "finally:", "if handle is not None", "registry[\"conn\"]"):
        assert shape in src


# ------------------------------------------------------------ fork-safety


def test_fork_safety_flags_each_inherited_state_kind():
    report = _run("fork-safety", "bad")
    messages = "\n".join(f.message for f in report.findings)
    assert "random.random() uses the process-global RNG" in messages
    assert "module-level lock '_STATE_LOCK'" in messages
    assert "module-level file/socket handle '_AUDIT_LOG'" in messages
    # Reached transitively: _shard_worker_main -> _flush -> _RNG.
    assert "module-level RNG '_RNG'" in messages
    assert len(report.findings) == 4
    for finding in report.findings:
        assert "_shard_worker_main" in finding.message


def test_fork_safety_good_worker_builds_its_own_rng():
    src = (
        FIXTURES / "fork_safety" / "good" / "pkg" / "serving" / "worker.py"
    ).read_text()
    assert "random.Random(seed)" in src and "conn.send" in src
