"""Unit tests for the synthetic error-rate streams."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.streams.error_streams import (
    BinarySegment,
    GaussianSegment,
    binary_error_stream,
    gaussian_error_stream,
)


class TestSegments:
    def test_binary_segment_validation(self):
        with pytest.raises(ConfigurationError):
            BinarySegment(0, 0.5)
        with pytest.raises(ConfigurationError):
            BinarySegment(10, 1.5)

    def test_gaussian_segment_validation(self):
        with pytest.raises(ConfigurationError):
            GaussianSegment(0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            GaussianSegment(10, 0.0, -1.0)


class TestBinaryErrorStream:
    def test_length_and_drift_positions(self):
        stream = binary_error_stream(
            [BinarySegment(100, 0.1), BinarySegment(200, 0.5), BinarySegment(50, 0.9)],
            seed=1,
        )
        assert len(stream) == 350
        assert stream.drift_positions == (100, 300)
        assert stream.drift_widths == (1, 1)

    def test_values_are_binary(self):
        stream = binary_error_stream([BinarySegment(500, 0.3)], seed=1)
        assert set(np.unique(stream.values)).issubset({0.0, 1.0})

    def test_segment_error_rates(self):
        stream = binary_error_stream(
            [BinarySegment(3_000, 0.1), BinarySegment(3_000, 0.7)], seed=2
        )
        first = float(np.mean(stream.values[:3_000]))
        second = float(np.mean(stream.values[3_000:]))
        assert first == pytest.approx(0.1, abs=0.03)
        assert second == pytest.approx(0.7, abs=0.03)

    def test_reproducible_with_seed(self):
        a = binary_error_stream([BinarySegment(500, 0.4)], seed=9)
        b = binary_error_stream([BinarySegment(500, 0.4)], seed=9)
        np.testing.assert_array_equal(a.values, b.values)

    def test_gradual_transition_is_smooth(self):
        stream = binary_error_stream(
            [BinarySegment(4_000, 0.1), BinarySegment(4_000, 0.9)], width=2_000, seed=3
        )
        middle = float(np.mean(stream.values[3_800:4_200]))
        assert 0.3 < middle < 0.7
        early = float(np.mean(stream.values[:2_500]))
        late = float(np.mean(stream.values[-2_500:]))
        assert early < 0.2 and late > 0.8

    def test_empty_segments_raise(self):
        with pytest.raises(ConfigurationError):
            binary_error_stream([], seed=1)

    def test_metadata(self):
        stream = binary_error_stream([BinarySegment(10, 0.5)], width=5, seed=1)
        assert stream.metadata["kind"] == "binary"
        assert stream.metadata["width"] == 5


class TestGaussianErrorStream:
    def test_segment_means_and_stds(self):
        stream = gaussian_error_stream(
            [GaussianSegment(5_000, 0.2, 0.05), GaussianSegment(5_000, 0.7, 0.2)],
            seed=4,
        )
        first, second = stream.values[:5_000], stream.values[5_000:]
        assert float(np.mean(first)) == pytest.approx(0.2, abs=0.01)
        assert float(np.std(first)) == pytest.approx(0.05, abs=0.01)
        assert float(np.mean(second)) == pytest.approx(0.7, abs=0.01)
        assert float(np.std(second)) == pytest.approx(0.2, abs=0.02)

    def test_variance_only_drift(self):
        stream = gaussian_error_stream(
            [GaussianSegment(3_000, 0.5, 0.02), GaussianSegment(3_000, 0.5, 0.3)],
            seed=5,
        )
        assert float(np.mean(stream.values[:3_000])) == pytest.approx(
            float(np.mean(stream.values[3_000:])), abs=0.02
        )
        assert float(np.std(stream.values[3_000:])) > 5 * float(
            np.std(stream.values[:3_000])
        )

    def test_single_segment_has_no_drifts(self):
        stream = gaussian_error_stream([GaussianSegment(100, 0.0, 1.0)], seed=1)
        assert stream.drift_positions == ()

    def test_empty_segments_raise(self):
        with pytest.raises(ConfigurationError):
            gaussian_error_stream([], seed=1)
