"""Unit tests for the slot-based routing layer of ``repro.serving.sharded``.

Pure-function coverage (no worker processes): :func:`route_slot`
determinism and range, the synthesized default assignment table, the
deprecated :func:`route_shard` compatibility wrapper, and the
minimal-movement rebalance the live :meth:`ShardedHub.reshard` relies on.
"""

from __future__ import annotations

import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError
from repro.serving import N_SLOTS, default_slot_assignment, route_shard, route_slot
from repro.serving.sharded import _legacy_route_shard, _rebalance_assignment

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

KEYS = [
    (tenant, f"monitor-{index}")
    for tenant in ("acme", "globex", "initech", "umbrella")
    for index in range(64)
]


def test_route_slot_range_and_determinism():
    for key in KEYS:
        slot = route_slot(*key)
        assert 0 <= slot < N_SLOTS
        assert slot == route_slot(*key)


def test_route_slot_covers_the_slot_space():
    # 256 keys over 256 slots won't hit every slot, but a healthy hash
    # should spread far beyond a handful.
    slots = {route_slot(*key) for key in KEYS}
    assert len(slots) > N_SLOTS // 2


def test_route_slot_is_stable_across_processes():
    """BLAKE2b, not the salted builtin ``hash``: a fresh interpreter must
    agree, or checkpoints would resume onto the wrong shard."""
    sample = KEYS[:8]
    script = (
        "from repro.serving import route_slot\n"
        f"print([route_slot(t, m) for t, m in {sample!r}])\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": str(REPO_SRC), "PYTHONHASHSEED": "random"},
    )
    assert eval(out.stdout) == [route_slot(t, m) for t, m in sample]


def test_key_separator_keeps_tenant_boundary_in_the_digest():
    """The NUL joint makes ("a", "bc") and ("ab", "c") different keys at
    the digest level, not merely different by slot-collision luck."""
    from repro.serving.sharded import _key_digest

    assert _key_digest("a", "bc") != _key_digest("ab", "c")
    assert _key_digest("a", "b/c") != _key_digest("a/b", "c")


def test_default_assignment_is_balanced_round_robin():
    for n in (1, 2, 3, 4, 5, 16, 256):
        table = default_slot_assignment(n)
        assert len(table) == N_SLOTS
        counts = Counter(table)
        assert set(counts) == set(range(n))
        assert max(counts.values()) - min(counts.values()) <= 1


def test_default_assignment_rejects_bad_count():
    with pytest.raises(ConfigurationError):
        default_slot_assignment(0)


def test_route_shard_wrapper_matches_slot_table():
    """The deprecated wrapper is exactly slot + fresh-cluster table."""
    for n in (1, 2, 3, 4, 7, 8):
        table = default_slot_assignment(n)
        for key in KEYS[:32]:
            assert route_shard(*key, n) == table[route_slot(*key)]


def test_route_shard_matches_legacy_modulo_for_divisors_of_slot_space():
    """For n | 256 the slotted layout IS the old ``digest % n`` layout —
    the property that makes v1 checkpoint migration a pure table synthesis."""
    for n in (1, 2, 4, 8, 16):
        for key in KEYS:
            assert route_shard(*key, n) == _legacy_route_shard(*key, n)


def test_route_shard_diverges_from_legacy_for_non_divisors():
    """3 does not divide 256: some keys must land elsewhere (these are the
    monitors a v1 migration physically relocates)."""
    moved = sum(
        1 for key in KEYS if route_shard(*key, 3) != _legacy_route_shard(*key, 3)
    )
    assert moved > 0


def test_route_shard_rejects_bad_shard_count():
    with pytest.raises(ConfigurationError):
        route_shard("t", "m", 0)


# ------------------------------------------------------------- rebalance


def test_rebalance_is_minimal_for_grow():
    old = default_slot_assignment(2)
    new = _rebalance_assignment(old, 4)
    counts = Counter(new)
    assert set(counts) == {0, 1, 2, 3}
    assert max(counts.values()) - min(counts.values()) <= 1
    # Exactly the surplus moved: each old shard gives up half its slots.
    moved = sum(1 for a, b in zip(old, new) if a != b)
    assert moved == N_SLOTS // 2
    # Moved slots went only to the NEW shards — survivors never swap slots
    # among themselves.
    for a, b in zip(old, new):
        if a != b:
            assert b in (2, 3)


def test_rebalance_is_minimal_for_shrink():
    old = default_slot_assignment(4)
    new = _rebalance_assignment(old, 3)
    counts = Counter(new)
    assert set(counts) == {0, 1, 2}
    assert max(counts.values()) - min(counts.values()) <= 1
    # Every slot of the removed shard found a surviving owner; slots that
    # moved were either the removed shard's or a survivor's surplus.
    moved = [(a, b) for a, b in zip(old, new) if a != b]
    assert all(b < 3 for _, b in moved)
    assert {a for a, _ in moved} <= {0, 1, 2, 3}
    assert any(a == 3 for a, _ in moved)


def test_rebalance_quota_exact():
    for n_old, n_new in [(2, 4), (4, 3), (3, 5), (16, 2), (2, 3)]:
        table = _rebalance_assignment(default_slot_assignment(n_old), n_new)
        counts = Counter(table)
        base, extra = divmod(N_SLOTS, n_new)
        for shard in range(n_new):
            assert counts[shard] == base + (1 if shard < extra else 0)


def test_rebalance_is_deterministic():
    old = default_slot_assignment(4)
    assert _rebalance_assignment(old, 3) == _rebalance_assignment(old, 3)


def test_rebalance_roundtrip_grow_shrink_is_stable():
    """Grow then shrink back: the table returns to a 2-shard layout with
    the same balance (not necessarily the original table — minimality is
    relative to the intermediate state)."""
    t2 = default_slot_assignment(2)
    t4 = _rebalance_assignment(t2, 4)
    t2b = _rebalance_assignment(t4, 2)
    counts = Counter(t2b)
    assert set(counts) == {0, 1}
    assert counts[0] == counts[1] == N_SLOTS // 2
    # Slots that shard 0/1 held through the grow never moved at all.
    for slot in range(N_SLOTS):
        if t2[slot] == t4[slot]:
            assert t2b[slot] == t2[slot]


def test_rebalance_rejects_bad_count():
    with pytest.raises(ConfigurationError):
        _rebalance_assignment(default_slot_assignment(2), 0)
