"""Unit tests for the optimal-cut machinery (Equations 1, 2, 13)."""

import pytest

from repro.core.optimal_cut import (
    detectable_rho,
    minimum_solvable_length,
    optimal_split,
    rho_temp,
    welch_df_upper_bound,
)
from repro.exceptions import ConfigurationError
from repro.stats.distributions import f_ppf

CONFIDENCE = 0.99 ** 0.25


class TestDetectableRho:
    def test_decreases_with_more_data(self):
        # More data in either sub-window makes smaller shifts detectable.
        assert detectable_rho(500, 100, CONFIDENCE) < detectable_rho(50, 100, CONFIDENCE)
        assert detectable_rho(500, 200, CONFIDENCE) < detectable_rho(500, 50, CONFIDENCE)

    def test_equation_consistency(self):
        # Re-derive Equation 1's right-hand side by hand for one split.
        n_hist, n_new = 400, 100
        f_factor = f_ppf(CONFIDENCE, n_hist - 1, n_new - 1)
        df = welch_df_upper_bound(n_hist, n_new, f_factor)
        from repro.stats.distributions import t_ppf

        expected = t_ppf(CONFIDENCE, df) * (1.0 / n_hist + f_factor / n_new) ** 0.5
        assert detectable_rho(n_hist, n_new, CONFIDENCE) == pytest.approx(expected)

    def test_small_subwindows_raise(self):
        with pytest.raises(ConfigurationError):
            detectable_rho(1, 100, CONFIDENCE)
        with pytest.raises(ConfigurationError):
            detectable_rho(100, 1, CONFIDENCE)


class TestWelchDfUpperBound:
    def test_reasonable_range(self):
        df = welch_df_upper_bound(900, 100, 1.5)
        assert 1.0 <= df <= 1000.0

    def test_dominated_by_smaller_window(self):
        # With a large historical window the df is governed by the new window.
        df = welch_df_upper_bound(10_000, 60, 1.7)
        assert df < 200

    def test_invalid_sizes_raise(self):
        with pytest.raises(ConfigurationError):
            welch_df_upper_bound(0, 10, 1.0)


class TestRhoTemp:
    def test_matches_fifty_fifty_split(self):
        length = 200
        expected = detectable_rho(100, 100, CONFIDENCE)
        assert rho_temp(length, CONFIDENCE) == pytest.approx(expected)

    def test_decreases_with_length(self):
        assert rho_temp(400, CONFIDENCE) < rho_temp(60, CONFIDENCE)


class TestOptimalSplit:
    def test_solved_split_respects_rho_guarantee(self):
        spec = optimal_split(1_000, rho=0.5, confidence=CONFIDENCE)
        assert spec.solved
        guaranteed = detectable_rho(spec.n_hist, spec.n_new, CONFIDENCE)
        assert guaranteed <= 0.5
        # The next-larger historical window would break the guarantee
        # (otherwise the split would not be optimal).
        if spec.n_hist + 1 <= spec.length - 2:
            assert detectable_rho(spec.n_hist + 1, spec.n_new - 1, CONFIDENCE) > 0.5

    def test_unsolvable_length_falls_back_to_half(self):
        spec = optimal_split(40, rho=0.1, confidence=CONFIDENCE)
        assert not spec.solved
        assert spec.nu_split == 20

    def test_hint_matches_unhinted_result(self):
        unhinted = optimal_split(800, rho=0.5, confidence=CONFIDENCE)
        hinted_low = optimal_split(800, rho=0.5, confidence=CONFIDENCE, hint=500)
        hinted_high = optimal_split(800, rho=0.5, confidence=CONFIDENCE, hint=790)
        assert hinted_low.nu_split == unhinted.nu_split
        assert hinted_high.nu_split == unhinted.nu_split

    def test_larger_rho_allows_larger_history(self):
        loose = optimal_split(1_000, rho=1.0, confidence=CONFIDENCE)
        strict = optimal_split(1_000, rho=0.25, confidence=CONFIDENCE)
        assert loose.nu_split >= strict.nu_split

    def test_spec_fields_consistent(self):
        spec = optimal_split(500, rho=0.5, confidence=CONFIDENCE)
        assert spec.length == 500
        assert spec.n_hist + spec.n_new == 500
        assert spec.nu == pytest.approx(spec.nu_split / 500)
        assert spec.t_critical > 0
        assert spec.f_critical > 1.0
        assert spec.degrees_of_freedom >= 1.0

    def test_invalid_arguments_raise(self):
        with pytest.raises(ConfigurationError):
            optimal_split(3, rho=0.5, confidence=CONFIDENCE)
        with pytest.raises(ConfigurationError):
            optimal_split(100, rho=0.0, confidence=CONFIDENCE)


class TestMinimumSolvableLength:
    def test_smaller_rho_needs_longer_window(self):
        length_05 = minimum_solvable_length(0.5, CONFIDENCE)
        length_01 = minimum_solvable_length(0.1, CONFIDENCE)
        assert length_01 > length_05

    def test_returned_length_is_solvable_at_half_split(self):
        length = minimum_solvable_length(0.5, CONFIDENCE)
        assert rho_temp(length, CONFIDENCE) <= 0.5
        assert rho_temp(length - 1, CONFIDENCE) > 0.5

    def test_invalid_rho_raises(self):
        with pytest.raises(ConfigurationError):
            minimum_solvable_length(0.0, CONFIDENCE)

    def test_unreachable_raises(self):
        with pytest.raises(ConfigurationError):
            minimum_solvable_length(1e-6, CONFIDENCE, max_length=100)
