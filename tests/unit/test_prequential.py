"""Unit tests for the prequential evaluation loop."""

import pytest

from repro.core.base import DetectionResult, DriftDetector
from repro.core.optwin import Optwin
from repro.detectors import exported_detector_classes
from repro.detectors.no_detector import NoDriftDetector
from repro.evaluation.prequential import run_prequential
from repro.exceptions import ConfigurationError
from repro.learners.naive_bayes import NaiveBayes
from repro.streams.drift import ConceptDriftStream
from repro.streams.synthetic import SeaGenerator, StaggerGenerator


def _stagger_with_drift(seed=1, position=2_000):
    return ConceptDriftStream(
        StaggerGenerator(classification_function=1, seed=seed),
        StaggerGenerator(classification_function=2, seed=seed + 1),
        position=position,
        width=1,
        seed=seed,
    )


def test_basic_run_counts():
    stream = StaggerGenerator(seed=1)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    result = run_prequential(stream, learner, NoDriftDetector(), n_instances=500)
    assert result.n_instances == 500
    assert 0.0 <= result.accuracy <= 1.0
    assert result.detections == []


def test_accuracy_improves_with_training():
    stream = StaggerGenerator(classification_function=1, seed=2)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    result = run_prequential(
        stream, learner, None, n_instances=2_000, curve_window=500
    )
    assert result.accuracy_curve[-1] > result.accuracy_curve[0] - 0.05
    assert result.accuracy_curve[-1] > 0.9


def test_accuracy_curve_length():
    stream = StaggerGenerator(seed=1)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    result = run_prequential(stream, learner, None, n_instances=1_050, curve_window=500)
    assert len(result.accuracy_curve) == 3  # 500 + 500 + 50


def test_detector_reset_improves_recovery():
    drifted = _stagger_with_drift(seed=3)
    learner = NaiveBayes(schema=drifted.schema, n_classes=2)
    with_detector = run_prequential(
        drifted, learner, Optwin(rho=0.5, w_max=5_000), n_instances=4_000
    )

    drifted_again = _stagger_with_drift(seed=3)
    learner_no_reset = NaiveBayes(schema=drifted_again.schema, n_classes=2)
    without_detector = run_prequential(
        drifted_again, learner_no_reset, None, n_instances=4_000
    )
    assert with_detector.n_detections >= 1
    assert with_detector.accuracy >= without_detector.accuracy


def test_warnings_recorded():
    drifted = _stagger_with_drift(seed=4)
    learner = NaiveBayes(schema=drifted.schema, n_classes=2)
    result = run_prequential(
        drifted, learner, Optwin(rho=0.5, w_max=5_000), n_instances=4_000
    )
    assert len(result.warnings) >= len(result.detections)


def test_reset_on_drift_can_be_disabled():
    drifted = _stagger_with_drift(seed=5)
    learner = NaiveBayes(schema=drifted.schema, n_classes=2)
    result = run_prequential(
        drifted,
        learner,
        Optwin(rho=0.5, w_max=5_000),
        n_instances=4_000,
        reset_on_drift=False,
    )
    assert learner.n_trained == 4_000  # never reset


def test_invalid_arguments_raise():
    stream = StaggerGenerator(seed=1)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    with pytest.raises(ConfigurationError):
        run_prequential(stream, learner, None, n_instances=0)
    with pytest.raises(ConfigurationError):
        run_prequential(stream, learner, None, n_instances=10, curve_window=0)
    with pytest.raises(ConfigurationError):
        run_prequential(
            stream, learner, None, n_instances=10, detector_batch_size=0
        )


def test_chunked_detector_feed_matches_scalar_without_resets():
    """With reset_on_drift disabled the learner's error stream is independent
    of the detector, so chunked and scalar detector feeds must agree exactly
    on every detection and warning index."""
    scalar_stream = _stagger_with_drift(seed=6)
    scalar_learner = NaiveBayes(schema=scalar_stream.schema, n_classes=2)
    scalar = run_prequential(
        scalar_stream,
        scalar_learner,
        Optwin(rho=0.5, w_max=5_000),
        n_instances=4_000,
        reset_on_drift=False,
    )

    chunked_stream = _stagger_with_drift(seed=6)
    chunked_learner = NaiveBayes(schema=chunked_stream.schema, n_classes=2)
    chunked = run_prequential(
        chunked_stream,
        chunked_learner,
        Optwin(rho=0.5, w_max=5_000),
        n_instances=4_000,
        reset_on_drift=False,
        detector_batch_size=256,
    )

    assert chunked.detections == scalar.detections
    assert chunked.warnings == scalar.warnings
    assert chunked.n_instances == scalar.n_instances
    assert chunked.accuracy == pytest.approx(scalar.accuracy)


def test_chunked_detector_feed_with_resets_still_adapts():
    drifted = _stagger_with_drift(seed=3)
    learner = NaiveBayes(schema=drifted.schema, n_classes=2)
    chunked = run_prequential(
        drifted,
        learner,
        Optwin(rho=0.5, w_max=5_000),
        n_instances=4_000,
        detector_batch_size=128,
    )

    baseline_stream = _stagger_with_drift(seed=3)
    baseline_learner = NaiveBayes(schema=baseline_stream.schema, n_classes=2)
    baseline = run_prequential(
        baseline_stream, baseline_learner, None, n_instances=4_000
    )
    assert chunked.n_detections >= 1
    # The learner reset lands at a chunk boundary (at most 127 instances
    # late), which must not cost the adaptation its benefit.
    assert chunked.accuracy >= baseline.accuracy - 0.01


class _ScriptedDetector(DriftDetector):
    """Flags drifts at fixed absolute stream positions, whatever the values.

    Because its detections do not depend on the error stream, scalar and
    chunked prequential runs see identical drift indices, which lets the
    tests compare learner state across the two modes directly.
    """

    def __init__(self, drift_positions):
        super().__init__()
        self._drift_positions = frozenset(drift_positions)
        self._position = 0

    def _update_one(self, value):
        position = self._position
        self._position += 1
        if position in self._drift_positions:
            return DetectionResult(drift_detected=True, warning_detected=True)
        return DetectionResult()

    def reset(self):
        self._position = 0
        self._reset_counters()


def test_chunked_multi_drift_chunk_matches_scalar_learner_state():
    """Two drifts inside one flushed chunk: the learner must end up exactly
    as in scalar mode — fresh at the *last* drift, then trained on every
    instance from that drift on (regression: the reset used to land at the
    chunk end without any retraining, leaving the learner untrained)."""
    drift_positions = (10, 25)

    scalar_stream = StaggerGenerator(seed=11)
    scalar_learner = NaiveBayes(schema=scalar_stream.schema, n_classes=2)
    scalar = run_prequential(
        scalar_stream,
        scalar_learner,
        _ScriptedDetector(drift_positions),
        n_instances=40,
    )

    chunked_stream = StaggerGenerator(seed=11)
    chunked_learner = NaiveBayes(schema=chunked_stream.schema, n_classes=2)
    chunked = run_prequential(
        chunked_stream,
        chunked_learner,
        _ScriptedDetector(drift_positions),
        n_instances=40,
        detector_batch_size=32,
    )

    assert chunked.detections == scalar.detections == [10, 25]
    # Scalar mode: reset at 25, then trained on instances 25..39.
    assert scalar_learner.n_trained == 15
    assert chunked_learner.n_trained == scalar_learner.n_trained
    probe_stream = StaggerGenerator(seed=99)
    probes = [probe_stream.next_instance() for _ in range(50)]
    assert [chunked_learner.predict_one(p) for p in probes] == [
        scalar_learner.predict_one(p) for p in probes
    ]


def test_chunked_drift_replay_spans_partial_final_chunk():
    """A drift detected in the final (partial) flush must also replay the
    post-drift instances into the fresh learner."""
    stream = StaggerGenerator(seed=12)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    result = run_prequential(
        stream,
        learner,
        _ScriptedDetector([33]),
        n_instances=37,
        detector_batch_size=32,
    )
    assert result.detections == [33]
    # Fresh at 33, then trained on instances 33..36.
    assert learner.n_trained == 4


def test_every_exported_detector_survives_chunked_prequential():
    """Crash-class smoke: every registered detector must run end-to-end
    through the chunked prequential loop on a short SEA stream (this is the
    scenario that exposed the KSWIN sampler crash)."""
    for detector_class in exported_detector_classes():
        drifted = ConceptDriftStream(
            SeaGenerator(classification_function=1, seed=21),
            SeaGenerator(classification_function=3, seed=22),
            position=200,
            width=1,
            seed=21,
        )
        learner = NaiveBayes(schema=drifted.schema, n_classes=2)
        result = run_prequential(
            drifted,
            learner,
            detector_class(),
            n_instances=400,
            detector_batch_size=32,
        )
        assert result.n_instances == 400, detector_class.__name__


def test_chunk_larger_than_stream_flushes_at_end():
    drifted = _stagger_with_drift(seed=4)
    learner = NaiveBayes(schema=drifted.schema, n_classes=2)
    result = run_prequential(
        drifted,
        learner,
        Optwin(rho=0.5, w_max=5_000),
        n_instances=4_000,
        reset_on_drift=False,
        detector_batch_size=1_000_000,
    )
    assert result.n_instances == 4_000
    assert result.n_detections >= 1
