"""Unit tests for the prequential evaluation loop."""

import pytest

from repro.core.optwin import Optwin
from repro.detectors.no_detector import NoDriftDetector
from repro.evaluation.prequential import run_prequential
from repro.exceptions import ConfigurationError
from repro.learners.naive_bayes import NaiveBayes
from repro.streams.drift import ConceptDriftStream
from repro.streams.synthetic import StaggerGenerator


def _stagger_with_drift(seed=1, position=2_000):
    return ConceptDriftStream(
        StaggerGenerator(classification_function=1, seed=seed),
        StaggerGenerator(classification_function=2, seed=seed + 1),
        position=position,
        width=1,
        seed=seed,
    )


def test_basic_run_counts():
    stream = StaggerGenerator(seed=1)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    result = run_prequential(stream, learner, NoDriftDetector(), n_instances=500)
    assert result.n_instances == 500
    assert 0.0 <= result.accuracy <= 1.0
    assert result.detections == []


def test_accuracy_improves_with_training():
    stream = StaggerGenerator(classification_function=1, seed=2)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    result = run_prequential(
        stream, learner, None, n_instances=2_000, curve_window=500
    )
    assert result.accuracy_curve[-1] > result.accuracy_curve[0] - 0.05
    assert result.accuracy_curve[-1] > 0.9


def test_accuracy_curve_length():
    stream = StaggerGenerator(seed=1)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    result = run_prequential(stream, learner, None, n_instances=1_050, curve_window=500)
    assert len(result.accuracy_curve) == 3  # 500 + 500 + 50


def test_detector_reset_improves_recovery():
    drifted = _stagger_with_drift(seed=3)
    learner = NaiveBayes(schema=drifted.schema, n_classes=2)
    with_detector = run_prequential(
        drifted, learner, Optwin(rho=0.5, w_max=5_000), n_instances=4_000
    )

    drifted_again = _stagger_with_drift(seed=3)
    learner_no_reset = NaiveBayes(schema=drifted_again.schema, n_classes=2)
    without_detector = run_prequential(
        drifted_again, learner_no_reset, None, n_instances=4_000
    )
    assert with_detector.n_detections >= 1
    assert with_detector.accuracy >= without_detector.accuracy


def test_warnings_recorded():
    drifted = _stagger_with_drift(seed=4)
    learner = NaiveBayes(schema=drifted.schema, n_classes=2)
    result = run_prequential(
        drifted, learner, Optwin(rho=0.5, w_max=5_000), n_instances=4_000
    )
    assert len(result.warnings) >= len(result.detections)


def test_reset_on_drift_can_be_disabled():
    drifted = _stagger_with_drift(seed=5)
    learner = NaiveBayes(schema=drifted.schema, n_classes=2)
    result = run_prequential(
        drifted,
        learner,
        Optwin(rho=0.5, w_max=5_000),
        n_instances=4_000,
        reset_on_drift=False,
    )
    assert learner.n_trained == 4_000  # never reset


def test_invalid_arguments_raise():
    stream = StaggerGenerator(seed=1)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    with pytest.raises(ConfigurationError):
        run_prequential(stream, learner, None, n_instances=0)
    with pytest.raises(ConfigurationError):
        run_prequential(stream, learner, None, n_instances=10, curve_window=0)
    with pytest.raises(ConfigurationError):
        run_prequential(
            stream, learner, None, n_instances=10, detector_batch_size=0
        )


def test_chunked_detector_feed_matches_scalar_without_resets():
    """With reset_on_drift disabled the learner's error stream is independent
    of the detector, so chunked and scalar detector feeds must agree exactly
    on every detection and warning index."""
    scalar_stream = _stagger_with_drift(seed=6)
    scalar_learner = NaiveBayes(schema=scalar_stream.schema, n_classes=2)
    scalar = run_prequential(
        scalar_stream,
        scalar_learner,
        Optwin(rho=0.5, w_max=5_000),
        n_instances=4_000,
        reset_on_drift=False,
    )

    chunked_stream = _stagger_with_drift(seed=6)
    chunked_learner = NaiveBayes(schema=chunked_stream.schema, n_classes=2)
    chunked = run_prequential(
        chunked_stream,
        chunked_learner,
        Optwin(rho=0.5, w_max=5_000),
        n_instances=4_000,
        reset_on_drift=False,
        detector_batch_size=256,
    )

    assert chunked.detections == scalar.detections
    assert chunked.warnings == scalar.warnings
    assert chunked.n_instances == scalar.n_instances
    assert chunked.accuracy == pytest.approx(scalar.accuracy)


def test_chunked_detector_feed_with_resets_still_adapts():
    drifted = _stagger_with_drift(seed=3)
    learner = NaiveBayes(schema=drifted.schema, n_classes=2)
    chunked = run_prequential(
        drifted,
        learner,
        Optwin(rho=0.5, w_max=5_000),
        n_instances=4_000,
        detector_batch_size=128,
    )

    baseline_stream = _stagger_with_drift(seed=3)
    baseline_learner = NaiveBayes(schema=baseline_stream.schema, n_classes=2)
    baseline = run_prequential(
        baseline_stream, baseline_learner, None, n_instances=4_000
    )
    assert chunked.n_detections >= 1
    # The learner reset lands at a chunk boundary (at most 127 instances
    # late), which must not cost the adaptation its benefit.
    assert chunked.accuracy >= baseline.accuracy - 0.01


def test_chunk_larger_than_stream_flushes_at_end():
    drifted = _stagger_with_drift(seed=4)
    learner = NaiveBayes(schema=drifted.schema, n_classes=2)
    result = run_prequential(
        drifted,
        learner,
        Optwin(rho=0.5, w_max=5_000),
        n_instances=4_000,
        reset_on_drift=False,
        detector_batch_size=1_000_000,
    )
    assert result.n_instances == 4_000
    assert result.n_detections >= 1
