"""Unit tests for the prequential evaluation loop."""

import pytest

from repro.core.optwin import Optwin
from repro.detectors.no_detector import NoDriftDetector
from repro.evaluation.prequential import run_prequential
from repro.exceptions import ConfigurationError
from repro.learners.naive_bayes import NaiveBayes
from repro.streams.drift import ConceptDriftStream
from repro.streams.synthetic import StaggerGenerator


def _stagger_with_drift(seed=1, position=2_000):
    return ConceptDriftStream(
        StaggerGenerator(classification_function=1, seed=seed),
        StaggerGenerator(classification_function=2, seed=seed + 1),
        position=position,
        width=1,
        seed=seed,
    )


def test_basic_run_counts():
    stream = StaggerGenerator(seed=1)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    result = run_prequential(stream, learner, NoDriftDetector(), n_instances=500)
    assert result.n_instances == 500
    assert 0.0 <= result.accuracy <= 1.0
    assert result.detections == []


def test_accuracy_improves_with_training():
    stream = StaggerGenerator(classification_function=1, seed=2)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    result = run_prequential(
        stream, learner, None, n_instances=2_000, curve_window=500
    )
    assert result.accuracy_curve[-1] > result.accuracy_curve[0] - 0.05
    assert result.accuracy_curve[-1] > 0.9


def test_accuracy_curve_length():
    stream = StaggerGenerator(seed=1)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    result = run_prequential(stream, learner, None, n_instances=1_050, curve_window=500)
    assert len(result.accuracy_curve) == 3  # 500 + 500 + 50


def test_detector_reset_improves_recovery():
    drifted = _stagger_with_drift(seed=3)
    learner = NaiveBayes(schema=drifted.schema, n_classes=2)
    with_detector = run_prequential(
        drifted, learner, Optwin(rho=0.5, w_max=5_000), n_instances=4_000
    )

    drifted_again = _stagger_with_drift(seed=3)
    learner_no_reset = NaiveBayes(schema=drifted_again.schema, n_classes=2)
    without_detector = run_prequential(
        drifted_again, learner_no_reset, None, n_instances=4_000
    )
    assert with_detector.n_detections >= 1
    assert with_detector.accuracy >= without_detector.accuracy


def test_warnings_recorded():
    drifted = _stagger_with_drift(seed=4)
    learner = NaiveBayes(schema=drifted.schema, n_classes=2)
    result = run_prequential(
        drifted, learner, Optwin(rho=0.5, w_max=5_000), n_instances=4_000
    )
    assert len(result.warnings) >= len(result.detections)


def test_reset_on_drift_can_be_disabled():
    drifted = _stagger_with_drift(seed=5)
    learner = NaiveBayes(schema=drifted.schema, n_classes=2)
    result = run_prequential(
        drifted,
        learner,
        Optwin(rho=0.5, w_max=5_000),
        n_instances=4_000,
        reset_on_drift=False,
    )
    assert learner.n_trained == 4_000  # never reset


def test_invalid_arguments_raise():
    stream = StaggerGenerator(seed=1)
    learner = NaiveBayes(schema=stream.schema, n_classes=2)
    with pytest.raises(ConfigurationError):
        run_prequential(stream, learner, None, n_instances=0)
    with pytest.raises(ConfigurationError):
        run_prequential(stream, learner, None, n_instances=10, curve_window=0)
