"""Unit tests for the numpy MLP (the CNN surrogate)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.learners.mlp import MLPClassifier


def _two_cluster_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x0 = rng.normal(-2.0, 1.0, size=(n // 2, 8))
    x1 = rng.normal(2.0, 1.0, size=(n // 2, 8))
    x = np.vstack([x0, x1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return x, y


def test_invalid_parameters_raise():
    with pytest.raises(ConfigurationError):
        MLPClassifier(n_features=0, n_classes=2)
    with pytest.raises(ConfigurationError):
        MLPClassifier(n_features=4, n_classes=1)
    with pytest.raises(ConfigurationError):
        MLPClassifier(n_features=4, n_classes=2, hidden_sizes=())
    with pytest.raises(ConfigurationError):
        MLPClassifier(n_features=4, n_classes=2, learning_rate=0.0)
    with pytest.raises(ConfigurationError):
        MLPClassifier(n_features=4, n_classes=2, momentum=1.0)


def test_predict_proba_shape_and_normalisation():
    model = MLPClassifier(n_features=8, n_classes=3, seed=1)
    x = np.random.default_rng(0).normal(size=(5, 8))
    probabilities = model.predict_proba(x)
    assert probabilities.shape == (5, 3)
    np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, rtol=1e-9)


def test_training_reduces_loss():
    x, y = _two_cluster_data()
    model = MLPClassifier(n_features=8, n_classes=2, seed=1)
    initial_loss, _ = model.evaluate_batch(x, y)
    model.pretrain(x, y, n_epochs=10, batch_size=32)
    final_loss, accuracy = model.evaluate_batch(x, y)
    assert final_loss < initial_loss
    assert accuracy > 0.95


def test_pretrain_returns_accuracy():
    x, y = _two_cluster_data()
    model = MLPClassifier(n_features=8, n_classes=2, seed=1)
    accuracy = model.pretrain(x, y, n_epochs=5)
    assert 0.5 <= accuracy <= 1.0


def test_train_batch_returns_loss_and_counts():
    x, y = _two_cluster_data(n=64)
    model = MLPClassifier(n_features=8, n_classes=2, seed=1)
    loss = model.train_batch(x, y)
    assert loss > 0.0
    assert model.n_batches_trained == 1


def test_train_batch_shape_mismatch_raises():
    model = MLPClassifier(n_features=8, n_classes=2)
    with pytest.raises(ConfigurationError):
        model.train_batch(np.zeros((4, 8)), np.zeros(3, dtype=int))


def test_loss_jumps_when_labels_swap():
    x, y = _two_cluster_data()
    model = MLPClassifier(n_features=8, n_classes=2, seed=1)
    model.pretrain(x, y, n_epochs=10)
    loss_before, _ = model.evaluate_batch(x, y)
    loss_after, accuracy_after = model.evaluate_batch(x, 1 - y)
    assert loss_after > 3 * loss_before
    assert accuracy_after < 0.2


def test_fine_tuning_recovers_from_label_swap():
    x, y = _two_cluster_data()
    model = MLPClassifier(n_features=8, n_classes=2, seed=1)
    model.pretrain(x, y, n_epochs=10)
    swapped = 1 - y
    for _ in range(30):
        model.train_batch(x, swapped)
    _, accuracy = model.evaluate_batch(x, swapped)
    assert accuracy > 0.9


def test_reset_reinitialises():
    x, y = _two_cluster_data()
    model = MLPClassifier(n_features=8, n_classes=2, seed=1)
    model.pretrain(x, y, n_epochs=5)
    model.reset()
    assert model.n_batches_trained == 0
    _, accuracy = model.evaluate_batch(x, y)
    assert accuracy < 0.9


def test_deterministic_given_seed():
    x, y = _two_cluster_data()
    a = MLPClassifier(n_features=8, n_classes=2, seed=7)
    b = MLPClassifier(n_features=8, n_classes=2, seed=7)
    a.pretrain(x, y, n_epochs=3)
    b.pretrain(x, y, n_epochs=3)
    np.testing.assert_allclose(a.predict_proba(x[:10]), b.predict_proba(x[:10]))
