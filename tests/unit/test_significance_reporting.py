"""Unit tests for the significance analysis and the table renderers."""

import pytest

from repro.evaluation.reporting import (
    format_accuracy_table,
    format_detection_rows,
    format_table,
)
from repro.evaluation.significance import compare_f1_scores, significance_matrix
from repro.exceptions import ConfigurationError


class TestSignificance:
    def test_clear_winner_is_significant(self):
        high = [0.95, 0.97, 0.96, 0.94, 0.98, 0.93, 0.95, 0.96, 0.97, 0.95]
        low = [0.60, 0.65, 0.62, 0.58, 0.66, 0.59, 0.61, 0.64, 0.63, 0.60]
        comparison = compare_f1_scores("OPTWIN", high, "ADWIN", low)
        assert comparison.a_better
        assert comparison.detector_a == "OPTWIN"

    def test_no_difference_is_not_significant(self):
        scores = [0.8, 0.82, 0.81, 0.79, 0.8, 0.78, 0.83, 0.8]
        comparison = compare_f1_scores("A", scores, "B", list(scores))
        assert not comparison.a_better

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ConfigurationError):
            compare_f1_scores("A", [0.5, 0.6], "B", [0.5])

    def test_matrix_has_all_ordered_pairs(self):
        scores = {
            "A": [0.9, 0.8, 0.85, 0.9, 0.88],
            "B": [0.5, 0.55, 0.6, 0.5, 0.52],
            "C": [0.7, 0.72, 0.68, 0.71, 0.7],
        }
        comparisons = significance_matrix(scores)
        assert len(comparisons) == 6
        names = {(c.detector_a, c.detector_b) for c in comparisons}
        assert ("A", "B") in names and ("B", "A") in names


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["x", 1.2345], ["longer-name", 2]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # All data rows have the same width.
        assert len(lines[3]) == len(lines[4])

    def test_format_detection_rows(self):
        rows = [
            {
                "detector": "OPTWIN",
                "delay": 28.2,
                "fp": 0.1,
                "precision": 0.96,
                "recall": 1.0,
                "f1": 0.98,
            }
        ]
        text = format_detection_rows(rows, title="Sudden binary drift")
        assert "OPTWIN" in text
        assert "96%" in text and "100%" in text and "98%" in text

    def test_format_accuracy_table(self):
        accuracies = {
            "OPTWIN": {"STAGGER": 0.9996, "AGRAWAL": 0.7011},
            "ADWIN": {"STAGGER": 0.9989, "AGRAWAL": 0.7022},
        }
        text = format_accuracy_table(
            accuracies, dataset_order=["STAGGER", "AGRAWAL"], title="Table 2"
        )
        assert "99.96" in text and "70.22" in text
        assert text.splitlines()[1].startswith("Detector")

    def test_format_accuracy_table_missing_value(self):
        accuracies = {"OPTWIN": {"STAGGER": 0.9}}
        text = format_accuracy_table(accuracies, dataset_order=["STAGGER", "OTHER"])
        assert "nan" in text


class TestRaggedTables:
    """format_table must render ragged input deterministically (it used to
    raise IndexError on over-long rows and silently drop the cells of
    short rows)."""

    def test_row_longer_than_headers_renders_every_cell(self):
        text = format_table(["a", "b"], [["1", "2", "3", "4"]])
        assert "3" in text and "4" in text
        header_line, separator, row_line = text.splitlines()
        assert len(header_line) == len(row_line)

    def test_row_shorter_than_headers_pads_with_empty_cells(self):
        text = format_table(["a", "b", "c"], [["1"]])
        header_line, separator, row_line = text.splitlines()
        assert "c" in header_line
        assert len(row_line) == len(header_line)
        assert row_line.startswith("1")

    def test_mixed_ragged_rows_are_deterministic(self):
        rows = [["1"], ["1", "2", "3"], ["1", "2"]]
        first = format_table(["a", "b"], rows)
        second = format_table(["a", "b"], rows)
        assert first == second
        widths = {len(line) for line in first.splitlines()}
        assert len(widths) == 1  # every line padded to the same width

    def test_empty_rows_and_headers(self):
        text = format_table([], [])
        assert text.splitlines()[0] == ""
