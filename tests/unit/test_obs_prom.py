"""Unit tests of :mod:`repro.obs.prom` — the Prometheus text exposition.

The load-bearing test is the registry-driven coverage invariant: every
``n_*`` counter a hub's ``stats()`` / ``metrics()`` dicts expose must appear
in the exposition *without this module enumerating it by hand* — a counter
added in a future PR is exported (and scraped) automatically or this test
fails naming it.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.prom import Histogram, UpdateTimings, hub_exposition, metric_name
from repro.serving import MonitorHub, ShardedHub
from repro.serving.sinks import JsonlAuditSink


def _counter_keys(mapping):
    """The ``n_*`` numeric keys of one stats/metrics dict (non-recursive)."""
    return sorted(
        key
        for key, value in mapping.items()
        if key.startswith("n_")
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    )


def _busy_hub(tmp_path):
    hub = MonitorHub(
        wal_dir=tmp_path / "wal",
        sinks=[JsonlAuditSink(tmp_path / "alerts.jsonl")],
    )
    hub.register("acme", "checkout", "DDM")
    hub.register("acme", "search", "ECDD")
    hub.ingest(
        [
            ("acme", "checkout", [0.0, 1.0] * 60),
            ("acme", "search", [1.0, 0.0] * 60),
        ]
    )
    return hub


def test_every_hub_counter_appears_in_the_exposition(tmp_path):
    """Registry-driven coverage: stats() ∪ metrics() ∪ trace ∪ wal ∪ sinks."""
    hub = _busy_hub(tmp_path)
    try:
        exposition = hub_exposition(hub)
        metrics = hub.metrics()
        covered = []
        for key in _counter_keys(hub.stats()) + _counter_keys(metrics):
            covered.append((metric_name(key), key))
        for key in _counter_keys(metrics["trace"]):
            covered.append((metric_name(key), key))
        for key in _counter_keys(metrics["wal"]):
            covered.append((f"repro_wal_{key}", key))
        assert metrics["sinks"], "fixture must exercise at least one sink"
        for sink in metrics["sinks"]:
            for key in _counter_keys(sink):
                covered.append((f"repro_sink_{key}", key))
        for key in _counter_keys(hub.journal.stats()):
            covered.append((metric_name(key), key))
        assert covered
        missing = [
            key for name, key in covered if f"\n{name}" not in f"\n{exposition}"
        ]
        assert not missing, f"counters absent from the exposition: {missing}"
    finally:
        hub.close()


def test_sharded_exposition_merges_per_shard_series():
    with ShardedHub(2) as hub:
        hub.register("acme", "checkout", "DDM")
        hub.register("globex", "payments", "ECDD")
        assert hub.shard_of("acme", "checkout") != hub.shard_of("globex", "payments")
        hub.ingest(
            [
                ("acme", "checkout", [0.0, 1.0] * 60),
                ("globex", "payments", [1.0, 0.0] * 60),
            ]
        )
        exposition = hub_exposition(hub)
        metrics = hub.metrics()
        # Merged totals plus one labelled series per live shard, for every
        # per-shard counter the workers report.
        for shard_metrics in metrics["shards"]:
            label = shard_metrics["shard"]
            for key in _counter_keys(shard_metrics):
                assert f'repro_shard_{key}{{shard="{label}"}}' in exposition, key
        assert "repro_hub_n_events 240" in exposition
        assert 'repro_shard_n_events{shard="0"} 120' in exposition
        assert 'repro_shard_n_events{shard="1"} 120' in exposition
        # Per-detector-class histograms merged across both shards.
        assert (
            'repro_detector_update_seconds_bucket{detector="Ddm",le="+Inf"} 1'
            in exposition
        )
        assert (
            'repro_detector_update_seconds_bucket{detector="Ecdd",le="+Inf"} 1'
            in exposition
        )
        # Top-K attribution names both monitors with their shard-side cost.
        assert 'repro_monitor_update_seconds_total{tenant="acme"' in exposition
        assert 'repro_monitor_update_seconds_total{tenant="globex"' in exposition


def test_exposition_families_are_contiguous_blocks(tmp_path):
    """The text format requires one block per family — per-shard re-emission
    must not interleave HELP/TYPE headers with foreign samples."""
    with ShardedHub(2) as hub:
        hub.register("acme", "checkout", "DDM")
        hub.ingest([("acme", "checkout", [0.0, 1.0] * 30)])
        exposition = hub_exposition(hub)
    seen = set()
    current = None
    for line in exposition.splitlines():
        if line.startswith("# HELP "):
            family = line.split()[2]
            assert family not in seen, f"family {family} split into two blocks"
            seen.add(family)
            current = family
        elif line.startswith("# TYPE "):
            assert line.split()[2] == current
        elif line:
            name = line.split("{", 1)[0].split(" ", 1)[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in seen:
                    base = name[: -len(suffix)]
                    break
            assert base == current, f"sample {name} outside its family block"


def test_latency_summary_counts_are_not_conflated(tmp_path):
    """`_count` is the lifetime n_total; the retained window size is its own
    gauge (the PR-fixed count/n_total conflation, pinned at the wire)."""
    hub = _busy_hub(tmp_path)
    try:
        for _ in range(3):
            hub.ingest([("acme", "checkout", [0.0, 1.0])])
        exposition = hub_exposition(hub)
        flush = hub.metrics()["flush_latency_ms"]
        assert f"repro_hub_flush_latency_ms_count {flush['n_total']}" in exposition
        assert f"repro_hub_flush_latency_ms_window {flush['count']}" in exposition
        assert 'repro_hub_flush_latency_ms{quantile="0.95"}' in exposition
    finally:
        hub.close()


# --------------------------------------------------------------- instruments


def test_histogram_observe_snapshot_merge():
    first = Histogram(buckets=[0.1, 1.0])
    second = Histogram(buckets=[0.1, 1.0])
    for value in (0.05, 0.5, 5.0):
        first.observe(value)
    second.observe(0.01)
    snapshot = first.snapshot()
    assert snapshot["buckets"] == [[0.1, 1], [1.0, 2]]
    assert snapshot["count"] == 3
    assert snapshot["sum"] == pytest.approx(5.55)
    merged = Histogram.merge_snapshots([snapshot, second.snapshot()])
    assert merged["buckets"] == [[0.1, 2], [1.0, 3]]
    assert merged["count"] == 4
    assert merged["sum"] == pytest.approx(5.56)


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ConfigurationError):
        Histogram(buckets=[1.0, 0.5])
    with pytest.raises(ConfigurationError):
        Histogram(buckets=[1.0, 1.0])


def test_update_timings_attribution_ranks_by_cumulative_seconds():
    timings = UpdateTimings(top_k=2)
    timings.observe("Ddm", "acme", "fast", 0.001, 100)
    for _ in range(3):
        timings.observe("Optwin", "acme", "slow", 0.5, 500)
    timings.observe("Ddm", "globex", "medium", 0.1, 200)
    snapshot = timings.snapshot()
    assert [row["monitor_id"] for row in snapshot["monitors"]] == ["slow", "medium"]
    slow = snapshot["monitors"][0]
    assert slow["n_updates"] == 3 and slow["n_values"] == 1500
    assert slow["seconds"] == pytest.approx(1.5)
    assert set(snapshot["classes"]) == {"Ddm", "Optwin"}
    assert snapshot["classes"]["Ddm"]["count"] == 2

    merged = UpdateTimings.merge_snapshots([snapshot, snapshot], top_k=3)
    assert merged["classes"]["Ddm"]["count"] == 4
    assert [row["monitor_id"] for row in merged["monitors"]] == [
        "slow",
        "slow",
        "medium",
    ]


def test_update_timings_rejects_bad_top_k():
    with pytest.raises(ConfigurationError):
        UpdateTimings(top_k=0)


def test_set_instrumented_pauses_and_resumes_attribution():
    hub = MonitorHub()
    hub.register("acme", "checkout", "DDM")
    chunk = [0.0, 1.0] * 40
    hub.ingest([("acme", "checkout", chunk)])
    assert hub.metrics()["detector_update"]["monitors"][0]["n_updates"] == 1

    hub.set_instrumented(False)  # paused: no attribution, hot path untimed
    hub.ingest([("acme", "checkout", chunk)])
    assert hub.metrics()["detector_update"] is None

    hub.set_instrumented(True)  # resumed: the same accumulation continues
    hub.ingest([("acme", "checkout", chunk)])
    row = hub.metrics()["detector_update"]["monitors"][0]
    assert row["n_updates"] == 2
    assert row["n_values"] == 2 * len(chunk)
    hub.close()


def test_set_instrumented_starts_fresh_on_an_uninstrumented_hub():
    hub = MonitorHub(instrument=False)
    hub.register("acme", "checkout", "DDM")
    chunk = [0.0, 1.0] * 40
    hub.ingest([("acme", "checkout", chunk)])
    assert hub.metrics()["detector_update"] is None

    hub.set_instrumented(True)
    hub.ingest([("acme", "checkout", chunk)])
    row = hub.metrics()["detector_update"]["monitors"][0]
    assert row["n_updates"] == 1 and row["n_values"] == len(chunk)
    hub.close()
