"""v1 → v2 cluster-manifest migration regression tests.

``tests/fixtures/serving/v1-cluster-{2,3}shard/`` are checkpoint
directories frozen from the pre-slot-routing code (manifest
``schema_version: 1``, direct ``BLAKE2b % n_shards`` routing).  Resuming
them must synthesize the modulo-equivalent slot table — relocating, once,
any monitor the old layout placed where the table does not — and continue
bit-exactly, then upgrade the manifest to v2.  The per-monitor streams are
reproduced here with the same BLAKE2b-seeded RNG the fixture generator
used, so continuation can be checked against independently built
reference detectors.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import SnapshotError
from repro.serving import MANIFEST_FILENAME, ShardedHub, build_detector
from repro.serving.sharded import _legacy_route_shard

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "serving"

TENANTS = ["acme", "globex"]
N_MONITORS = 8  # per tenant, "mon-0".."mon-7"
N_FIXTURE_VALUES = 120  # values already ingested when the fixture froze
N_TAIL_VALUES = 600  # fed after resume, to force detections


def _keys():
    return [
        (tenant, f"mon-{index}")
        for tenant in TENANTS
        for index in range(N_MONITORS)
    ]


def _stream(tenant: str, monitor_id: str, n: int) -> np.ndarray:
    """The fixture generator's deterministic per-monitor error stream."""
    seed = int.from_bytes(
        hashlib.blake2b(
            f"{tenant}:{monitor_id}".encode(), digest_size=4
        ).digest(),
        "big",
    )
    rng = np.random.default_rng(seed)
    return (rng.random(n) < 0.3).astype(np.float64)


def _tail(tenant: str, monitor_id: str) -> np.ndarray:
    """Post-resume continuation: a drifting segment appended to the frozen
    prefix (same RNG, so the prefix regenerates identically)."""
    seed = int.from_bytes(
        hashlib.blake2b(
            f"tail:{tenant}:{monitor_id}".encode(), digest_size=4
        ).digest(),
        "big",
    )
    rng = np.random.default_rng(seed)
    return (rng.random(N_TAIL_VALUES) < 0.6).astype(np.float64)


def _copy_fixture(name: str, tmp_path: Path) -> Path:
    target = tmp_path / name
    shutil.copytree(FIXTURES / name, target)
    return target


def _reference_drifts():
    """Drift positions of never-sharded DDM detectors fed prefix + tail."""
    expected = {}
    for key in _keys():
        detector = build_detector("DDM", None)
        detector.update_batch(list(_stream(*key, N_FIXTURE_VALUES)))
        result = detector.update_batch(list(_tail(*key)))
        expected[key] = [N_FIXTURE_VALUES + i for i in result.drift_indices]
    return expected


@pytest.mark.parametrize("name,n_shards", [("v1-cluster-2shard", 2), ("v1-cluster-3shard", 3)])
def test_v1_fixture_is_really_v1(name, n_shards):
    manifest = json.loads(
        (FIXTURES / name / MANIFEST_FILENAME).read_text(encoding="utf-8")
    )
    assert manifest["schema_version"] == 1
    assert manifest["n_shards"] == n_shards
    assert "assignment" not in manifest


@pytest.mark.parametrize("name,n_shards", [("v1-cluster-2shard", 2), ("v1-cluster-3shard", 3)])
def test_v1_resume_migrates_and_continues_bit_exactly(name, n_shards, tmp_path):
    checkpoint_dir = _copy_fixture(name, tmp_path)
    with ShardedHub(n_shards, checkpoint_dir=checkpoint_dir) as hub:
        # Every frozen monitor resumed with its full history.
        assert len(hub) == 2 * N_MONITORS
        assert hub.n_events == 2 * N_MONITORS * N_FIXTURE_VALUES
        # The registry agrees with the slot table everywhere.
        for tenant, monitor_id, shard in hub.monitor_keys():
            assert shard == hub.shard_of(tenant, monitor_id)
        # Continuation is bit-identical to never-sharded references.
        collected = {}
        for outcome in hub.ingest(
            [(t, m, _tail(t, m)) for t, m in _keys()]
        ):
            collected.setdefault(
                (outcome.tenant, outcome.monitor_id), []
            ).extend(outcome.drift_positions)
        expected = _reference_drifts()
        assert any(expected.values())  # the tail does force drifts
        for key in _keys():
            assert collected.get(key, []) == expected[key], key

    # The manifest was upgraded in place.
    manifest = json.loads(
        (checkpoint_dir / MANIFEST_FILENAME).read_text(encoding="utf-8")
    )
    assert manifest["schema_version"] == 2
    assert len(manifest["assignment"]) == 256
    assert manifest["pending"] is None and manifest["prev_assignment"] is None


def test_3shard_migration_physically_relocates_monitors(tmp_path):
    """3 does not divide 256, so the fixture holds monitors whose legacy
    shard differs from the slot table's — migration must move their state
    (the checkpoints prove it: after resume each shard file holds exactly
    the slot table's monitors)."""
    checkpoint_dir = _copy_fixture("v1-cluster-3shard", tmp_path)
    with ShardedHub(3, checkpoint_dir=checkpoint_dir) as hub:
        expected_moves = [
            key
            for key in _keys()
            if _legacy_route_shard(*key, 3) != hub.shard_of(*key)
        ]
        assert expected_moves  # the fixture exercises the relocation path
        slot_owner = {key: hub.shard_of(*key) for key in _keys()}
    # Residency on disk now matches the slot table, not the legacy modulo
    # (the constructor checkpointed after migrating).
    for index in range(3):
        shard_file = (
            checkpoint_dir / f"shard-{index:02d}" / "hub-checkpoint.json"
        )
        snapshot = json.loads(shard_file.read_text(encoding="utf-8"))
        resident = {
            (m["tenant"], m["monitor_id"]) for m in snapshot["monitors"]
        }
        assert resident == {
            key for key, owner in slot_owner.items() if owner == index
        }


def test_2shard_migration_moves_nothing(tmp_path):
    """2 divides 256: the synthesized table reproduces the legacy layout
    exactly, so migration must not rewrite any shard checkpoint."""
    checkpoint_dir = _copy_fixture("v1-cluster-2shard", tmp_path)
    before = {
        index: (checkpoint_dir / f"shard-{index:02d}" / "hub-checkpoint.json")
        .read_bytes()
        for index in range(2)
    }
    with ShardedHub(2, checkpoint_dir=checkpoint_dir) as hub:
        for key in _keys():
            assert hub.shard_of(*key) == _legacy_route_shard(*key, 2)
    after = {
        index: (checkpoint_dir / f"shard-{index:02d}" / "hub-checkpoint.json")
        .read_bytes()
        for index in range(2)
    }
    assert before == after


def test_v1_resume_still_rejects_wrong_shard_count(tmp_path):
    checkpoint_dir = _copy_fixture("v1-cluster-2shard", tmp_path)
    with pytest.raises(SnapshotError, match="2-shard"):
        ShardedHub(4, checkpoint_dir=checkpoint_dir)


def test_unsupported_future_manifest_version_is_rejected(tmp_path):
    checkpoint_dir = _copy_fixture("v1-cluster-2shard", tmp_path)
    path = checkpoint_dir / MANIFEST_FILENAME
    manifest = json.loads(path.read_text(encoding="utf-8"))
    manifest["schema_version"] = 99
    path.write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(SnapshotError, match="schema version"):
        ShardedHub(2, checkpoint_dir=checkpoint_dir)
