"""Unit tests for the Welch t-test and the variance F-test helpers."""

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.exceptions import ConfigurationError
from repro.stats.ftest import f_statistic, f_test
from repro.stats.welch import welch_degrees_of_freedom, welch_statistic, welch_t_test


def _summary(values):
    return float(np.mean(values)), float(np.var(values, ddof=1)), len(values)


class TestWelch:
    def test_statistic_matches_scipy(self, rng):
        a = rng.normal(0.3, 0.1, size=80)
        b = rng.normal(0.5, 0.2, size=50)
        expected = scipy_stats.ttest_ind(a, b, equal_var=False)
        mean_a, var_a, n_a = _summary(a)
        mean_b, var_b, n_b = _summary(b)
        statistic = welch_statistic(mean_a, var_a, n_a, mean_b, var_b, n_b)
        assert statistic == pytest.approx(expected.statistic, rel=1e-9)

    def test_degrees_of_freedom_match_scipy_formula(self, rng):
        a = rng.normal(0.0, 1.0, size=40)
        b = rng.normal(0.0, 2.0, size=25)
        _, var_a, n_a = _summary(a)
        _, var_b, n_b = _summary(b)
        df = welch_degrees_of_freedom(var_a, n_a, var_b, n_b)
        term_a, term_b = var_a / n_a, var_b / n_b
        expected = (term_a + term_b) ** 2 / (
            term_a ** 2 / (n_a - 1) + term_b ** 2 / (n_b - 1)
        )
        assert df == pytest.approx(expected)

    def test_p_value_matches_scipy(self, rng):
        a = rng.normal(0.3, 0.1, size=60)
        b = rng.normal(0.4, 0.1, size=60)
        expected = scipy_stats.ttest_ind(a, b, equal_var=False)
        result = welch_t_test(*_summary(a), *_summary(b))
        assert result.p_value == pytest.approx(expected.pvalue, rel=1e-6)

    def test_zero_variance_equal_means(self):
        statistic = welch_statistic(0.5, 0.0, 10, 0.5, 0.0, 10)
        assert statistic == 0.0

    def test_zero_variance_different_means_is_infinite(self):
        statistic = welch_statistic(0.9, 0.0, 10, 0.1, 0.0, 10)
        assert math.isinf(statistic)
        result = welch_t_test(0.9, 0.0, 10, 0.1, 0.0, 10)
        assert result.significant
        assert result.p_value == 0.0

    def test_identical_samples_not_significant(self):
        result = welch_t_test(0.5, 0.01, 100, 0.5, 0.01, 100, confidence=0.99)
        assert not result.significant
        assert result.statistic == 0.0

    def test_large_shift_significant(self):
        result = welch_t_test(0.2, 0.01, 100, 0.8, 0.01, 100, confidence=0.99)
        assert result.significant

    def test_invalid_sizes_raise(self):
        with pytest.raises(ConfigurationError):
            welch_statistic(0.5, 0.1, 0, 0.5, 0.1, 10)
        with pytest.raises(ConfigurationError):
            welch_degrees_of_freedom(0.1, 1, 0.1, 10)


class TestFTest:
    def test_statistic_with_eta(self):
        assert f_statistic(0.2, 0.1, eta=0.0) == pytest.approx(4.0)
        # eta keeps the statistic finite when the denominator is zero.
        assert math.isfinite(f_statistic(0.2, 0.0, eta=1e-5))
        assert math.isinf(f_statistic(0.2, 0.0, eta=0.0))

    def test_negative_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            f_statistic(-0.1, 0.1)
        with pytest.raises(ConfigurationError):
            f_statistic(0.1, 0.1, eta=-1.0)

    def test_equal_variances_not_significant(self):
        result = f_test(0.1, 100, 0.1, 100, confidence=0.99)
        assert not result.significant
        assert result.statistic == pytest.approx(1.0, rel=1e-3)

    def test_variance_increase_significant(self):
        result = f_test(0.5, 100, 0.1, 100, confidence=0.99)
        assert result.significant
        assert result.p_value < 0.01

    def test_variance_decrease_not_flagged(self):
        # The test is one-sided: a smaller new variance never rejects.
        result = f_test(0.05, 100, 0.2, 100, confidence=0.99)
        assert not result.significant

    def test_p_value_matches_scipy_survival(self):
        result = f_test(0.3, 50, 0.2, 80, confidence=0.95, eta=0.0)
        expected = scipy_stats.f.sf(result.statistic, 49, 79)
        assert result.p_value == pytest.approx(expected, rel=1e-9)

    def test_small_samples_raise(self):
        with pytest.raises(ConfigurationError):
            f_test(0.1, 1, 0.1, 100)
