"""Registry-driven snapshot round-trip suite.

For every exported detector class (the ten baselines plus OPTWIN) the tests
run a drift-dense stream, snapshot mid-stream at several offsets — including
inside warning zones — push the snapshot through strict JSON, restore into a
fresh instance, and assert *bit-identical* detections and counters versus the
uninterrupted run, in both scalar and ``update_batch`` modes.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.base import SNAPSHOT_SCHEMA_VERSION
from repro.detectors import Ddm, Kswin, Optwin, exported_detector_classes
from repro.exceptions import SnapshotError
from repro.serving.snapshot import (
    desanitize,
    restore_detector,
    sanitize,
    snapshot_detector,
    snapshot_json,
)
from repro.streams.error_streams import BinarySegment, binary_error_stream

DETECTOR_CLASSES = exported_detector_classes()

#: Drift-dense binary stream: alternating calm/noisy segments so every
#: detector fires repeatedly and spends many elements inside warning zones.
_SEGMENTS = [
    BinarySegment(400, 0.05),
    BinarySegment(300, 0.55),
    BinarySegment(300, 0.15),
    BinarySegment(300, 0.65),
    BinarySegment(300, 0.10),
    BinarySegment(400, 0.70),
]

#: Snapshot offsets: early (window still filling), mid-stream, just past the
#: first drift boundary (inside post-drift warning turbulence), and late.
_OFFSETS = (37, 450, 723, 1500)


def _stream_values() -> np.ndarray:
    return binary_error_stream(_SEGMENTS, seed=11).values


def _json_roundtrip(snapshot: dict) -> dict:
    """Strict-JSON round trip (allow_nan=False proves JSON-safety)."""
    return json.loads(json.dumps(snapshot, sort_keys=True, allow_nan=False))


def _scalar_run(detector, values):
    drifts, warnings = [], []
    for index, value in enumerate(values):
        outcome = detector.update(float(value))
        if outcome.drift_detected:
            drifts.append(index)
        if outcome.warning_detected:
            warnings.append(index)
    return drifts, warnings


def _counters(detector):
    return detector.n_seen, detector.n_drifts, detector.n_warnings


@pytest.mark.parametrize("cls", DETECTOR_CLASSES, ids=lambda c: c.__name__)
@pytest.mark.parametrize("offset", _OFFSETS)
def test_roundtrip_bit_exact_batch_mode(cls, offset):
    values = _stream_values()
    uninterrupted = cls()
    full = uninterrupted.update_batch(values)

    first = cls()
    head = first.update_batch(values[:offset])
    snapshot = _json_roundtrip(snapshot_detector(first))
    resumed = restore_detector(snapshot)
    assert resumed is not first
    tail = resumed.update_batch(values[offset:])

    stitched_drifts = head.drift_indices + [offset + i for i in tail.drift_indices]
    stitched_warnings = head.warning_indices + [
        offset + i for i in tail.warning_indices
    ]
    assert stitched_drifts == full.drift_indices
    assert stitched_warnings == full.warning_indices
    assert _counters(resumed) == _counters(uninterrupted)


@pytest.mark.parametrize("cls", DETECTOR_CLASSES, ids=lambda c: c.__name__)
def test_roundtrip_bit_exact_scalar_mode(cls):
    values = _stream_values()[:900]
    offset = 451
    uninterrupted = cls()
    full_drifts, full_warnings = _scalar_run(uninterrupted, values)

    first = cls()
    head_drifts, head_warnings = _scalar_run(first, values[:offset])
    resumed = restore_detector(_json_roundtrip(snapshot_detector(first)))
    tail_drifts, tail_warnings = _scalar_run(resumed, values[offset:])

    assert head_drifts + [offset + i for i in tail_drifts] == full_drifts
    assert head_warnings + [offset + i for i in tail_warnings] == full_warnings
    assert _counters(resumed) == _counters(uninterrupted)


@pytest.mark.parametrize("cls", DETECTOR_CLASSES, ids=lambda c: c.__name__)
def test_roundtrip_crosses_modes(cls):
    """A scalar-mode run resumed in batch mode (and vice versa) stays exact."""
    values = _stream_values()[:800]
    offset = 390
    uninterrupted = cls()
    full = uninterrupted.update_batch(values)

    first = cls()
    head_drifts, _ = _scalar_run(first, values[:offset])
    resumed = restore_detector(_json_roundtrip(snapshot_detector(first)))
    tail = resumed.update_batch(values[offset:])
    assert head_drifts + [offset + i for i in tail.drift_indices] == full.drift_indices
    assert _counters(resumed) == _counters(uninterrupted)


@pytest.mark.parametrize("cls", DETECTOR_CLASSES, ids=lambda c: c.__name__)
def test_snapshot_schema(cls):
    detector = cls()
    detector.update_batch(_stream_values()[:600])
    snapshot = snapshot_detector(detector)
    assert snapshot["schema_version"] == SNAPSHOT_SCHEMA_VERSION
    assert snapshot["detector"] == cls.__name__
    assert set(snapshot) == {
        "schema_version",
        "detector",
        "config",
        "counters",
        "last_result",
        "state",
    }
    # Canonical JSON text is stable across repeated serialization.
    assert snapshot_json(detector) == snapshot_json(detector)


def test_sanitize_roundtrips_nonfinite_floats():
    payload = {
        "inf": math.inf,
        "ninf": -math.inf,
        "nan": math.nan,
        "nested": [1.5, {"deep": math.inf}],
        "plain": {"n": 3, "flag": True, "text": "x"},
    }
    safe = sanitize(payload)
    json.dumps(safe, allow_nan=False)  # must not raise
    restored = desanitize(safe)
    assert restored["inf"] == math.inf
    assert restored["ninf"] == -math.inf
    assert math.isnan(restored["nan"])
    assert restored["nested"][1]["deep"] == math.inf
    assert restored["plain"] == payload["plain"]


def test_restore_rejects_wrong_schema_version():
    snapshot = snapshot_detector(Ddm())
    snapshot["schema_version"] = 999
    with pytest.raises(SnapshotError):
        restore_detector(snapshot)


def test_load_rejects_wrong_class():
    snapshot = Ddm().state_dict()
    with pytest.raises(SnapshotError):
        Kswin().load_state_dict(snapshot)


def test_restore_preserves_configuration():
    detector = Optwin(delta=0.95, rho=1.0, w_min=40, w_max=500, reset_mode="keep_new")
    detector.update_batch(_stream_values()[:300])
    resumed = restore_detector(snapshot_detector(detector))
    assert isinstance(resumed, Optwin)
    assert resumed.config == detector.config
    assert resumed._reset_mode == detector._reset_mode

    kswin = Kswin(alpha=0.01, window_size=120, stat_size=40, seed=9)
    kswin.update_batch(_stream_values()[:400])
    resumed_kswin = restore_detector(snapshot_detector(kswin))
    assert resumed_kswin._config_dict() == kswin._config_dict()
    # The restored RNG continues the original sequence exactly.
    assert resumed_kswin._rng.random() == kswin._rng.random()


def test_snapshot_inside_warning_zone():
    """Snapshotting while the warning zone is active preserves the zone."""
    values = _stream_values()
    detector = Ddm()
    warning_offset = None
    for index, value in enumerate(values):
        outcome = detector.update(float(value))
        if outcome.warning_detected and not outcome.drift_detected:
            warning_offset = index + 1
            break
    assert warning_offset is not None, "stream never produced a pure warning"
    resumed = restore_detector(_json_roundtrip(snapshot_detector(detector)))
    assert resumed.warning_detected and not resumed.drift_detected

    uninterrupted = Ddm()
    full = uninterrupted.update_batch(values)
    head = Ddm()
    head_result = head.update_batch(values[:warning_offset])
    tail = resumed.update_batch(values[warning_offset:])
    stitched = head_result.drift_indices + [
        warning_offset + i for i in tail.drift_indices
    ]
    assert stitched == full.drift_indices
