"""Unit tests for the RDDM and HDDM_A extension baselines."""

import numpy as np
import pytest

from repro.detectors.hddm import HddmA
from repro.detectors.rddm import Rddm
from repro.exceptions import ConfigurationError


class TestRddm:
    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            Rddm(min_num_instances=0)
        with pytest.raises(ConfigurationError):
            Rddm(warning_level=3.0, drift_level=2.0)
        with pytest.raises(ConfigurationError):
            Rddm(max_concept_size=100, min_stable_size=100)
        with pytest.raises(ConfigurationError):
            Rddm(warning_limit=0)

    def test_detects_error_rate_increase(self, sudden_binary_stream):
        detector = Rddm()
        detections = detector.update_many(sudden_binary_stream.values)
        post = [d for d in detections if d >= 2_000]
        assert post
        assert post[0] - 2_000 < 1_000

    def test_low_false_positives_on_stationary_stream(self, rng):
        detector = Rddm()
        values = (rng.random(10_000) < 0.3).astype(float)
        assert len(detector.update_many(values)) <= 1

    def test_statistics_rebuilt_after_max_concept_size(self, rng):
        detector = Rddm(max_concept_size=2_000, min_stable_size=500)
        values = (rng.random(5_000) < 0.3).astype(float)
        detector.update_many(values)
        # After the reactive rebuild the internal counter restarts from the
        # recent buffer, so it stays well below the number of processed items.
        assert detector._n < 3_000

    def test_long_warning_forces_drift(self, rng):
        detector = Rddm(warning_limit=50, min_num_instances=30)
        # A slow, small increase keeps DDM-style statistics in the warning
        # zone for a long time; RDDM converts that into a drift.
        values = []
        for index in range(4_000):
            p = 0.2 + min(index / 8_000.0, 0.15)
            values.append(1.0 if rng.random() < p else 0.0)
        detections = detector.update_many(values)
        assert detections

    def test_reset(self):
        detector = Rddm()
        detector.update_many([1.0] * 200)
        detector.reset()
        assert detector.n_seen == 0
        assert detector._n == 0


class TestHddmA:
    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            HddmA(drift_confidence=0.01, warning_confidence=0.001)
        with pytest.raises(ConfigurationError):
            HddmA(value_range=0.0)

    def test_detects_mean_increase_binary(self, sudden_binary_stream):
        detector = HddmA()
        detections = detector.update_many(sudden_binary_stream.values)
        post = [d for d in detections if d >= 2_000]
        assert post
        assert post[0] - 2_000 < 400

    def test_detects_mean_increase_real_valued(self, sudden_gaussian_stream):
        detector = HddmA(value_range=1.0)
        detections = detector.update_many(sudden_gaussian_stream.values)
        assert any(d >= 2_000 for d in detections)

    def test_ignores_improvements(self, rng):
        detector = HddmA()
        values = np.concatenate(
            [
                (rng.random(2_000) < 0.6).astype(float),
                (rng.random(2_000) < 0.2).astype(float),
            ]
        )
        detections = detector.update_many(values)
        assert [d for d in detections if d >= 2_000] == []

    def test_low_false_positives_on_stationary_stream(self, rng):
        detector = HddmA()
        values = (rng.random(10_000) < 0.3).astype(float)
        assert len(detector.update_many(values)) <= 1

    def test_warning_precedes_drift(self, sudden_binary_stream):
        detector = HddmA()
        first_warning = None
        first_drift = None
        for index, value in enumerate(sudden_binary_stream.values):
            result = detector.update(value)
            if result.warning_detected and first_warning is None and index >= 2_000:
                first_warning = index
            if result.drift_detected and index >= 2_000:
                first_drift = index
                break
        assert first_drift is not None and first_warning is not None
        assert first_warning <= first_drift

    def test_reset(self):
        detector = HddmA()
        detector.update_many([0.2] * 100)
        detector.reset()
        assert detector.n_seen == 0
