"""Unit tests for the synthetic labeled-stream generators."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.streams.synthetic import (
    AgrawalGenerator,
    HyperplaneGenerator,
    LedGenerator,
    RandomRbfDriftGenerator,
    RandomRbfGenerator,
    SeaGenerator,
    SineGenerator,
    StaggerGenerator,
)


class TestStagger:
    def test_schema(self):
        stream = StaggerGenerator()
        assert stream.n_features == 3
        assert stream.n_classes == 2
        assert all(attribute.is_nominal for attribute in stream.schema)

    def test_labels_follow_concept_1(self):
        stream = StaggerGenerator(classification_function=1, seed=5)
        for instance in stream.take(500):
            size, color, _ = instance.x
            expected = int(size == 0 and color == 0)
            assert instance.y == expected

    def test_labels_follow_concept_3(self):
        stream = StaggerGenerator(classification_function=3, seed=5)
        for instance in stream.take(500):
            size = instance.x[0]
            assert instance.y == int(size in (1, 2))

    def test_different_concepts_disagree(self):
        a = StaggerGenerator(classification_function=1, seed=9)
        b = StaggerGenerator(classification_function=2, seed=9)
        labels_a = [i.y for i in a.take(300)]
        labels_b = [i.y for i in b.take(300)]
        assert labels_a != labels_b

    def test_balanced_classes(self):
        stream = StaggerGenerator(classification_function=1, balance_classes=True, seed=2)
        labels = [instance.y for instance in stream.take(200)]
        assert abs(sum(labels) - 100) <= 1

    def test_invalid_function_raises(self):
        with pytest.raises(ConfigurationError):
            StaggerGenerator(classification_function=4)


class TestAgrawal:
    def test_schema(self):
        stream = AgrawalGenerator()
        assert stream.n_features == 9
        assert stream.n_classes == 2
        kinds = [attribute.kind for attribute in stream.schema]
        assert kinds.count("nominal") == 3

    def test_attribute_ranges(self):
        stream = AgrawalGenerator(seed=4)
        for instance in stream.take(300):
            salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan = instance.x
            assert 20_000 <= salary <= 150_000
            assert commission == 0.0 or 10_000 <= commission <= 75_000
            assert 20 <= age <= 80
            assert 0 <= elevel <= 4
            assert 1 <= car <= 20
            assert 0 <= zipcode <= 8
            assert 1 <= hyears <= 30
            assert 0 <= loan <= 500_000

    def test_function_1_definition(self):
        stream = AgrawalGenerator(classification_function=1, seed=4)
        for instance in stream.take(300):
            age = instance.x[2]
            assert instance.y == int(age < 40 or age >= 60)

    @pytest.mark.parametrize("function_id", range(1, 10))
    def test_functions_produce_both_classes(self, function_id):
        stream = AgrawalGenerator(classification_function=function_id, seed=11)
        labels = {instance.y for instance in stream.take(2_000)}
        assert labels == {0, 1}

    def test_function_10_is_heavily_imbalanced(self):
        # Functions using the "equity" term approve almost every loan, a known
        # property of the original generator (hence MOA's balanceClasses flag).
        stream = AgrawalGenerator(classification_function=10, seed=11)
        labels = [instance.y for instance in stream.take(1_000)]
        assert np.mean(labels) > 0.9

    def test_perturbation_keeps_ranges(self):
        stream = AgrawalGenerator(perturbation=0.5, seed=4)
        for instance in stream.take(200):
            assert 20_000 <= instance.x[0] <= 150_000

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            AgrawalGenerator(classification_function=11)
        with pytest.raises(ConfigurationError):
            AgrawalGenerator(perturbation=2.0)


class TestRandomRbf:
    def test_schema_and_labels(self):
        stream = RandomRbfGenerator(n_classes=3, n_features=5, n_centroids=20, seed=2)
        labels = {instance.y for instance in stream.take(400)}
        assert labels.issubset({0, 1, 2})
        assert stream.n_features == 5

    def test_same_model_seed_same_concept(self):
        a = RandomRbfGenerator(model_seed=7, seed=1)
        b = RandomRbfGenerator(model_seed=7, seed=1)
        assert [i.y for i in a.take(100)] == [i.y for i in b.take(100)]

    def test_different_model_seed_changes_concept(self):
        a = RandomRbfGenerator(model_seed=7, seed=1)
        b = RandomRbfGenerator(model_seed=8, seed=1)
        assert [i.y for i in a.take(200)] != [i.y for i in b.take(200)]

    def test_drift_generator_moves_centroids(self):
        stream = RandomRbfDriftGenerator(change_speed=0.01, seed=2, model_seed=2)
        before = [c.centre.copy() for c in stream._centroids]
        stream.take(100)
        moved = any(
            not np.allclose(before[i], stream._centroids[i].centre)
            for i in range(len(before))
        )
        assert moved

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            RandomRbfGenerator(n_centroids=0)
        with pytest.raises(ConfigurationError):
            RandomRbfDriftGenerator(change_speed=-1.0)


class TestSeaSineLedHyperplane:
    def test_sea_threshold(self):
        stream = SeaGenerator(classification_function=1, seed=3)
        for instance in stream.take(300):
            assert instance.y == int(instance.x[0] + instance.x[1] <= 8.0)

    def test_sea_noise_flips_labels(self):
        clean = SeaGenerator(classification_function=1, noise_fraction=0.0, seed=3)
        noisy = SeaGenerator(classification_function=1, noise_fraction=0.4, seed=3)
        clean_labels = [i.y for i in clean.take(400)]
        noisy_labels = [i.y for i in noisy.take(400)]
        assert clean_labels != noisy_labels

    def test_sine_reversed_flips_labels(self):
        normal = SineGenerator(classification_function=1, seed=6)
        reverse = SineGenerator(classification_function=2, seed=6)
        assert [i.y for i in normal.take(200)] == [1 - i.y for i in reverse.take(200)]

    def test_led_labels_and_schema(self):
        stream = LedGenerator(noise_fraction=0.0, seed=2)
        assert stream.n_classes == 10
        assert stream.n_features == 24
        for instance in stream.take(100):
            assert 0 <= instance.y <= 9
            assert set(np.unique(instance.x)).issubset({0.0, 1.0})

    def test_led_noise_free_is_decodable(self):
        from repro.streams.synthetic.led import _DIGIT_SEGMENTS

        stream = LedGenerator(noise_fraction=0.0, n_irrelevant=0, seed=2)
        for instance in stream.take(100):
            np.testing.assert_array_equal(instance.x, _DIGIT_SEGMENTS[instance.y])

    def test_hyperplane_label_balance(self):
        stream = HyperplaneGenerator(seed=5, noise_fraction=0.0)
        labels = [instance.y for instance in stream.take(1_000)]
        assert 0.3 < np.mean(labels) < 0.7

    def test_hyperplane_drift_changes_weights(self):
        stream = HyperplaneGenerator(magnitude=0.01, n_drift_features=3, seed=5)
        before = stream._weights.copy()
        stream.take(200)
        assert not np.allclose(before, stream._weights)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            SeaGenerator(classification_function=9)
        with pytest.raises(ConfigurationError):
            SineGenerator(classification_function=0)
        with pytest.raises(ConfigurationError):
            LedGenerator(noise_fraction=1.5)
        with pytest.raises(ConfigurationError):
            HyperplaneGenerator(n_drift_features=99)
