"""Golden equivalence tests for the batched detector execution engine.

Every exported detector must report *exactly* the same drift and warning
indices through ``update_batch`` as through the element-by-element ``update``
loop — over binary, real-valued, and drift-dense streams, across multiple
drifts/resets, for any chunking of the input, and leaving the detector in an
indistinguishable internal state afterwards.  The detector line-up is checked
against :func:`repro.detectors.exported_detector_classes`, so adding a
detector without covering it here fails the registry test.
"""

import numpy as np
import pytest

from repro.core.base import DriftDetector
from repro.core.optwin import Optwin
from repro.detectors import exported_detector_classes
from repro.detectors.adwin import Adwin
from repro.detectors.ddm import Ddm
from repro.detectors.ecdd import Ecdd
from repro.detectors.eddm import Eddm
from repro.detectors.hddm import HddmA
from repro.detectors.kswin import Kswin
from repro.detectors.no_detector import NoDriftDetector
from repro.detectors.page_hinkley import PageHinkley
from repro.detectors.rddm import Rddm
from repro.detectors.stepd import Stepd


def _multi_drift_binary(seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    parts = [
        (rng.random(2_500) < p).astype(np.float64)
        for p in (0.2, 0.6, 0.15, 0.5, 0.3)
    ]
    return np.concatenate(parts)


def _multi_drift_gaussian(seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    parts = [
        rng.normal(mean, std, 2_500)
        for mean, std in ((0.2, 0.05), (0.7, 0.05), (0.3, 0.3), (0.9, 0.1))
    ]
    return np.concatenate(parts)


def _drift_dense_binary(seed: int = 9) -> np.ndarray:
    """Short alternating segments: every detector resets many times."""
    rng = np.random.default_rng(seed)
    parts = [
        (rng.random(400) < p).astype(np.float64)
        for p in (0.05, 0.9) * 8
    ]
    return np.concatenate(parts)


STREAMS = {
    "binary_multi_drift": _multi_drift_binary(),
    "gaussian_multi_drift": _multi_drift_gaussian(),
    "drift_dense": _drift_dense_binary(),
    "constant": np.full(500, 0.25),
    "tiny": np.asarray([0.0, 1.0, 0.0]),
}

DETECTORS = {
    "optwin": lambda: Optwin(rho=0.5, w_max=5_000),
    "optwin_keep_new": lambda: Optwin(rho=0.5, w_max=5_000, reset_mode="keep_new"),
    "optwin_two_sided": lambda: Optwin(rho=0.5, w_max=5_000, one_sided=False),
    "optwin_no_warning": lambda: Optwin(rho=0.5, w_max=5_000, warning_delta=0.0),
    "optwin_small_window": lambda: Optwin(rho=0.5, w_max=300),
    "optwin_literal": lambda: Optwin(
        rho=0.5, w_max=5_000, skip_variance_on_binary=False, require_magnitude=False
    ),
    "adwin": Adwin,
    "adwin_every_element": lambda: Adwin(clock=1, delta=0.05),
    "ddm": Ddm,
    "eddm": Eddm,
    "stepd": Stepd,
    "stepd_wide": lambda: Stepd(window_size=100, alpha_drift=0.01, alpha_warning=0.2),
    "ecdd": Ecdd,
    "ecdd_arl100": lambda: Ecdd(arl0=100),
    "page_hinkley": PageHinkley,
    "kswin": Kswin,
    "kswin_sensitive": lambda: Kswin(alpha=0.01, window_size=200, stat_size=40, seed=3),
    "rddm": Rddm,
    "rddm_reactive": lambda: Rddm(
        max_concept_size=3_000, min_stable_size=1_000, warning_limit=200
    ),
    "hddm_a": HddmA,
    "no_detector": NoDriftDetector,
}


def test_registry_every_exported_detector_is_covered():
    """The golden suite must exercise every exported detector class."""
    covered = {type(factory()) for factory in DETECTORS.values()}
    missing = [
        cls.__name__
        for cls in exported_detector_classes()
        if cls not in covered
    ]
    assert not missing, f"exported detectors missing golden coverage: {missing}"


def _scalar_reference(detector: DriftDetector, values: np.ndarray):
    drifts, warnings = [], []
    for index, value in enumerate(values):
        outcome = detector.update(value)
        if outcome.drift_detected:
            drifts.append(index)
        if outcome.warning_detected:
            warnings.append(index)
    return drifts, warnings


_TAIL = (np.random.default_rng(42).random(400) < 0.4).astype(np.float64)
_SCALAR_CACHE = {}


def _scalar_fingerprint(detector_name: str, stream_name: str):
    """Scalar-mode reference, memoised across the chunk-size parametrisation.

    Returns drift/warning indices, the counter triple, the last-result flags,
    and the outcomes of continuing the detector on a fixed tail stream (a
    fingerprint of its internal post-run state).
    """
    key = (detector_name, stream_name)
    cached = _SCALAR_CACHE.get(key)
    if cached is None:
        detector = DETECTORS[detector_name]()
        drifts, warnings = _scalar_reference(detector, STREAMS[stream_name])
        counters = (detector.n_seen, detector.n_drifts, detector.n_warnings)
        flags = (detector.drift_detected, detector.warning_detected)
        tail = [detector.update(v).drift_detected for v in _TAIL]
        cached = (drifts, warnings, counters, flags, tail)
        _SCALAR_CACHE[key] = cached
    return cached


def _batched(detector: DriftDetector, values: np.ndarray, chunk: int):
    drifts, warnings = [], []
    for low in range(0, values.shape[0], chunk):
        outcome = detector.update_batch(values[low : low + chunk])
        drifts.extend(low + k for k in outcome.drift_indices)
        warnings.extend(low + k for k in outcome.warning_indices)
    return drifts, warnings


@pytest.mark.parametrize("chunk", [1, 7, 64, 10**9])
@pytest.mark.parametrize("stream_name", sorted(STREAMS))
@pytest.mark.parametrize("detector_name", sorted(DETECTORS))
def test_batch_matches_scalar(detector_name, stream_name, chunk):
    values = STREAMS[stream_name]
    scalar_drifts, scalar_warnings, counters, flags, scalar_tail = (
        _scalar_fingerprint(detector_name, stream_name)
    )
    batch_detector = DETECTORS[detector_name]()
    batch_drifts, batch_warnings = _batched(batch_detector, values, chunk)

    assert batch_drifts == scalar_drifts
    assert batch_warnings == scalar_warnings
    assert (
        batch_detector.n_seen,
        batch_detector.n_drifts,
        batch_detector.n_warnings,
    ) == counters
    assert (
        batch_detector.drift_detected,
        batch_detector.warning_detected,
    ) == flags

    # The post-batch internal state must be indistinguishable: continuing the
    # detector element-by-element must yield the scalar-mode outcomes.
    batch_tail = [batch_detector.update(v).drift_detected for v in _TAIL]
    assert batch_tail == scalar_tail


def test_optwin_batch_survives_compaction():
    """Long stream + small window: the dead-prefix compaction of PrefixStats
    fires repeatedly in both modes and must not perturb the indices."""
    rng = np.random.default_rng(11)
    parts = [
        (rng.random(9_000) < p).astype(np.float64) for p in (0.2, 0.5, 0.25)
    ]
    values = np.concatenate(parts)
    scalar_detector = Optwin(rho=0.5, w_max=400)
    batch_detector = Optwin(rho=0.5, w_max=400)
    scalar_drifts, scalar_warnings = _scalar_reference(scalar_detector, values)
    result = batch_detector.update_batch(values)
    assert result.drift_indices == scalar_drifts
    assert result.warning_indices == scalar_warnings
    assert batch_detector.window_size == scalar_detector.window_size


def test_optwin_batch_compaction_with_real_values_is_bit_identical():
    """Regression test for the compaction boundary: 0/1 streams have integer
    prefix sums, so their slice-and-rebase compaction is exact — only
    real-valued streams can expose an ulp drift between rebased and
    un-rebased range queries.  A large-magnitude stationary stream with
    ~14,700 evictions forces the rebase mid-stream while warnings fire, and
    the batched indices must still match scalar mode exactly."""
    rng = np.random.default_rng(23)
    values = rng.normal(1e6, 3.0, 15_000) + rng.random(15_000)
    scalar_detector = Optwin(rho=0.5, w_max=300, one_sided=False)
    batch_detector = Optwin(rho=0.5, w_max=300, one_sided=False)
    scalar_drifts, scalar_warnings = _scalar_reference(scalar_detector, values)
    result = batch_detector.update_batch(values)
    assert scalar_warnings  # the stream must actually exercise the tests
    assert result.drift_indices == scalar_drifts
    assert result.warning_indices == scalar_warnings
    assert batch_detector.window_mean == scalar_detector.window_mean
    assert batch_detector.window_std == scalar_detector.window_std


def test_update_many_routes_through_batch():
    values = _multi_drift_binary()
    via_many = Optwin(rho=0.5, w_max=5_000).update_many(values)
    via_batch = Optwin(rho=0.5, w_max=5_000).update_batch(values).drift_indices
    assert via_many == via_batch
    assert via_many  # the stream contains real drifts


def test_collect_stats_matches_scalar_statistics():
    values = _multi_drift_binary()[:2_000]
    scalar_detector = Optwin(rho=0.5, w_max=5_000)
    batch_detector = Optwin(rho=0.5, w_max=5_000)
    scalar_results = [scalar_detector.update(v) for v in values]
    outcome = batch_detector.update_batch(values, collect_stats=True)
    assert outcome.results is not None
    assert len(outcome.results) == len(scalar_results)
    for got, expected in zip(outcome.results, scalar_results):
        assert got.drift_detected == expected.drift_detected
        assert got.warning_detected == expected.warning_detected
        assert got.statistics == expected.statistics


def test_batch_empty_input_is_a_noop():
    for factory in DETECTORS.values():
        detector = factory()
        outcome = detector.update_batch(np.empty(0))
        assert outcome.n_processed == 0
        assert outcome.drift_indices == []
        assert detector.n_seen == 0


def test_batch_accepts_plain_iterables():
    detector = Optwin(rho=0.5, w_max=5_000)
    values = _multi_drift_binary()
    from_list = detector.update_many(values.tolist())
    detector.reset()
    from_generator = detector.update_many(float(v) for v in values)
    detector.reset()
    from_array = detector.update_many(values)
    assert from_list == from_generator == from_array


def test_subclass_overriding_update_one_falls_back_to_scalar():
    class SilencedOptwin(Optwin):
        def _update_one(self, value):
            result = super()._update_one(value)
            if result.drift_detected:
                from repro.core.base import DetectionResult

                return DetectionResult(statistics=result.statistics)
            return result

    values = _multi_drift_binary()
    detector = SilencedOptwin(rho=0.5, w_max=5_000)
    assert detector.update_many(values) == []
    assert Optwin(rho=0.5, w_max=5_000).update_many(values) != []
