"""Unit and behavioural tests for the OPTWIN detector itself."""

import numpy as np
import pytest

from repro.core import DriftType, Optwin, OptwinConfig
from repro.exceptions import ConfigurationError


def test_no_detection_before_w_min():
    detector = Optwin(w_min=30)
    for index in range(29):
        result = detector.update(0.5)
        assert not result.drift_detected
    assert detector.window_size == 29


def test_window_bounded_by_w_max():
    detector = Optwin(w_min=30, w_max=100)
    for _ in range(500):
        detector.update(0.5)
    assert detector.window_size <= 100


def test_detects_sudden_mean_increase(sudden_gaussian_stream):
    detector = Optwin(rho=0.5, w_max=5_000)
    detections = detector.update_many(sudden_gaussian_stream.values)
    post = [d for d in detections if d >= 2_000]
    assert post, "the mean shift at 2000 must be detected"
    assert post[0] - 2_000 < 300


def test_detects_sudden_binary_drift(sudden_binary_stream):
    detector = Optwin(rho=0.5, w_max=5_000)
    detections = detector.update_many(sudden_binary_stream.values)
    post = [d for d in detections if d >= 2_000]
    assert post
    assert post[0] - 2_000 < 300


def test_detects_variance_only_drift(variance_only_stream):
    detector = Optwin(rho=0.5, w_max=5_000, one_sided=False)
    drift_types = []
    for index, value in enumerate(variance_only_stream.values):
        result = detector.update(value)
        if result.drift_detected and index >= 2_000:
            drift_types.append(result.drift_type)
            break
    assert drift_types and drift_types[0] == DriftType.VARIANCE


def test_one_sided_ignores_improvement():
    rng = np.random.default_rng(3)
    detector = Optwin(rho=0.5, w_max=5_000, one_sided=True)
    detections = []
    for index in range(4_000):
        mean = 0.8 if index < 2_000 else 0.2  # the "error" improves
        if detector.update(rng.normal(mean, 0.05)).drift_detected:
            detections.append(index)
    assert detections == []


def test_two_sided_detects_improvement():
    rng = np.random.default_rng(3)
    detector = Optwin(rho=0.5, w_max=5_000, one_sided=False)
    detections = []
    for index in range(4_000):
        mean = 0.8 if index < 2_000 else 0.2
        if detector.update(rng.normal(mean, 0.05)).drift_detected:
            detections.append(index)
    assert any(d >= 2_000 for d in detections)


def test_low_false_positive_rate_on_stationary_stream():
    rng = np.random.default_rng(11)
    detector = Optwin(rho=0.5, w_max=25_000)
    false_positives = sum(
        detector.update(value).drift_detected for value in rng.normal(0.3, 0.1, 20_000)
    )
    assert false_positives <= 3


def test_warning_precedes_or_accompanies_drift(sudden_binary_stream):
    detector = Optwin(rho=0.5, w_max=5_000, warning_delta=0.9)
    first_warning = None
    first_drift = None
    for index, value in enumerate(sudden_binary_stream.values):
        result = detector.update(value)
        if result.warning_detected and first_warning is None and index >= 2_000:
            first_warning = index
        if result.drift_detected and first_drift is None and index >= 2_000:
            first_drift = index
            break
    assert first_drift is not None
    assert first_warning is not None
    assert first_warning <= first_drift


def test_reset_clears_state():
    detector = Optwin()
    for _ in range(100):
        detector.update(0.5)
    detector.reset()
    assert detector.window_size == 0
    assert detector.n_seen == 0
    assert detector.n_drifts == 0


def test_window_cleared_after_drift(sudden_binary_stream):
    detector = Optwin(rho=0.5, w_max=5_000, reset_mode="full")
    for value in sudden_binary_stream.values:
        if detector.update(value).drift_detected:
            break
    assert detector.window_size == 0


def test_keep_new_reset_mode_keeps_recent_window(sudden_binary_stream):
    detector = Optwin(rho=0.5, w_max=5_000, reset_mode="keep_new")
    for value in sudden_binary_stream.values:
        if detector.update(value).drift_detected:
            break
    assert detector.window_size > 0


def test_statistics_reported_on_update():
    detector = Optwin(w_min=30)
    for _ in range(50):
        result = detector.update(0.5)
    stats = result.statistics
    assert stats["window_size"] == 50
    assert "t_statistic" in stats and "f_statistic" in stats
    assert stats["t_critical"] > 0 and stats["f_critical"] > 1.0


def test_rho_trade_off_delay():
    """Higher rho -> smaller W_new -> shorter delay on a large sudden drift."""

    def first_delay(rho: float) -> int:
        rng = np.random.default_rng(5)
        detector = Optwin(rho=rho, w_max=25_000)
        for index in range(8_000):
            p = 0.2 if index < 4_000 else 0.7
            value = 1.0 if rng.random() < p else 0.0
            if detector.update(value).drift_detected and index >= 4_000:
                return index - 4_000
        return 10_000

    assert first_delay(1.0) <= first_delay(0.1)


def test_detectable_shift_reported():
    detector = Optwin(rho=0.5)
    assert detector.detectable_shift() is None
    for _ in range(400):
        detector.update(float(np.random.default_rng(1).random()))
    shift = detector.detectable_shift()
    assert shift is not None and shift > 0.0


def test_memory_estimate_matches_paper_order_of_magnitude():
    detector = Optwin(w_max=25_000)
    # The paper quotes roughly 390 KB for w_max = 25,000.
    assert 100_000 < detector.memory_bytes() < 2_000_000


def test_variance_test_skipped_on_binary_streams():
    # Rare-error Bernoulli streams violate the F-test's distributional
    # assumptions; by default OPTWIN therefore relies on the t-test alone for
    # 0/1 inputs, which keeps the false-positive count near zero.
    rng = np.random.default_rng(2)
    values = (rng.random(20_000) < 0.05).astype(float)
    detector = Optwin(rho=0.5, w_max=25_000)
    variance_detections = 0
    total_detections = 0
    for value in values:
        result = detector.update(value)
        if result.drift_detected:
            total_detections += 1
            if result.drift_type == DriftType.VARIANCE:
                variance_detections += 1
    assert variance_detections == 0
    assert total_detections <= 1


def test_variance_test_restored_when_flag_disabled():
    rng = np.random.default_rng(2)
    values = (rng.random(5_000) < 0.05).astype(float)
    literal = Optwin(rho=0.5, w_max=25_000, skip_variance_on_binary=False)
    default = Optwin(rho=0.5, w_max=25_000)
    # The literal Algorithm-1 variant fires at least as often on skewed binary
    # data as the default configuration.
    assert len(literal.update_many(values)) >= len(default.update_many(values))


def test_real_valued_input_keeps_variance_test(variance_only_stream):
    detector = Optwin(rho=0.5, w_max=5_000, one_sided=False)
    detections = detector.update_many(variance_only_stream.values)
    assert any(d >= 2_000 for d in detections)


def test_invalid_reset_mode_raises():
    with pytest.raises(ConfigurationError):
        Optwin(reset_mode="bogus")


def test_config_object_takes_precedence():
    config = OptwinConfig(delta=0.95, rho=2.0, w_min=40, w_max=500)
    detector = Optwin(delta=0.99, rho=0.1, config=config)
    assert detector.config is config
    assert detector.config.rho == 2.0
