"""Ablation A4 — the rho-magnitude gate vs a pure significance test."""

from conftest import run_once

from repro.evaluation.reporting import format_detection_rows
from repro.experiments.ablations import run_magnitude_gate_ablation
from repro.experiments.table1 import summaries_to_rows


def test_ablation_magnitude_gate(benchmark, scale, report):
    summaries = run_once(
        benchmark,
        run_magnitude_gate_ablation,
        n_repetitions=scale["n_repetitions"] + 2,
        segment_length=scale["segment_length"] * 2,
    )
    rows = summaries_to_rows(summaries)
    report(
        "ablation_magnitude",
        format_detection_rows(
            rows,
            title="Ablation A4 - rho magnitude gate vs pure significance testing",
        ),
    )
    gated = summaries["OPTWIN (with magnitude gate)"]
    ungated = summaries["OPTWIN (significance only)"]
    # The gate implements the paper's definition of rho and is what keeps the
    # false-positive count near zero without hurting recall.
    assert gated.mean_false_positives <= ungated.mean_false_positives
    assert gated.aggregate.recall >= ungated.aggregate.recall - 0.1
