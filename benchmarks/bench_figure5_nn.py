"""Figure 5 + run-time claim — the neural-network pipeline (experiment E12)."""

from conftest import run_once

from repro.evaluation.reporting import format_table
from repro.experiments.figure5 import run_figure5


def test_figure5_nn_pipeline(benchmark, scale, report):
    results = run_once(
        benchmark,
        run_figure5,
        n_batches=scale["nn_batches"],
        batch_size=32,
        n_drifts=4,
        fine_tune_batches=scale["nn_fine_tune"],
        seed=1,
    )
    rows = []
    for name, result in results.items():
        row = result.as_row()
        rows.append(
            [
                name,
                row["detections"],
                row["tp"],
                row["fp"],
                row["retraining_batches"],
                f"{row['retraining_seconds']:.2f}",
                f"{row['total_seconds']:.2f}",
                f"{100 * row['mean_accuracy']:.1f}%",
            ]
        )
    report(
        "figure5_nn",
        format_table(
            [
                "Detector",
                "Detections",
                "TP",
                "FP",
                "Retrain batches",
                "Retrain s",
                "Total s",
                "Accuracy",
            ],
            rows,
            title="Figure 5 - drift-aware NN pipeline (OPTWIN vs ADWIN)",
        ),
    )
    adwin = results["ADWIN"]
    optwin = results["OPTWIN rho=0.5"]
    # Paper shape: OPTWIN catches (almost) every label swap with fewer false
    # alarms than ADWIN and therefore triggers no more retraining; ADWIN still
    # reacts to the swaps but pays with extra detections around each one.
    assert optwin.true_positives >= 3
    assert adwin.report.n_detections >= 3
    assert optwin.false_positives <= adwin.false_positives
    assert (
        optwin.report.n_retraining_batches <= adwin.report.n_retraining_batches
    )
