"""Grid-level wall-clock of the orchestrated experiment layer (experiment E14).

Two comparisons, both on deliberately small grids so the suite stays fast:

* **Value grid** (Table 1, sudden binary): the sequential scalar reference
  path (``detector_batch_size=1``, the literal element-by-element loop)
  versus the batched orchestrated path — bit-identical results, detector
  cost cut to the vectorized fast-path cost.
* **Classification grid** (Table 1, STAGGER): the historical driver loop
  that regenerated the stream for every (detector, repetition) cell versus
  the orchestrated path that materializes each repetition's stream once and
  replays it to all detectors.
"""

import time

from conftest import run_once

from repro.evaluation.prequential import run_prequential
from repro.evaluation.reporting import format_table
from repro.experiments import orchestrator
from repro.experiments.config import paper_detectors
from repro.experiments.table1 import _stagger_stream, run_stagger, run_sudden_binary
from repro.learners.naive_bayes import NaiveBayes


def _timed(function, **kwargs):
    orchestrator._STREAM_CACHE.clear()
    start = time.perf_counter()
    result = function(**kwargs)
    return result, time.perf_counter() - start


def test_value_grid_batched_vs_scalar(benchmark, scale, report):
    kwargs = dict(
        n_repetitions=scale["n_repetitions"],
        segment_length=scale["segment_length"],
        w_max=scale["w_max"],
    )
    scalar_summaries, scalar_seconds = _timed(
        run_sudden_binary, detector_batch_size=1, **kwargs
    )
    orchestrator._STREAM_CACHE.clear()
    batched_summaries = run_once(
        benchmark, run_sudden_binary, detector_batch_size=4_096, **kwargs
    )
    batched_seconds = benchmark.stats.stats.total

    assert {
        name: [run.detections for run in summary.runs]
        for name, summary in scalar_summaries.items()
    } == {
        name: [run.detections for run in summary.runs]
        for name, summary in batched_summaries.items()
    }

    speedup = scalar_seconds / max(batched_seconds, 1e-9)
    report(
        "experiment_grid",
        format_table(
            ["grid", "mode", "seconds", "speedup"],
            [
                ["table1 sudden-binary", "scalar sequential", f"{scalar_seconds:.2f}", "1.0x"],
                ["table1 sudden-binary", "batched orchestrated", f"{batched_seconds:.2f}", f"{speedup:.1f}x"],
            ],
            title="Experiment-grid wall-clock (bit-identical results)",
        ),
    )
    # The batched fast paths carry the grid; generation cost is shared.
    assert speedup >= 1.5


def test_classification_grid_shared_materialization(scale, report):
    n_repetitions = max(scale["n_repetitions"] // 3, 1)
    n_instances = scale["n_instances"] // 2
    drift_every = scale["drift_every"]
    w_max = scale["w_max"]
    n_drifts = max(n_instances // drift_every - 1, 1)
    factories = paper_detectors(binary=True, w_max=w_max)

    def legacy_loop():
        for repetition in range(n_repetitions):
            for factory in factories.values():
                stream = _stagger_stream(1 + repetition, drift_every, n_drifts, 1)
                learner = NaiveBayes(schema=stream.schema, n_classes=stream.n_classes)
                run_prequential(
                    stream=stream,
                    learner=learner,
                    detector=factory(),
                    n_instances=n_instances,
                )

    _, legacy_seconds = _timed(legacy_loop)
    _, orchestrated_seconds = _timed(
        run_stagger,
        n_repetitions=n_repetitions,
        n_instances=n_instances,
        drift_every=drift_every,
        w_max=w_max,
    )
    speedup = legacy_seconds / max(orchestrated_seconds, 1e-9)
    report(
        "experiment_grid_classification",
        format_table(
            ["grid", "mode", "seconds", "speedup"],
            [
                ["table1 stagger", "per-cell regeneration (legacy)", f"{legacy_seconds:.2f}", "1.0x"],
                ["table1 stagger", "shared materialization", f"{orchestrated_seconds:.2f}", f"{speedup:.1f}x"],
            ],
            title="Classification grid: one generation pass per repetition",
        ),
    )
    # Stream generation is no longer paid once per detector.
    assert orchestrated_seconds <= legacy_seconds * 1.10
