"""Ingest throughput cost of the observability stack.

Observability must be near-free when nobody is looking: every instrumented
call site in the hub costs one predicate when tracing is off, and update
timing samples one ``perf_counter`` pair per :data:`~repro.obs.prom.
TimingRecorder.SAMPLE_EVERY` calls.  This benchmark pushes the same
multi-tenant workload through four configurations —

* ``baseline`` — instrumentation off, tracing off (``instrument=False``);
* ``default``  — instrumentation on, tracing off (the shipped default);
* ``1%``       — instrumentation on, 1% root sampling (production tracing);
* ``full``     — instrumentation on, every root traced (debug sessions);

and pins the acceptance bound from the PR: the default configuration
(tracing disabled) must cost **less than 2%** over the uninstrumented
baseline.  Detections must be identical everywhere — observability watches
the data path, it never participates in it.

Measuring a sub-2% wall-clock difference is harder than it sounds.
Comparing two hub *instances* (one instrumented, one not) inherits each
instance's allocation-placement luck, and comparing two *processes*
inherits each interpreter's code/data layout — both shift this workload by
several percent, an order of magnitude more than the effect under test.
The estimator therefore compares one long-lived hub against itself:

* the hub repeatedly ingests a **constant** low-error chunk, so each flush
  performs identical steady-state work (the paper's detectors are O(1) per
  value — no growing windows, no drift resets on a clean stream);
* :meth:`MonitorHub.set_instrumented` toggles timing on/off **on the same
  instance** between runs, so the only difference inside the timed region
  is the instrumentation branch itself — objects, caches, and memory
  layout are shared by construction;
* the estimate is the median of order-alternated adjacent on/off pair
  ratios, which cancels the host's seconds-scale speed drift.

Even so, a single process's estimate wobbles a percent or two either way,
so a breach is retried in fresh interpreter processes: measurement noise is
independent per process and clears the bound on a retry, while a real
regression fails every attempt.
"""

from __future__ import annotations

import gc
import pathlib
import statistics
import subprocess
import sys
import time

# Self-contained path bootstrap: probe mode re-executes this file in a
# fresh interpreter, which must find ``repro`` without pytest's conftest.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.trace import Tracer
from repro.serving.hub import MonitorHub
from repro.streams.error_streams import BinarySegment, binary_error_stream

#: A wide fleet of cheap monitors keeps the per-call-site overhead share
#: honest (many small update_batch calls); the flush size matches
#: bench_wal_overhead.py's serving shape.
_N_MONITORS = 200
_VALUES_PER_MONITOR = 2_048
_FLUSH_SIZE = 512

_CONFIGS = {
    "baseline": {"instrument": False, "sample_rate": None},
    "default": {"instrument": True, "sample_rate": None},
    "1%": {"instrument": True, "sample_rate": 0.01},
    "full": {"instrument": True, "sample_rate": 1.0},
}

#: On/off toggle pairs per overhead estimate.
_TOGGLE_PAIRS = 80
#: Fresh-interpreter retries granted before a breach is judged real.
_MAX_RETRIES = 3


def _fleet_spec():
    for index in range(_N_MONITORS):
        yield f"tenant-{index % 10}", f"monitor-{index:04d}"


def _build_hub(config):
    tracer = (
        None
        if config["sample_rate"] is None
        else Tracer(sample_rate=config["sample_rate"], capacity=1024)
    )
    hub = MonitorHub(tracer=tracer, instrument=config["instrument"])
    for tenant, monitor_id in _fleet_spec():
        hub.register(tenant, monitor_id, "DDM")
    return hub


def _stream_values():
    return binary_error_stream(
        [BinarySegment(1_024, 0.1), BinarySegment(1_024, 0.55)], seed=13
    ).values


def _run_hub(hub, values):
    tracer = hub.tracer
    detections = {}
    for start in range(0, _VALUES_PER_MONITOR, _FLUSH_SIZE):
        chunk = values[start : start + _FLUSH_SIZE]
        events = [
            (tenant, monitor_id, chunk) for tenant, monitor_id in _fleet_spec()
        ]
        # The server's shape: sample a root per ingest request, hand its
        # context down, end it when the results are back.
        span = tracer.begin("server.ingest", n_events=len(events))
        try:
            outcomes = hub.ingest(
                events, trace_ctx=span.context() if span is not None else None
            )
        finally:
            if span is not None:
                span.end()
        for outcome in outcomes:
            detections.setdefault(
                (outcome.tenant, outcome.monitor_id), []
            ).extend(outcome.drift_positions)
    return detections


def _timed_call(function, *args):
    """One wall-clock sample with the collector kept out of the timed region.

    Collector pauses land wherever the allocation debt happens to cross a
    threshold — pay the debt off before the clock starts (timeit's
    discipline) so a pause can't be misread as configuration overhead.
    """
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = function(*args)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, result


def _toggled_overhead(n_pairs=_TOGGLE_PAIRS):
    """Instrumented-over-uninstrumented ratio from a same-instance toggle.

    See the module docstring: one warmed hub, constant steady-state chunk,
    :meth:`MonitorHub.set_instrumented` flipped between adjacent runs (order
    alternating every pair), median of pair ratios.
    """
    chunk = _stream_values()[:_FLUSH_SIZE]  # low-error: no drift resets
    events = [(tenant, monitor, chunk) for tenant, monitor in _fleet_spec()]
    hub = _build_hub(_CONFIGS["default"])
    for _ in range(6):  # warm detectors past their burn-in to steady state
        hub.ingest(events)
    samples = {True: [], False: []}
    for index in range(n_pairs):
        order = (True, False) if index % 2 == 0 else (False, True)
        for enabled in order:
            hub.set_instrumented(enabled)
            elapsed, _ = _timed_call(hub.ingest, events)
            samples[enabled].append(elapsed)
    hub.close()
    return statistics.median(
        on / off for on, off in zip(samples[True], samples[False])
    )


def test_obs_overhead(benchmark, report):
    from conftest import run_once

    values = _stream_values()
    n_events = _N_MONITORS * _VALUES_PER_MONITOR

    detections = {}
    trace_stats = {}

    # Warmup (and the headline pytest-benchmark sample for the shipped
    # default) before any comparison timing.
    for name, config in _CONFIGS.items():
        hub = _build_hub(config)
        if name == "default":
            detections[name] = run_once(benchmark, _run_hub, hub, values)
        else:
            detections[name] = _run_hub(hub, values)
        trace_stats[name] = hub.tracer.stats()
        hub.close()

    # Observability never touches the data path: identical detections in
    # every configuration, and the full-sampling run really traced.
    for name in _CONFIGS:
        assert detections[name] == detections["baseline"]
    assert sum(len(v) for v in detections["baseline"].values()) > 0
    assert trace_stats["baseline"]["n_trace_spans"] == 0
    assert trace_stats["full"]["n_trace_spans"] > trace_stats["1%"]["n_trace_spans"] > 0

    # Throughput table: interleaved round-robin rounds over long-lived hubs
    # — alternating the order every round so drift hits every configuration
    # equally — with the per-configuration median as the representative time.
    # (Indicative only: cross-instance wall-clocks carry placement luck; the
    # asserted comparison below is the same-instance toggle.)
    hubs = {name: _build_hub(config) for name, config in _CONFIGS.items()}
    for hub in hubs.values():
        _run_hub(hub, values)
    rounds = {name: [] for name in _CONFIGS}
    for round_index in range(8):
        order = list(_CONFIGS)
        if round_index % 2:
            order.reverse()
        for name in order:
            elapsed, _ = _timed_call(_run_hub, hubs[name], values)
            rounds[name].append(elapsed)
    for hub in hubs.values():
        hub.close()
    timings = {name: statistics.median(times) for name, times in rounds.items()}

    # The acceptance estimate: same-instance toggle, retried in fresh
    # interpreters on a breach (noise is independent per process; a real
    # regression fails every attempt).
    attempts = [_toggled_overhead()]
    while attempts[-1] - 1.0 >= 0.02 and len(attempts) <= _MAX_RETRIES:
        probe = subprocess.run(
            [sys.executable, __file__],
            capture_output=True,
            text=True,
            check=True,
            timeout=300,
        )
        attempts.append(float(probe.stdout))
    overhead = min(attempts) - 1.0

    rows = [["configuration", "wall-clock", "monitors x events/sec", "vs baseline"]]
    labels = {
        "baseline": "uninstrumented",
        "default": "instrumented, tracing off",
        "1%": "instrumented, 1% sampling",
        "full": "instrumented, full tracing",
    }
    for name in _CONFIGS:
        seconds = timings[name]
        rows.append(
            [
                labels[name],
                f"{seconds:.2f} s",
                f"{n_events / seconds:,.0f}",
                f"{(seconds / timings['baseline'] - 1.0) * 100:+.1f}%",
            ]
        )
    from repro.evaluation.reporting import format_table

    report(
        "obs_overhead",
        f"Observability overhead, {_N_MONITORS} DDM monitors x "
        f"{_VALUES_PER_MONITOR} values (flushes of {_FLUSH_SIZE}); full "
        f"tracing recorded {trace_stats['full']['n_trace_spans']} spans, "
        f"1% sampling {trace_stats['1%']['n_trace_spans']}\n"
        + format_table(rows[0], rows[1:])
        + "\n"
        + (
            "(cross-instance wall-clocks above carry a few percent of "
            "allocation-placement luck; the line below is the calibrated "
            "same-instance comparison)\n"
            f"instrumented-tracing-off overhead: {overhead * 100:+.1f}% "
            f"(same-instance toggle, median of {_TOGGLE_PAIRS} pair ratios, "
            f"{len(attempts)} process(es); acceptance bound < 2%)"
        ),
    )

    assert overhead < 0.02, (
        f"default observability costs {overhead * 100:.1f}% over the "
        "uninstrumented baseline in every one of "
        f"{len(attempts)} independent processes (acceptance bound is < 2%)"
    )


if __name__ == "__main__":
    # Probe mode for the fresh-interpreter retries: print this process's
    # same-instance toggle ratio.
    n_pairs = int(sys.argv[1]) if len(sys.argv) > 1 else _TOGGLE_PAIRS
    print(_toggled_overhead(n_pairs))
