"""Table 1, block "gradual non-binary drift" (experiment E2 in DESIGN.md)."""

from conftest import run_once

from repro.evaluation.reporting import format_detection_rows
from repro.experiments.table1 import run_gradual_nonbinary, summaries_to_rows


def test_table1_gradual_nonbinary(benchmark, scale, report):
    summaries = run_once(
        benchmark,
        run_gradual_nonbinary,
        n_repetitions=scale["n_repetitions"],
        segment_length=scale["segment_length"],
        width=scale["gradual_width"],
        w_max=scale["w_max"],
    )
    rows = summaries_to_rows(summaries)
    report(
        "table1_gradual_nonbinary",
        format_detection_rows(rows, title="Table 1 - gradual non-binary drift"),
    )
    by_name = {row["detector"]: row for row in rows}
    optwin = by_name["OPTWIN rho=0.5"]
    # Paper shape: OPTWIN finds every gradual drift, and ADWIN — which keeps
    # re-cutting its window while the transition is in progress — produces the
    # larger number of false positives.
    assert optwin["recall"] == 1.0
    assert optwin["fp"] <= by_name["ADWIN"]["fp"]
