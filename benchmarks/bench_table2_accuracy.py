"""Table 2 — accuracy of the NB classifier per detector (experiment E8)."""

from conftest import run_once

from repro.evaluation.reporting import format_accuracy_table
from repro.experiments.table2 import dataset_builders, run_table2


def test_table2_accuracy(benchmark, scale, report):
    n_instances = scale["table2_instances"]
    drift_every = scale["table2_drift_every"]
    builders = dataset_builders(n_instances, drift_every, gradual_width=scale["gradual_width"])
    # The scaled-down run keeps one synthetic sudden column, one gradual
    # column, and both real-world surrogates; the paper-scale run covers all
    # eight columns.
    if scale["n_repetitions"] < 30:
        selected = {
            name: builders[name]
            for name in (
                "STAGGER (sudden)",
                "AGRAWAL (sudden)",
                "STAGGER (gradual)",
                "Electricity",
                "Covertype",
            )
        }
    else:
        selected = builders

    accuracies = run_once(
        benchmark,
        run_table2,
        n_instances=n_instances,
        drift_every=drift_every,
        gradual_width=scale["gradual_width"],
        n_repetitions=1,
        w_max=scale["w_max"],
        datasets=selected,
    )
    report(
        "table2_accuracy",
        format_accuracy_table(
            accuracies,
            dataset_order=list(selected),
            title="Table 2 - NB accuracy per drift detector (percent)",
        ),
    )
    # Paper shape: on STAGGER, any drift-aware configuration beats the static
    # "no drift detector" baseline by a wide margin.
    static = accuracies["No drift detector"]["STAGGER (sudden)"]
    optwin = accuracies["OPTWIN rho=0.5"]["STAGGER (sudden)"]
    adwin = accuracies["ADWIN"]["STAGGER (sudden)"]
    assert optwin > static + 0.05
    assert adwin > static + 0.05
    # And the drift-aware detectors end up within a few points of each other.
    assert abs(optwin - adwin) < 0.1
