"""Table 1, block "sudden RANDOM RBF" (experiment E6 in DESIGN.md)."""

from conftest import run_once

from repro.evaluation.reporting import format_detection_rows
from repro.experiments.table1 import run_random_rbf, summaries_to_rows


def test_table1_random_rbf(benchmark, scale, report):
    summaries = run_once(
        benchmark,
        run_random_rbf,
        n_repetitions=max(scale["n_repetitions"] // 3, 1),
        n_instances=scale["n_instances"],
        drift_every=scale["drift_every"],
        w_max=scale["w_max"],
    )
    rows = summaries_to_rows(summaries)
    report(
        "table1_random_rbf",
        format_detection_rows(
            rows, title="Table 1 - sudden RANDOM RBF (NB classifier)"
        ),
    )
    by_name = {row["detector"]: row for row in rows}
    # RandomRBF concept switches are subtle for NB; the paper shape is that
    # OPTWIN keeps precision far above the FP-prone baselines even when some
    # drifts are missed.
    best_optwin_precision = max(
        row["precision"] for name, row in by_name.items() if name.startswith("OPTWIN")
    )
    assert best_optwin_precision >= by_name["ECDD"]["precision"]
    assert best_optwin_precision >= by_name["STEPD"]["precision"]
