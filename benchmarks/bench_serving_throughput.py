"""Serving-layer throughput: batched hub ingestion vs the naive event loop.

The deployment shape this measures is a hub hosting 1 000 monitors (a
realistic multi-tenant mix of detector configurations) receiving a block of
error values per monitor.  The *naive* baseline is what a straightforward
daemon does — one ``detector.update(value)`` Python call per event; the hub
routes the same events through :meth:`MonitorHub.ingest`, which buffers per
monitor and flushes each monitor's buffer with a single vectorised
``update_batch`` call.  Detections are asserted identical, so the comparison
is pure execution-engine overhead.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.evaluation.reporting import format_table
from repro.serving.hub import MonitorHub
from repro.streams.error_streams import BinarySegment, binary_error_stream

#: Detector mix cycled across the monitor fleet (name, params) — the
#: closed-form-batched detectors a throughput-sensitive fleet would deploy
#: (ECDD and Page-Hinkley run sequential per-element recurrences even in
#: batch mode, and ADWIN/KSWIN are structurally sequential, so a fleet
#: dominated by them is bounded by those loops).
_DETECTOR_MIX = [
    ("DDM", None),
    ("HddmA", None),
    ("STEPD", None),
    ("EDDM", None),
    ("OPTWIN", {"w_max": 5_000}),
]

_N_MONITORS = 1_000
_VALUES_PER_MONITOR = 2_048
_FLUSH_SIZE = 1_024


def _fleet_spec():
    for index in range(_N_MONITORS):
        name, params = _DETECTOR_MIX[index % len(_DETECTOR_MIX)]
        yield f"tenant-{index % 20}", f"monitor-{index:04d}", name, params


def _build_hub() -> MonitorHub:
    hub = MonitorHub()
    for tenant, monitor_id, name, params in _fleet_spec():
        hub.register(tenant, monitor_id, name, params)
    return hub


def _stream_values():
    return binary_error_stream(
        [BinarySegment(1_024, 0.1), BinarySegment(1_024, 0.55)], seed=13
    ).values


def _run_hub(hub: MonitorHub, values) -> dict:
    detections = {}
    for start in range(0, _VALUES_PER_MONITOR, _FLUSH_SIZE):
        chunk = values[start : start + _FLUSH_SIZE]
        events = [
            (tenant, monitor_id, chunk)
            for tenant, monitor_id, _, _ in _fleet_spec()
        ]
        for outcome in hub.ingest(events):
            detections.setdefault(
                (outcome.tenant, outcome.monitor_id), []
            ).extend(outcome.drift_positions)
    return detections


def _run_naive(hub: MonitorHub, values) -> dict:
    """One ``update()`` Python call per event, same event order as the hub."""
    detections = {}
    values_list = values.tolist()
    for start in range(0, _VALUES_PER_MONITOR, _FLUSH_SIZE):
        chunk = values_list[start : start + _FLUSH_SIZE]
        for tenant, monitor_id, _, _ in _fleet_spec():
            detector = hub.detector(tenant, monitor_id)
            key = (tenant, monitor_id)
            position = start
            for value in chunk:
                if detector.update(value).drift_detected:
                    detections.setdefault(key, []).append(position)
                position += 1
    return detections


def test_hub_ingestion_vs_naive_event_loop(benchmark, report):
    values = _stream_values()
    n_events = _N_MONITORS * _VALUES_PER_MONITOR

    naive_hub = _build_hub()
    start = time.perf_counter()
    naive_detections = _run_naive(naive_hub, values)
    naive_seconds = time.perf_counter() - start

    batched_hub = _build_hub()
    batched_detections = run_once(benchmark, _run_hub, batched_hub, values)
    batched_seconds = benchmark.stats.stats.total

    # Same events, same order per monitor: detections must be bit-identical.
    assert batched_detections == naive_detections
    assert sum(len(v) for v in batched_detections.values()) > 0

    speedup = naive_seconds / max(batched_seconds, 1e-9)
    rows = [
        ["path", "wall-clock", "monitors x events/sec"],
        [
            "naive update() loop",
            f"{naive_seconds:.2f} s",
            f"{n_events / naive_seconds:,.0f}",
        ],
        [
            "hub batched ingest",
            f"{batched_seconds:.2f} s",
            f"{n_events / batched_seconds:,.0f}",
        ],
        ["speedup", f"{speedup:.1f}x", ""],
    ]
    report(
        "serving_throughput",
        f"Hub ingestion, {_N_MONITORS} monitors x {_VALUES_PER_MONITOR} values "
        f"(flushes of {_FLUSH_SIZE}), detector mix "
        f"{[name for name, _ in _DETECTOR_MIX]}\n"
        + format_table(rows[0], rows[1:]),
    )
    assert speedup >= 10.0, f"hub ingestion only {speedup:.1f}x over naive loop"
