"""Ablation A1 — value of the variance (F) test on variance-only drifts."""

from conftest import run_once

from repro.evaluation.reporting import format_detection_rows
from repro.experiments.ablations import run_ftest_ablation
from repro.experiments.table1 import summaries_to_rows


def test_ablation_ftest(benchmark, scale, report):
    summaries = run_once(
        benchmark,
        run_ftest_ablation,
        n_repetitions=scale["n_repetitions"] + 2,
        segment_length=scale["segment_length"],
    )
    rows = summaries_to_rows(summaries)
    report(
        "ablation_ftest",
        format_detection_rows(
            rows, title="Ablation A1 - variance-only drift, with vs without the F-test"
        ),
    )
    with_f = summaries["OPTWIN (t + F tests)"].aggregate
    without_f = summaries["OPTWIN (t test only)"].aggregate
    # The F-test is what makes variance-only drifts detectable at all.
    assert with_f.recall > 0.8
    assert with_f.recall > without_f.recall
