"""Figure 3 — gradual binary drift: TP/FP rates vs delays (experiment E10)."""

from conftest import run_once

from repro.evaluation.reporting import format_table
from repro.experiments.figures import run_figure3


def test_figure3_gradual_binary_series(benchmark, scale, report):
    series = run_once(
        benchmark,
        run_figure3,
        segment_length=scale["segment_length"],
        n_drifts=2,
        width=scale["gradual_width"],
        w_max=scale["w_max"],
    )
    rows = []
    for name, detection_series in series.items():
        row = detection_series.as_row()
        rows.append([name, row["tp"], row["fp"], row["mean_delay"]])
    report(
        "figure3",
        format_table(
            ["Detector", "TP", "FP", "Mean delay"],
            rows,
            title="Figure 3 - gradual binary drift, one representative run",
        ),
    )
    optwin = series["OPTWIN rho=0.5"]
    adwin = series["ADWIN"]
    eddm = series["EDDM"]
    # Paper shape: high FP rates for EDDM/ADWIN compared to OPTWIN; OPTWIN
    # still finds the gradual drifts.
    assert optwin.evaluation.false_positives <= eddm.evaluation.false_positives
    assert optwin.evaluation.false_positives <= adwin.evaluation.false_positives + 1
    assert optwin.evaluation.true_positives >= 2
