"""Ingest throughput cost of the durable alert bus (the alert WAL).

The hub's durability knob trades ingest throughput for crash-safety: with a
WAL every fired alert is CRC-framed and appended before any sink sees it,
every flush appends one watermark per monitor, and the fsync mode decides
how often the log is forced to disk.  This benchmark runs the same
alert-heavy multi-tenant workload through three configurations —

* ``off``     — no WAL at all (the pre-durability hub);
* ``batch``   — WAL with one fsync per ingest flush (the default);
* ``always``  — WAL with one fsync per appended record (maximum paranoia);

and pins the acceptance bound: batched-fsync durability must cost **less
than 2x** the WAL-free throughput.  Every configuration must also produce
identical detections — the WAL is a bus, never a detector input.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from conftest import run_once

from repro.evaluation.reporting import format_table
from repro.serving.hub import MonitorHub
from repro.streams.error_streams import BinarySegment, binary_error_stream

#: DDM monitors only: the error stream below drives each one through several
#: warning/drift transitions, so the WAL sees real per-alert traffic (plus
#: one watermark per monitor per flush) rather than an idle log.
_N_MONITORS = 200
_VALUES_PER_MONITOR = 2_048
_FLUSH_SIZE = 512


def _fleet_spec():
    for index in range(_N_MONITORS):
        yield f"tenant-{index % 10}", f"monitor-{index:04d}"


def _build_hub(wal_dir, wal_fsync):
    if wal_dir is None:
        hub = MonitorHub()
    else:
        hub = MonitorHub(wal_dir=wal_dir, wal_fsync=wal_fsync)
    for tenant, monitor_id in _fleet_spec():
        hub.register(tenant, monitor_id, "DDM")
    return hub


def _stream_values():
    return binary_error_stream(
        [BinarySegment(1_024, 0.1), BinarySegment(1_024, 0.55)], seed=13
    ).values


def _run_hub(hub, values):
    detections = {}
    for start in range(0, _VALUES_PER_MONITOR, _FLUSH_SIZE):
        chunk = values[start : start + _FLUSH_SIZE]
        events = [
            (tenant, monitor_id, chunk) for tenant, monitor_id in _fleet_spec()
        ]
        for outcome in hub.ingest(events):
            detections.setdefault(
                (outcome.tenant, outcome.monitor_id), []
            ).extend(outcome.drift_positions)
    return detections


_ROUNDS = 3  # best-of-N per configuration: the comparison needs stable floors


def test_wal_overhead(benchmark, report):
    values = _stream_values()
    n_events = _N_MONITORS * _VALUES_PER_MONITOR
    base = Path(tempfile.mkdtemp(prefix="bench-wal-"))

    timings = {}
    detections = {}
    wal_stats = {}
    for mode in ("off", "batch", "always"):
        rounds = []
        for round_index in range(_ROUNDS):
            wal_dir = None if mode == "off" else base / f"{mode}-{round_index}"
            hub = _build_hub(wal_dir, mode)
            if mode == "batch" and round_index == 0:
                # The headline configuration runs under pytest-benchmark
                # timing once; the remaining rounds are timed by hand.
                detections[mode] = run_once(benchmark, _run_hub, hub, values)
                rounds.append(benchmark.stats.stats.total)
            else:
                start = time.perf_counter()
                detections[mode] = _run_hub(hub, values)
                rounds.append(time.perf_counter() - start)
            if wal_dir is not None:
                wal_stats[mode] = hub.metrics()["wal"]
            hub.close()
        timings[mode] = min(rounds)

    # The WAL is write-path plumbing: detections are identical with it off,
    # batched, or fsync-per-record.
    assert detections["batch"] == detections["off"]
    assert detections["always"] == detections["off"]
    assert sum(len(v) for v in detections["off"].values()) > 0

    rows = [["configuration", "wall-clock", "monitors x events/sec", "vs off"]]
    for mode in ("off", "batch", "always"):
        seconds = timings[mode]
        rows.append(
            [
                {"off": "WAL off", "batch": "WAL fsync=batch", "always": "WAL fsync=always"}[mode],
                f"{seconds:.2f} s",
                f"{n_events / seconds:,.0f}",
                f"{seconds / timings['off']:.2f}x",
            ]
        )
    stats = wal_stats["batch"]
    report(
        "wal_overhead",
        f"Alert WAL overhead, {_N_MONITORS} DDM monitors x "
        f"{_VALUES_PER_MONITOR} values (flushes of {_FLUSH_SIZE}); "
        f"batch-mode WAL wrote {stats['n_alerts']} alerts / "
        f"{stats['n_appends']} records / {stats['bytes_written']:,} bytes\n"
        + format_table(rows[0], rows[1:]),
    )

    slowdown = timings["batch"] / timings["off"]
    assert slowdown < 2.0, (
        f"batched-fsync WAL costs {slowdown:.2f}x over WAL-off "
        "(acceptance bound is < 2x)"
    )
