"""Table 1, block "sudden AGRAWAL" (experiment E7 in DESIGN.md)."""

from conftest import run_once

from repro.evaluation.reporting import format_detection_rows
from repro.experiments.table1 import run_agrawal, summaries_to_rows


def test_table1_agrawal(benchmark, scale, report):
    summaries = run_once(
        benchmark,
        run_agrawal,
        n_repetitions=max(scale["n_repetitions"] // 3, 1),
        n_instances=scale["n_instances"],
        drift_every=scale["drift_every"],
        w_max=scale["w_max"],
    )
    rows = summaries_to_rows(summaries)
    report(
        "table1_agrawal",
        format_detection_rows(rows, title="Table 1 - sudden AGRAWAL (NB classifier)"),
    )
    by_name = {row["detector"]: row for row in rows}
    best_optwin_f1 = max(
        row["f1"] for name, row in by_name.items() if name.startswith("OPTWIN")
    )
    # Paper shape: OPTWIN has the best F1 on AGRAWAL, well above ECDD/STEPD.
    assert best_optwin_f1 >= by_name["ECDD"]["f1"]
    assert best_optwin_f1 >= by_name["STEPD"]["f1"]
    assert best_optwin_f1 >= by_name["EDDM"]["f1"]
