"""Ablation A3 — sensitivity to the robustness parameter rho."""

from conftest import run_once

from repro.evaluation.reporting import format_detection_rows
from repro.experiments.ablations import run_rho_sensitivity
from repro.experiments.table1 import summaries_to_rows


def test_ablation_rho_sensitivity(benchmark, scale, report):
    rhos = [0.1, 0.25, 0.5, 1.0, 2.0]
    summaries = run_once(
        benchmark,
        run_rho_sensitivity,
        rhos=rhos,
        n_repetitions=scale["n_repetitions"] + 2,
        segment_length=scale["segment_length"],
    )
    rows = summaries_to_rows(summaries)
    report(
        "ablation_rho",
        format_detection_rows(rows, title="Ablation A3 - rho sensitivity sweep"),
    )
    delays = {
        name: summary.aggregate.mean_delay for name, summary in summaries.items()
    }
    f1 = {name: summary.aggregate.f1_score for name, summary in summaries.items()}
    # Paper shape (Section 3.3): larger rho -> smaller delay; and the F1-score
    # stays roughly flat across reasonable rho values ("different rho's tend
    # to produce similar results").
    assert delays["OPTWIN rho=1.0"] <= delays["OPTWIN rho=0.1"]
    assert min(f1[f"OPTWIN rho={r}"] for r in (0.25, 0.5, 1.0)) >= 0.5
