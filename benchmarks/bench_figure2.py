"""Figure 2 — sudden binary drift: FP rates vs detection delays (experiment E9)."""

from conftest import run_once

from repro.evaluation.reporting import format_table
from repro.experiments.figures import run_figure2


def test_figure2_sudden_binary_series(benchmark, scale, report):
    series = run_once(
        benchmark,
        run_figure2,
        segment_length=scale["segment_length"],
        n_drifts=2,
        w_max=scale["w_max"],
    )
    rows = []
    for name, detection_series in series.items():
        row = detection_series.as_row()
        rows.append(
            [
                name,
                row["tp"],
                row["fp"],
                row["mean_delay"],
                ", ".join(str(d) for d in detection_series.detections[:12]),
            ]
        )
    report(
        "figure2",
        format_table(
            ["Detector", "TP", "FP", "Mean delay", "Detection positions"],
            rows,
            title="Figure 2 - sudden binary drift, one representative run",
        ),
    )
    optwin = series["OPTWIN rho=0.5"]
    eddm = series["EDDM"]
    ecdd = series["ECDD"]
    # Paper shape: EDDM/ECDD produce visibly more false positives than OPTWIN.
    assert optwin.evaluation.false_positives <= eddm.evaluation.false_positives
    assert optwin.evaluation.false_positives <= ecdd.evaluation.false_positives
    assert optwin.evaluation.true_positives >= 2
