"""Section 3.4 — per-element update cost of OPTWIN vs the baselines (E14).

Extended beyond the paper: every detector with a vectorised ``update_batch``
fast path is measured twice — once in the classic scalar ``update`` loop and
once fed in chunks through the batch API — and the speedup between the two
modes is reported alongside the paper's O(1)-per-element comparison.
"""

from conftest import run_once

from repro.core.optwin import Optwin
from repro.evaluation.reporting import format_table
from repro.experiments.runtime import run_runtime_comparison


def test_runtime_per_element(benchmark, scale, report):
    lengths = (2_000, 8_000, 20_000) if scale["n_repetitions"] < 30 else (
        5_000,
        25_000,
        100_000,
    )
    measurements = run_once(benchmark, run_runtime_comparison, stream_lengths=lengths)
    rows = [
        [m.detector_name, m.mode, m.n_elements, f"{m.seconds_per_element * 1e6:.2f}"]
        for m in measurements
    ]
    report(
        "runtime_per_element",
        format_table(
            ["Detector", "Mode", "Stream length", "Microseconds per element"],
            rows,
            title="Per-element update cost (steady state, pre-computed cut tables)",
        ),
    )

    # Batch-vs-scalar speedup at the longest stream for each batch-capable
    # detector (the headline number of the vectorised execution engine).
    longest = max(lengths)
    by_key = {
        (m.detector_name, m.mode): m.seconds_per_element
        for m in measurements
        if m.n_elements == longest
    }
    speedup_rows = []
    for (name, mode), cost in sorted(by_key.items()):
        if mode != "batch":
            continue
        scalar_cost = by_key.get((name, "scalar"))
        if scalar_cost and cost > 0:
            speedup_rows.append([name, f"{scalar_cost / cost:.1f}x"])
    if speedup_rows:
        report(
            "batch_speedup",
            format_table(
                ["Detector", "Batch speedup vs scalar"],
                speedup_rows,
                title=f"update_batch speedup at {longest} elements",
            ),
        )

    # The six detectors batched after the original engine (ADWIN, EDDM,
    # STEPD, KSWIN, RDDM, HDDM-A) must not be second-class citizens: at
    # least four of them have closed-form/segment-vectorised paths that beat
    # the scalar loop by 3x or more (ADWIN and KSWIN are structurally
    # sequential — bucket cascades and per-element RNG subsampling — so they
    # are allowed to fall below that bar).
    newly_batched = ("ADWIN", "EDDM", "STEPD", "KSWIN", "RDDM", "HDDM-A")
    fast = 0
    for name in newly_batched:
        scalar_cost = by_key.get((name, "scalar"))
        batch_cost = by_key.get((name, "batch"))
        if scalar_cost and batch_cost and scalar_cost / batch_cost >= 3.0:
            fast += 1
    assert fast >= 4, (
        f"only {fast} of {newly_batched} reached a 3x batch speedup at "
        f"{longest} elements"
    )

    # Paper shape: OPTWIN's amortised cost stays flat (O(1)) as the stream and
    # window grow — the cost at the longest stream is within a small factor of
    # the cost at the shortest one.
    optwin_costs = {
        m.n_elements: m.seconds_per_element
        for m in measurements
        if m.detector_name.startswith("OPTWIN") and m.mode == "scalar"
    }
    shortest, longest = min(optwin_costs), max(optwin_costs)
    assert optwin_costs[longest] < optwin_costs[shortest] * 5

    # The vectorised engine must beat the scalar loop substantially.
    optwin_batch = [
        m.seconds_per_element
        for m in measurements
        if m.detector_name.startswith("OPTWIN") and m.mode == "batch"
        and m.n_elements == longest
    ]
    optwin_scalar = optwin_costs[longest]
    if optwin_batch:
        assert optwin_batch[0] * 5 < optwin_scalar

    memory = Optwin(w_max=25_000).memory_bytes()
    report(
        "memory_footprint",
        f"OPTWIN estimated memory at w_max=25000: {memory / 1024:.0f} KiB "
        "(paper quotes ~390 KB)",
    )
    assert memory < 2 * 1024 * 1024


def test_optwin_update_throughput(benchmark):
    """Micro-benchmark: single update call in steady state (warm tables)."""
    import numpy as np

    detector = Optwin(rho=0.5, w_max=25_000)
    values = (np.random.default_rng(1).random(5_000) < 0.3).astype(float)
    detector.update_many(values)  # warm the window and the cut table
    index = {"value": 0}

    def one_update():
        index["value"] = (index["value"] + 1) % len(values)
        detector.update(values[index["value"]])

    benchmark(one_update)


def test_optwin_batch_throughput(benchmark):
    """Micro-benchmark: one 4096-element update_batch call in steady state."""
    import numpy as np

    detector = Optwin(rho=0.5, w_max=25_000)
    detector.precompute_tables()
    values = (np.random.default_rng(1).random(25_000) < 0.3).astype(float)
    detector.update_many(values)  # warm the window
    chunk = (np.random.default_rng(2).random(4_096) < 0.3).astype(float)

    def one_batch():
        detector.update_batch(chunk)

    benchmark(one_batch)
