"""Section 3.4 — per-element update cost of OPTWIN vs the baselines (E14)."""

from conftest import run_once

from repro.core.optwin import Optwin
from repro.evaluation.reporting import format_table
from repro.experiments.runtime import run_runtime_comparison


def test_runtime_per_element(benchmark, scale, report):
    lengths = (2_000, 8_000, 20_000) if scale["n_repetitions"] < 30 else (
        5_000,
        25_000,
        100_000,
    )
    measurements = run_once(benchmark, run_runtime_comparison, stream_lengths=lengths)
    rows = [
        [m.detector_name, m.n_elements, f"{m.seconds_per_element * 1e6:.2f}"]
        for m in measurements
    ]
    report(
        "runtime_per_element",
        format_table(
            ["Detector", "Stream length", "Microseconds per element"],
            rows,
            title="Per-element update cost (steady state, pre-computed cut tables)",
        ),
    )
    # Paper shape: OPTWIN's amortised cost stays flat (O(1)) as the stream and
    # window grow — the cost at the longest stream is within a small factor of
    # the cost at the shortest one.
    optwin_costs = {
        m.n_elements: m.seconds_per_element
        for m in measurements
        if m.detector_name.startswith("OPTWIN")
    }
    shortest, longest = min(optwin_costs), max(optwin_costs)
    assert optwin_costs[longest] < optwin_costs[shortest] * 5

    memory = Optwin(w_max=25_000).memory_bytes()
    report(
        "memory_footprint",
        f"OPTWIN estimated memory at w_max=25000: {memory / 1024:.0f} KiB "
        "(paper quotes ~390 KB)",
    )
    assert memory < 2 * 1024 * 1024


def test_optwin_update_throughput(benchmark):
    """Micro-benchmark: single update call in steady state (warm tables)."""
    import numpy as np

    detector = Optwin(rho=0.5, w_max=25_000)
    values = (np.random.default_rng(1).random(5_000) < 0.3).astype(float)
    detector.update_many(values)  # warm the window and the cut table
    index = {"value": 0}

    def one_update():
        index["value"] = (index["value"] + 1) % len(values)
        detector.update(values[index["value"]])

    benchmark(one_update)
