"""Figure 4 — TP/FP picture on AGRAWAL with sudden drifts (experiment E11)."""

from conftest import run_once

from repro.evaluation.reporting import format_table
from repro.experiments.figures import run_figure4


def test_figure4_agrawal_series(benchmark, scale, report):
    series = run_once(
        benchmark,
        run_figure4,
        n_instances=scale["n_instances"],
        drift_every=scale["drift_every"],
        w_max=scale["w_max"],
    )
    rows = []
    for name, detection_series in series.items():
        row = detection_series.as_row()
        rows.append(
            [
                name,
                row["tp"],
                row["fp"],
                row["mean_delay"],
                ", ".join(str(d) for d in detection_series.detections[:10]),
            ]
        )
    report(
        "figure4",
        format_table(
            ["Detector", "TP", "FP", "Mean delay", "Detections"],
            rows,
            title="Figure 4 - AGRAWAL with sudden drifts (NB classifier), one run",
        ),
    )
    optwin = series["OPTWIN rho=0.5"]
    ecdd = series["ECDD"]
    stepd = series["STEPD"]
    # Paper shape: OPTWIN and DDM identify the drifts with few FPs; ECDD and
    # STEPD produce near-random guesses (many FPs).
    assert optwin.evaluation.true_positives >= 1
    assert optwin.evaluation.false_positives <= ecdd.evaluation.false_positives
    assert optwin.evaluation.false_positives <= stepd.evaluation.false_positives
