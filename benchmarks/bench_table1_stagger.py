"""Table 1, block "sudden STAGGER" (experiment E5 in DESIGN.md)."""

from conftest import run_once

from repro.evaluation.reporting import format_detection_rows
from repro.experiments.table1 import run_stagger, summaries_to_rows


def test_table1_stagger(benchmark, scale, report):
    summaries = run_once(
        benchmark,
        run_stagger,
        n_repetitions=max(scale["n_repetitions"] // 3, 1),
        n_instances=scale["n_instances"],
        drift_every=scale["drift_every"],
        w_max=scale["w_max"],
    )
    rows = summaries_to_rows(summaries)
    report(
        "table1_stagger",
        format_detection_rows(rows, title="Table 1 - sudden STAGGER (NB classifier)"),
    )
    by_name = {row["detector"]: row for row in rows}
    optwin = by_name["OPTWIN rho=0.5"]
    # Paper shape: STAGGER drifts are easy — every serious detector finds them
    # nearly immediately, and OPTWIN's delay is among the smallest.
    assert optwin["recall"] >= 0.9
    assert optwin["delay"] <= by_name["DDM"]["delay"] + 50
    assert optwin["f1"] >= by_name["STEPD"]["f1"]
