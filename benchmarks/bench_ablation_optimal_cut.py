"""Ablation A2 — optimal cut vs a fixed 50/50 window split."""

from conftest import run_once

from repro.evaluation.reporting import format_detection_rows
from repro.experiments.ablations import run_optimal_cut_ablation
from repro.experiments.table1 import summaries_to_rows


def test_ablation_optimal_cut(benchmark, scale, report):
    summaries = run_once(
        benchmark,
        run_optimal_cut_ablation,
        n_repetitions=scale["n_repetitions"] + 2,
        segment_length=scale["segment_length"],
    )
    rows = summaries_to_rows(summaries)
    report(
        "ablation_optimal_cut",
        format_detection_rows(
            rows, title="Ablation A2 - optimal cut vs fixed 50/50 split"
        ),
    )
    optimal = summaries["OPTWIN (optimal cut)"].aggregate
    fixed = summaries["OPTWIN (fixed 50/50 cut)"].aggregate
    # Both find the drifts; the optimal cut is the one that guarantees the
    # rho-level shift is caught with the smaller W_new, i.e. without a delay
    # penalty relative to the naive split.
    assert optimal.recall >= fixed.recall
    assert optimal.mean_delay <= fixed.mean_delay + 50
