"""Table 1, block "sudden binary drift" (experiment E3 in DESIGN.md)."""

from conftest import run_once

from repro.evaluation.reporting import format_detection_rows
from repro.experiments.table1 import run_sudden_binary, summaries_to_rows


def test_table1_sudden_binary(benchmark, scale, report):
    summaries = run_once(
        benchmark,
        run_sudden_binary,
        n_repetitions=scale["n_repetitions"],
        segment_length=scale["segment_length"],
        w_max=scale["w_max"],
    )
    rows = summaries_to_rows(summaries)
    report(
        "table1_sudden_binary",
        format_detection_rows(rows, title="Table 1 - sudden binary drift"),
    )
    by_name = {row["detector"]: row for row in rows}
    best_optwin_f1 = max(
        row["f1"] for name, row in by_name.items() if name.startswith("OPTWIN")
    )
    # Paper shape: OPTWIN's best configuration tops the FP-prone baselines.
    assert best_optwin_f1 >= by_name["EDDM"]["f1"]
    assert best_optwin_f1 >= by_name["ECDD"]["f1"]
    assert by_name["OPTWIN rho=0.5"]["fp"] <= by_name["ADWIN"]["fp"] + 1.0
