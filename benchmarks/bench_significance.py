"""Section 4.1 — Wilcoxon significance analysis of F1-scores (experiment E13)."""

from conftest import run_once

from repro.evaluation.reporting import format_table
from repro.experiments.significance import collect_f1_scores, run_significance_analysis


def test_significance_analysis(benchmark, scale, report):
    scores = run_once(
        benchmark,
        collect_f1_scores,
        n_repetitions=max(scale["n_repetitions"], 5),
        segment_length=max(scale["segment_length"] // 2, 800),
        w_max=scale["w_max"],
    )
    comparisons = run_significance_analysis(scores)
    rows = [
        [
            comparison.detector_a,
            comparison.detector_b,
            f"{comparison.result.p_value:.4f}",
            "yes" if comparison.a_better else "no",
        ]
        for comparison in comparisons
    ]
    report(
        "significance",
        format_table(
            ["OPTWIN config", "Baseline", "p-value", "significantly better"],
            rows,
            title="Wilcoxon signed-rank (one-tailed, alpha=0.05) on per-run F1",
        ),
    )
    # Paper shape: at least one OPTWIN configuration significantly outperforms
    # each regression-capable baseline.
    beaten_baselines = {
        comparison.detector_b for comparison in comparisons if comparison.a_better
    }
    assert "STEPD" in beaten_baselines
