"""Table 1, block "sudden non-binary drift" (experiment E4 in DESIGN.md)."""

from conftest import run_once

from repro.evaluation.reporting import format_detection_rows
from repro.experiments.table1 import run_sudden_nonbinary, summaries_to_rows


def test_table1_sudden_nonbinary(benchmark, scale, report):
    summaries = run_once(
        benchmark,
        run_sudden_nonbinary,
        n_repetitions=scale["n_repetitions"],
        segment_length=scale["segment_length"],
        w_max=scale["w_max"],
    )
    rows = summaries_to_rows(summaries)
    report(
        "table1_sudden_nonbinary",
        format_detection_rows(rows, title="Table 1 - sudden non-binary drift"),
    )
    by_name = {row["detector"]: row for row in rows}
    # Binary-only baselines are excluded from this block, as in the paper.
    assert "DDM" not in by_name and "ECDD" not in by_name
    # Paper shape: OPTWIN detects the real-valued drift almost immediately and
    # with perfect precision; STEPD floods the run with false positives.
    optwin = by_name["OPTWIN rho=0.5"]
    assert optwin["recall"] == 1.0
    assert optwin["delay"] <= by_name["ADWIN"]["delay"] + 50
    assert optwin["f1"] >= by_name["STEPD"]["f1"]
