"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  By default the
workloads are scaled down so the whole suite finishes on a laptop in a few
minutes while preserving the shape of each comparison; set the environment
variable ``REPRO_BENCH_SCALE=paper`` to run the paper-sized configurations
(100,000-instance streams, 30 repetitions — this takes hours).

Results are printed to stdout (visible with ``pytest -s``) and also appended to
``benchmarks/results/`` so they survive pytest's output capture.
"""

from __future__ import annotations

import os
import pathlib
import sys

import pytest

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def _paper_scale() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "small").lower() == "paper"


@pytest.fixture(scope="session")
def scale():
    """Workload sizes used by the benchmark drivers."""
    if _paper_scale():
        return {
            "n_repetitions": 30,
            "segment_length": 10_000,
            "gradual_width": 1_000,
            "n_instances": 100_000,
            "drift_every": 20_000,
            "w_max": 25_000,
            "nn_batches": 2_000,
            "nn_fine_tune": 200,
            "table2_instances": 100_000,
            "table2_drift_every": 20_000,
        }
    return {
        "n_repetitions": 3,
        "segment_length": 2_500,
        "gradual_width": 600,
        "n_instances": 12_000,
        "drift_every": 3_000,
        "w_max": 25_000,
        "nn_batches": 400,
        "nn_fine_tune": 40,
        "table2_instances": 4_000,
        "table2_drift_every": 2_000,
    }


@pytest.fixture(scope="session")
def report():
    """Print a result block and persist it under ``benchmarks/results/``."""

    def _report(name: str, text: str) -> None:
        print(f"\n{text}\n")
        RESULTS_DIR.mkdir(exist_ok=True)
        output_path = RESULTS_DIR / f"{name}.txt"
        output_path.write_text(text + "\n", encoding="utf-8")

    return _report


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
