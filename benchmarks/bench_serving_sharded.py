"""Sharded serving throughput: multi-process ShardedHub vs one MonitorHub.

The workload is the serving benchmark's 1000-monitor multi-tenant fleet
(same detector mix, same flush sizes).  The single-process hub already runs
every flush through the vectorised ``update_batch`` fast paths, so the only
ceiling left is the GIL-bound event loop — which is exactly what
:class:`~repro.serving.sharded.ShardedHub` removes by fanning each ingest
batch out to N shared-nothing worker processes.

Detections are asserted bit-identical between all hubs, so the comparison
is pure execution-engine overhead: fan-out transport + parallel flush vs
in-process flush.  Both sharded transports are measured side by side —
``pickle`` (event chunks serialized through the worker pipes) and ``shm``
(float batches staged in per-shard shared memory, only descriptors on the
pipes) — and the shared-memory path must beat the pickle path: it replaces
per-batch serialization with one memcpy regardless of core count.  The
sharded-vs-single speedup, by contrast, is bounded by the machine's core
count; on a single-core container the sharded hub *pays* the IPC cost
without the parallelism (the result file records the core count for that
reason), so that hard assertion only applies on multi-core hosts.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.evaluation.reporting import format_table
from repro.serving.hub import MonitorHub
from repro.serving.sharded import ShardedHub
from repro.streams.error_streams import BinarySegment, binary_error_stream

#: Same fleet shape as ``bench_serving_throughput.py``.
_DETECTOR_MIX = [
    ("DDM", None),
    ("HddmA", None),
    ("STEPD", None),
    ("EDDM", None),
    ("OPTWIN", {"w_max": 5_000}),
]

_N_MONITORS = 1_000
_VALUES_PER_MONITOR = 2_048
_FLUSH_SIZE = 1_024
_N_SHARDS = max(2, min(4, os.cpu_count() or 1))


def _fleet_spec():
    for index in range(_N_MONITORS):
        name, params = _DETECTOR_MIX[index % len(_DETECTOR_MIX)]
        yield f"tenant-{index % 20}", f"monitor-{index:04d}", name, params


def _register_fleet(hub):
    for tenant, monitor_id, name, params in _fleet_spec():
        hub.register(tenant, monitor_id, name, params)


def _stream_values():
    """Distinct per-monitor streams (same drift shape, rotated).

    Using one shared chunk object for every monitor would let the pickle
    transport memoize it — serializing the batch once per flush instead of
    once per monitor, which no real interleaved multi-tenant stream allows.
    Each monitor gets its own array so both transports move the bytes they
    would move in production.
    """
    base = binary_error_stream(
        [BinarySegment(1_024, 0.1), BinarySegment(1_024, 0.55)], seed=13
    ).values
    import numpy as np

    return {
        (tenant, monitor_id): np.roll(base, index % 97)
        for index, (tenant, monitor_id, _, _) in enumerate(_fleet_spec())
    }


def _run_hub(hub, values) -> dict:
    detections = {}
    for start in range(0, _VALUES_PER_MONITOR, _FLUSH_SIZE):
        events = [
            (tenant, monitor_id, values[(tenant, monitor_id)][start : start + _FLUSH_SIZE])
            for tenant, monitor_id, _, _ in _fleet_spec()
        ]
        for outcome in hub.ingest(events):
            detections.setdefault(
                (outcome.tenant, outcome.monitor_id), []
            ).extend(outcome.drift_positions)
    return detections


def _run_sharded(transport, values) -> "tuple[dict, float]":
    hub = ShardedHub(_N_SHARDS, transport=transport)
    try:
        _register_fleet(hub)
        assert hub.transport == transport
        start = time.perf_counter()
        detections = _run_hub(hub, values)
        seconds = time.perf_counter() - start
    finally:
        hub.close()
    return detections, seconds


def test_sharded_hub_vs_single_process_hub(benchmark, report):
    values = _stream_values()
    n_events = _N_MONITORS * _VALUES_PER_MONITOR
    n_cores = os.cpu_count() or 1

    single_hub = MonitorHub()
    _register_fleet(single_hub)
    start = time.perf_counter()
    single_detections = _run_hub(single_hub, values)
    single_seconds = time.perf_counter() - start

    pickle_detections, pickle_seconds = _run_sharded("pickle", values)

    def _shm_run():
        return _run_sharded("shm", values)

    shm_detections, shm_seconds = run_once(benchmark, _shm_run)

    # Same events, same per-monitor order: detections must be bit-identical
    # across the process boundary AND across transports.
    assert pickle_detections == single_detections
    assert shm_detections == single_detections
    assert sum(len(v) for v in shm_detections.values()) > 0

    speedup_shm = single_seconds / max(shm_seconds, 1e-9)
    speedup_transport = pickle_seconds / max(shm_seconds, 1e-9)
    rows = [
        ["path", "wall-clock", "monitors x events/sec"],
        [
            "single-process hub ingest",
            f"{single_seconds:.2f} s",
            f"{n_events / single_seconds:,.0f}",
        ],
        [
            f"sharded ingest, pickle transport ({_N_SHARDS} shards)",
            f"{pickle_seconds:.2f} s",
            f"{n_events / pickle_seconds:,.0f}",
        ],
        [
            f"sharded ingest, shm transport ({_N_SHARDS} shards)",
            f"{shm_seconds:.2f} s",
            f"{n_events / shm_seconds:,.0f}",
        ],
        ["shm vs single-process", f"{speedup_shm:.2f}x", ""],
        ["shm vs pickle transport", f"{speedup_transport:.2f}x", ""],
    ]
    report(
        "serving_sharded",
        f"Sharded vs single-process hub, {_N_MONITORS} monitors x "
        f"{_VALUES_PER_MONITOR} values (flushes of {_FLUSH_SIZE}), "
        f"{_N_SHARDS} shards on {n_cores} core(s), detector mix "
        f"{[name for name, _ in _DETECTOR_MIX]}\n"
        + format_table(rows[0], rows[1:]),
    )
    # The transport comparison is core-count independent: shm removes
    # serialization work from the same critical path on any machine.
    assert speedup_transport > 1.0, (
        f"shm transport slower than pickle: {shm_seconds:.2f}s vs "
        f"{pickle_seconds:.2f}s"
    )
    # Parallel scaling needs cores; on a single-core host the sharded hub
    # pays IPC + context switches with nothing to parallelise onto.
    if n_cores >= 2:
        assert speedup_shm >= 1.2, (
            f"sharded hub only {speedup_shm:.2f}x over single-process on "
            f"{n_cores} cores"
        )
