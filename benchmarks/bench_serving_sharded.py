"""Sharded serving throughput: multi-process ShardedHub vs one MonitorHub.

The workload is the serving benchmark's 1000-monitor multi-tenant fleet
(same detector mix, same flush sizes).  The single-process hub already runs
every flush through the vectorised ``update_batch`` fast paths, so the only
ceiling left is the GIL-bound event loop — which is exactly what
:class:`~repro.serving.sharded.ShardedHub` removes by fanning each ingest
batch out to N shared-nothing worker processes.

Detections are asserted bit-identical between the two hubs, so the
comparison is pure execution-engine overhead: pickling event chunks across
pipes + parallel flush vs in-process flush.  The speedup is bounded by the
machine's core count; on a single-core container the sharded hub *pays* the
IPC cost without the parallelism (the result file records the core count for
that reason), so the hard assertion only applies on multi-core hosts.
"""

from __future__ import annotations

import os
import time

from conftest import run_once

from repro.evaluation.reporting import format_table
from repro.serving.hub import MonitorHub
from repro.serving.sharded import ShardedHub
from repro.streams.error_streams import BinarySegment, binary_error_stream

#: Same fleet shape as ``bench_serving_throughput.py``.
_DETECTOR_MIX = [
    ("DDM", None),
    ("HddmA", None),
    ("STEPD", None),
    ("EDDM", None),
    ("OPTWIN", {"w_max": 5_000}),
]

_N_MONITORS = 1_000
_VALUES_PER_MONITOR = 2_048
_FLUSH_SIZE = 1_024
_N_SHARDS = max(2, min(4, os.cpu_count() or 1))


def _fleet_spec():
    for index in range(_N_MONITORS):
        name, params = _DETECTOR_MIX[index % len(_DETECTOR_MIX)]
        yield f"tenant-{index % 20}", f"monitor-{index:04d}", name, params


def _register_fleet(hub):
    for tenant, monitor_id, name, params in _fleet_spec():
        hub.register(tenant, monitor_id, name, params)


def _stream_values():
    return binary_error_stream(
        [BinarySegment(1_024, 0.1), BinarySegment(1_024, 0.55)], seed=13
    ).values


def _run_hub(hub, values) -> dict:
    detections = {}
    for start in range(0, _VALUES_PER_MONITOR, _FLUSH_SIZE):
        chunk = values[start : start + _FLUSH_SIZE]
        events = [
            (tenant, monitor_id, chunk)
            for tenant, monitor_id, _, _ in _fleet_spec()
        ]
        for outcome in hub.ingest(events):
            detections.setdefault(
                (outcome.tenant, outcome.monitor_id), []
            ).extend(outcome.drift_positions)
    return detections


def test_sharded_hub_vs_single_process_hub(benchmark, report):
    values = _stream_values()
    n_events = _N_MONITORS * _VALUES_PER_MONITOR
    n_cores = os.cpu_count() or 1

    single_hub = MonitorHub()
    _register_fleet(single_hub)
    start = time.perf_counter()
    single_detections = _run_hub(single_hub, values)
    single_seconds = time.perf_counter() - start

    sharded_hub = ShardedHub(_N_SHARDS)
    try:
        _register_fleet(sharded_hub)
        sharded_detections = run_once(benchmark, _run_hub, sharded_hub, values)
        sharded_seconds = benchmark.stats.stats.total
    finally:
        sharded_hub.close()

    # Same events, same per-monitor order: detections must be bit-identical.
    assert sharded_detections == single_detections
    assert sum(len(v) for v in sharded_detections.values()) > 0

    speedup = single_seconds / max(sharded_seconds, 1e-9)
    rows = [
        ["path", "wall-clock", "monitors x events/sec"],
        [
            "single-process hub ingest",
            f"{single_seconds:.2f} s",
            f"{n_events / single_seconds:,.0f}",
        ],
        [
            f"sharded hub ingest ({_N_SHARDS} shards)",
            f"{sharded_seconds:.2f} s",
            f"{n_events / sharded_seconds:,.0f}",
        ],
        ["speedup", f"{speedup:.2f}x", ""],
    ]
    report(
        "serving_sharded",
        f"Sharded vs single-process hub, {_N_MONITORS} monitors x "
        f"{_VALUES_PER_MONITOR} values (flushes of {_FLUSH_SIZE}), "
        f"{_N_SHARDS} shards on {n_cores} core(s), detector mix "
        f"{[name for name, _ in _DETECTOR_MIX]}\n"
        + format_table(rows[0], rows[1:]),
    )
    # Parallel scaling needs cores; on a single-core host the sharded hub
    # pays pickling + context switches with nothing to parallelise onto.
    if n_cores >= 2:
        assert speedup >= 1.2, (
            f"sharded hub only {speedup:.2f}x over single-process on "
            f"{n_cores} cores"
        )
