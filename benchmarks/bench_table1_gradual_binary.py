"""Table 1, block "gradual binary drift" (experiment E1 in DESIGN.md)."""

from conftest import run_once

from repro.evaluation.reporting import format_detection_rows
from repro.experiments.table1 import run_gradual_binary, summaries_to_rows


def test_table1_gradual_binary(benchmark, scale, report):
    summaries = run_once(
        benchmark,
        run_gradual_binary,
        n_repetitions=scale["n_repetitions"],
        segment_length=scale["segment_length"],
        width=scale["gradual_width"],
        w_max=scale["w_max"],
    )
    rows = summaries_to_rows(summaries)
    report(
        "table1_gradual_binary",
        format_detection_rows(rows, title="Table 1 - gradual binary drift"),
    )
    by_name = {row["detector"]: row for row in rows}
    best_optwin_f1 = max(
        row["f1"] for name, row in by_name.items() if name.startswith("OPTWIN")
    )
    assert best_optwin_f1 >= by_name["EDDM"]["f1"]
    assert best_optwin_f1 >= by_name["ECDD"]["f1"]
    # Every detector still finds the gradual drifts (recall stays high).
    assert by_name["OPTWIN rho=0.5"]["recall"] >= 0.5
