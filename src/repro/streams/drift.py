"""Concept-drift composition of instance streams (the MOA "ConceptDrift" interface).

:class:`ConceptDriftStream` mixes a *base* stream and a *drift* stream: before
the drift ``position`` instances come from the base concept, afterwards from
the new concept, with a sigmoid hand-over of ``width`` instances for gradual
drifts (``width = 1`` gives a sudden drift) — exactly the semantics of MOA's
``ConceptDriftStream`` generator used in the paper's experiments.

:class:`MultiConceptDriftStream` chains any number of concepts with a shared
spacing, which is how the paper's classification experiments are built
("100,000 data points with drifts occurring every 20,000 data points").
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.base import Instance, InstanceStream

__all__ = ["ConceptDriftStream", "MultiConceptDriftStream"]


def _schemas_compatible(first: InstanceStream, second: InstanceStream) -> bool:
    """Whether two streams agree on attribute count, kinds, and cardinalities."""
    schema_a, schema_b = first.schema, second.schema
    if len(schema_a) != len(schema_b):
        return False
    return all(
        a.kind == b.kind and a.n_values == b.n_values
        for a, b in zip(schema_a, schema_b)
    )


class ConceptDriftStream(InstanceStream):
    """Mix two instance streams with a sudden or gradual (sigmoid) hand-over.

    Parameters
    ----------
    base_stream:
        Concept in effect before the drift.
    drift_stream:
        Concept in effect after the drift.
    position:
        Index (0-based instance count) of the centre of the drift.
    width:
        Width of the transition; 1 produces a sudden drift.
    seed:
        Seed of the Bernoulli draws that decide, inside the transition
        region, which concept generates each instance.
    """

    def __init__(
        self,
        base_stream: InstanceStream,
        drift_stream: InstanceStream,
        position: int,
        width: int = 1,
        seed: int = 1,
    ) -> None:
        if position < 1:
            raise ConfigurationError(f"position must be >= 1, got {position}")
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        if base_stream.n_classes != drift_stream.n_classes:
            raise ConfigurationError(
                "base and drift streams must have the same number of classes"
            )
        if not _schemas_compatible(base_stream, drift_stream):
            raise ConfigurationError(
                "base and drift streams must share the same attribute schema"
            )
        super().__init__(
            schema=base_stream.schema,
            n_classes=base_stream.n_classes,
            seed=seed,
        )
        self._base_stream = base_stream
        self._drift_stream = drift_stream
        self._position = position
        self._width = width

    @property
    def position(self) -> int:
        """Centre of the drift, in instances."""
        return self._position

    @property
    def width(self) -> int:
        """Width of the transition (1 = sudden)."""
        return self._width

    @property
    def drift_positions(self) -> Tuple[int, ...]:
        """Ground-truth drift onset (start of the transition region)."""
        if self._width <= 1:
            return (self._position,)
        return (max(self._position - self._width // 2, 0),)

    def probability_of_new_concept(self, index: int) -> float:
        """Sigmoid probability that instance ``index`` comes from the new concept."""
        x = -4.0 * (index - self._position) / self._width
        if x > 700.0:
            return 0.0
        return 1.0 / (1.0 + math.exp(x))

    def _generate_instance(self) -> Instance:
        probability = self.probability_of_new_concept(self._n_emitted)
        if self._rng.random() < probability:
            return self._drift_stream.next_instance()
        return self._base_stream.next_instance()

    def restart(self) -> None:
        """Restart this stream and both underlying concepts."""
        super().restart()
        self._base_stream.restart()
        self._drift_stream.restart()


class MultiConceptDriftStream(InstanceStream):
    """Chain several concepts with equally meaningful drift metadata.

    Parameters
    ----------
    streams:
        The concepts, in order of appearance (at least two).
    drift_positions:
        Centre of each drift; must be strictly increasing and contain exactly
        ``len(streams) - 1`` entries.
    width:
        Transition width shared by every drift (1 = sudden).
    seed:
        Seed for the transition-region Bernoulli draws.
    """

    def __init__(
        self,
        streams: Sequence[InstanceStream],
        drift_positions: Sequence[int],
        width: int = 1,
        seed: int = 1,
    ) -> None:
        if len(streams) < 2:
            raise ConfigurationError("need at least two concepts")
        if len(drift_positions) != len(streams) - 1:
            raise ConfigurationError(
                f"need exactly {len(streams) - 1} drift positions, "
                f"got {len(drift_positions)}"
            )
        if list(drift_positions) != sorted(set(drift_positions)):
            raise ConfigurationError("drift_positions must be strictly increasing")
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        first = streams[0]
        for stream in streams[1:]:
            if stream.n_classes != first.n_classes or not _schemas_compatible(
                first, stream
            ):
                raise ConfigurationError(
                    "all concepts must share the same schema and class count"
                )
        super().__init__(schema=first.schema, n_classes=first.n_classes, seed=seed)
        self._streams = list(streams)
        self._positions = [int(p) for p in drift_positions]
        self._width = width

    @property
    def drift_positions(self) -> Tuple[int, ...]:
        """Ground-truth drift onsets (start of each transition region)."""
        if self._width <= 1:
            return tuple(self._positions)
        return tuple(max(p - self._width // 2, 0) for p in self._positions)

    @property
    def drift_widths(self) -> Tuple[int, ...]:
        """Transition width of each drift."""
        return tuple(self._width for _ in self._positions)

    def _concept_probabilities(self, index: int) -> List[float]:
        """Probability of each concept being active at instance ``index``."""
        n = len(self._streams)
        # sigma[k] = probability that the stream has already switched past
        # concept k (i.e. drift k has "happened" for this instance).
        sigma = []
        for position in self._positions:
            x = -4.0 * (index - position) / self._width
            sigma.append(0.0 if x > 700.0 else 1.0 / (1.0 + math.exp(x)))
        probabilities = []
        for k in range(n):
            before = sigma[k - 1] if k > 0 else 1.0
            after = sigma[k] if k < n - 1 else 0.0
            probabilities.append(max(before - after, 0.0))
        total = sum(probabilities)
        if total <= 0.0:
            probabilities = [1.0 if k == n - 1 else 0.0 for k in range(n)]
            total = 1.0
        return [p / total for p in probabilities]

    def _generate_instance(self) -> Instance:
        probabilities = self._concept_probabilities(self._n_emitted)
        choice = int(self._rng.choice(len(self._streams), p=np.asarray(probabilities)))
        return self._streams[choice].next_instance()

    def restart(self) -> None:
        """Restart this stream and every underlying concept."""
        super().restart()
        for stream in self._streams:
            stream.restart()
