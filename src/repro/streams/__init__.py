"""Data-stream substrate: generators, drift composition, and error streams.

This package is the library's replacement for the parts of MOA the paper's
evaluation relies on:

* :mod:`repro.streams.synthetic` — STAGGER, AGRAWAL, RandomRBF (plus SEA,
  SINE, LED, hyperplane extensions);
* :mod:`repro.streams.drift` — sudden/gradual concept-drift composition;
* :mod:`repro.streams.error_streams` — raw error-value streams for the
  detector-only experiments;
* :mod:`repro.streams.real_world` — offline surrogates of Electricity and
  Covertype (see DESIGN.md §3 for the substitution rationale).
"""

from repro.streams.base import (
    Attribute,
    Instance,
    InstanceStream,
    MaterializedStream,
    ValueStream,
    nominal_attribute,
    numeric_attribute,
)
from repro.streams.drift import ConceptDriftStream, MultiConceptDriftStream
from repro.streams.error_streams import (
    BinarySegment,
    GaussianSegment,
    binary_error_stream,
    gaussian_error_stream,
)
from repro.streams.real_world import CovertypeSurrogate, ElectricitySurrogate
from repro.streams.synthetic import (
    AgrawalGenerator,
    HyperplaneGenerator,
    LedGenerator,
    RandomRbfDriftGenerator,
    RandomRbfGenerator,
    SeaGenerator,
    SineGenerator,
    StaggerGenerator,
)

__all__ = [
    "Attribute",
    "Instance",
    "InstanceStream",
    "MaterializedStream",
    "ValueStream",
    "numeric_attribute",
    "nominal_attribute",
    "ConceptDriftStream",
    "MultiConceptDriftStream",
    "BinarySegment",
    "GaussianSegment",
    "binary_error_stream",
    "gaussian_error_stream",
    "StaggerGenerator",
    "AgrawalGenerator",
    "RandomRbfGenerator",
    "RandomRbfDriftGenerator",
    "SeaGenerator",
    "SineGenerator",
    "LedGenerator",
    "HyperplaneGenerator",
    "ElectricitySurrogate",
    "CovertypeSurrogate",
]
