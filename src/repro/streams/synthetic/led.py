"""LED generator (Breiman et al. 1984) — extension stream.

The task is to predict the digit (0-9) shown on a seven-segment LED display
from the segment states.  Each segment value is flipped with ``noise_fraction``
probability, and ``n_irrelevant`` additional random binary attributes can be
appended.  Concept drift is produced by swapping the roles of some relevant
and irrelevant attributes (the ``n_drift_attributes`` parameter), as in MOA's
``LEDGeneratorDrift``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.base import Instance, InstanceStream, nominal_attribute

__all__ = ["LedGenerator"]

# Segment patterns of the digits 0-9 (a, b, c, d, e, f, g).
_DIGIT_SEGMENTS = np.array(
    [
        [1, 1, 1, 1, 1, 1, 0],
        [0, 1, 1, 0, 0, 0, 0],
        [1, 1, 0, 1, 1, 0, 1],
        [1, 1, 1, 1, 0, 0, 1],
        [0, 1, 1, 0, 0, 1, 1],
        [1, 0, 1, 1, 0, 1, 1],
        [1, 0, 1, 1, 1, 1, 1],
        [1, 1, 1, 0, 0, 0, 0],
        [1, 1, 1, 1, 1, 1, 1],
        [1, 1, 1, 1, 0, 1, 1],
    ],
    dtype=np.int64,
)


class LedGenerator(InstanceStream):
    """Stream generator for the LED digit-recognition problem.

    Parameters
    ----------
    noise_fraction:
        Probability of flipping each relevant segment.
    n_irrelevant:
        Number of additional random binary attributes.
    n_drift_attributes:
        Number of leading relevant attributes swapped with irrelevant ones;
        use different values before/after a drift point to create a concept
        drift.
    seed:
        Random seed.
    """

    def __init__(
        self,
        noise_fraction: float = 0.1,
        n_irrelevant: int = 17,
        n_drift_attributes: int = 0,
        seed: int = 1,
    ) -> None:
        if not 0.0 <= noise_fraction < 1.0:
            raise ConfigurationError(
                f"noise_fraction must be in [0, 1), got {noise_fraction}"
            )
        if n_irrelevant < 0:
            raise ConfigurationError(f"n_irrelevant must be >= 0, got {n_irrelevant}")
        if n_drift_attributes < 0 or n_drift_attributes > min(7, n_irrelevant):
            raise ConfigurationError(
                "n_drift_attributes must be in [0, min(7, n_irrelevant)], "
                f"got {n_drift_attributes}"
            )
        n_attributes = 7 + n_irrelevant
        schema = [nominal_attribute(f"att{i}", 2) for i in range(n_attributes)]
        super().__init__(schema=schema, n_classes=10, seed=seed)
        self._noise_fraction = noise_fraction
        self._n_irrelevant = n_irrelevant
        self._n_drift_attributes = n_drift_attributes

    def _generate_instance(self) -> Instance:
        digit = int(self._rng.integers(0, 10))
        segments = _DIGIT_SEGMENTS[digit].astype(np.float64).copy()
        if self._noise_fraction > 0.0:
            flips = self._rng.random(7) < self._noise_fraction
            segments[flips] = 1.0 - segments[flips]
        irrelevant = (self._rng.random(self._n_irrelevant) < 0.5).astype(np.float64)
        x = np.concatenate([segments, irrelevant])
        # Swap the first n_drift_attributes relevant segments with the first
        # n_drift_attributes irrelevant attributes (concept drift mechanism).
        for index in range(self._n_drift_attributes):
            x[index], x[7 + index] = x[7 + index], x[index]
        return Instance(x=x, y=digit)
