"""Rotating-hyperplane generator (Hulten et al. 2001) — extension stream.

Instances are points in the unit hypercube; the label is positive when the
weighted sum of the attributes exceeds a threshold equal to half the sum of
the weights.  A configurable number of weights change by ``magnitude`` per
instance (with occasional sign reversals), producing *incremental* concept
drift, which complements the sudden/gradual drifts of the other generators.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.base import Instance, InstanceStream, numeric_attribute

__all__ = ["HyperplaneGenerator"]


class HyperplaneGenerator(InstanceStream):
    """Stream generator for the rotating-hyperplane problem.

    Parameters
    ----------
    n_features:
        Number of numeric attributes.
    n_drift_features:
        How many of the weights drift.
    magnitude:
        Change applied to each drifting weight per instance.
    noise_fraction:
        Probability of flipping the label.
    sigma_probability:
        Probability of reversing the direction of a drifting weight.
    seed:
        Random seed.
    """

    def __init__(
        self,
        n_features: int = 10,
        n_drift_features: int = 2,
        magnitude: float = 0.0,
        noise_fraction: float = 0.05,
        sigma_probability: float = 0.1,
        seed: int = 1,
    ) -> None:
        if n_features < 1:
            raise ConfigurationError(f"n_features must be >= 1, got {n_features}")
        if not 0 <= n_drift_features <= n_features:
            raise ConfigurationError(
                f"n_drift_features must be in [0, {n_features}], got {n_drift_features}"
            )
        if magnitude < 0.0:
            raise ConfigurationError(f"magnitude must be >= 0, got {magnitude}")
        if not 0.0 <= noise_fraction < 1.0:
            raise ConfigurationError(
                f"noise_fraction must be in [0, 1), got {noise_fraction}"
            )
        schema = [numeric_attribute(f"att{i}") for i in range(n_features)]
        super().__init__(schema=schema, n_classes=2, seed=seed)
        self._n_drift_features = n_drift_features
        self._magnitude = magnitude
        self._noise_fraction = noise_fraction
        self._sigma_probability = sigma_probability
        self._weights = self._rng.random(n_features)
        self._directions = np.ones(n_features)

    def _generate_instance(self) -> Instance:
        x = self._rng.random(self.n_features)
        total = float(np.dot(self._weights, x))
        threshold = 0.5 * float(np.sum(self._weights))
        label = int(total >= threshold)
        if self._noise_fraction > 0.0 and self._rng.random() < self._noise_fraction:
            label = 1 - label
        self._apply_drift()
        return Instance(x=x.astype(np.float64), y=label)

    def _apply_drift(self) -> None:
        if self._magnitude <= 0.0 or self._n_drift_features == 0:
            return
        for index in range(self._n_drift_features):
            self._weights[index] += self._directions[index] * self._magnitude
            if self._rng.random() < self._sigma_probability:
                self._directions[index] *= -1.0
