"""RandomRBF generator (Bifet et al. 2009).

The generator places a fixed number of centroids in the unit hypercube, each
with a random centre, class label, weight, and standard deviation.  Every
instance picks a centroid (weighted), then offsets the centre in a random
direction by a Gaussian-scaled distance.  Different seeds produce different
concepts, and the drifting variant moves the centroids by a small amount per
instance, producing incremental drift.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.base import Instance, InstanceStream, numeric_attribute

__all__ = ["RandomRbfGenerator", "RandomRbfDriftGenerator"]


class _Centroid:
    """One RBF centroid."""

    __slots__ = ("centre", "label", "std", "weight", "direction")

    def __init__(self, centre: np.ndarray, label: int, std: float, weight: float) -> None:
        self.centre = centre
        self.label = label
        self.std = std
        self.weight = weight
        self.direction: np.ndarray = np.zeros_like(centre)


class RandomRbfGenerator(InstanceStream):
    """Random radial-basis-function stream generator.

    Parameters
    ----------
    n_classes:
        Number of class labels.
    n_features:
        Number of numeric attributes.
    n_centroids:
        Number of RBF centroids.
    model_seed:
        Seed controlling the centroid layout (the *concept*).
    seed:
        Seed controlling the instance sampling.
    """

    def __init__(
        self,
        n_classes: int = 2,
        n_features: int = 10,
        n_centroids: int = 50,
        model_seed: int = 1,
        seed: int = 1,
    ) -> None:
        if n_features < 1:
            raise ConfigurationError(f"n_features must be >= 1, got {n_features}")
        if n_centroids < 1:
            raise ConfigurationError(f"n_centroids must be >= 1, got {n_centroids}")
        schema = [numeric_attribute(f"att{i}") for i in range(n_features)]
        super().__init__(schema=schema, n_classes=n_classes, seed=seed)
        self._model_seed = model_seed
        self._n_centroids = n_centroids
        self._centroids = self._build_centroids()
        self._weights = np.array([c.weight for c in self._centroids])
        self._weights = self._weights / self._weights.sum()

    @property
    def model_seed(self) -> int:
        """Seed of the centroid layout (identifies the concept)."""
        return self._model_seed

    def _build_centroids(self):
        model_rng = np.random.default_rng(self._model_seed)
        centroids = []
        for _ in range(self._n_centroids):
            centre = model_rng.random(self.n_features)
            label = int(model_rng.integers(0, self.n_classes))
            std = float(model_rng.random())
            weight = float(model_rng.random()) + 1e-9
            centroids.append(_Centroid(centre, label, std, weight))
        return centroids

    def _generate_instance(self) -> Instance:
        index = int(self._rng.choice(self._n_centroids, p=self._weights))
        centroid = self._centroids[index]
        direction = self._rng.normal(size=self.n_features)
        norm = np.linalg.norm(direction)
        if norm == 0.0:
            direction = np.ones(self.n_features) / np.sqrt(self.n_features)
        else:
            direction = direction / norm
        magnitude = self._rng.normal() * centroid.std
        x = centroid.centre + direction * magnitude
        return Instance(x=x.astype(np.float64), y=centroid.label)


class RandomRbfDriftGenerator(RandomRbfGenerator):
    """RandomRBF variant whose centroids move, producing incremental drift.

    Parameters
    ----------
    change_speed:
        Distance each drifting centroid moves per instance.
    n_drift_centroids:
        How many of the centroids drift (the rest stay fixed).
    """

    def __init__(
        self,
        n_classes: int = 2,
        n_features: int = 10,
        n_centroids: int = 50,
        change_speed: float = 0.0001,
        n_drift_centroids: int = 50,
        model_seed: int = 1,
        seed: int = 1,
    ) -> None:
        if change_speed < 0.0:
            raise ConfigurationError(f"change_speed must be >= 0, got {change_speed}")
        super().__init__(
            n_classes=n_classes,
            n_features=n_features,
            n_centroids=n_centroids,
            model_seed=model_seed,
            seed=seed,
        )
        self._change_speed = change_speed
        self._n_drift_centroids = min(n_drift_centroids, n_centroids)
        direction_rng = np.random.default_rng(self._model_seed + 1)
        for centroid in self._centroids[: self._n_drift_centroids]:
            direction = direction_rng.normal(size=self.n_features)
            centroid.direction = direction / (np.linalg.norm(direction) + 1e-12)

    def _generate_instance(self) -> Instance:
        for centroid in self._centroids[: self._n_drift_centroids]:
            centroid.centre = centroid.centre + centroid.direction * self._change_speed
            # Bounce off the unit hypercube walls.
            for axis in range(self.n_features):
                if centroid.centre[axis] < 0.0 or centroid.centre[axis] > 1.0:
                    centroid.direction[axis] *= -1.0
                    centroid.centre[axis] = min(max(centroid.centre[axis], 0.0), 1.0)
        return super()._generate_instance()
