"""AGRAWAL generator (Agrawal, Imielinski & Swami 1993).

The AGRAWAL generator produces a hypothetical loan-application dataset with
nine attributes (six numeric, three nominal) and ten pre-defined binary
classification functions describing whether the loan should be approved.
Concept drifts are produced by switching the classification function, exactly
as in MOA's ``AgrawalGenerator`` used by the paper.

Attribute ranges follow the original paper:

========== ========= =====================================
attribute  type      range
========== ========= =====================================
salary     numeric   20,000 .. 150,000
commission numeric   0 (if salary >= 75k) or 10,000 .. 75,000
age        numeric   20 .. 80
elevel     nominal   0 .. 4
car        nominal   1 .. 20
zipcode    nominal   0 .. 8
hvalue     numeric   50,000 .. 150,000 (scaled by zipcode)
hyears     numeric   1 .. 30
loan       numeric   0 .. 500,000
========== ========= =====================================
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.base import Instance, InstanceStream, nominal_attribute, numeric_attribute

__all__ = ["AgrawalGenerator"]


def _function_1(salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan):
    return int(age < 40 or age >= 60)


def _function_2(salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan):
    if age < 40:
        return int(50_000 <= salary <= 100_000)
    if age < 60:
        return int(75_000 <= salary <= 125_000)
    return int(25_000 <= salary <= 75_000)


def _function_3(salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan):
    if age < 40:
        return int(elevel in (0, 1))
    if age < 60:
        return int(elevel in (1, 2, 3))
    return int(elevel in (2, 3, 4))


def _function_4(salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan):
    if age < 40:
        if elevel in (0, 1):
            return int(25_000 <= salary <= 75_000)
        return int(50_000 <= salary <= 100_000)
    if age < 60:
        if elevel in (1, 2, 3):
            return int(50_000 <= salary <= 100_000)
        return int(75_000 <= salary <= 125_000)
    if elevel in (2, 3, 4):
        return int(50_000 <= salary <= 100_000)
    return int(25_000 <= salary <= 75_000)


def _function_5(salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan):
    if age < 40:
        if 50_000 <= salary <= 100_000:
            return int(100_000 <= loan <= 300_000)
        return int(200_000 <= loan <= 400_000)
    if age < 60:
        if 75_000 <= salary <= 125_000:
            return int(200_000 <= loan <= 400_000)
        return int(300_000 <= loan <= 500_000)
    if 25_000 <= salary <= 75_000:
        return int(300_000 <= loan <= 500_000)
    return int(100_000 <= loan <= 300_000)


def _function_6(salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan):
    total = salary + commission
    if age < 40:
        return int(50_000 <= total <= 100_000)
    if age < 60:
        return int(75_000 <= total <= 125_000)
    return int(25_000 <= total <= 75_000)


def _function_7(salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan):
    disposable = 0.67 * (salary + commission) - 0.2 * loan - 20_000
    return int(disposable > 0)


def _function_8(salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan):
    disposable = 0.67 * (salary + commission) - 5_000 * elevel - 20_000
    return int(disposable > 0)


def _function_9(salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan):
    disposable = 0.67 * (salary + commission) - 5_000 * elevel - 0.2 * loan - 10_000
    return int(disposable > 0)


def _function_10(salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan):
    equity = 0.0
    if hyears >= 20:
        equity = 0.1 * hvalue * (hyears - 20)
    disposable = 0.67 * (salary + commission) - 5_000 * elevel + 0.2 * equity - 10_000
    return int(disposable > 0)


_FUNCTIONS: Dict[int, Callable[..., int]] = {
    1: _function_1,
    2: _function_2,
    3: _function_3,
    4: _function_4,
    5: _function_5,
    6: _function_6,
    7: _function_7,
    8: _function_8,
    9: _function_9,
    10: _function_10,
}


class AgrawalGenerator(InstanceStream):
    """Stream generator for the AGRAWAL loan-approval problem.

    Parameters
    ----------
    classification_function:
        Which of the ten functions defines the label (1..10).
    perturbation:
        Fraction (in ``[0, 1]``) of uniform noise added to the numeric
        attributes after the label is computed, as in the original generator.
    balance_classes:
        Alternate positive/negative instances when ``True``.
    seed:
        Random seed.
    """

    def __init__(
        self,
        classification_function: int = 1,
        perturbation: float = 0.0,
        balance_classes: bool = False,
        seed: int = 1,
    ) -> None:
        if classification_function not in _FUNCTIONS:
            raise ConfigurationError(
                "classification_function must be in 1..10, "
                f"got {classification_function}"
            )
        if not 0.0 <= perturbation <= 1.0:
            raise ConfigurationError(
                f"perturbation must be in [0, 1], got {perturbation}"
            )
        schema = [
            numeric_attribute("salary"),
            numeric_attribute("commission"),
            numeric_attribute("age"),
            nominal_attribute("elevel", 5),
            nominal_attribute("car", 20),
            nominal_attribute("zipcode", 9),
            numeric_attribute("hvalue"),
            numeric_attribute("hyears"),
            numeric_attribute("loan"),
        ]
        super().__init__(schema=schema, n_classes=2, seed=seed)
        self._classification_function = classification_function
        self._perturbation = perturbation
        self._balance_classes = balance_classes
        self._next_class_should_be_zero = False

    @property
    def classification_function(self) -> int:
        """Index (1-based) of the active classification function."""
        return self._classification_function

    def _draw_raw(self):
        rng = self._rng
        salary = 20_000.0 + 130_000.0 * rng.random()
        commission = 0.0 if salary >= 75_000.0 else 10_000.0 + 65_000.0 * rng.random()
        age = float(rng.integers(20, 81))
        elevel = int(rng.integers(0, 5))
        car = int(rng.integers(1, 21))
        zipcode = int(rng.integers(0, 9))
        hvalue = (9.0 - zipcode) * 100_000.0 * (0.5 + rng.random())
        hyears = float(rng.integers(1, 31))
        loan = 500_000.0 * rng.random()
        return salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan

    def _perturb(self, value: float, minimum: float, maximum: float) -> float:
        if self._perturbation <= 0.0:
            return value
        span = maximum - minimum
        noise = (2.0 * self._rng.random() - 1.0) * self._perturbation * span
        return float(min(max(value + noise, minimum), maximum))

    def _generate_instance(self) -> Instance:
        while True:
            raw = self._draw_raw()
            label = _FUNCTIONS[self._classification_function](*raw)
            if not self._balance_classes:
                break
            desired_zero = self._next_class_should_be_zero
            if (label == 0) == desired_zero:
                self._next_class_should_be_zero = not desired_zero
                break

        salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan = raw
        salary = self._perturb(salary, 20_000.0, 150_000.0)
        if commission > 0.0:
            commission = self._perturb(commission, 10_000.0, 75_000.0)
        age = self._perturb(age, 20.0, 80.0)
        hvalue = self._perturb(hvalue, 50_000.0, 900_000.0)
        hyears = self._perturb(hyears, 1.0, 30.0)
        loan = self._perturb(loan, 0.0, 500_000.0)

        x = np.array(
            [salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan],
            dtype=np.float64,
        )
        return Instance(x=x, y=label)
