"""SINE generators (Gama et al. 2004) — extension streams.

Two numeric attributes drawn uniformly from ``[0, 1]``.  SINE1 labels an
instance positive when it lies below the curve ``y = sin(x)``; SINE2 uses
``y = 0.5 + 0.3 sin(3 pi x)``.  The "reversed" variants flip the labels, which
is the standard way of producing an abrupt concept drift with these
generators.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.base import Instance, InstanceStream, numeric_attribute

__all__ = ["SineGenerator"]


class SineGenerator(InstanceStream):
    """Stream generator for the SINE1/SINE2 problems.

    Parameters
    ----------
    classification_function:
        1 = SINE1, 2 = reversed SINE1, 3 = SINE2, 4 = reversed SINE2.
    seed:
        Random seed.
    """

    def __init__(self, classification_function: int = 1, seed: int = 1) -> None:
        if classification_function not in (1, 2, 3, 4):
            raise ConfigurationError(
                f"classification_function must be in 1..4, got {classification_function}"
            )
        schema = [numeric_attribute("x1"), numeric_attribute("x2")]
        super().__init__(schema=schema, n_classes=2, seed=seed)
        self._classification_function = classification_function

    @property
    def classification_function(self) -> int:
        """Index (1-based) of the active SINE concept."""
        return self._classification_function

    def _generate_instance(self) -> Instance:
        x1 = float(self._rng.random())
        x2 = float(self._rng.random())
        if self._classification_function in (1, 2):
            below = x2 < math.sin(x1)
        else:
            below = x2 < 0.5 + 0.3 * math.sin(3.0 * math.pi * x1)
        label = int(below)
        if self._classification_function in (2, 4):
            label = 1 - label
        return Instance(x=np.array([x1, x2], dtype=np.float64), y=label)
