"""SEA concepts generator (Street & Kim 2001) — extension stream.

Three numeric attributes drawn uniformly from ``[0, 10]``; only the first two
are relevant.  The label is positive when ``att1 + att2 <= threshold`` with a
threshold of 8, 9, 7, or 9.5 depending on the chosen classification function.
A configurable fraction of label noise can be added.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.base import Instance, InstanceStream, numeric_attribute

__all__ = ["SeaGenerator"]

_THRESHOLDS = {1: 8.0, 2: 9.0, 3: 7.0, 4: 9.5}


class SeaGenerator(InstanceStream):
    """Stream generator for the SEA concepts.

    Parameters
    ----------
    classification_function:
        Which threshold defines the label (1..4).
    noise_fraction:
        Probability of flipping the label of an instance.
    seed:
        Random seed.
    """

    def __init__(
        self,
        classification_function: int = 1,
        noise_fraction: float = 0.0,
        seed: int = 1,
    ) -> None:
        if classification_function not in _THRESHOLDS:
            raise ConfigurationError(
                f"classification_function must be in 1..4, got {classification_function}"
            )
        if not 0.0 <= noise_fraction < 1.0:
            raise ConfigurationError(
                f"noise_fraction must be in [0, 1), got {noise_fraction}"
            )
        schema = [numeric_attribute(f"att{i}") for i in range(3)]
        super().__init__(schema=schema, n_classes=2, seed=seed)
        self._threshold = _THRESHOLDS[classification_function]
        self._classification_function = classification_function
        self._noise_fraction = noise_fraction

    @property
    def classification_function(self) -> int:
        """Index (1-based) of the active SEA concept."""
        return self._classification_function

    def _generate_instance(self) -> Instance:
        x = self._rng.random(3) * 10.0
        label = int(x[0] + x[1] <= self._threshold)
        if self._noise_fraction > 0.0 and self._rng.random() < self._noise_fraction:
            label = 1 - label
        return Instance(x=x.astype(np.float64), y=label)
