"""STAGGER concepts generator (Schlimmer & Granger 1986).

The STAGGER problem has three nominal attributes — ``size`` (small, medium,
large), ``color`` (red, green, blue), and ``shape`` (square, circular,
triangular) — and three alternative target concepts:

1. ``size = small and color = red``
2. ``color = green or shape = circular``
3. ``size = medium or size = large``

Concept drifts are produced by switching the classification function, usually
through :class:`repro.streams.drift.ConceptDriftStream`, exactly as in the
paper's MOA experiments.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.base import Instance, InstanceStream, nominal_attribute

__all__ = ["StaggerGenerator"]

_SIZE_SMALL, _SIZE_MEDIUM, _SIZE_LARGE = 0, 1, 2
_COLOR_RED, _COLOR_GREEN, _COLOR_BLUE = 0, 1, 2
_SHAPE_SQUARE, _SHAPE_CIRCULAR, _SHAPE_TRIANGULAR = 0, 1, 2


class StaggerGenerator(InstanceStream):
    """Stream generator for the STAGGER concepts.

    Parameters
    ----------
    classification_function:
        Which of the three STAGGER concepts defines the label (1, 2, or 3).
    balance_classes:
        When ``True``, instances are resampled so that positive and negative
        examples alternate, matching MOA's ``balanceClasses`` option.
    seed:
        Random seed.
    """

    def __init__(
        self,
        classification_function: int = 1,
        balance_classes: bool = False,
        seed: int = 1,
    ) -> None:
        if classification_function not in (1, 2, 3):
            raise ConfigurationError(
                f"classification_function must be 1, 2, or 3, "
                f"got {classification_function}"
            )
        schema = [
            nominal_attribute("size", 3),
            nominal_attribute("color", 3),
            nominal_attribute("shape", 3),
        ]
        super().__init__(schema=schema, n_classes=2, seed=seed)
        self._classification_function = classification_function
        self._balance_classes = balance_classes
        self._next_class_should_be_zero = False

    @property
    def classification_function(self) -> int:
        """Index (1-based) of the active STAGGER concept."""
        return self._classification_function

    def _label(self, size: int, color: int, shape: int) -> int:
        if self._classification_function == 1:
            return int(size == _SIZE_SMALL and color == _COLOR_RED)
        if self._classification_function == 2:
            return int(color == _COLOR_GREEN or shape == _SHAPE_CIRCULAR)
        return int(size in (_SIZE_MEDIUM, _SIZE_LARGE))

    def _generate_instance(self) -> Instance:
        while True:
            size = int(self._rng.integers(0, 3))
            color = int(self._rng.integers(0, 3))
            shape = int(self._rng.integers(0, 3))
            label = self._label(size, color, shape)
            if not self._balance_classes:
                break
            desired_zero = self._next_class_should_be_zero
            if (label == 0) == desired_zero:
                self._next_class_should_be_zero = not desired_zero
                break
        x = np.array([size, color, shape], dtype=np.float64)
        return Instance(x=x, y=label)
