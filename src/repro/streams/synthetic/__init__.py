"""Synthetic labeled-stream generators (the MOA generator substitutes).

STAGGER, AGRAWAL, and RandomRBF are the generators used in the OPTWIN paper's
classification experiments; SEA, SINE, LED, and the rotating hyperplane are
extension generators commonly used in the drift-detection literature and are
exercised by the extra examples and ablation benchmarks.
"""

from repro.streams.synthetic.agrawal import AgrawalGenerator
from repro.streams.synthetic.hyperplane import HyperplaneGenerator
from repro.streams.synthetic.led import LedGenerator
from repro.streams.synthetic.random_rbf import RandomRbfDriftGenerator, RandomRbfGenerator
from repro.streams.synthetic.sea import SeaGenerator
from repro.streams.synthetic.sine import SineGenerator
from repro.streams.synthetic.stagger import StaggerGenerator

__all__ = [
    "StaggerGenerator",
    "AgrawalGenerator",
    "RandomRbfGenerator",
    "RandomRbfDriftGenerator",
    "SeaGenerator",
    "SineGenerator",
    "LedGenerator",
    "HyperplaneGenerator",
]
