"""Synthetic error-rate streams for the "Concept Drift interface" experiments.

The first group of experiments in the paper (Table 1, first four blocks) does
not involve a learner at all: MOA generates a stream of error values — binary
(Bernoulli) or non-binary (real-valued) — that contains a known concept drift,
and every detector consumes that stream directly.  These factories build the
equivalent streams with exact ground-truth drift positions:

* :func:`binary_error_stream` — Bernoulli error indicators whose error
  probability changes from segment to segment;
* :func:`gaussian_error_stream` — real-valued "errors" (e.g. losses of a
  regressor) whose mean and/or standard deviation change between segments.

Both support *sudden* transitions (``width=1``) and *gradual* transitions,
where within the transition window each element is drawn from the new concept
with a sigmoid-increasing probability — the same mixing model as MOA's
``ConceptDriftStream``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streams.base import ValueStream

__all__ = [
    "BinarySegment",
    "GaussianSegment",
    "binary_error_stream",
    "gaussian_error_stream",
]


@dataclass(frozen=True)
class BinarySegment:
    """One stationary segment of a Bernoulli error stream.

    Attributes
    ----------
    length:
        Number of elements in the segment.
    error_rate:
        Probability of an error (a value of 1.0) within the segment.
    """

    length: int
    error_rate: float

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ConfigurationError(f"segment length must be >= 1, got {self.length}")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ConfigurationError(
                f"error_rate must be in [0, 1], got {self.error_rate}"
            )


@dataclass(frozen=True)
class GaussianSegment:
    """One stationary segment of a real-valued error stream.

    Attributes
    ----------
    length:
        Number of elements in the segment.
    mean:
        Mean error value within the segment.
    std:
        Standard deviation of the error values within the segment.
    """

    length: int
    mean: float
    std: float

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ConfigurationError(f"segment length must be >= 1, got {self.length}")
        if self.std < 0.0:
            raise ConfigurationError(f"std must be >= 0, got {self.std}")


def _transition_probability(offset_from_centre: float, width: int) -> float:
    """Sigmoid probability of already being in the next concept."""
    x = -4.0 * offset_from_centre / max(width, 1)
    if x > 700.0:
        return 0.0
    return 1.0 / (1.0 + math.exp(x))


def _segment_index(position: int, boundaries: Sequence[int], width: int, rng) -> int:
    """Which segment generates the element at ``position``.

    Outside transition regions this is simply the segment the position falls
    into; inside a transition region of ``width`` centred at a boundary, the
    newer segment is chosen with sigmoid-increasing probability.
    """
    segment = 0
    for boundary in boundaries:
        if position >= boundary:
            segment += 1
    if width <= 1:
        return segment
    # Check whether the position sits inside the transition region of the
    # previous or the next boundary and, if so, re-sample the concept.
    for index, boundary in enumerate(boundaries):
        if abs(position - boundary) <= width:
            probability_new = _transition_probability(position - boundary, width)
            if rng.random() < probability_new:
                return index + 1
            return index
    return segment


def binary_error_stream(
    segments: Sequence[BinarySegment],
    width: int = 1,
    seed: int = 1,
    name: str = "binary-error-stream",
) -> ValueStream:
    """Build a Bernoulli error stream with known drift positions.

    Parameters
    ----------
    segments:
        Stationary segments, in order; every segment boundary is a drift.
    width:
        Transition width (1 = sudden drifts; larger values mix the adjacent
        segments with a sigmoid ramp, i.e. gradual drifts).
    seed:
        Seed of the random number generator.
    name:
        Name recorded in the resulting :class:`ValueStream`.
    """
    if len(segments) < 1:
        raise ConfigurationError("need at least one segment")
    rng = np.random.default_rng(seed)
    boundaries = _boundaries(seg.length for seg in segments)
    total = sum(seg.length for seg in segments)

    values = np.empty(total, dtype=np.float64)
    for position in range(total):
        segment = _segment_index(position, boundaries, width, rng)
        values[position] = 1.0 if rng.random() < segments[segment].error_rate else 0.0

    return ValueStream(
        values=values,
        drift_positions=_onsets(boundaries, width),
        drift_widths=tuple(width for _ in boundaries),
        name=name,
        metadata={"kind": "binary", "segments": list(segments), "width": width},
    )


def gaussian_error_stream(
    segments: Sequence[GaussianSegment],
    width: int = 1,
    seed: int = 1,
    name: str = "gaussian-error-stream",
) -> ValueStream:
    """Build a real-valued error stream with known drift positions.

    Parameters are analogous to :func:`binary_error_stream`; each segment has
    its own mean and standard deviation, so both mean drifts and
    variance-only drifts can be expressed.
    """
    if len(segments) < 1:
        raise ConfigurationError("need at least one segment")
    rng = np.random.default_rng(seed)
    boundaries = _boundaries(seg.length for seg in segments)
    total = sum(seg.length for seg in segments)

    values = np.empty(total, dtype=np.float64)
    for position in range(total):
        segment_spec = segments[_segment_index(position, boundaries, width, rng)]
        values[position] = rng.normal(segment_spec.mean, segment_spec.std)

    return ValueStream(
        values=values,
        drift_positions=_onsets(boundaries, width),
        drift_widths=tuple(width for _ in boundaries),
        name=name,
        metadata={"kind": "gaussian", "segments": list(segments), "width": width},
    )


def _boundaries(lengths) -> List[int]:
    """Cumulative segment boundaries (positions where each new segment starts)."""
    boundaries: List[int] = []
    running = 0
    lengths = list(lengths)
    for length in lengths[:-1]:
        running += length
        boundaries.append(running)
    return boundaries


def _onsets(boundaries: Sequence[int], width: int) -> Tuple[int, ...]:
    """Ground-truth drift onsets: for gradual drifts the transition region is
    centred at the segment boundary, so the drift *starts* half a width
    earlier (the same convention as :class:`repro.streams.drift`)."""
    if width <= 1:
        return tuple(boundaries)
    return tuple(max(boundary - width // 2, 0) for boundary in boundaries)
