"""Surrogates of the real-world datasets used in Table 2.

The paper evaluates the Naive Bayes pipeline on two real-world streams,
Electricity (ELEC2, Harries 1999) and Covertype (Blackard & Dean 1999).
Neither dataset can be downloaded in this offline environment, so this module
builds *synthetic surrogates* that preserve the characteristics the
experiment actually relies on (documented in DESIGN.md §3):

* a long classification stream whose concept changes at positions that are
  **not** annotated (the paper itself cannot compute precision/recall/F1 on
  these datasets for the same reason — only the classifier accuracy matters);
* temporally autocorrelated features with periodic structure (Electricity) or
  slowly wandering class-conditional distributions plus abrupt shifts
  (Covertype);
* class imbalance and multi-class labels for the Covertype surrogate.

Both surrogates are deterministic given their seed and expose the hidden
drift positions through ``metadata`` for debugging, while the evaluation code
treats them as unknown, as in the paper.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.exceptions import ConfigurationError, StreamExhaustedError
from repro.streams.base import Instance, InstanceStream, nominal_attribute, numeric_attribute

__all__ = ["ElectricitySurrogate", "CovertypeSurrogate"]


class ElectricitySurrogate(InstanceStream):
    """Synthetic stand-in for the ELEC2 electricity-pricing stream.

    The task is binary: does the price go up or down relative to a moving
    average?  Features are a time-of-day index, two autocorrelated
    price/demand pairs, and a transfer amount.  The relationship between the
    features and the label changes at a handful of hidden change points and
    also follows a daily cycle, producing the mix of gradual and reoccurring
    drifts that makes ELEC2 a standard drift benchmark.

    Parameters
    ----------
    n_instances:
        Total number of instances (the real dataset has 45,312).
    n_hidden_drifts:
        Number of hidden concept changes spread over the stream.
    seed:
        Random seed.
    """

    _PERIODS_PER_DAY = 48  # the real dataset has one instance per half hour

    def __init__(
        self,
        n_instances: int = 45_312,
        n_hidden_drifts: int = 6,
        seed: int = 1,
    ) -> None:
        if n_instances < 100:
            raise ConfigurationError(f"n_instances must be >= 100, got {n_instances}")
        if n_hidden_drifts < 0:
            raise ConfigurationError(
                f"n_hidden_drifts must be >= 0, got {n_hidden_drifts}"
            )
        schema = [
            numeric_attribute("period"),
            numeric_attribute("nswprice"),
            numeric_attribute("nswdemand"),
            numeric_attribute("vicprice"),
            numeric_attribute("vicdemand"),
            numeric_attribute("transfer"),
        ]
        super().__init__(schema=schema, n_classes=2, seed=seed)
        self._n_instances = n_instances
        self._n_hidden_drifts = n_hidden_drifts
        self._drift_positions = self._layout_drifts()
        self._reset_process_state()

    @property
    def n_instances(self) -> int:
        """Length of the bounded surrogate stream."""
        return self._n_instances

    @property
    def metadata(self) -> dict:
        """Hidden ground-truth information (not used by the evaluation)."""
        return {"hidden_drift_positions": list(self._drift_positions)}

    def _layout_drifts(self) -> List[int]:
        if self._n_hidden_drifts == 0:
            return []
        layout_rng = np.random.default_rng(self._seed + 7919)
        spacing = self._n_instances // (self._n_hidden_drifts + 1)
        positions = []
        for index in range(1, self._n_hidden_drifts + 1):
            jitter = int(layout_rng.integers(-spacing // 4, spacing // 4 + 1))
            positions.append(index * spacing + jitter)
        return positions

    def _reset_process_state(self) -> None:
        self._nswprice = 0.5
        self._nswdemand = 0.5
        self._vicprice = 0.5
        self._vicdemand = 0.5
        self._transfer = 0.5
        self._concept_sign = 1.0
        self._concept_weights = np.array([1.2, 1.0, -0.8, -0.6, 0.4])

    def restart(self) -> None:
        super().restart()
        self._reset_process_state()

    def _step_ar(self, value: float, seasonal: float, noise_scale: float) -> float:
        """One step of a mean-reverting AR(1) process with a seasonal pull."""
        pull = 0.85 * (value - 0.5) + 0.15 * seasonal
        noise = float(self._rng.normal(0.0, noise_scale))
        return float(min(max(0.5 + pull + noise, 0.0), 1.0))

    def _generate_instance(self) -> Instance:
        index = self._n_emitted
        if index >= self._n_instances:
            raise StreamExhaustedError(
                f"ElectricitySurrogate declares n_instances={self._n_instances} "
                f"and is exhausted; call restart() to re-read the same stream"
            )
        period = index % self._PERIODS_PER_DAY
        seasonal = 0.25 * math.sin(2.0 * math.pi * period / self._PERIODS_PER_DAY)

        self._nswprice = self._step_ar(self._nswprice, seasonal, 0.04)
        self._nswdemand = self._step_ar(self._nswdemand, seasonal, 0.03)
        self._vicprice = self._step_ar(self._vicprice, -seasonal, 0.04)
        self._vicdemand = self._step_ar(self._vicdemand, -seasonal, 0.03)
        self._transfer = self._step_ar(self._transfer, 0.0, 0.05)

        # Hidden concept changes: flip part of the label relationship.
        if index in self._drift_positions:
            self._concept_sign *= -1.0
            self._concept_weights = self._concept_weights[::-1].copy()

        score = self._concept_sign * float(
            np.dot(
                self._concept_weights,
                np.array(
                    [
                        self._nswprice - 0.5,
                        self._nswdemand - 0.5,
                        self._vicprice - 0.5,
                        self._vicdemand - 0.5,
                        self._transfer - 0.5,
                    ]
                ),
            )
        )
        probability_up = 1.0 / (1.0 + math.exp(-8.0 * score))
        label = int(self._rng.random() < probability_up)

        x = np.array(
            [
                period / self._PERIODS_PER_DAY,
                self._nswprice,
                self._nswdemand,
                self._vicprice,
                self._vicdemand,
                self._transfer,
            ],
            dtype=np.float64,
        )
        return Instance(x=x, y=label)


class CovertypeSurrogate(InstanceStream):
    """Synthetic stand-in for the Covertype forest-cover stream.

    Seven cover-type classes, ten numeric cartographic attributes, strong
    class imbalance, and a feature distribution that wanders slowly (the real
    dataset is ordered spatially, which acts like gradual drift) with a few
    abrupt shifts.  Class priors also change across the stream.

    Parameters
    ----------
    n_instances:
        Length of the bounded surrogate stream (default 100,000; the real
        dataset has 581,012).
    n_hidden_drifts:
        Number of abrupt hidden shifts of the class-conditional means.
    seed:
        Random seed.
    """

    _N_CLASSES = 7
    _N_FEATURES = 10

    def __init__(
        self,
        n_instances: int = 100_000,
        n_hidden_drifts: int = 8,
        seed: int = 1,
    ) -> None:
        if n_instances < 100:
            raise ConfigurationError(f"n_instances must be >= 100, got {n_instances}")
        if n_hidden_drifts < 0:
            raise ConfigurationError(
                f"n_hidden_drifts must be >= 0, got {n_hidden_drifts}"
            )
        schema = [numeric_attribute(f"att{i}") for i in range(self._N_FEATURES)]
        schema[-1] = nominal_attribute("wilderness_area", 4)
        super().__init__(schema=schema, n_classes=self._N_CLASSES, seed=seed)
        self._n_instances = n_instances
        self._n_hidden_drifts = n_hidden_drifts
        self._drift_positions = self._layout_drifts()
        self._reset_model_state()

    @property
    def n_instances(self) -> int:
        """Length of the bounded surrogate stream."""
        return self._n_instances

    @property
    def metadata(self) -> dict:
        """Hidden ground-truth information (not used by the evaluation)."""
        return {"hidden_drift_positions": list(self._drift_positions)}

    def _layout_drifts(self) -> List[int]:
        if self._n_hidden_drifts == 0:
            return []
        layout_rng = np.random.default_rng(self._seed + 104729)
        spacing = self._n_instances // (self._n_hidden_drifts + 1)
        return [
            index * spacing + int(layout_rng.integers(-spacing // 5, spacing // 5 + 1))
            for index in range(1, self._n_hidden_drifts + 1)
        ]

    def _reset_model_state(self) -> None:
        model_rng = np.random.default_rng(self._seed + 15485863)
        self._class_means = model_rng.normal(0.0, 1.0, size=(self._N_CLASSES, self._N_FEATURES - 1))
        self._class_stds = 0.4 + 0.6 * model_rng.random((self._N_CLASSES, self._N_FEATURES - 1))
        # Imbalanced priors similar in spirit to the real dataset (two classes
        # dominate).
        priors = np.array([0.36, 0.29, 0.12, 0.09, 0.06, 0.05, 0.03])
        self._priors = priors / priors.sum()
        self._mean_drift_direction = model_rng.normal(
            0.0, 1.0, size=(self._N_CLASSES, self._N_FEATURES - 1)
        )
        self._mean_drift_direction /= (
            np.linalg.norm(self._mean_drift_direction, axis=1, keepdims=True) + 1e-12
        )

    def restart(self) -> None:
        super().restart()
        self._reset_model_state()

    def _generate_instance(self) -> Instance:
        index = self._n_emitted
        if index >= self._n_instances:
            raise StreamExhaustedError(
                f"CovertypeSurrogate declares n_instances={self._n_instances} "
                f"and is exhausted; call restart() to re-read the same stream"
            )
        # Slow wander of the class-conditional means (spatial-ordering drift).
        self._class_means += 0.0005 * self._mean_drift_direction
        # Abrupt hidden shifts.
        if index in self._drift_positions:
            shift_rng = np.random.default_rng(self._seed + index)
            self._class_means += shift_rng.normal(
                0.0, 0.8, size=self._class_means.shape
            )
            rolled = np.roll(self._priors, 1)
            self._priors = rolled / rolled.sum()

        label = int(self._rng.choice(self._N_CLASSES, p=self._priors))
        numeric = self._rng.normal(
            self._class_means[label], self._class_stds[label]
        )
        wilderness = float((label + int(self._rng.integers(0, 2))) % 4)
        x = np.concatenate([numeric, [wilderness]]).astype(np.float64)
        return Instance(x=x, y=label)
