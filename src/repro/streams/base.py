"""Base abstractions for data streams.

Two kinds of streams appear in the OPTWIN evaluation:

* **labeled instance streams** (:class:`InstanceStream`) — the MOA-style
  generators (STAGGER, AGRAWAL, RandomRBF, ...) and the real-world surrogate
  datasets.  They produce :class:`Instance` objects with a feature vector and
  a class label and are consumed by the prequential evaluator.
* **value streams** (:class:`ValueStream`) — plain sequences of real numbers
  (error indicators, losses) that are fed directly to drift detectors in the
  "Concept Drift interface" experiments.

Both kinds are iterable, restartable, and deterministic given their seed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, StreamExhaustedError

__all__ = [
    "Attribute",
    "numeric_attribute",
    "nominal_attribute",
    "Instance",
    "InstanceStream",
    "MaterializedStream",
    "ValueStream",
]


@dataclass(frozen=True)
class Attribute:
    """Description of one input attribute of a labeled stream.

    Attributes
    ----------
    name:
        Human-readable attribute name.
    kind:
        Either ``"numeric"`` or ``"nominal"``.
    n_values:
        Number of distinct values for nominal attributes (0 for numeric).
    """

    name: str
    kind: str
    n_values: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("numeric", "nominal"):
            raise ConfigurationError(
                f"attribute kind must be 'numeric' or 'nominal', got {self.kind!r}"
            )
        if self.kind == "nominal" and self.n_values < 2:
            raise ConfigurationError(
                f"nominal attribute {self.name!r} needs n_values >= 2, "
                f"got {self.n_values}"
            )

    @property
    def is_nominal(self) -> bool:
        """Whether the attribute takes one of a finite set of values."""
        return self.kind == "nominal"


def numeric_attribute(name: str) -> Attribute:
    """Convenience constructor for a numeric attribute."""
    return Attribute(name=name, kind="numeric")


def nominal_attribute(name: str, n_values: int) -> Attribute:
    """Convenience constructor for a nominal attribute with ``n_values`` values."""
    return Attribute(name=name, kind="nominal", n_values=n_values)


@dataclass(frozen=True)
class Instance:
    """One labeled example from an instance stream.

    Attributes
    ----------
    x:
        Feature vector; nominal attributes are encoded as their integer value
        index stored as a float.
    y:
        Class label in ``range(n_classes)``.
    weight:
        Optional instance weight (1.0 for every generator in this library).
    """

    x: np.ndarray
    y: int
    weight: float = 1.0


class InstanceStream(abc.ABC):
    """Restartable stream of labeled :class:`Instance` objects.

    Sub-classes implement :meth:`_generate_instance` and define ``schema`` and
    ``n_classes``; the base class provides iteration, bounded ``take``, and
    restart bookkeeping.
    """

    def __init__(self, schema: Sequence[Attribute], n_classes: int, seed: int = 1) -> None:
        if n_classes < 2:
            raise ConfigurationError(f"n_classes must be >= 2, got {n_classes}")
        self._schema = list(schema)
        self._n_classes = n_classes
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._n_emitted = 0

    # ----------------------------------------------------------- properties

    @property
    def schema(self) -> List[Attribute]:
        """Attribute descriptions, in feature-vector order."""
        return list(self._schema)

    @property
    def n_features(self) -> int:
        """Number of input attributes."""
        return len(self._schema)

    @property
    def n_classes(self) -> int:
        """Number of distinct class labels."""
        return self._n_classes

    @property
    def seed(self) -> int:
        """Seed the stream was constructed with."""
        return self._seed

    @property
    def n_emitted(self) -> int:
        """Number of instances produced since the last restart."""
        return self._n_emitted

    # ------------------------------------------------------------ protocol

    def next_instance(self) -> Instance:
        """Produce the next instance."""
        instance = self._generate_instance()
        self._n_emitted += 1
        return instance

    @abc.abstractmethod
    def _generate_instance(self) -> Instance:
        """Produce one instance (sub-class hook)."""

    def restart(self) -> None:
        """Reset the stream to its initial state (same seed, same sequence)."""
        self._rng = np.random.default_rng(self._seed)
        self._n_emitted = 0

    def take(self, n: int) -> List[Instance]:
        """Return the next ``n`` instances as a list."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        return [self.next_instance() for _ in range(n)]

    def __iter__(self) -> Iterator[Instance]:
        while True:
            yield self.next_instance()


class MaterializedStream(InstanceStream):
    """Replay of a pre-generated list of instances.

    Generating a synthetic stream costs far more than consuming it, and the
    grid experiments feed *identical* instance sequences (same builder, same
    seed) to every detector of a repetition.  Materializing the sequence once
    and replaying it through this class shares a single generation pass across
    all consumers while remaining bit-identical to re-generating the stream:
    iteration order, schema, and class count are preserved exactly.

    Parameters
    ----------
    instances:
        The pre-generated instances, in stream order.
    schema, n_classes, seed:
        Metadata of the originating stream (``seed`` is informational; the
        replay itself is deterministic by construction).
    """

    def __init__(
        self,
        instances: Sequence[Instance],
        schema: Sequence[Attribute],
        n_classes: int,
        seed: int = 1,
    ) -> None:
        super().__init__(schema=schema, n_classes=n_classes, seed=seed)
        self._instances = list(instances)

    @property
    def n_instances(self) -> int:
        """Length of the bounded replay."""
        return len(self._instances)

    @classmethod
    def from_stream(cls, stream: InstanceStream, n_instances: int) -> "MaterializedStream":
        """Materialize ``n_instances`` from a freshly built stream.

        When the source declares its own length (an ``n_instances`` property,
        as the real-world surrogates do) the materialization is clamped to
        that bound instead of running the source past its end.
        """
        bound = getattr(stream, "n_instances", None)
        count = n_instances if bound is None else min(n_instances, int(bound))
        return cls(
            stream.take(count),
            schema=stream.schema,
            n_classes=stream.n_classes,
            seed=stream.seed,
        )

    def _generate_instance(self) -> Instance:
        if self._n_emitted >= len(self._instances):
            raise StreamExhaustedError(
                f"materialized stream of {len(self._instances)} instances is "
                f"exhausted; call restart() to replay it"
            )
        return self._instances[self._n_emitted]


@dataclass
class ValueStream:
    """A bounded stream of real values with known ground-truth drift points.

    Attributes
    ----------
    values:
        The monitored values (error indicators or losses), in stream order.
    drift_positions:
        Indices into ``values`` at which a concept drift starts (for gradual
        drifts this is the *onset* of the transition).
    drift_widths:
        Transition width of each drift (1 for sudden drifts).
    name:
        Human-readable description used in reports.
    """

    values: np.ndarray
    drift_positions: Tuple[int, ...] = ()
    drift_widths: Tuple[int, ...] = ()
    name: str = "value-stream"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.drift_widths and len(self.drift_widths) != len(self.drift_positions):
            raise ConfigurationError(
                "drift_widths must be empty or match drift_positions in length"
            )
        if not self.drift_widths:
            self.drift_widths = tuple(1 for _ in self.drift_positions)

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __iter__(self) -> Iterator[float]:
        return iter(self.values.tolist())

    def segment(self, start: int, stop: Optional[int] = None) -> np.ndarray:
        """Return the raw values in ``[start, stop)``."""
        return self.values[start:stop]
