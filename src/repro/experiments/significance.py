"""Significance analysis driver (Section 4.1 of the paper).

The paper states that OPTWIN's F1-scores are higher than ADWIN's and STEPD's
in a statistically significant manner (one-tailed Wilcoxon signed-rank test,
``alpha = 0.05``) across the experiment configurations.  This driver collects
per-run F1-scores from the sudden/gradual binary and non-binary experiments
and runs the same comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.evaluation.experiment import DetectorSummary
from repro.evaluation.significance import PairwiseComparison, compare_f1_scores
from repro.experiments.table1 import (
    run_gradual_binary,
    run_gradual_nonbinary,
    run_sudden_binary,
    run_sudden_nonbinary,
)

__all__ = ["collect_f1_scores", "run_significance_analysis"]


def collect_f1_scores(
    n_repetitions: int = 10,
    segment_length: int = 2_000,
    base_seed: int = 1,
    w_max: int = 25_000,
    n_jobs: int = 1,
    detector_batch_size: Optional[int] = None,
    out_path: Optional[str] = None,
) -> Dict[str, List[float]]:
    """Per-detector F1-scores pooled across the four error-stream experiments.

    ``n_jobs``/``detector_batch_size``/``out_path`` are forwarded to the
    orchestrated Table-1 blocks; the pooled scores are bit-identical across
    those settings (value-stream detections are batch-invariant, and all four
    blocks persist/resume into the same ``out_path`` under distinct
    configuration hashes).
    """
    blocks = [
        run_sudden_binary(
            n_repetitions=n_repetitions,
            segment_length=segment_length,
            base_seed=base_seed,
            w_max=w_max,
            n_jobs=n_jobs,
            detector_batch_size=detector_batch_size,
            out_path=out_path,
        ),
        run_gradual_binary(
            n_repetitions=n_repetitions,
            segment_length=segment_length,
            width=max(segment_length // 5, 2),
            base_seed=base_seed,
            w_max=w_max,
            n_jobs=n_jobs,
            detector_batch_size=detector_batch_size,
            out_path=out_path,
        ),
        run_sudden_nonbinary(
            n_repetitions=n_repetitions,
            segment_length=segment_length,
            base_seed=base_seed,
            w_max=w_max,
            n_jobs=n_jobs,
            detector_batch_size=detector_batch_size,
            out_path=out_path,
        ),
        run_gradual_nonbinary(
            n_repetitions=n_repetitions,
            segment_length=segment_length,
            width=max(segment_length // 5, 2),
            base_seed=base_seed,
            w_max=w_max,
            n_jobs=n_jobs,
            detector_batch_size=detector_batch_size,
            out_path=out_path,
        ),
    ]
    scores: Dict[str, List[float]] = {}
    for block in blocks:
        for name, summary in block.items():
            scores.setdefault(name, []).extend(summary.per_run_f1)
    return scores


def run_significance_analysis(
    scores: Dict[str, List[float]],
    alpha: float = 0.05,
) -> List[PairwiseComparison]:
    """Compare every OPTWIN configuration against ADWIN and STEPD.

    Only detectors present in ``scores`` are compared; lists are truncated to
    the shortest common length so the comparison stays paired when a detector
    was excluded from some blocks (e.g. binary-only baselines).
    """
    comparisons: List[PairwiseComparison] = []
    optwin_names = [name for name in scores if name.startswith("OPTWIN")]
    baseline_names = [name for name in ("ADWIN", "STEPD") if name in scores]
    for optwin_name in optwin_names:
        for baseline_name in baseline_names:
            a = scores[optwin_name]
            b = scores[baseline_name]
            n = min(len(a), len(b))
            if n < 3:
                continue
            comparisons.append(
                compare_f1_scores(optwin_name, a[:n], baseline_name, b[:n], alpha=alpha)
            )
    return comparisons
