"""Shared configuration of the paper-reproduction experiments.

Default detector line-ups and experiment sizes.  The paper's full scale
(streams of 100,000 instances, 30 repetitions) is available by passing the
corresponding parameters explicitly; the defaults used by the benchmark
harness are scaled down so that the whole suite runs on a laptop in minutes
while preserving the *shape* of every comparison (who wins, by roughly what
factor).
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, Optional

from repro.core.base import DriftDetector
from repro.core.optwin import Optwin
from repro.detectors import Adwin, Ddm, Ecdd, Eddm, NoDriftDetector, Stepd

__all__ = [
    "OPTWIN_RHOS",
    "paper_detectors",
    "regression_capable_detectors",
    "table2_detectors",
    "optwin_factory",
]

#: The three robustness settings evaluated in the paper.
OPTWIN_RHOS = (0.1, 0.5, 1.0)


def optwin_factory(rho: float, w_max: int = 25_000) -> Callable[[], DriftDetector]:
    """Factory for an OPTWIN detector with the paper's configuration.

    Returned as a :func:`functools.partial` of the importable class (rather
    than a closure) so detector line-ups can be shipped to the orchestrator's
    worker processes.
    """
    return functools.partial(Optwin, delta=0.99, rho=rho, w_max=w_max)


def paper_detectors(
    binary: bool = True,
    w_max: int = 25_000,
) -> Dict[str, Callable[[], DriftDetector]]:
    """The detector line-up of Table 1.

    Parameters
    ----------
    binary:
        Include the binary-only baselines (DDM, EDDM, ECDD); the paper leaves
        them out of the non-binary experiments.
    w_max:
        Maximum OPTWIN window size (25,000 in the paper).
    """
    factories: Dict[str, Callable[[], DriftDetector]] = {"ADWIN": Adwin}
    if binary:
        factories["DDM"] = Ddm
        factories["EDDM"] = Eddm
    factories["STEPD"] = Stepd
    if binary:
        factories["ECDD"] = Ecdd
    for rho in OPTWIN_RHOS:
        factories[f"OPTWIN rho={rho}"] = optwin_factory(rho, w_max=w_max)
    return factories


def regression_capable_detectors(
    w_max: int = 25_000,
) -> Dict[str, Callable[[], DriftDetector]]:
    """Detectors that accept real-valued inputs (ADWIN, STEPD, OPTWIN)."""
    return paper_detectors(binary=False, w_max=w_max)


def table2_detectors(
    w_max: int = 25_000,
) -> Dict[str, Optional[Callable[[], DriftDetector]]]:
    """The detector line-up of Table 2, including the "no detector" row."""
    factories: Dict[str, Optional[Callable[[], DriftDetector]]] = {
        "No drift detector": None
    }
    factories.update(paper_detectors(binary=True, w_max=w_max))
    return factories
