"""Runtime experiment — per-element update cost of OPTWIN vs the baselines.

Section 3.4 of the paper argues that OPTWIN's ``AddElement`` is O(1) per
element (thanks to the pre-computed cut tables and incremental statistics)
whereas ADWIN needs O(log |W|) bucket checks.  This driver measures the mean
wall-clock cost per element for a range of window sizes and returns the raw
numbers, from which the benchmark prints the comparison; it also reports
OPTWIN's estimated memory footprint (the paper quotes ~390 KB at
``w_max = 25,000``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.base import DriftDetector
from repro.core.optwin import Optwin
from repro.detectors.adwin import Adwin
from repro.detectors.ddm import Ddm
from repro.detectors.stepd import Stepd

__all__ = ["RuntimeMeasurement", "measure_update_cost", "run_runtime_comparison"]


@dataclass(frozen=True)
class RuntimeMeasurement:
    """Per-element update cost of one detector at one stream length.

    Attributes
    ----------
    detector_name:
        Display name of the detector.
    n_elements:
        Number of elements fed during the measurement.
    seconds_per_element:
        Mean wall-clock seconds per ``update`` call.
    """

    detector_name: str
    n_elements: int
    seconds_per_element: float


def measure_update_cost(
    detector: DriftDetector,
    values: Sequence[float],
) -> float:
    """Mean seconds per ``update`` call over ``values``."""
    start = time.perf_counter()
    for value in values:
        detector.update(value)
    elapsed = time.perf_counter() - start
    return elapsed / max(len(values), 1)


def run_runtime_comparison(
    stream_lengths: Sequence[int] = (2_000, 8_000, 20_000),
    seed: int = 1,
    detectors: Dict[str, Callable[[], DriftDetector]] = None,
) -> List[RuntimeMeasurement]:
    """Measure per-element cost for every detector at every stream length.

    A drift-free Bernoulli stream is used so windows grow to their maximum and
    the steady-state cost is what gets measured.
    """
    if detectors is None:
        detectors = {
            "OPTWIN rho=0.5": lambda: Optwin(rho=0.5, w_max=25_000),
            "ADWIN": Adwin,
            "DDM": Ddm,
            "STEPD": Stepd,
        }
    rng = np.random.default_rng(seed)
    measurements: List[RuntimeMeasurement] = []
    for length in stream_lengths:
        values = (rng.random(length) < 0.3).astype(np.float64)
        for name, factory in detectors.items():
            detector = factory()
            cost = measure_update_cost(detector, values)
            measurements.append(
                RuntimeMeasurement(
                    detector_name=name,
                    n_elements=length,
                    seconds_per_element=cost,
                )
            )
    return measurements
