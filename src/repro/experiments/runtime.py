"""Runtime experiment — per-element update cost of OPTWIN vs the baselines.

Section 3.4 of the paper argues that OPTWIN's ``AddElement`` is O(1) per
element (thanks to the pre-computed cut tables and incremental statistics)
whereas ADWIN needs O(log |W|) bucket checks.  This driver measures the mean
wall-clock cost per element for a range of window sizes and returns the raw
numbers, from which the benchmark prints the comparison; it also reports
OPTWIN's estimated memory footprint (the paper quotes ~390 KB at
``w_max = 25,000``).

Two execution modes are measured for every detector that implements a
vectorised ``update_batch`` fast path:

* ``scalar`` — the classic one-``update``-call-per-element loop, exactly as a
  River-style consumer would drive the detector;
* ``batch`` — the stream is fed in fixed-size chunks through
  ``update_batch``, which amortises the Python interpreter overhead across a
  whole chunk while reporting bit-identical drift indices.

For the batch mode the cut tables are pre-computed before timing starts,
matching the paper's offline pre-computation setting (the scalar mode keeps
the seed behaviour of building its memoised specs lazily during the run).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.base import DriftDetector
from repro.core.optwin import Optwin
from repro.detectors.adwin import Adwin
from repro.detectors.ddm import Ddm
from repro.detectors.ecdd import Ecdd
from repro.detectors.eddm import Eddm
from repro.detectors.hddm import HddmA
from repro.detectors.kswin import Kswin
from repro.detectors.page_hinkley import PageHinkley
from repro.detectors.rddm import Rddm
from repro.detectors.stepd import Stepd

__all__ = [
    "RuntimeMeasurement",
    "measure_update_cost",
    "measure_batch_cost",
    "run_runtime_comparison",
]

#: Default chunk size used by the batched measurements.
DEFAULT_BATCH_CHUNK = 4096


@dataclass(frozen=True)
class RuntimeMeasurement:
    """Per-element update cost of one detector at one stream length.

    Attributes
    ----------
    detector_name:
        Display name of the detector.
    n_elements:
        Number of elements fed during the measurement.
    seconds_per_element:
        Mean wall-clock seconds per element.
    mode:
        ``"scalar"`` for the per-element ``update`` loop, ``"batch"`` for the
        chunked ``update_batch`` execution path.
    """

    detector_name: str
    n_elements: int
    seconds_per_element: float
    mode: str = "scalar"


def measure_update_cost(
    detector: DriftDetector,
    values: Sequence[float],
) -> float:
    """Mean seconds per ``update`` call over ``values``."""
    start = time.perf_counter()
    for value in values:
        detector.update(value)
    elapsed = time.perf_counter() - start
    return elapsed / max(len(values), 1)


def measure_batch_cost(
    detector: DriftDetector,
    values: Sequence[float],
    chunk_size: int = DEFAULT_BATCH_CHUNK,
) -> float:
    """Mean seconds per element when feeding ``values`` in batched chunks."""
    array = np.ascontiguousarray(values, dtype=np.float64)
    start = time.perf_counter()
    for low in range(0, array.shape[0], chunk_size):
        detector.update_batch(array[low : low + chunk_size])
    elapsed = time.perf_counter() - start
    return elapsed / max(array.shape[0], 1)


def _has_batch_fast_path(detector: DriftDetector) -> bool:
    return type(detector).update_batch is not DriftDetector.update_batch


def run_runtime_comparison(
    stream_lengths: Sequence[int] = (2_000, 8_000, 20_000),
    seed: int = 1,
    detectors: Optional[Dict[str, Callable[[], DriftDetector]]] = None,
    include_batch: bool = True,
    batch_chunk_size: int = DEFAULT_BATCH_CHUNK,
) -> List[RuntimeMeasurement]:
    """Measure per-element cost for every detector at every stream length.

    A drift-free Bernoulli stream is used so windows grow to their maximum and
    the steady-state cost is what gets measured.  When ``include_batch`` is
    set, every detector with a vectorised ``update_batch`` fast path is
    measured a second time in chunked batch mode (on a fresh instance, with
    its pre-computable tables built before the clock starts).
    """
    if detectors is None:
        detectors = {
            "OPTWIN rho=0.5": lambda: Optwin(rho=0.5, w_max=25_000),
            "ADWIN": Adwin,
            "DDM": Ddm,
            "EDDM": Eddm,
            "STEPD": Stepd,
            "ECDD": Ecdd,
            "Page-Hinkley": PageHinkley,
            "KSWIN": Kswin,
            "RDDM": Rddm,
            "HDDM-A": HddmA,
        }
    rng = np.random.default_rng(seed)
    measurements: List[RuntimeMeasurement] = []
    for length in stream_lengths:
        values = (rng.random(length) < 0.3).astype(np.float64)
        for name, factory in detectors.items():
            detector = factory()
            cost = measure_update_cost(detector, values)
            measurements.append(
                RuntimeMeasurement(
                    detector_name=name,
                    n_elements=length,
                    seconds_per_element=cost,
                    mode="scalar",
                )
            )
            if not include_batch:
                continue
            batch_detector = factory()
            if not _has_batch_fast_path(batch_detector):
                continue
            precompute = getattr(batch_detector, "precompute_tables", None)
            if precompute is not None:
                precompute(length)
            batch_cost = measure_batch_cost(
                batch_detector, values, chunk_size=batch_chunk_size
            )
            measurements.append(
                RuntimeMeasurement(
                    detector_name=name,
                    n_elements=length,
                    seconds_per_element=batch_cost,
                    mode="batch",
                )
            )
    return measurements
