"""Drivers for Table 1 — drift-identification statistics on synthetic data.

Table 1 of the paper has seven experiment blocks; each function here
regenerates one block and returns a mapping from detector name to
:class:`~repro.evaluation.experiment.DetectorSummary`, from which the
``Delay / FP / Precision / Recall / F1`` row of the table is read via
``summary.as_row()``.

The first four blocks ("Concept Drift interface") feed synthetic error
streams directly to the detectors; the last three ("Classification
interface") run a Naive Bayes classifier prequentially over STAGGER,
RandomRBF, and AGRAWAL streams with drifts every ``drift_every`` instances
and feed the classifier's 0/1 errors to the detectors.

Every block runs on :mod:`repro.experiments.orchestrator`: ``n_jobs`` fans
the repetitions out over a process pool, ``detector_batch_size`` selects the
detectors' batched execution mode, and ``out_path`` persists per-cell results
for resumable grids.  The stream factories below are picklable dataclasses so
the grids can ship to worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.evaluation.experiment import DetectorSummary, ExperimentRunner
from repro.experiments.config import paper_detectors
from repro.experiments.orchestrator import run_classification_grid
from repro.streams.base import InstanceStream, ValueStream
from repro.streams.drift import MultiConceptDriftStream
from repro.streams.error_streams import (
    BinarySegment,
    GaussianSegment,
    binary_error_stream,
    gaussian_error_stream,
)
from repro.streams.synthetic import (
    AgrawalGenerator,
    RandomRbfGenerator,
    StaggerGenerator,
)

__all__ = [
    "run_gradual_binary",
    "run_gradual_nonbinary",
    "run_sudden_binary",
    "run_sudden_nonbinary",
    "run_stagger",
    "run_random_rbf",
    "run_agrawal",
    "summaries_to_rows",
]


def summaries_to_rows(summaries: Dict[str, DetectorSummary]) -> List[dict]:
    """Convert per-detector summaries into Table-1 style rows."""
    return [summary.as_row() for summary in summaries.values()]


# --------------------------------------------------------------------------
# "Concept Drift interface" blocks: detectors consume error streams directly.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _BinaryStreamFactory:
    """Picklable seed-to-stream factory for the binary error-stream blocks."""

    segment_length: int
    error_rates: Tuple[float, ...]
    width: int

    def __call__(self, seed: int) -> ValueStream:
        segments = [
            BinarySegment(self.segment_length, rate) for rate in self.error_rates
        ]
        return binary_error_stream(segments, width=self.width, seed=seed)


@dataclass(frozen=True)
class _GaussianStreamFactory:
    """Picklable seed-to-stream factory for the non-binary error-stream blocks."""

    segment_length: int
    means: Tuple[float, ...]
    stds: Tuple[float, ...]
    width: int

    def __call__(self, seed: int) -> ValueStream:
        segments = [
            GaussianSegment(self.segment_length, mean, std)
            for mean, std in zip(self.means, self.stds)
        ]
        return gaussian_error_stream(segments, width=self.width, seed=seed)


def run_sudden_binary(
    n_repetitions: int = 30,
    segment_length: int = 5_000,
    error_rates: Optional[List[float]] = None,
    base_seed: int = 1,
    w_max: int = 25_000,
    n_jobs: int = 1,
    detector_batch_size: Optional[int] = None,
    out_path: Optional[str] = None,
) -> Dict[str, DetectorSummary]:
    """Table 1, "sudden binary drift" block."""
    rates = tuple(error_rates or [0.2, 0.6])
    runner = ExperimentRunner(
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        n_jobs=n_jobs,
        detector_batch_size=detector_batch_size,
    )
    return runner.run_value_experiment(
        detector_factories=paper_detectors(binary=True, w_max=w_max),
        stream_factory=_BinaryStreamFactory(segment_length, rates, width=1),
        out_path=out_path,
        block="sudden-binary",
    )


def run_gradual_binary(
    n_repetitions: int = 30,
    segment_length: int = 5_000,
    error_rates: Optional[List[float]] = None,
    width: int = 1_000,
    base_seed: int = 1,
    w_max: int = 25_000,
    n_jobs: int = 1,
    detector_batch_size: Optional[int] = None,
    out_path: Optional[str] = None,
) -> Dict[str, DetectorSummary]:
    """Table 1, "gradual binary drift" block."""
    rates = tuple(error_rates or [0.2, 0.6])
    runner = ExperimentRunner(
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        n_jobs=n_jobs,
        detector_batch_size=detector_batch_size,
    )
    return runner.run_value_experiment(
        detector_factories=paper_detectors(binary=True, w_max=w_max),
        stream_factory=_BinaryStreamFactory(segment_length, rates, width=width),
        out_path=out_path,
        block="gradual-binary",
    )


def run_sudden_nonbinary(
    n_repetitions: int = 30,
    segment_length: int = 5_000,
    means: Optional[List[float]] = None,
    stds: Optional[List[float]] = None,
    base_seed: int = 1,
    w_max: int = 25_000,
    n_jobs: int = 1,
    detector_batch_size: Optional[int] = None,
    out_path: Optional[str] = None,
) -> Dict[str, DetectorSummary]:
    """Table 1, "sudden non-binary drift" block (real-valued errors).

    The default levels (a regression loss drifting from 0.20 to 0.40) keep the
    whole stream on one side of STEPD's implicit error threshold, reproducing
    the paper's observation that the proportions-based detectors are
    essentially blind on non-binary streams while OPTWIN and ADWIN are not.
    """
    means = tuple(means or [0.2, 0.4])
    stds = tuple(stds or [0.05, 0.08])
    runner = ExperimentRunner(
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        n_jobs=n_jobs,
        detector_batch_size=detector_batch_size,
    )
    return runner.run_value_experiment(
        detector_factories=paper_detectors(binary=False, w_max=w_max),
        stream_factory=_GaussianStreamFactory(segment_length, means, stds, width=1),
        out_path=out_path,
        block="sudden-nonbinary",
    )


def run_gradual_nonbinary(
    n_repetitions: int = 30,
    segment_length: int = 5_000,
    means: Optional[List[float]] = None,
    stds: Optional[List[float]] = None,
    width: int = 1_000,
    base_seed: int = 1,
    w_max: int = 25_000,
    n_jobs: int = 1,
    detector_batch_size: Optional[int] = None,
    out_path: Optional[str] = None,
) -> Dict[str, DetectorSummary]:
    """Table 1, "gradual non-binary drift" block (real-valued errors)."""
    means = tuple(means or [0.2, 0.4])
    stds = tuple(stds or [0.05, 0.08])
    runner = ExperimentRunner(
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        n_jobs=n_jobs,
        detector_batch_size=detector_batch_size,
    )
    return runner.run_value_experiment(
        detector_factories=paper_detectors(binary=False, w_max=w_max),
        stream_factory=_GaussianStreamFactory(segment_length, means, stds, width=width),
        out_path=out_path,
        block="gradual-nonbinary",
    )


# --------------------------------------------------------------------------
# "Classification interface" blocks: NB classifier + detector, prequentially.
# --------------------------------------------------------------------------


def _stagger_stream(seed: int, drift_every: int, n_drifts: int, width: int) -> InstanceStream:
    concepts = [
        StaggerGenerator(classification_function=(index % 3) + 1, seed=seed + index)
        for index in range(n_drifts + 1)
    ]
    positions = [drift_every * (index + 1) for index in range(n_drifts)]
    return MultiConceptDriftStream(concepts, positions, width=width, seed=seed)


def _random_rbf_stream(seed: int, drift_every: int, n_drifts: int, width: int) -> InstanceStream:
    concepts = [
        RandomRbfGenerator(
            n_classes=4,
            n_features=10,
            n_centroids=50,
            model_seed=seed * 100 + index,
            seed=seed + index,
        )
        for index in range(n_drifts + 1)
    ]
    positions = [drift_every * (index + 1) for index in range(n_drifts)]
    return MultiConceptDriftStream(concepts, positions, width=width, seed=seed)


def _agrawal_stream(seed: int, drift_every: int, n_drifts: int, width: int) -> InstanceStream:
    concepts = [
        AgrawalGenerator(classification_function=(index % 10) + 1, seed=seed + index)
        for index in range(n_drifts + 1)
    ]
    positions = [drift_every * (index + 1) for index in range(n_drifts)]
    return MultiConceptDriftStream(concepts, positions, width=width, seed=seed)


#: Seed-to-stream builders of the classification blocks, by generator kind.
_CLASSIFICATION_STREAMS = {
    "stagger": _stagger_stream,
    "random_rbf": _random_rbf_stream,
    "agrawal": _agrawal_stream,
}


@dataclass(frozen=True)
class ClassificationStreamBuilder:
    """Picklable seed-to-stream builder for the classification blocks.

    ``kind`` selects the generator family (``stagger``, ``random_rbf``,
    ``agrawal``); the remaining fields mirror the block parameters.  Table 2
    reuses these builders for its synthetic datasets.
    """

    kind: str
    drift_every: int
    n_drifts: int
    width: int

    def __post_init__(self) -> None:
        if self.kind not in _CLASSIFICATION_STREAMS:
            raise ValueError(
                f"kind must be one of {sorted(_CLASSIFICATION_STREAMS)}, got {self.kind!r}"
            )

    def __call__(self, seed: int) -> InstanceStream:
        return _CLASSIFICATION_STREAMS[self.kind](
            seed, self.drift_every, self.n_drifts, self.width
        )


def _run_classification_block(
    kind: str,
    n_instances: int,
    drift_every: int,
    width: int,
    n_repetitions: int,
    base_seed: int,
    w_max: int,
    n_jobs: int,
    detector_batch_size: Optional[int],
    out_path: Optional[str],
) -> Dict[str, DetectorSummary]:
    n_drifts = max(n_instances // drift_every - 1, 1)
    drift_positions = [drift_every * (index + 1) for index in range(n_drifts)]
    return run_classification_grid(
        stream_builder=ClassificationStreamBuilder(kind, drift_every, n_drifts, width),
        detector_factories=paper_detectors(binary=True, w_max=w_max),
        n_instances=n_instances,
        drift_positions=drift_positions,
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        n_jobs=n_jobs,
        detector_batch_size=detector_batch_size,
        out_path=out_path,
        block=kind,
    )


def run_stagger(
    n_repetitions: int = 30,
    n_instances: int = 100_000,
    drift_every: int = 20_000,
    width: int = 1,
    base_seed: int = 1,
    w_max: int = 25_000,
    n_jobs: int = 1,
    detector_batch_size: Optional[int] = None,
    out_path: Optional[str] = None,
) -> Dict[str, DetectorSummary]:
    """Table 1, "sudden STAGGER" block (NB classifier + detectors)."""
    return _run_classification_block(
        "stagger",
        n_instances=n_instances,
        drift_every=drift_every,
        width=width,
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        w_max=w_max,
        n_jobs=n_jobs,
        detector_batch_size=detector_batch_size,
        out_path=out_path,
    )


def run_random_rbf(
    n_repetitions: int = 30,
    n_instances: int = 100_000,
    drift_every: int = 20_000,
    width: int = 1,
    base_seed: int = 1,
    w_max: int = 25_000,
    n_jobs: int = 1,
    detector_batch_size: Optional[int] = None,
    out_path: Optional[str] = None,
) -> Dict[str, DetectorSummary]:
    """Table 1, "sudden RANDOM RBF" block (NB classifier + detectors)."""
    return _run_classification_block(
        "random_rbf",
        n_instances=n_instances,
        drift_every=drift_every,
        width=width,
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        w_max=w_max,
        n_jobs=n_jobs,
        detector_batch_size=detector_batch_size,
        out_path=out_path,
    )


def run_agrawal(
    n_repetitions: int = 30,
    n_instances: int = 100_000,
    drift_every: int = 20_000,
    width: int = 1,
    base_seed: int = 1,
    w_max: int = 25_000,
    n_jobs: int = 1,
    detector_batch_size: Optional[int] = None,
    out_path: Optional[str] = None,
) -> Dict[str, DetectorSummary]:
    """Table 1, "sudden AGRAWAL" block (NB classifier + detectors)."""
    return _run_classification_block(
        "agrawal",
        n_instances=n_instances,
        drift_every=drift_every,
        width=width,
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        w_max=w_max,
        n_jobs=n_jobs,
        detector_batch_size=detector_batch_size,
        out_path=out_path,
    )
