"""Drivers for Table 1 — drift-identification statistics on synthetic data.

Table 1 of the paper has seven experiment blocks; each function here
regenerates one block and returns a mapping from detector name to
:class:`~repro.evaluation.experiment.DetectorSummary`, from which the
``Delay / FP / Precision / Recall / F1`` row of the table is read via
``summary.as_row()``.

The first four blocks ("Concept Drift interface") feed synthetic error
streams directly to the detectors; the last three ("Classification
interface") run a Naive Bayes classifier prequentially over STAGGER,
RandomRBF, and AGRAWAL streams with drifts every ``drift_every`` instances
and feed the classifier's 0/1 errors to the detectors.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.evaluation.experiment import DetectorSummary, ExperimentRunner
from repro.evaluation.prequential import run_prequential
from repro.evaluation.drift_metrics import evaluate_detections
from repro.evaluation.experiment import DetectorRunResult
from repro.experiments.config import paper_detectors
from repro.learners.naive_bayes import NaiveBayes
from repro.streams.base import InstanceStream, ValueStream
from repro.streams.drift import MultiConceptDriftStream
from repro.streams.error_streams import (
    BinarySegment,
    GaussianSegment,
    binary_error_stream,
    gaussian_error_stream,
)
from repro.streams.synthetic import (
    AgrawalGenerator,
    RandomRbfGenerator,
    StaggerGenerator,
)

__all__ = [
    "run_gradual_binary",
    "run_gradual_nonbinary",
    "run_sudden_binary",
    "run_sudden_nonbinary",
    "run_stagger",
    "run_random_rbf",
    "run_agrawal",
    "summaries_to_rows",
]


def summaries_to_rows(summaries: Dict[str, DetectorSummary]) -> List[dict]:
    """Convert per-detector summaries into Table-1 style rows."""
    return [summary.as_row() for summary in summaries.values()]


# --------------------------------------------------------------------------
# "Concept Drift interface" blocks: detectors consume error streams directly.
# --------------------------------------------------------------------------


def _binary_stream_factory(
    segment_length: int, error_rates: List[float], width: int
) -> Callable[[int], ValueStream]:
    def factory(seed: int) -> ValueStream:
        segments = [BinarySegment(segment_length, rate) for rate in error_rates]
        return binary_error_stream(segments, width=width, seed=seed)

    return factory


def _gaussian_stream_factory(
    segment_length: int, means: List[float], stds: List[float], width: int
) -> Callable[[int], ValueStream]:
    def factory(seed: int) -> ValueStream:
        segments = [
            GaussianSegment(segment_length, mean, std)
            for mean, std in zip(means, stds)
        ]
        return gaussian_error_stream(segments, width=width, seed=seed)

    return factory


def run_sudden_binary(
    n_repetitions: int = 30,
    segment_length: int = 5_000,
    error_rates: Optional[List[float]] = None,
    base_seed: int = 1,
    w_max: int = 25_000,
) -> Dict[str, DetectorSummary]:
    """Table 1, "sudden binary drift" block."""
    rates = error_rates or [0.2, 0.6]
    runner = ExperimentRunner(n_repetitions=n_repetitions, base_seed=base_seed)
    return runner.run_value_experiment(
        detector_factories=paper_detectors(binary=True, w_max=w_max),
        stream_factory=_binary_stream_factory(segment_length, rates, width=1),
    )


def run_gradual_binary(
    n_repetitions: int = 30,
    segment_length: int = 5_000,
    error_rates: Optional[List[float]] = None,
    width: int = 1_000,
    base_seed: int = 1,
    w_max: int = 25_000,
) -> Dict[str, DetectorSummary]:
    """Table 1, "gradual binary drift" block."""
    rates = error_rates or [0.2, 0.6]
    runner = ExperimentRunner(n_repetitions=n_repetitions, base_seed=base_seed)
    return runner.run_value_experiment(
        detector_factories=paper_detectors(binary=True, w_max=w_max),
        stream_factory=_binary_stream_factory(segment_length, rates, width=width),
    )


def run_sudden_nonbinary(
    n_repetitions: int = 30,
    segment_length: int = 5_000,
    means: Optional[List[float]] = None,
    stds: Optional[List[float]] = None,
    base_seed: int = 1,
    w_max: int = 25_000,
) -> Dict[str, DetectorSummary]:
    """Table 1, "sudden non-binary drift" block (real-valued errors).

    The default levels (a regression loss drifting from 0.20 to 0.40) keep the
    whole stream on one side of STEPD's implicit error threshold, reproducing
    the paper's observation that the proportions-based detectors are
    essentially blind on non-binary streams while OPTWIN and ADWIN are not.
    """
    means = means or [0.2, 0.4]
    stds = stds or [0.05, 0.08]
    runner = ExperimentRunner(n_repetitions=n_repetitions, base_seed=base_seed)
    return runner.run_value_experiment(
        detector_factories=paper_detectors(binary=False, w_max=w_max),
        stream_factory=_gaussian_stream_factory(segment_length, means, stds, width=1),
    )


def run_gradual_nonbinary(
    n_repetitions: int = 30,
    segment_length: int = 5_000,
    means: Optional[List[float]] = None,
    stds: Optional[List[float]] = None,
    width: int = 1_000,
    base_seed: int = 1,
    w_max: int = 25_000,
) -> Dict[str, DetectorSummary]:
    """Table 1, "gradual non-binary drift" block (real-valued errors)."""
    means = means or [0.2, 0.4]
    stds = stds or [0.05, 0.08]
    runner = ExperimentRunner(n_repetitions=n_repetitions, base_seed=base_seed)
    return runner.run_value_experiment(
        detector_factories=paper_detectors(binary=False, w_max=w_max),
        stream_factory=_gaussian_stream_factory(
            segment_length, means, stds, width=width
        ),
    )


# --------------------------------------------------------------------------
# "Classification interface" blocks: NB classifier + detector, prequentially.
# --------------------------------------------------------------------------


def _stagger_stream(seed: int, drift_every: int, n_drifts: int, width: int) -> InstanceStream:
    concepts = [
        StaggerGenerator(classification_function=(index % 3) + 1, seed=seed + index)
        for index in range(n_drifts + 1)
    ]
    positions = [drift_every * (index + 1) for index in range(n_drifts)]
    return MultiConceptDriftStream(concepts, positions, width=width, seed=seed)


def _random_rbf_stream(seed: int, drift_every: int, n_drifts: int, width: int) -> InstanceStream:
    concepts = [
        RandomRbfGenerator(
            n_classes=4,
            n_features=10,
            n_centroids=50,
            model_seed=seed * 100 + index,
            seed=seed + index,
        )
        for index in range(n_drifts + 1)
    ]
    positions = [drift_every * (index + 1) for index in range(n_drifts)]
    return MultiConceptDriftStream(concepts, positions, width=width, seed=seed)


def _agrawal_stream(seed: int, drift_every: int, n_drifts: int, width: int) -> InstanceStream:
    concepts = [
        AgrawalGenerator(classification_function=(index % 10) + 1, seed=seed + index)
        for index in range(n_drifts + 1)
    ]
    positions = [drift_every * (index + 1) for index in range(n_drifts)]
    return MultiConceptDriftStream(concepts, positions, width=width, seed=seed)


def _run_classification_block(
    stream_builder: Callable[[int], InstanceStream],
    n_instances: int,
    drift_positions: List[int],
    n_repetitions: int,
    base_seed: int,
    w_max: int,
) -> Dict[str, DetectorSummary]:
    factories = paper_detectors(binary=True, w_max=w_max)
    summaries = {name: DetectorSummary(detector_name=name) for name in factories}
    for repetition in range(n_repetitions):
        seed = base_seed + repetition
        for name, factory in factories.items():
            stream = stream_builder(seed)
            learner = NaiveBayes(schema=stream.schema, n_classes=stream.n_classes)
            result = run_prequential(
                stream=stream,
                learner=learner,
                detector=factory(),
                n_instances=n_instances,
            )
            evaluation = evaluate_detections(
                drift_positions=drift_positions,
                detections=result.detections,
                stream_length=n_instances,
            )
            summaries[name].runs.append(
                DetectorRunResult(detections=result.detections, evaluation=evaluation)
            )
    return summaries


def run_stagger(
    n_repetitions: int = 30,
    n_instances: int = 100_000,
    drift_every: int = 20_000,
    width: int = 1,
    base_seed: int = 1,
    w_max: int = 25_000,
) -> Dict[str, DetectorSummary]:
    """Table 1, "sudden STAGGER" block (NB classifier + detectors)."""
    n_drifts = max(n_instances // drift_every - 1, 1)
    positions = [drift_every * (index + 1) for index in range(n_drifts)]
    return _run_classification_block(
        stream_builder=lambda seed: _stagger_stream(seed, drift_every, n_drifts, width),
        n_instances=n_instances,
        drift_positions=positions,
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        w_max=w_max,
    )


def run_random_rbf(
    n_repetitions: int = 30,
    n_instances: int = 100_000,
    drift_every: int = 20_000,
    width: int = 1,
    base_seed: int = 1,
    w_max: int = 25_000,
) -> Dict[str, DetectorSummary]:
    """Table 1, "sudden RANDOM RBF" block (NB classifier + detectors)."""
    n_drifts = max(n_instances // drift_every - 1, 1)
    positions = [drift_every * (index + 1) for index in range(n_drifts)]
    return _run_classification_block(
        stream_builder=lambda seed: _random_rbf_stream(seed, drift_every, n_drifts, width),
        n_instances=n_instances,
        drift_positions=positions,
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        w_max=w_max,
    )


def run_agrawal(
    n_repetitions: int = 30,
    n_instances: int = 100_000,
    drift_every: int = 20_000,
    width: int = 1,
    base_seed: int = 1,
    w_max: int = 25_000,
) -> Dict[str, DetectorSummary]:
    """Table 1, "sudden AGRAWAL" block (NB classifier + detectors)."""
    n_drifts = max(n_instances // drift_every - 1, 1)
    positions = [drift_every * (index + 1) for index in range(n_drifts)]
    return _run_classification_block(
        stream_builder=lambda seed: _agrawal_stream(seed, drift_every, n_drifts, width),
        n_instances=n_instances,
        drift_positions=positions,
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        w_max=w_max,
    )
