"""Driver for Table 2 — accuracy of the Naive Bayes classifier per detector.

For every dataset (sudden/gradual STAGGER, RandomRBF, AGRAWAL plus the
Electricity and Covertype surrogates) and every detector (including the
"no drift detector" row), the NB classifier is evaluated prequentially and
reset whenever the detector flags a drift; the reported figure is the overall
prequential accuracy.

The matrix runs on :mod:`repro.experiments.orchestrator`: one stream
materialization per (dataset, seed) is shared by every detector row, and the
``n_jobs``/``detector_batch_size``/``out_path`` knobs fan the grid out,
select the detectors' execution mode, and persist per-cell results for
resumable runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.experiments.config import table2_detectors
from repro.experiments.orchestrator import run_accuracy_grid
from repro.experiments.table1 import ClassificationStreamBuilder
from repro.streams.base import InstanceStream
from repro.streams.real_world import CovertypeSurrogate, ElectricitySurrogate

__all__ = ["dataset_builders", "run_table2", "DATASET_ORDER"]

#: Column order used by the paper's Table 2.
DATASET_ORDER = (
    "STAGGER (sudden)",
    "Random RBF (sudden)",
    "AGRAWAL (sudden)",
    "STAGGER (gradual)",
    "Random RBF (gradual)",
    "AGRAWAL (gradual)",
    "Electricity",
    "Covertype",
)


@dataclass(frozen=True)
class _SurrogateBuilder:
    """Picklable seed-to-stream builder for the real-world surrogate columns."""

    kind: str  # "electricity" | "covertype"
    n_instances: int

    def __post_init__(self) -> None:
        if self.kind not in ("electricity", "covertype"):
            raise ValueError(
                f"kind must be 'electricity' or 'covertype', got {self.kind!r}"
            )

    def __call__(self, seed: int) -> InstanceStream:
        if self.kind == "electricity":
            return ElectricitySurrogate(n_instances=self.n_instances, seed=seed)
        return CovertypeSurrogate(n_instances=self.n_instances, seed=seed)


def dataset_builders(
    n_instances: int,
    drift_every: int,
    gradual_width: int = 1_000,
) -> Dict[str, Callable[[int], InstanceStream]]:
    """Stream builders for every Table-2 column, keyed by display name.

    ``n_instances``/``drift_every`` control the synthetic streams; the
    real-world surrogates declare their own bounded length (at least 1,000
    instances) and the runner never consumes past it.
    """
    n_drifts = max(n_instances // drift_every - 1, 1)
    surrogate_length = max(n_instances, 1_000)

    return {
        "STAGGER (sudden)": ClassificationStreamBuilder("stagger", drift_every, n_drifts, 1),
        "Random RBF (sudden)": ClassificationStreamBuilder("random_rbf", drift_every, n_drifts, 1),
        "AGRAWAL (sudden)": ClassificationStreamBuilder("agrawal", drift_every, n_drifts, 1),
        "STAGGER (gradual)": ClassificationStreamBuilder(
            "stagger", drift_every, n_drifts, gradual_width
        ),
        "Random RBF (gradual)": ClassificationStreamBuilder(
            "random_rbf", drift_every, n_drifts, gradual_width
        ),
        "AGRAWAL (gradual)": ClassificationStreamBuilder(
            "agrawal", drift_every, n_drifts, gradual_width
        ),
        "Electricity": _SurrogateBuilder("electricity", surrogate_length),
        "Covertype": _SurrogateBuilder("covertype", surrogate_length),
    }


def run_table2(
    n_instances: int = 100_000,
    drift_every: int = 20_000,
    gradual_width: int = 1_000,
    n_repetitions: int = 1,
    base_seed: int = 1,
    w_max: int = 25_000,
    datasets: Optional[Dict[str, Callable[[int], InstanceStream]]] = None,
    n_jobs: int = 1,
    detector_batch_size: Optional[int] = None,
    out_path: Optional[str] = None,
) -> Dict[str, Dict[str, float]]:
    """Return ``{detector: {dataset: accuracy}}`` for the Table-2 grid.

    Accuracies are averaged over ``n_repetitions`` prequential runs.  When a
    dataset declares its own bounded length (the real-world surrogates do)
    the evaluation is clamped to that bound instead of consuming the stream
    past its declared end.
    """
    builders = datasets or dataset_builders(n_instances, drift_every, gradual_width)
    return run_accuracy_grid(
        dataset_builders=builders,
        detector_factories=table2_detectors(w_max=w_max),
        n_instances=n_instances,
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        n_jobs=n_jobs,
        detector_batch_size=detector_batch_size,
        out_path=out_path,
    )
