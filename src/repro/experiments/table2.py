"""Driver for Table 2 — accuracy of the Naive Bayes classifier per detector.

For every dataset (sudden/gradual STAGGER, RandomRBF, AGRAWAL plus the
Electricity and Covertype surrogates) and every detector (including the
"no drift detector" row), the NB classifier is evaluated prequentially and
reset whenever the detector flags a drift; the reported figure is the overall
prequential accuracy.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.base import DriftDetector
from repro.evaluation.prequential import run_prequential
from repro.experiments.config import table2_detectors
from repro.experiments.table1 import _agrawal_stream, _random_rbf_stream, _stagger_stream
from repro.learners.naive_bayes import NaiveBayes
from repro.streams.base import InstanceStream
from repro.streams.real_world import CovertypeSurrogate, ElectricitySurrogate

__all__ = ["dataset_builders", "run_table2", "DATASET_ORDER"]

#: Column order used by the paper's Table 2.
DATASET_ORDER = (
    "STAGGER (sudden)",
    "Random RBF (sudden)",
    "AGRAWAL (sudden)",
    "STAGGER (gradual)",
    "Random RBF (gradual)",
    "AGRAWAL (gradual)",
    "Electricity",
    "Covertype",
)


def dataset_builders(
    n_instances: int,
    drift_every: int,
    gradual_width: int = 1_000,
) -> Dict[str, Callable[[int], InstanceStream]]:
    """Stream builders for every Table-2 column, keyed by display name.

    ``n_instances``/``drift_every`` control the synthetic streams; the
    real-world surrogates always produce their own natural length but are
    consumed up to ``n_instances`` instances by the runner.
    """
    n_drifts = max(n_instances // drift_every - 1, 1)

    def electricity(seed: int) -> InstanceStream:
        return ElectricitySurrogate(n_instances=max(n_instances, 1_000), seed=seed)

    def covertype(seed: int) -> InstanceStream:
        return CovertypeSurrogate(n_instances=max(n_instances, 1_000), seed=seed)

    return {
        "STAGGER (sudden)": lambda seed: _stagger_stream(seed, drift_every, n_drifts, 1),
        "Random RBF (sudden)": lambda seed: _random_rbf_stream(seed, drift_every, n_drifts, 1),
        "AGRAWAL (sudden)": lambda seed: _agrawal_stream(seed, drift_every, n_drifts, 1),
        "STAGGER (gradual)": lambda seed: _stagger_stream(
            seed, drift_every, n_drifts, gradual_width
        ),
        "Random RBF (gradual)": lambda seed: _random_rbf_stream(
            seed, drift_every, n_drifts, gradual_width
        ),
        "AGRAWAL (gradual)": lambda seed: _agrawal_stream(
            seed, drift_every, n_drifts, gradual_width
        ),
        "Electricity": electricity,
        "Covertype": covertype,
    }


def run_table2(
    n_instances: int = 100_000,
    drift_every: int = 20_000,
    gradual_width: int = 1_000,
    n_repetitions: int = 1,
    base_seed: int = 1,
    w_max: int = 25_000,
    datasets: Optional[Dict[str, Callable[[int], InstanceStream]]] = None,
) -> Dict[str, Dict[str, float]]:
    """Return ``{detector: {dataset: accuracy}}`` for the Table-2 grid.

    Accuracies are averaged over ``n_repetitions`` prequential runs.
    """
    builders = datasets or dataset_builders(n_instances, drift_every, gradual_width)
    detectors = table2_detectors(w_max=w_max)
    accuracies: Dict[str, Dict[str, float]] = {name: {} for name in detectors}

    for dataset_name, builder in builders.items():
        for detector_name, factory in detectors.items():
            total_accuracy = 0.0
            for repetition in range(n_repetitions):
                seed = base_seed + repetition
                stream = builder(seed)
                learner = NaiveBayes(schema=stream.schema, n_classes=stream.n_classes)
                detector: Optional[DriftDetector] = factory() if factory else None
                result = run_prequential(
                    stream=stream,
                    learner=learner,
                    detector=detector,
                    n_instances=n_instances,
                )
                total_accuracy += result.accuracy
            accuracies[detector_name][dataset_name] = total_accuracy / n_repetitions
    return accuracies
