"""Driver for Figure 5 — the neural-network (CNN surrogate) experiment.

The paper pre-trains a CNN on CIFAR-10, streams batches of 32 images, swaps
the labels of two classes every 20% of the stream (4 drifts), and compares
OPTWIN against ADWIN as the detector that triggers 3 epochs of fine-tuning.
The headline numbers are: ADWIN detects 15 drifts (11 FPs) and spends far
more time retraining, OPTWIN detects 5 drifts (1 FP), making the whole
pipeline ~21% faster.

This driver runs the same pipeline over the synthetic image surrogate
(DESIGN.md §3) for any set of detectors and reports detections, retraining
iterations, and wall-clock split, from which the relative speed-up is
computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.base import DriftDetector
from repro.core.optwin import Optwin
from repro.detectors.adwin import Adwin
from repro.evaluation.drift_metrics import evaluate_detections
from repro.learners.mlp import MLPClassifier
from repro.pipelines.image_stream import SyntheticImageStream
from repro.pipelines.online_learning import DriftAwarePipeline, OnlineLearningReport

__all__ = ["NnExperimentResult", "default_nn_detectors", "run_figure5"]


@dataclass
class NnExperimentResult:
    """Outcome of the NN pipeline for one detector.

    Attributes
    ----------
    detector_name:
        Display name of the detector.
    report:
        Full pipeline report (losses, detections, timing).
    true_positives, false_positives:
        Detections matched against the known label-swap batches.
    pretrain_accuracy:
        Accuracy of the surrogate model after pre-training.
    """

    detector_name: str
    report: OnlineLearningReport
    true_positives: int
    false_positives: int
    pretrain_accuracy: float

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time of the pipeline run."""
        return self.report.total_seconds

    def as_row(self) -> dict:
        """Summary row matching the Figure-5 discussion in the paper."""
        return {
            "detector": self.detector_name,
            "detections": self.report.n_detections,
            "tp": self.true_positives,
            "fp": self.false_positives,
            "retraining_batches": self.report.n_retraining_batches,
            "retraining_seconds": self.report.retraining_seconds,
            "total_seconds": self.report.total_seconds,
            "mean_accuracy": self.report.mean_accuracy,
        }


def default_nn_detectors() -> Dict[str, Callable[[], DriftDetector]]:
    """OPTWIN vs ADWIN, the two detectors compared in Figure 5."""
    return {
        "ADWIN": lambda: Adwin(delta=0.002),
        "OPTWIN rho=0.5": lambda: Optwin(delta=0.99, rho=0.5, w_max=25_000),
    }


def run_figure5(
    n_batches: int = 600,
    batch_size: int = 32,
    n_drifts: int = 4,
    n_features: int = 64,
    n_classes: int = 10,
    fine_tune_batches: int = 60,
    pretrain_examples: int = 4_000,
    pretrain_epochs: int = 15,
    seed: int = 1,
    detectors: Optional[Dict[str, Callable[[], DriftDetector]]] = None,
) -> Dict[str, NnExperimentResult]:
    """Run the NN pipeline for every detector over the *same* image stream.

    The default sizes are scaled down from the paper (312,400 batches) so the
    experiment runs in seconds; the structure — 4 label-swap drifts, a fixed
    fine-tuning budget per detection — is identical, so the relative
    comparison (fewer FPs → less retraining → faster pipeline) is preserved.
    """
    detectors = detectors or default_nn_detectors()
    results: Dict[str, NnExperimentResult] = {}

    for name, factory in detectors.items():
        stream = SyntheticImageStream(
            n_classes=n_classes,
            n_features=n_features,
            batch_size=batch_size,
            n_batches=n_batches,
            n_drifts=n_drifts,
            seed=seed,
        )
        model = MLPClassifier(
            n_features=n_features,
            n_classes=n_classes,
            hidden_sizes=(64, 32),
            seed=seed,
        )
        x_pre, y_pre = stream.pretraining_set(n_examples=pretrain_examples)
        pretrain_accuracy = model.pretrain(x_pre, y_pre, n_epochs=pretrain_epochs)

        pipeline = DriftAwarePipeline(
            model=model,
            detector=factory(),
            fine_tune_batches=fine_tune_batches,
        )
        report = pipeline.run(stream)
        evaluation = evaluate_detections(
            drift_positions=stream.drift_batches,
            detections=report.detections,
            stream_length=stream.n_batches,
        )
        results[name] = NnExperimentResult(
            detector_name=name,
            report=report,
            true_positives=evaluation.true_positives,
            false_positives=evaluation.false_positives,
            pretrain_accuracy=pretrain_accuracy,
        )
    return results
