"""Ablation studies of OPTWIN's design choices.

DESIGN.md calls out three design decisions worth isolating:

* **F-test on variances** (A1) — the paper's motivating example is a drift
  where only the variance changes; without the F-test OPTWIN degenerates to a
  mean-only detector and misses those drifts entirely.
* **Optimal cut vs 50/50 split** (A2) — the optimal cut maximises the
  historical window while guaranteeing detection of a ``rho``-sized drift;
  forcing ``nu = 0.5`` changes the delay/FP trade-off.
* **Robustness rho** (A3) — the sensitivity sweep over ``rho`` values, the
  paper's own Section 4.1 discussion.

Each driver returns per-variant summaries over repeated runs so the
benchmarks can print comparable rows.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.config import OptwinConfig
from repro.core.optwin import Optwin
from repro.evaluation.experiment import DetectorSummary, ExperimentRunner
from repro.streams.base import ValueStream
from repro.streams.error_streams import (
    BinarySegment,
    GaussianSegment,
    binary_error_stream,
    gaussian_error_stream,
)

__all__ = [
    "run_ftest_ablation",
    "run_optimal_cut_ablation",
    "run_rho_sensitivity",
    "run_magnitude_gate_ablation",
]


class _FixedSplitOptwin(Optwin):
    """OPTWIN variant that always splits the window 50/50 (ablation A2)."""

    def _update_one(self, value):  # type: ignore[override]
        # Monkey-patching the cut table would leak into the shared cache, so
        # this variant swaps in a private table whose specs force nu = 0.5.
        spec_source = self._cut_table

        class _HalfTable:
            def spec(self, length: int):
                from repro.core.optimal_cut import _spec_for_split

                return _spec_for_split(
                    length, length // 2, spec_source.confidence, solved=False
                )

        original = self._cut_table
        self._cut_table = _HalfTable()  # type: ignore[assignment]
        try:
            return super()._update_one(value)
        finally:
            self._cut_table = original


def _variance_only_stream(seed: int, segment_length: int = 3_000) -> ValueStream:
    """A stream whose drift changes only the standard deviation of the errors."""
    segments = [
        GaussianSegment(segment_length, mean=0.5, std=0.05),
        GaussianSegment(segment_length, mean=0.5, std=0.30),
    ]
    return gaussian_error_stream(segments, width=1, seed=seed)


def _mean_shift_binary_stream(seed: int, segment_length: int = 3_000) -> ValueStream:
    segments = [BinarySegment(segment_length, 0.2), BinarySegment(segment_length, 0.6)]
    return binary_error_stream(segments, width=1, seed=seed)


def run_ftest_ablation(
    n_repetitions: int = 10,
    segment_length: int = 3_000,
    base_seed: int = 1,
) -> Dict[str, DetectorSummary]:
    """A1: OPTWIN with and without the variance (F) test on a variance-only drift.

    The "without F-test" variant is emulated by an OPTWIN whose one-sided mean
    gate blocks the variance path: we instantiate OPTWIN with ``one_sided``
    mean checks but replace the variance branch by configuring an effectively
    unreachable F threshold through a two-sided mean-only detector built from
    the same machinery.
    """
    runner = ExperimentRunner(n_repetitions=n_repetitions, base_seed=base_seed)

    def stream_factory(seed: int) -> ValueStream:
        return _variance_only_stream(seed, segment_length)

    factories: Dict[str, Callable[[], Optwin]] = {
        "OPTWIN (t + F tests)": lambda: Optwin(rho=0.5, one_sided=False),
        "OPTWIN (t test only)": lambda: _MeanOnlyOptwin(rho=0.5, one_sided=False),
    }
    return runner.run_value_experiment(factories, stream_factory)


class _MeanOnlyOptwin(Optwin):
    """OPTWIN variant whose F-test never fires (ablation A1)."""

    def _update_one(self, value):  # type: ignore[override]
        result = super()._update_one(value)
        if result.drift_detected and result.drift_type is not None:
            if result.drift_type.value == "variance":
                # Suppress the variance detection: rebuild the window as if
                # nothing had happened by replaying nothing (the window was
                # already reset); simply report "no drift".
                from repro.core.base import DetectionResult

                return DetectionResult(
                    warning_detected=result.warning_detected,
                    statistics=result.statistics,
                )
        return result


def run_optimal_cut_ablation(
    n_repetitions: int = 10,
    segment_length: int = 3_000,
    base_seed: int = 1,
) -> Dict[str, DetectorSummary]:
    """A2: optimal cut vs a fixed 50/50 split on a sudden binary drift."""
    runner = ExperimentRunner(n_repetitions=n_repetitions, base_seed=base_seed)

    def stream_factory(seed: int) -> ValueStream:
        return _mean_shift_binary_stream(seed, segment_length)

    factories: Dict[str, Callable[[], Optwin]] = {
        "OPTWIN (optimal cut)": lambda: Optwin(rho=0.5),
        "OPTWIN (fixed 50/50 cut)": lambda: _FixedSplitOptwin(rho=0.5),
    }
    return runner.run_value_experiment(factories, stream_factory)


def run_rho_sensitivity(
    rhos: Optional[List[float]] = None,
    n_repetitions: int = 10,
    segment_length: int = 3_000,
    base_seed: int = 1,
) -> Dict[str, DetectorSummary]:
    """A3: sensitivity of delay/FP/F1 to the robustness parameter rho."""
    rhos = rhos or [0.1, 0.25, 0.5, 1.0, 2.0]
    runner = ExperimentRunner(n_repetitions=n_repetitions, base_seed=base_seed)

    def stream_factory(seed: int) -> ValueStream:
        return _mean_shift_binary_stream(seed, segment_length)

    factories: Dict[str, Callable[[], Optwin]] = {
        f"OPTWIN rho={rho}": (lambda rho=rho: Optwin(rho=rho)) for rho in rhos
    }
    return runner.run_value_experiment(factories, stream_factory)


def run_magnitude_gate_ablation(
    n_repetitions: int = 10,
    segment_length: int = 5_000,
    base_seed: int = 1,
) -> Dict[str, DetectorSummary]:
    """A4: effect of the rho-magnitude gate on the false-positive rate.

    The gate is the implementation detail that enforces the paper's definition
    of the robustness parameter (a mean shift below ``rho * sigma_hist`` is
    not a drift); disabling it recovers a pure significance test and shows why
    the gate matters for OPTWIN's low FP rates.
    """
    runner = ExperimentRunner(n_repetitions=n_repetitions, base_seed=base_seed)

    def stream_factory(seed: int) -> ValueStream:
        return _mean_shift_binary_stream(seed, segment_length)

    factories: Dict[str, Callable[[], Optwin]] = {
        "OPTWIN (with magnitude gate)": lambda: Optwin(
            config=OptwinConfig(rho=0.5, require_magnitude=True)
        ),
        "OPTWIN (significance only)": lambda: Optwin(
            config=OptwinConfig(rho=0.5, require_magnitude=False)
        ),
    }
    return runner.run_value_experiment(factories, stream_factory)
