"""Command-line entry point for the orchestrated experiment grids.

Run any Table-1 block, the Table-2 accuracy matrix, or the significance
analysis with parallel fan-out, batched detector execution, and resumable
persistence::

    python -m repro.experiments sudden-binary --jobs 4 --batch-size 64 \\
        --repetitions 30 --out results/table1.jsonl
    python -m repro.experiments table2 --instances 20000 --drift-every 4000
    python -m repro.experiments significance --repetitions 10

Only the options a block actually accepts are forwarded to its driver; the
rest keep the driver's documented defaults.  With ``--out``, re-running the
same configuration resumes from the persisted per-cell results instead of
recomputing the grid.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable, Dict, List, Optional

from repro.evaluation.reporting import (
    format_accuracy_table,
    format_detection_rows,
    format_table,
)
from repro.experiments import significance, table1, table2

#: Map from CLI block name to its driver function.
_TABLE1_BLOCKS: Dict[str, Callable] = {
    "sudden-binary": table1.run_sudden_binary,
    "gradual-binary": table1.run_gradual_binary,
    "sudden-nonbinary": table1.run_sudden_nonbinary,
    "gradual-nonbinary": table1.run_gradual_nonbinary,
    "stagger": table1.run_stagger,
    "random-rbf": table1.run_random_rbf,
    "agrawal": table1.run_agrawal,
}

_BLOCK_CHOICES = [*_TABLE1_BLOCKS, "table2", "significance"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run one paper-reproduction experiment block through the "
        "parallel orchestrator and print its table.",
    )
    parser.add_argument("block", choices=_BLOCK_CHOICES, help="experiment block to run")
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="detector_batch_size: chunk size of the batched detector feed "
        "(default: whole-stream batches for value blocks, scalar loop for "
        "classification blocks; 1 forces the scalar reference path)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="JSON-lines file persisting per-cell results (enables resume)",
    )
    parser.add_argument("--repetitions", type=int, default=None, help="grid repetitions")
    parser.add_argument("--seed", type=int, default=None, help="base seed (default 1)")
    parser.add_argument("--w-max", type=int, default=None, help="OPTWIN w_max (default 25000)")
    parser.add_argument(
        "--segment-length", type=int, default=None, help="error-stream segment length"
    )
    parser.add_argument(
        "--width", type=int, default=None, help="gradual transition width (value blocks)"
    )
    parser.add_argument(
        "--instances", type=int, default=None, help="instances per classification stream"
    )
    parser.add_argument(
        "--drift-every", type=int, default=None, help="drift spacing (classification blocks)"
    )
    parser.add_argument(
        "--gradual-width", type=int, default=None, help="gradual width (table2 datasets)"
    )
    parser.add_argument(
        "--alpha", type=float, default=None, help="significance level (significance block)"
    )
    return parser


def _driver_kwargs(driver: Callable, args: argparse.Namespace) -> dict:
    """Forward only the options the driver accepts (and that were given)."""
    candidates = {
        "n_repetitions": args.repetitions,
        "base_seed": args.seed,
        "w_max": args.w_max,
        "segment_length": args.segment_length,
        "width": args.width,
        "n_instances": args.instances,
        "drift_every": args.drift_every,
        "gradual_width": args.gradual_width,
        "n_jobs": args.jobs,
        "detector_batch_size": args.batch_size,
        "out_path": args.out,
    }
    parameters = inspect.signature(driver).parameters
    return {
        name: value
        for name, value in candidates.items()
        if value is not None and name in parameters
    }


def _run_significance(args: argparse.Namespace) -> str:
    scores = significance.collect_f1_scores(
        **_driver_kwargs(significance.collect_f1_scores, args)
    )
    comparisons = significance.run_significance_analysis(
        scores, **({"alpha": args.alpha} if args.alpha is not None else {})
    )
    rows = [
        [
            comparison.detector_a,
            comparison.detector_b,
            f"{comparison.result.p_value:.4f}",
            "yes" if comparison.a_better else "no",
        ]
        for comparison in comparisons
    ]
    return format_table(
        ["OPTWIN config", "Baseline", "p-value", "significantly better"],
        rows,
        title="Wilcoxon signed-rank on per-run F1",
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.block == "significance":
        print(_run_significance(args))
        return 0

    if args.block == "table2":
        accuracies = table2.run_table2(**_driver_kwargs(table2.run_table2, args))
        datasets = list(next(iter(accuracies.values()), {}))
        order = [name for name in table2.DATASET_ORDER if name in datasets]
        order += [name for name in datasets if name not in order]
        print(
            format_accuracy_table(
                accuracies, dataset_order=order, title="Table 2 - prequential accuracy (%)"
            )
        )
        return 0

    driver = _TABLE1_BLOCKS[args.block]
    summaries = driver(**_driver_kwargs(driver, args))
    rows = table1.summaries_to_rows(summaries)
    print(format_detection_rows(rows, title=f"Table 1 - {args.block}"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
