"""Experiment drivers — one module per table/figure of the paper.

* :mod:`repro.experiments.table1` — drift-identification statistics (Table 1);
* :mod:`repro.experiments.table2` — NB accuracy per detector (Table 2);
* :mod:`repro.experiments.figures` — per-run detection pictures (Figures 2-4);
* :mod:`repro.experiments.figure5` — the neural-network pipeline (Figure 5);
* :mod:`repro.experiments.significance` — Wilcoxon analysis (Section 4.1);
* :mod:`repro.experiments.runtime` — per-element cost comparison (Section 3.4);
* :mod:`repro.experiments.ablations` — design-choice ablations (DESIGN.md);
* :mod:`repro.experiments.orchestrator` — parallel grid execution with
  shared stream materialization and resumable JSON-lines persistence.

The benchmark harness under ``benchmarks/`` wraps these drivers and prints the
same rows/series the paper reports; see EXPERIMENTS.md for paper-vs-measured
numbers.  ``python -m repro.experiments <block> --jobs N --batch-size B --out
results.jsonl`` runs any block from the command line (see
:mod:`repro.experiments.__main__`).
"""

from repro.experiments import (  # noqa: F401  (re-exported driver modules)
    ablations,
    config,
    figure5,
    figures,
    orchestrator,
    runtime,
    significance,
    table1,
    table2,
)

__all__ = [
    "ablations",
    "config",
    "figures",
    "figure5",
    "orchestrator",
    "runtime",
    "significance",
    "table1",
    "table2",
]
