"""Drivers for Figures 2-4 — per-run detection pictures.

The figures in the paper show, for one representative run, where each
detector fired relative to the true drifts: Figure 2 for the sudden binary
stream, Figure 3 for the gradual binary stream, and Figure 4 for the AGRAWAL
classification stream.  The drivers return, per detector, the raw detection
positions plus the matched TP/FP breakdown and delays — everything needed to
re-plot the figures or print them as series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.evaluation.drift_metrics import DriftEvaluation, evaluate_detections
from repro.evaluation.prequential import run_prequential
from repro.experiments.config import paper_detectors
from repro.experiments.table1 import _agrawal_stream
from repro.learners.naive_bayes import NaiveBayes
from repro.streams.error_streams import BinarySegment, binary_error_stream

__all__ = ["DetectionSeries", "run_figure2", "run_figure3", "run_figure4"]


@dataclass
class DetectionSeries:
    """Per-detector detection picture for one run.

    Attributes
    ----------
    detector_name:
        Display name of the detector.
    detections:
        Raw detection positions.
    true_drifts:
        Ground-truth drift positions of the run.
    evaluation:
        Matched TP/FP/FN evaluation (gives the delays and FP count shown in
        the figures).
    """

    detector_name: str
    detections: List[int] = field(default_factory=list)
    true_drifts: List[int] = field(default_factory=list)
    evaluation: DriftEvaluation = field(default_factory=DriftEvaluation)

    @property
    def false_positive_positions(self) -> List[int]:
        """Detections that were not matched to any true drift."""
        matched = {
            match.detection_position
            for match in self.evaluation.matches
            if match.detected
        }
        return [d for d in self.detections if d not in matched]

    def as_row(self) -> dict:
        """Summary row (detector, TPs, FPs, mean delay)."""
        return {
            "detector": self.detector_name,
            "tp": self.evaluation.true_positives,
            "fp": self.evaluation.false_positives,
            "mean_delay": self.evaluation.mean_delay,
        }


def _run_binary_figure(
    width: int,
    n_drifts: int,
    segment_length: int,
    error_rates: List[float],
    seed: int,
    w_max: int,
) -> Dict[str, DetectionSeries]:
    # Each drift is an error-rate *increase*: after a detected drift the paper's
    # OL pipelines retrain the learner, so the monitored error always degrades
    # relative to the detector's (reset) reference.  A monotone ladder of error
    # rates reproduces that situation for detectors that are fed the raw error
    # stream, keeping every drift detectable by the one-sided detectors (DDM,
    # EDDM, ECDD, OPTWIN) as well as the two-sided ones.
    if len(error_rates) < n_drifts + 1:
        low, high = min(error_rates), max(error_rates)
        step = (high - low) / max(n_drifts, 1)
        rates = [min(low + step * index, 0.95) for index in range(n_drifts + 1)]
    else:
        rates = list(error_rates[: n_drifts + 1])
    segments = [BinarySegment(segment_length, rate) for rate in rates]
    stream = binary_error_stream(segments, width=width, seed=seed)
    series: Dict[str, DetectionSeries] = {}
    for name, factory in paper_detectors(binary=True, w_max=w_max).items():
        detector = factory()
        detections = detector.update_many(stream.values)
        evaluation = evaluate_detections(
            drift_positions=stream.drift_positions,
            detections=detections,
            stream_length=len(stream),
        )
        series[name] = DetectionSeries(
            detector_name=name,
            detections=detections,
            true_drifts=list(stream.drift_positions),
            evaluation=evaluation,
        )
    return series


def run_figure2(
    segment_length: int = 5_000,
    n_drifts: int = 4,
    seed: int = 7,
    w_max: int = 25_000,
) -> Dict[str, DetectionSeries]:
    """Figure 2: sudden binary drift detections of every detector (one run)."""
    return _run_binary_figure(
        width=1,
        n_drifts=n_drifts,
        segment_length=segment_length,
        error_rates=[0.1, 0.7],
        seed=seed,
        w_max=w_max,
    )


def run_figure3(
    segment_length: int = 5_000,
    n_drifts: int = 4,
    width: int = 1_000,
    seed: int = 7,
    w_max: int = 25_000,
) -> Dict[str, DetectionSeries]:
    """Figure 3: gradual binary drift detections of every detector (one run)."""
    return _run_binary_figure(
        width=width,
        n_drifts=n_drifts,
        segment_length=segment_length,
        error_rates=[0.1, 0.7],
        seed=seed,
        w_max=w_max,
    )


def run_figure4(
    n_instances: int = 100_000,
    drift_every: int = 20_000,
    seed: int = 7,
    w_max: int = 25_000,
) -> Dict[str, DetectionSeries]:
    """Figure 4: TP/FP picture on the AGRAWAL stream with sudden drifts."""
    n_drifts = max(n_instances // drift_every - 1, 1)
    positions = [drift_every * (index + 1) for index in range(n_drifts)]
    series: Dict[str, DetectionSeries] = {}
    for name, factory in paper_detectors(binary=True, w_max=w_max).items():
        stream = _agrawal_stream(seed, drift_every, n_drifts, 1)
        learner = NaiveBayes(schema=stream.schema, n_classes=stream.n_classes)
        result = run_prequential(
            stream=stream,
            learner=learner,
            detector=factory(),
            n_instances=n_instances,
        )
        evaluation = evaluate_detections(
            drift_positions=positions,
            detections=result.detections,
            stream_length=n_instances,
        )
        series[name] = DetectionSeries(
            detector_name=name,
            detections=result.detections,
            true_drifts=positions,
            evaluation=evaluation,
        )
    return series
