"""Parallel experiment orchestration for the paper-reproduction grids.

The full evaluation grid of the paper — Table 1's seven blocks x ~8 detectors
x 30 repetitions, the Table 2 accuracy matrix, the significance analysis — is
embarrassingly parallel once it is decomposed into the right unit of work.
This module does that decomposition and owns everything around it:

* **Cells.**  Every (block, detector, repetition) triple is an independent
  :class:`ExperimentCell` with a deterministic seed (``base_seed +
  repetition``), so any subset of cells can be computed in any order, on any
  process, and still produce bit-identical results.
* **Shared stream materialization.**  All detectors of a repetition consume
  the *same* instance/value sequence (the paper's paired comparison), so the
  orchestrator materializes each (stream, seed) pair once per task — instead
  of once per detector, which made the historical drivers regenerate every
  stream ~8x — and keeps a small per-process cache for repeated grids.
* **Process fan-out.**  Tasks (one repetition of one block, covering every
  still-missing detector cell) are executed inline for ``n_jobs=1`` or
  fanned out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Everything shipped to workers is picklable plain data plus module-level
  callables; results travel back as JSON-compatible records.
* **Persistence and resume.**  With ``out_path`` every finished cell is
  appended to a JSON-lines file, keyed by a hash of the grid configuration.
  Re-running the same grid loads matching records and computes only the
  missing cells, so interrupted grids resume instead of recomputing.

Determinism contract: for value-stream grids the results are bit-identical
across ``n_jobs`` and ``detector_batch_size`` settings (the detectors' batched
fast paths are observationally equivalent to the scalar loop).  For
prequential grids the results are bit-identical across ``n_jobs``; the
``detector_batch_size`` chunking keeps drift indices exact per chunk but
applies learner resets at the chunk flush (see
:func:`repro.evaluation.prequential.run_prequential`), which is why the chunk
size participates in the prequential configuration hash.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import inspect
import json
import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.base import DriftDetector
from repro.evaluation.drift_metrics import evaluate_detections
from repro.evaluation.experiment import (
    DetectorRunResult,
    DetectorSummary,
    chunked_drift_indices,
)
from repro.evaluation.prequential import PrequentialResult, run_prequential
from repro.exceptions import ConfigurationError
from repro.learners.base import Classifier
from repro.learners.naive_bayes import NaiveBayes
from repro.streams.base import InstanceStream, MaterializedStream, ValueStream

__all__ = [
    "ExperimentCell",
    "decompose_grid",
    "default_learner_factory",
    "grid_config_hash",
    "run_accuracy_grid",
    "run_classification_grid",
    "run_prequential_grid",
    "run_value_grid",
    "stable_token",
]


@dataclass(frozen=True)
class ExperimentCell:
    """One independent unit of grid work: a detector on one seeded repetition.

    Attributes
    ----------
    block:
        Name of the experiment block (or Table-2 dataset) the cell belongs to.
    detector:
        Display name of the detector.
    repetition:
        0-based repetition index within the block.
    seed:
        Stream seed of the repetition (``base_seed + repetition``).
    """

    block: str
    detector: str
    repetition: int
    seed: int


def decompose_grid(
    block: str,
    detector_names: Sequence[str],
    n_repetitions: int,
    base_seed: int = 1,
) -> List[ExperimentCell]:
    """Decompose one block into its independent, deterministically seeded cells."""
    return [
        ExperimentCell(block=block, detector=name, repetition=repetition, seed=base_seed + repetition)
        for repetition in range(n_repetitions)
        for name in detector_names
    ]


def default_learner_factory(stream: InstanceStream) -> Classifier:
    """The paper's classifier: an incremental Naive Bayes over the stream schema."""
    return NaiveBayes(schema=stream.schema, n_classes=stream.n_classes)


def grid_config_hash(payload: Mapping[str, object]) -> str:
    """Stable hash of a grid configuration (keys persisted JSONL records)."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


#: Substrings that betray a process-dependent identity token (memory
#: addresses in default reprs, anonymous or closure-local callables).
_UNSTABLE_TOKEN_MARKERS = ("<lambda>", "<locals>", " at 0x")


def stable_token(obj: object) -> str:
    """Process-independent identity token of a factory for the config hash.

    ``repr`` of a plain function embeds a per-process memory address, which
    would make every configuration hash unique to its process and turn
    resume-from-partial into a silent no-op.  Functions and classes are
    therefore tokenized by module-qualified name, :func:`functools.partial`
    recursively, and dataclass factories by their (deterministic) field repr.
    """
    if obj is None:
        return "None"
    if isinstance(obj, functools.partial):
        parts = [stable_token(obj.func)]
        parts += [repr(argument) for argument in obj.args]
        parts += [f"{key}={value!r}" for key, value in sorted(obj.keywords.items())]
        return f"functools.partial({', '.join(parts)})"
    if inspect.isclass(obj) or inspect.isfunction(obj):
        return f"{obj.__module__}.{obj.__qualname__}"
    if dataclasses.is_dataclass(obj):
        return f"{type(obj).__module__}.{type(obj).__qualname__}:{obj!r}"
    return repr(obj)


def _require_stable_tokens(tokens: Sequence[str], out_path: Optional[str]) -> None:
    """Persistence needs process-independent tokens; reject anonymous factories.

    Without ``out_path`` the configuration hash is inert, so lambdas and
    other closure-local callables remain fine for in-memory grids.
    """
    if out_path is None:
        return
    unstable = [
        token
        for token in tokens
        if any(marker in token for marker in _UNSTABLE_TOKEN_MARKERS)
    ]
    if unstable:
        raise ConfigurationError(
            "out_path persistence requires module-level (picklable) stream, "
            "learner, and detector factories so the grid can be resumed from "
            f"another process; got process-local factories: {unstable}"
        )


# --------------------------------------------------------------------------
# Per-process stream materialization cache.
# --------------------------------------------------------------------------

#: Materialized streams keyed by (kind, factory repr, seed[, n]); bounded so
#: long grids cannot accumulate every stream they ever generated.
_STREAM_CACHE: "OrderedDict[Tuple, object]" = OrderedDict()
_STREAM_CACHE_MAX = 4


def _cache_get(key: Tuple, build: Callable[[], object]) -> object:
    # Keys hold the factory object itself: that pins the factory alive while
    # its stream is cached, so a recycled id()/repr() of a dead factory can
    # never alias a cache entry.  Unhashable factories simply skip the cache.
    try:
        cached = _STREAM_CACHE.get(key)
    except TypeError:
        return build()
    if cached is not None:
        _STREAM_CACHE.move_to_end(key)
        return cached
    value = build()
    _STREAM_CACHE[key] = value
    while len(_STREAM_CACHE) > _STREAM_CACHE_MAX:
        _STREAM_CACHE.popitem(last=False)
    return value


def _cached_value_stream(factory: Callable[[int], ValueStream], seed: int) -> ValueStream:
    return _cache_get(("value", factory, int(seed)), lambda: factory(seed))


def _cached_materialized_stream(
    builder: Callable[[int], InstanceStream], seed: int, n_instances: int
) -> MaterializedStream:
    key = ("instances", builder, int(seed), int(n_instances))
    return _cache_get(
        key, lambda: MaterializedStream.from_stream(builder(seed), n_instances)
    )


# --------------------------------------------------------------------------
# Task execution (runs in worker processes; everything JSON-safe on return).
# --------------------------------------------------------------------------


def _value_task_records(task: dict) -> List[dict]:
    stream = _cached_value_stream(task["stream_factory"], task["seed"])
    records = []
    for name, factory in task["detectors"]:
        detections = chunked_drift_indices(
            factory(), stream.values, task["detector_batch_size"]
        )
        records.append(
            {
                "config": task["config"],
                "kind": "value",
                "block": task["block"],
                "detector": name,
                "repetition": task["repetition"],
                "seed": task["seed"],
                "detections": [int(index) for index in detections],
                "stream_length": int(len(stream)),
                "drift_positions": [int(p) for p in stream.drift_positions],
            }
        )
    return records


def _prequential_task_records(task: dict) -> List[dict]:
    stream = _cached_materialized_stream(
        task["stream_builder"], task["seed"], task["n_instances"]
    )
    records = []
    for name, factory in task["detectors"]:
        stream.restart()
        learner = task["learner_factory"](stream)
        detector: Optional[DriftDetector] = factory() if factory is not None else None
        result = run_prequential(
            stream=stream,
            learner=learner,
            detector=detector,
            n_instances=stream.n_instances,
            curve_window=task["curve_window"],
            detector_batch_size=task["detector_batch_size"],
        )
        records.append(
            {
                "config": task["config"],
                "kind": "prequential",
                "block": task["block"],
                "detector": name,
                "repetition": task["repetition"],
                "seed": task["seed"],
                "n_instances": int(result.n_instances),
                "n_correct": int(result.n_correct),
                "detections": [int(index) for index in result.detections],
                "warnings": [int(index) for index in result.warnings],
                "accuracy_curve": [float(value) for value in result.accuracy_curve],
                "curve_window": int(result.curve_window),
            }
        )
    return records


def _execute_task(task: dict) -> List[dict]:
    """Run one (block, repetition) task; top-level so it pickles to workers."""
    if task["kind"] == "value":
        return _value_task_records(task)
    return _prequential_task_records(task)


# --------------------------------------------------------------------------
# Grid planning, persistence, and execution.
# --------------------------------------------------------------------------

#: Key of one persisted cell record within its configuration.
_CellKey = Tuple[str, str, str, int, int]


def _record_key(record: Mapping[str, object]) -> _CellKey:
    return (
        str(record["config"]),
        str(record["block"]),
        str(record["detector"]),
        int(record["repetition"]),
        int(record["seed"]),
    )


@dataclass
class _GridPlan:
    """One block's execution plan: its config hash, cells, and work queue."""

    config: str
    block: str
    detector_names: List[str]
    n_repetitions: int
    base_seed: int
    task_template: dict
    detector_factories: Dict[str, Optional[Callable[[], DriftDetector]]]
    records: Dict[_CellKey, dict] = field(default_factory=dict)

    def cell_key(self, detector: str, repetition: int) -> _CellKey:
        return (
            self.config,
            self.block,
            detector,
            repetition,
            self.base_seed + repetition,
        )

    def missing_tasks(self) -> List[dict]:
        """One task per repetition that still has uncomputed detector cells."""
        tasks = []
        for repetition in range(self.n_repetitions):
            missing = [
                (name, self.detector_factories[name])
                for name in self.detector_names
                if self.cell_key(name, repetition) not in self.records
            ]
            if not missing:
                continue
            task = dict(self.task_template)
            task.update(
                repetition=repetition,
                seed=self.base_seed + repetition,
                detectors=missing,
            )
            tasks.append(task)
        return tasks

    def record(self, detector: str, repetition: int) -> dict:
        return self.records[self.cell_key(detector, repetition)]


def _load_records(out_path: str, configs: Sequence[str]) -> Dict[_CellKey, dict]:
    """Load persisted cell records whose configuration hash matches a grid.

    Unparseable lines (e.g. a torn final line from an interrupted run) and
    records of other configurations are skipped, never deleted: the file is an
    append-only log that may serve several grids.
    """
    wanted = set(configs)
    records: Dict[_CellKey, dict] = {}
    if not os.path.exists(out_path):
        return records
    with open(out_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict) or record.get("config") not in wanted:
                continue
            try:
                records[_record_key(record)] = record
            except (KeyError, TypeError, ValueError):
                continue
    return records


def _execute_plans(
    plans: Sequence[_GridPlan], n_jobs: int, out_path: Optional[str]
) -> None:
    """Compute every missing cell of every plan, persisting as results arrive."""
    if out_path:
        loaded = _load_records(out_path, [plan.config for plan in plans])
        by_config = {plan.config: plan for plan in plans}
        for key, record in loaded.items():
            by_config[key[0]].records[key] = record

    tasks = [task for plan in plans for task in plan.missing_tasks()]
    if not tasks:
        return

    by_config = {plan.config: plan for plan in plans}
    sink = None
    try:
        if out_path:
            directory = os.path.dirname(os.path.abspath(out_path))
            os.makedirs(directory, exist_ok=True)
            # An interrupted run may have left a torn final line; start
            # appending on a fresh line so the torn record cannot corrupt
            # the next one.
            needs_newline = False
            if os.path.exists(out_path) and os.path.getsize(out_path) > 0:
                with open(out_path, "rb") as tail:
                    tail.seek(-1, os.SEEK_END)
                    needs_newline = tail.read(1) != b"\n"
            sink = open(out_path, "a", encoding="utf-8")
            if needs_newline:
                sink.write("\n")
        if n_jobs <= 1 or len(tasks) == 1:
            batches = map(_execute_task, tasks)
            for batch in batches:
                _absorb(batch, by_config, sink)
        else:
            with ProcessPoolExecutor(max_workers=n_jobs) as pool:
                futures = [pool.submit(_execute_task, task) for task in tasks]
                for future in as_completed(futures):
                    _absorb(future.result(), by_config, sink)
    finally:
        if sink is not None:
            sink.close()


def _absorb(
    batch: List[dict], by_config: Dict[str, _GridPlan], sink
) -> None:
    for record in batch:
        by_config[record["config"]].records[_record_key(record)] = record
        if sink is not None:
            sink.write(json.dumps(record, sort_keys=True) + "\n")
    if sink is not None:
        sink.flush()


def _validate(n_repetitions: int, n_jobs: int, detector_batch_size: Optional[int]) -> None:
    if n_repetitions < 1:
        raise ConfigurationError(f"n_repetitions must be >= 1, got {n_repetitions}")
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
    if detector_batch_size is not None and detector_batch_size < 1:
        raise ConfigurationError(
            f"detector_batch_size must be None or >= 1, got {detector_batch_size}"
        )


# --------------------------------------------------------------------------
# Public grid runners.
# --------------------------------------------------------------------------


def run_value_grid(
    stream_factory: Callable[[int], ValueStream],
    detector_factories: Mapping[str, Callable[[], DriftDetector]],
    n_repetitions: int = 30,
    base_seed: int = 1,
    n_jobs: int = 1,
    detector_batch_size: Optional[int] = None,
    max_delay: Optional[int] = None,
    out_path: Optional[str] = None,
    block: str = "value-grid",
) -> Dict[str, DetectorSummary]:
    """Run a value-stream detector grid (Table 1's error-stream blocks).

    Results are bit-identical to the sequential scalar loop for every
    ``n_jobs``/``detector_batch_size`` combination; the chunk size is
    therefore *not* part of the configuration hash, so a grid persisted at
    one chunk size resumes seamlessly at another.
    """
    _validate(n_repetitions, n_jobs, detector_batch_size)
    stream_token = stable_token(stream_factory)
    detector_tokens = sorted(
        [name, stable_token(factory)] for name, factory in detector_factories.items()
    )
    _require_stable_tokens(
        [stream_token] + [token for _, token in detector_tokens], out_path
    )
    config = grid_config_hash(
        {
            "schema_version": 1,
            "kind": "value",
            "block": block,
            "stream_factory": stream_token,
            "detectors": detector_tokens,
        }
    )
    plan = _GridPlan(
        config=config,
        block=block,
        detector_names=list(detector_factories),
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        detector_factories=dict(detector_factories),
        task_template={
            "kind": "value",
            "config": config,
            "block": block,
            "stream_factory": stream_factory,
            "detector_batch_size": detector_batch_size,
        },
    )
    _execute_plans([plan], n_jobs, out_path)

    summaries = {}
    for name in detector_factories:
        summary = DetectorSummary(detector_name=name)
        for repetition in range(n_repetitions):
            record = plan.record(name, repetition)
            evaluation = evaluate_detections(
                drift_positions=record["drift_positions"],
                detections=record["detections"],
                stream_length=record["stream_length"],
                max_delay=max_delay,
            )
            summary.runs.append(
                DetectorRunResult(
                    detections=list(record["detections"]), evaluation=evaluation
                )
            )
        summaries[name] = summary
    return summaries


def run_prequential_grid(
    stream_builder: Callable[[int], InstanceStream],
    detector_factories: Mapping[str, Optional[Callable[[], DriftDetector]]],
    n_instances: int,
    learner_factory: Callable[[InstanceStream], Classifier] = default_learner_factory,
    n_repetitions: int = 30,
    base_seed: int = 1,
    n_jobs: int = 1,
    detector_batch_size: Optional[int] = None,
    curve_window: int = 1000,
    out_path: Optional[str] = None,
    block: str = "prequential-grid",
) -> Dict[str, List[PrequentialResult]]:
    """Run a prequential detector grid and return raw per-repetition results.

    ``detector_batch_size=None`` (the default) runs the exact scalar
    test-then-train loop; larger chunks cut detector overhead but apply
    learner resets at the chunk flush, so the chunk size participates in the
    configuration hash.  Streams that declare their own length (the
    real-world surrogates) are clamped to it during materialization.
    """
    _validate(n_repetitions, n_jobs, detector_batch_size)
    if n_instances < 1:
        raise ConfigurationError(f"n_instances must be >= 1, got {n_instances}")
    batch_size = 1 if detector_batch_size is None else detector_batch_size
    stream_token = stable_token(stream_builder)
    learner_token = stable_token(learner_factory)
    detector_tokens = sorted(
        [name, stable_token(factory)] for name, factory in detector_factories.items()
    )
    _require_stable_tokens(
        [stream_token, learner_token] + [token for _, token in detector_tokens],
        out_path,
    )
    config = grid_config_hash(
        {
            "schema_version": 1,
            "kind": "prequential",
            "block": block,
            "stream_builder": stream_token,
            "learner_factory": learner_token,
            "detectors": detector_tokens,
            "n_instances": n_instances,
            "curve_window": curve_window,
            "detector_batch_size": batch_size,
        }
    )
    plan = _GridPlan(
        config=config,
        block=block,
        detector_names=list(detector_factories),
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        detector_factories=dict(detector_factories),
        task_template={
            "kind": "prequential",
            "config": config,
            "block": block,
            "stream_builder": stream_builder,
            "learner_factory": learner_factory,
            "n_instances": n_instances,
            "curve_window": curve_window,
            "detector_batch_size": batch_size,
        },
    )
    _execute_plans([plan], n_jobs, out_path)

    results: Dict[str, List[PrequentialResult]] = {}
    for name in detector_factories:
        results[name] = [
            _prequential_result(plan.record(name, repetition))
            for repetition in range(n_repetitions)
        ]
    return results


def _prequential_result(record: Mapping[str, object]) -> PrequentialResult:
    return PrequentialResult(
        n_instances=int(record["n_instances"]),
        n_correct=int(record["n_correct"]),
        detections=list(record["detections"]),
        warnings=list(record["warnings"]),
        accuracy_curve=list(record["accuracy_curve"]),
        curve_window=int(record["curve_window"]),
    )


def run_classification_grid(
    stream_builder: Callable[[int], InstanceStream],
    detector_factories: Mapping[str, Optional[Callable[[], DriftDetector]]],
    n_instances: int,
    drift_positions: Sequence[int],
    learner_factory: Callable[[InstanceStream], Classifier] = default_learner_factory,
    n_repetitions: int = 30,
    base_seed: int = 1,
    n_jobs: int = 1,
    detector_batch_size: Optional[int] = None,
    max_delay: Optional[int] = None,
    out_path: Optional[str] = None,
    block: str = "classification-grid",
) -> Dict[str, DetectorSummary]:
    """Prequential grid scored against known drift positions (Table 1 style)."""
    results = run_prequential_grid(
        stream_builder=stream_builder,
        detector_factories=detector_factories,
        n_instances=n_instances,
        learner_factory=learner_factory,
        n_repetitions=n_repetitions,
        base_seed=base_seed,
        n_jobs=n_jobs,
        detector_batch_size=detector_batch_size,
        out_path=out_path,
        block=block,
    )
    summaries: Dict[str, DetectorSummary] = {}
    for name, runs in results.items():
        summary = DetectorSummary(detector_name=name)
        for run in runs:
            evaluation = evaluate_detections(
                drift_positions=drift_positions,
                detections=run.detections,
                stream_length=run.n_instances,
                max_delay=max_delay,
            )
            summary.runs.append(
                DetectorRunResult(detections=run.detections, evaluation=evaluation)
            )
        summaries[name] = summary
    return summaries


def run_accuracy_grid(
    dataset_builders: Mapping[str, Callable[[int], InstanceStream]],
    detector_factories: Mapping[str, Optional[Callable[[], DriftDetector]]],
    n_instances: int,
    learner_factory: Callable[[InstanceStream], Classifier] = default_learner_factory,
    n_repetitions: int = 1,
    base_seed: int = 1,
    n_jobs: int = 1,
    detector_batch_size: Optional[int] = None,
    curve_window: int = 1000,
    out_path: Optional[str] = None,
) -> Dict[str, Dict[str, float]]:
    """Run the Table-2 accuracy matrix: datasets x detectors x repetitions.

    Every dataset becomes its own block (and configuration hash); all blocks
    share one process pool, so the whole matrix fans out at once.  Returns
    ``{detector: {dataset: mean accuracy}}`` in line-up order.
    """
    _validate(n_repetitions, n_jobs, detector_batch_size)
    if n_instances < 1:
        raise ConfigurationError(f"n_instances must be >= 1, got {n_instances}")
    batch_size = 1 if detector_batch_size is None else detector_batch_size

    learner_token = stable_token(learner_factory)
    detector_tokens = sorted(
        [name, stable_token(factory)] for name, factory in detector_factories.items()
    )
    plans: "OrderedDict[str, _GridPlan]" = OrderedDict()
    for dataset_name, builder in dataset_builders.items():
        builder_token = stable_token(builder)
        _require_stable_tokens(
            [builder_token, learner_token] + [token for _, token in detector_tokens],
            out_path,
        )
        config = grid_config_hash(
            {
                "schema_version": 1,
                "kind": "prequential",
                "block": dataset_name,
                "stream_builder": builder_token,
                "learner_factory": learner_token,
                "detectors": detector_tokens,
                "n_instances": n_instances,
                "curve_window": curve_window,
                "detector_batch_size": batch_size,
            }
        )
        plans[dataset_name] = _GridPlan(
            config=config,
            block=dataset_name,
            detector_names=list(detector_factories),
            n_repetitions=n_repetitions,
            base_seed=base_seed,
            detector_factories=dict(detector_factories),
            task_template={
                "kind": "prequential",
                "config": config,
                "block": dataset_name,
                "stream_builder": builder,
                "learner_factory": learner_factory,
                "n_instances": n_instances,
                "curve_window": curve_window,
                "detector_batch_size": batch_size,
            },
        )
    _execute_plans(list(plans.values()), n_jobs, out_path)

    accuracies: Dict[str, Dict[str, float]] = {name: {} for name in detector_factories}
    for dataset_name, plan in plans.items():
        for detector_name in detector_factories:
            total_accuracy = 0.0
            for repetition in range(n_repetitions):
                total_accuracy += _prequential_result(
                    plan.record(detector_name, repetition)
                ).accuracy
            accuracies[detector_name][dataset_name] = total_accuracy / n_repetitions
    return accuracies
