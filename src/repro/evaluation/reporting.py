"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows the paper's tables report
(detector, delay, FP, precision, recall, F1 for Table 1; per-dataset accuracy
for Table 2).  Keeping the formatting in one place makes the benchmark
scripts short and the output uniform.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_detection_rows", "format_accuracy_table"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a list of rows as an aligned plain-text table.

    Ragged input is rendered deterministically: the column count is the
    longest of the header row and every data row, and shorter rows (or a
    shorter header row) are padded with empty cells — no cell is ever
    silently dropped and over-long rows no longer raise ``IndexError``.
    """
    rendered_rows: List[List[str]] = [[_render_cell(cell) for cell in row] for row in rows]
    rendered_headers = [str(header) for header in headers]
    n_columns = max(
        len(rendered_headers),
        max((len(row) for row in rendered_rows), default=0),
    )
    rendered_headers += [""] * (n_columns - len(rendered_headers))
    widths = [len(header) for header in rendered_headers]
    for row in rendered_rows:
        row += [""] * (n_columns - len(row))
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(
        " | ".join(header.ljust(width) for header, width in zip(rendered_headers, widths))
    )
    lines.append(separator)
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_detection_rows(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render Table-1-style rows (detector, delay, FP, P, R, F1)."""
    headers = ["Detector", "Delay", "FP", "Precision", "Recall", "F1"]
    formatted = []
    for row in rows:
        formatted.append(
            [
                row["detector"],
                float(row["delay"]),
                float(row["fp"]),
                f"{100.0 * float(row['precision']):.0f}%",
                f"{100.0 * float(row['recall']):.0f}%",
                f"{100.0 * float(row['f1']):.0f}%",
            ]
        )
    return format_table(headers, formatted, title=title)


def format_accuracy_table(
    accuracies: Mapping[str, Mapping[str, float]],
    dataset_order: Sequence[str],
    title: str = "",
) -> str:
    """Render Table-2-style rows (detector x dataset accuracy, in percent)."""
    headers = ["Detector", *dataset_order]
    rows = []
    for detector, per_dataset in accuracies.items():
        rows.append(
            [detector, *[f"{100.0 * per_dataset.get(d, float('nan')):.2f}" for d in dataset_order]]
        )
    return format_table(headers, rows, title=title)
