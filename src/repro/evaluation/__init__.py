"""Evaluation substrate: drift scoring, prequential loop, experiment runner.

* :mod:`repro.evaluation.drift_metrics` — TP/FP/FN matching, precision,
  recall, F1, and detection delay;
* :mod:`repro.evaluation.prequential` — test-then-train evaluation with
  drift-triggered learner resets;
* :mod:`repro.evaluation.experiment` — repeated, seeded runs with
  micro-averaged aggregation (the paper's 30-repetition protocol);
* :mod:`repro.evaluation.significance` — Wilcoxon signed-rank comparisons;
* :mod:`repro.evaluation.reporting` — plain-text tables for the benchmarks.
"""

from repro.evaluation.drift_metrics import (
    DriftEvaluation,
    DriftMatch,
    evaluate_detections,
    micro_average,
)
from repro.evaluation.experiment import (
    DetectorRunResult,
    DetectorSummary,
    ExperimentRunner,
    chunked_drift_indices,
    run_detector_on_values,
)
from repro.evaluation.prequential import PrequentialResult, run_prequential
from repro.evaluation.reporting import (
    format_accuracy_table,
    format_detection_rows,
    format_table,
)
from repro.evaluation.significance import (
    PairwiseComparison,
    compare_f1_scores,
    significance_matrix,
)

__all__ = [
    "DriftEvaluation",
    "DriftMatch",
    "evaluate_detections",
    "micro_average",
    "DetectorRunResult",
    "DetectorSummary",
    "ExperimentRunner",
    "chunked_drift_indices",
    "run_detector_on_values",
    "PrequentialResult",
    "run_prequential",
    "format_table",
    "format_detection_rows",
    "format_accuracy_table",
    "PairwiseComparison",
    "compare_f1_scores",
    "significance_matrix",
]
