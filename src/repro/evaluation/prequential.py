"""Prequential (test-then-train) evaluation with drift-triggered adaptation.

This is the evaluation loop of the paper's "Classification" experiments
(Table 2): each instance is first used to test the classifier (producing a 0/1
error that is fed to the drift detector) and then to train it.  Whenever the
detector flags a drift the classifier is reset, i.e. a new model is trained
from the latest data points — the *active* drift-adaptation strategy the
paper focuses on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.base import DriftDetector
from repro.exceptions import ConfigurationError
from repro.learners.base import Classifier
from repro.streams.base import InstanceStream

__all__ = ["PrequentialResult", "run_prequential"]


@dataclass
class PrequentialResult:
    """Outcome of one prequential run.

    Attributes
    ----------
    n_instances:
        Number of instances processed.
    n_correct:
        Number of correct (pre-training) predictions.
    detections:
        Instance indices at which the detector flagged a drift.
    warnings:
        Instance indices at which the detector entered the warning zone.
    accuracy_curve:
        Windowed accuracy values (one per ``curve_window`` instances).
    curve_window:
        Window size of the accuracy curve.
    """

    n_instances: int = 0
    n_correct: int = 0
    detections: List[int] = field(default_factory=list)
    warnings: List[int] = field(default_factory=list)
    accuracy_curve: List[float] = field(default_factory=list)
    curve_window: int = 1000

    @property
    def accuracy(self) -> float:
        """Overall prequential accuracy."""
        if self.n_instances == 0:
            return 0.0
        return self.n_correct / self.n_instances

    @property
    def n_detections(self) -> int:
        """Number of drifts flagged during the run."""
        return len(self.detections)


def run_prequential(
    stream: InstanceStream,
    learner: Classifier,
    detector: Optional[DriftDetector],
    n_instances: int,
    reset_on_drift: bool = True,
    curve_window: int = 1000,
    detector_batch_size: int = 1,
) -> PrequentialResult:
    """Run a prequential evaluation of ``learner`` over ``stream``.

    Parameters
    ----------
    stream:
        The labeled instance stream to evaluate on.
    learner:
        The incremental classifier (tested, then trained, on every instance).
    detector:
        The drift detector fed with the 0/1 error of each prediction; pass
        ``None`` for the "no drift detector" configuration.
    n_instances:
        Number of instances to process.
    reset_on_drift:
        Reset the learner whenever the detector flags a drift (the paper's
        adaptation strategy).
    curve_window:
        Granularity of the windowed accuracy curve recorded in the result.
    detector_batch_size:
        How many prediction errors to buffer before feeding the detector
        through its batched ``update_batch`` API.  ``1`` (the default)
        preserves the exact element-by-element semantics.  Larger chunks cut
        the detector overhead to the batched fast-path cost; the recorded
        drift/warning *indices* are unaffected by the chunking as long as the
        learner is not reset mid-chunk.  With ``reset_on_drift`` the learner
        reset is applied when the chunk containing the drift is flushed —
        up to ``detector_batch_size - 1`` instances later than in scalar
        mode — and the instances from the *last* detected drift onward are
        replayed into the fresh learner, so after a flush (even one whose
        chunk contained several drifts) the learner is in exactly the state
        scalar mode produces for the same detections: reset at the final
        drift, then trained on every instance from that drift on.
    """
    if n_instances < 1:
        raise ConfigurationError(f"n_instances must be >= 1, got {n_instances}")
    if curve_window < 1:
        raise ConfigurationError(f"curve_window must be >= 1, got {curve_window}")
    if detector_batch_size < 1:
        raise ConfigurationError(
            f"detector_batch_size must be >= 1, got {detector_batch_size}"
        )

    result = PrequentialResult(curve_window=curve_window)
    window_correct = 0
    window_count = 0
    error_buffer: List[float] = []
    instance_buffer: list = []
    buffer_start = 0
    chunked = detector is not None and detector_batch_size > 1

    def flush_errors() -> None:
        nonlocal buffer_start
        if not error_buffer:
            return
        outcome = detector.update_batch(error_buffer)
        result.warnings.extend(buffer_start + k for k in outcome.warning_indices)
        result.detections.extend(buffer_start + k for k in outcome.drift_indices)
        if outcome.drift_indices and reset_on_drift:
            # Scalar mode resets the learner at each drift *before* training
            # on the drift instance, so its state after the chunk is "fresh at
            # the last drift, then trained on everything from that instance
            # on".  Replaying that suffix reproduces the state exactly, no
            # matter how many drifts the chunk contained.
            learner.reset()
            for instance in instance_buffer[outcome.drift_indices[-1] :]:
                learner.learn_one(instance)
        buffer_start += len(error_buffer)
        error_buffer.clear()
        instance_buffer.clear()

    for index in range(n_instances):
        instance = stream.next_instance()
        prediction = learner.predict_one(instance)
        correct = prediction == instance.y
        error = 0.0 if correct else 1.0

        result.n_instances += 1
        result.n_correct += int(correct)
        window_correct += int(correct)
        window_count += 1
        if window_count == curve_window:
            result.accuracy_curve.append(window_correct / window_count)
            window_correct = 0
            window_count = 0

        if chunked:
            error_buffer.append(error)
            if reset_on_drift:
                instance_buffer.append(instance)
            learner.learn_one(instance)
            if len(error_buffer) >= detector_batch_size:
                flush_errors()
            continue

        if detector is not None:
            outcome = detector.update(error)
            if outcome.warning_detected:
                result.warnings.append(index)
            if outcome.drift_detected:
                result.detections.append(index)
                if reset_on_drift:
                    learner.reset()

        learner.learn_one(instance)

    if chunked:
        flush_errors()
    if window_count > 0:
        result.accuracy_curve.append(window_correct / window_count)
    return result
