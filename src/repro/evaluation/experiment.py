"""Experiment runner: repeated, seeded detector evaluations with aggregation.

The paper repeats every experiment 30 times and reports micro-averaged
precision/recall/F1 together with the average false-positive count and
detection delay.  :class:`ExperimentRunner` reproduces that protocol for
*value-stream* experiments (detectors consuming an error stream directly) and
for *prequential* experiments (detector + learner over a labeled stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.base import DriftDetector
from repro.evaluation.drift_metrics import (
    DriftEvaluation,
    evaluate_detections,
    micro_average,
)
from repro.evaluation.prequential import PrequentialResult, run_prequential
from repro.exceptions import ConfigurationError
from repro.learners.base import Classifier
from repro.streams.base import InstanceStream, ValueStream

__all__ = [
    "DetectorRunResult",
    "DetectorSummary",
    "ExperimentRunner",
    "run_detector_on_values",
]


@dataclass
class DetectorRunResult:
    """One repetition of a detector over one value stream.

    Attributes
    ----------
    detections:
        Element indices at which a drift was flagged.
    evaluation:
        The matched TP/FP/FN evaluation of those detections.
    """

    detections: List[int]
    evaluation: DriftEvaluation


@dataclass
class DetectorSummary:
    """Aggregated (micro-averaged) outcome of one detector over all repetitions.

    Attributes
    ----------
    detector_name:
        Display name of the detector.
    runs:
        Per-repetition results.
    aggregate:
        Micro-averaged evaluation over all repetitions.
    """

    detector_name: str
    runs: List[DetectorRunResult] = field(default_factory=list)

    @property
    def aggregate(self) -> DriftEvaluation:
        """Micro-average of every repetition."""
        return micro_average([run.evaluation for run in self.runs])

    @property
    def mean_false_positives(self) -> float:
        """Average number of false positives per repetition."""
        if not self.runs:
            return 0.0
        return sum(run.evaluation.false_positives for run in self.runs) / len(self.runs)

    @property
    def per_run_f1(self) -> List[float]:
        """F1-score of each repetition (used by the significance analysis)."""
        return [run.evaluation.f1_score for run in self.runs]

    def as_row(self) -> Dict[str, float]:
        """Summary row matching the columns of Table 1."""
        aggregate = self.aggregate
        return {
            "detector": self.detector_name,
            "delay": aggregate.mean_delay,
            "fp": self.mean_false_positives,
            "precision": aggregate.precision,
            "recall": aggregate.recall,
            "f1": aggregate.f1_score,
        }


def run_detector_on_values(
    detector: DriftDetector,
    stream: ValueStream,
    max_delay: Optional[int] = None,
) -> DetectorRunResult:
    """Feed a value stream to a detector and score the detections."""
    detections = detector.update_many(stream.values)
    evaluation = evaluate_detections(
        drift_positions=stream.drift_positions,
        detections=detections,
        stream_length=len(stream),
        max_delay=max_delay,
    )
    return DetectorRunResult(detections=detections, evaluation=evaluation)


class ExperimentRunner:
    """Repeat detector evaluations over freshly generated streams.

    Parameters
    ----------
    n_repetitions:
        Number of repetitions per detector (the paper uses 30).
    base_seed:
        Base seed; repetition ``i`` uses ``base_seed + i``.
    max_delay:
        Optional cap on the drift acceptance window when scoring.
    """

    def __init__(
        self,
        n_repetitions: int = 30,
        base_seed: int = 1,
        max_delay: Optional[int] = None,
    ) -> None:
        if n_repetitions < 1:
            raise ConfigurationError(
                f"n_repetitions must be >= 1, got {n_repetitions}"
            )
        self._n_repetitions = n_repetitions
        self._base_seed = base_seed
        self._max_delay = max_delay

    @property
    def n_repetitions(self) -> int:
        """Number of repetitions per detector."""
        return self._n_repetitions

    # ------------------------------------------------------- value streams

    def run_value_experiment(
        self,
        detector_factories: Dict[str, Callable[[], DriftDetector]],
        stream_factory: Callable[[int], ValueStream],
    ) -> Dict[str, DetectorSummary]:
        """Evaluate every detector over ``n_repetitions`` generated streams.

        Parameters
        ----------
        detector_factories:
            Mapping from display name to a zero-argument factory building a
            fresh detector instance.
        stream_factory:
            Callable mapping a seed to a :class:`ValueStream`; every
            repetition uses a different seed, and every detector sees the
            same streams (paired comparison).
        """
        summaries = {
            name: DetectorSummary(detector_name=name) for name in detector_factories
        }
        for repetition in range(self._n_repetitions):
            seed = self._base_seed + repetition
            stream = stream_factory(seed)
            for name, factory in detector_factories.items():
                detector = factory()
                run = run_detector_on_values(detector, stream, self._max_delay)
                summaries[name].runs.append(run)
        return summaries

    # -------------------------------------------------------- prequential

    def run_prequential_experiment(
        self,
        detector_factories: Dict[str, Optional[Callable[[], DriftDetector]]],
        stream_factory: Callable[[int], InstanceStream],
        learner_factory: Callable[[InstanceStream], Classifier],
        n_instances: int,
        drift_positions: Sequence[int] = (),
    ) -> Dict[str, List[PrequentialResult]]:
        """Run the prequential loop for every detector over every repetition.

        Returns the raw per-repetition :class:`PrequentialResult` lists; use
        :meth:`score_prequential` to turn them into Table-1-style summaries
        when ground-truth drift positions are known.
        """
        results: Dict[str, List[PrequentialResult]] = {
            name: [] for name in detector_factories
        }
        for repetition in range(self._n_repetitions):
            seed = self._base_seed + repetition
            for name, factory in detector_factories.items():
                stream = stream_factory(seed)
                learner = learner_factory(stream)
                detector = factory() if factory is not None else None
                result = run_prequential(
                    stream=stream,
                    learner=learner,
                    detector=detector,
                    n_instances=n_instances,
                )
                results[name].append(result)
        return results

    def score_prequential(
        self,
        results: Dict[str, List[PrequentialResult]],
        drift_positions: Sequence[int],
        n_instances: int,
    ) -> Dict[str, DetectorSummary]:
        """Score prequential detections against known drift positions."""
        summaries: Dict[str, DetectorSummary] = {}
        for name, runs in results.items():
            summary = DetectorSummary(detector_name=name)
            for run in runs:
                evaluation = evaluate_detections(
                    drift_positions=drift_positions,
                    detections=run.detections,
                    stream_length=n_instances,
                    max_delay=self._max_delay,
                )
                summary.runs.append(
                    DetectorRunResult(detections=run.detections, evaluation=evaluation)
                )
            summaries[name] = summary
        return summaries
