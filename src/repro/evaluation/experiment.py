"""Experiment runner: repeated, seeded detector evaluations with aggregation.

The paper repeats every experiment 30 times and reports micro-averaged
precision/recall/F1 together with the average false-positive count and
detection delay.  :class:`ExperimentRunner` reproduces that protocol for
*value-stream* experiments (detectors consuming an error stream directly) and
for *prequential* experiments (detector + learner over a labeled stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.base import DriftDetector, as_value_array
from repro.evaluation.drift_metrics import (
    DriftEvaluation,
    evaluate_detections,
    micro_average,
)
from repro.evaluation.prequential import PrequentialResult
from repro.exceptions import ConfigurationError
from repro.learners.base import Classifier
from repro.streams.base import InstanceStream, ValueStream

__all__ = [
    "DetectorRunResult",
    "DetectorSummary",
    "ExperimentRunner",
    "chunked_drift_indices",
    "run_detector_on_values",
]


@dataclass
class DetectorRunResult:
    """One repetition of a detector over one value stream.

    Attributes
    ----------
    detections:
        Element indices at which a drift was flagged.
    evaluation:
        The matched TP/FP/FN evaluation of those detections.
    """

    detections: List[int]
    evaluation: DriftEvaluation


@dataclass
class DetectorSummary:
    """Aggregated (micro-averaged) outcome of one detector over all repetitions.

    Attributes
    ----------
    detector_name:
        Display name of the detector.
    runs:
        Per-repetition results.
    aggregate:
        Micro-averaged evaluation over all repetitions.
    """

    detector_name: str
    runs: List[DetectorRunResult] = field(default_factory=list)

    @property
    def aggregate(self) -> DriftEvaluation:
        """Micro-average of every repetition."""
        return micro_average([run.evaluation for run in self.runs])

    @property
    def mean_false_positives(self) -> float:
        """Average number of false positives per repetition."""
        if not self.runs:
            return 0.0
        return sum(run.evaluation.false_positives for run in self.runs) / len(self.runs)

    @property
    def per_run_f1(self) -> List[float]:
        """F1-score of each repetition (used by the significance analysis)."""
        return [run.evaluation.f1_score for run in self.runs]

    def as_row(self) -> Dict[str, float]:
        """Summary row matching the columns of Table 1."""
        aggregate = self.aggregate
        return {
            "detector": self.detector_name,
            "delay": aggregate.mean_delay,
            "fp": self.mean_false_positives,
            "precision": aggregate.precision,
            "recall": aggregate.recall,
            "f1": aggregate.f1_score,
        }


def chunked_drift_indices(
    detector: DriftDetector,
    values: Iterable[float],
    detector_batch_size: Optional[int] = None,
) -> List[int]:
    """Feed ``values`` to ``detector`` and return absolute drift indices.

    ``detector_batch_size`` selects the execution mode; every mode reports
    bit-identical drift indices (the batched fast paths are observationally
    equivalent to the scalar loop by contract):

    * ``None`` — one :meth:`~repro.core.base.DriftDetector.update_batch` call
      over the whole stream (fastest, the default);
    * ``1`` — the literal element-by-element scalar loop, kept as the golden
      reference path for equivalence tests and benchmarks;
    * ``k > 1`` — chunks of ``k`` values through ``update_batch``, the mode
      used when values arrive incrementally.
    """
    if detector_batch_size is not None and detector_batch_size < 1:
        raise ConfigurationError(
            f"detector_batch_size must be None or >= 1, got {detector_batch_size}"
        )
    array = as_value_array(values)
    if detector_batch_size == 1:
        return [
            index for index, value in enumerate(array) if detector.update(value).drift_detected
        ]
    if detector_batch_size is None or detector_batch_size >= array.shape[0]:
        return list(detector.update_batch(array).drift_indices)
    detections: List[int] = []
    for start in range(0, array.shape[0], detector_batch_size):
        outcome = detector.update_batch(array[start : start + detector_batch_size])
        detections.extend(start + index for index in outcome.drift_indices)
    return detections


def run_detector_on_values(
    detector: DriftDetector,
    stream: ValueStream,
    max_delay: Optional[int] = None,
    detector_batch_size: Optional[int] = None,
) -> DetectorRunResult:
    """Feed a value stream to a detector and score the detections.

    The stream is routed through the detector's batched ``update_batch`` API
    (see :func:`chunked_drift_indices` for the ``detector_batch_size``
    semantics); the reported detections are bit-identical across modes.
    """
    detections = chunked_drift_indices(detector, stream.values, detector_batch_size)
    evaluation = evaluate_detections(
        drift_positions=stream.drift_positions,
        detections=detections,
        stream_length=len(stream),
        max_delay=max_delay,
    )
    return DetectorRunResult(detections=detections, evaluation=evaluation)


class ExperimentRunner:
    """Repeat detector evaluations over freshly generated streams.

    The repetition grid is decomposed into independent, deterministically
    seeded cells and executed by
    :mod:`repro.experiments.orchestrator`: one stream materialization per
    repetition is shared by every detector, ``n_jobs`` fans the repetitions
    out over a process pool, and ``out_path`` persists per-cell results for
    resumable grids.  ``n_jobs=1`` without ``out_path`` runs fully inline and
    is bit-identical to the historical sequential loop.

    Parameters
    ----------
    n_repetitions:
        Number of repetitions per detector (the paper uses 30).
    base_seed:
        Base seed; repetition ``i`` uses ``base_seed + i``.
    max_delay:
        Optional cap on the drift acceptance window when scoring.
    n_jobs:
        Number of worker processes (1 = run inline).  Parallel runs require
        the stream/detector factories to be picklable (module-level callables,
        ``functools.partial`` of importable classes, or dataclass instances —
        everything in :mod:`repro.experiments` qualifies).
    detector_batch_size:
        Chunk size for the detectors' batched ``update_batch`` feed; ``None``
        feeds whole streams in one batch, ``1`` forces the scalar reference
        loop.  Value-stream detections are bit-identical across settings; in
        prequential experiments the learner reset lands at the chunk flush
        (see :func:`repro.evaluation.prequential.run_prequential`).
    """

    def __init__(
        self,
        n_repetitions: int = 30,
        base_seed: int = 1,
        max_delay: Optional[int] = None,
        n_jobs: int = 1,
        detector_batch_size: Optional[int] = None,
    ) -> None:
        if n_repetitions < 1:
            raise ConfigurationError(
                f"n_repetitions must be >= 1, got {n_repetitions}"
            )
        if n_jobs < 1:
            raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
        if detector_batch_size is not None and detector_batch_size < 1:
            raise ConfigurationError(
                f"detector_batch_size must be None or >= 1, got {detector_batch_size}"
            )
        self._n_repetitions = n_repetitions
        self._base_seed = base_seed
        self._max_delay = max_delay
        self._n_jobs = n_jobs
        self._detector_batch_size = detector_batch_size

    @property
    def n_repetitions(self) -> int:
        """Number of repetitions per detector."""
        return self._n_repetitions

    @property
    def n_jobs(self) -> int:
        """Number of worker processes used to execute the grid."""
        return self._n_jobs

    # ------------------------------------------------------- value streams

    def run_value_experiment(
        self,
        detector_factories: Dict[str, Callable[[], DriftDetector]],
        stream_factory: Callable[[int], ValueStream],
        out_path: Optional[str] = None,
        block: str = "value-experiment",
    ) -> Dict[str, DetectorSummary]:
        """Evaluate every detector over ``n_repetitions`` generated streams.

        Parameters
        ----------
        detector_factories:
            Mapping from display name to a zero-argument factory building a
            fresh detector instance.
        stream_factory:
            Callable mapping a seed to a :class:`ValueStream`; every
            repetition uses a different seed, and every detector sees the
            same streams (paired comparison).
        out_path:
            Optional JSON-lines file persisting per-cell results; re-running
            with the same configuration resumes instead of recomputing.
        block:
            Display/persistence name of this experiment block.
        """
        # Deferred: the orchestrator sits in the experiments layer above this
        # one and imports back into repro.evaluation; importing it lazily
        # keeps the module graph acyclic at import time while this runner
        # remains the stable public entry point.
        from repro.experiments.orchestrator import run_value_grid

        return run_value_grid(
            stream_factory=stream_factory,
            detector_factories=detector_factories,
            n_repetitions=self._n_repetitions,
            base_seed=self._base_seed,
            n_jobs=self._n_jobs,
            detector_batch_size=self._detector_batch_size,
            max_delay=self._max_delay,
            out_path=out_path,
            block=block,
        )

    # -------------------------------------------------------- prequential

    def run_prequential_experiment(
        self,
        detector_factories: Dict[str, Optional[Callable[[], DriftDetector]]],
        stream_factory: Callable[[int], InstanceStream],
        learner_factory: Callable[[InstanceStream], Classifier],
        n_instances: int,
        drift_positions: Sequence[int] = (),
        out_path: Optional[str] = None,
        block: str = "prequential-experiment",
    ) -> Dict[str, List[PrequentialResult]]:
        """Run the prequential loop for every detector over every repetition.

        Returns the raw per-repetition :class:`PrequentialResult` lists; use
        :meth:`score_prequential` to turn them into Table-1-style summaries
        when ground-truth drift positions are known.
        """
        # Deferred for the same layering reason as run_value_experiment.
        from repro.experiments.orchestrator import run_prequential_grid

        return run_prequential_grid(
            stream_builder=stream_factory,
            detector_factories=detector_factories,
            learner_factory=learner_factory,
            n_instances=n_instances,
            n_repetitions=self._n_repetitions,
            base_seed=self._base_seed,
            n_jobs=self._n_jobs,
            detector_batch_size=self._detector_batch_size,
            out_path=out_path,
            block=block,
        )

    def score_prequential(
        self,
        results: Dict[str, List[PrequentialResult]],
        drift_positions: Sequence[int],
        n_instances: int,
    ) -> Dict[str, DetectorSummary]:
        """Score prequential detections against known drift positions."""
        summaries: Dict[str, DetectorSummary] = {}
        for name, runs in results.items():
            summary = DetectorSummary(detector_name=name)
            for run in runs:
                evaluation = evaluate_detections(
                    drift_positions=drift_positions,
                    detections=run.detections,
                    stream_length=n_instances,
                    max_delay=self._max_delay,
                )
                summary.runs.append(
                    DetectorRunResult(detections=run.detections, evaluation=evaluation)
                )
            summaries[name] = summary
        return summaries
