"""Statistical-significance comparison between detectors (Section 4.1).

The paper compares the F1-scores of every OPTWIN configuration against the
regression-capable baselines (ADWIN and STEPD) with a one-tailed Wilcoxon
signed-rank test at ``alpha = 0.05``.  :func:`compare_f1_scores` reproduces
that comparison for any pair of detectors, and :func:`significance_matrix`
builds the full pairwise picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.exceptions import ConfigurationError
from repro.stats.wilcoxon import WilcoxonResult, wilcoxon_signed_rank

__all__ = ["PairwiseComparison", "compare_f1_scores", "significance_matrix"]


@dataclass(frozen=True)
class PairwiseComparison:
    """Result of testing "detector A outperforms detector B".

    Attributes
    ----------
    detector_a, detector_b:
        Display names of the compared detectors.
    result:
        Underlying Wilcoxon signed-rank outcome.
    """

    detector_a: str
    detector_b: str
    result: WilcoxonResult

    @property
    def a_better(self) -> bool:
        """Whether A's advantage over B is statistically significant."""
        return self.result.significant


def compare_f1_scores(
    name_a: str,
    scores_a: Sequence[float],
    name_b: str,
    scores_b: Sequence[float],
    alpha: float = 0.05,
) -> PairwiseComparison:
    """One-tailed Wilcoxon test of "A's per-run F1 exceeds B's"."""
    if len(scores_a) != len(scores_b):
        raise ConfigurationError("paired score lists must have the same length")
    result = wilcoxon_signed_rank(scores_a, scores_b, alpha=alpha)
    return PairwiseComparison(detector_a=name_a, detector_b=name_b, result=result)


def significance_matrix(
    per_detector_scores: Dict[str, Sequence[float]],
    alpha: float = 0.05,
) -> List[PairwiseComparison]:
    """All ordered pairwise comparisons between the given detectors."""
    comparisons: List[PairwiseComparison] = []
    names = list(per_detector_scores)
    for name_a in names:
        for name_b in names:
            if name_a == name_b:
                continue
            comparisons.append(
                compare_f1_scores(
                    name_a,
                    per_detector_scores[name_a],
                    name_b,
                    per_detector_scores[name_b],
                    alpha=alpha,
                )
            )
    return comparisons
