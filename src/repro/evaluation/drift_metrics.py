"""Scoring of drift detections against ground-truth drift positions.

Following the evaluation protocol of the OPTWIN paper (Section 4.1), each
known concept drift opens an *acceptance window* that lasts until the next
drift (or the end of the stream).  The first detection inside a drift's
acceptance window is a true positive whose delay is the number of stream
elements between the drift and the detection; every other detection is a
false positive; drifts with no detection in their window are false negatives.

From the matched counts the module computes precision, recall, F1-score, and
the mean detection delay, plus micro-averaged aggregation across repetitions
(the paper repeats every experiment 30 times and micro-averages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

__all__ = ["DriftMatch", "DriftEvaluation", "evaluate_detections", "micro_average"]


@dataclass(frozen=True)
class DriftMatch:
    """Pairing of one true drift with its (optional) detection.

    Attributes
    ----------
    drift_position:
        Ground-truth position of the drift.
    detection_position:
        Position of the matching detection, or ``None`` for a miss.
    delay:
        ``detection_position - drift_position`` (``None`` for a miss).
    """

    drift_position: int
    detection_position: Optional[int]
    delay: Optional[int]

    @property
    def detected(self) -> bool:
        """Whether the drift was detected inside its acceptance window."""
        return self.detection_position is not None


@dataclass
class DriftEvaluation:
    """Aggregated outcome of scoring one (or several merged) detector run(s).

    Attributes
    ----------
    true_positives, false_positives, false_negatives:
        Matched counts.
    delays:
        Detection delays of the true positives.
    matches:
        Per-drift matching detail (empty for micro-averaged aggregates).
    """

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    delays: List[int] = field(default_factory=list)
    matches: List[DriftMatch] = field(default_factory=list)

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when there were no detections at all."""
        denominator = self.true_positives + self.false_positives
        if denominator == 0:
            return 1.0 if self.false_negatives == 0 else 0.0
        return self.true_positives / denominator

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there were no drifts to find."""
        denominator = self.true_positives + self.false_negatives
        if denominator == 0:
            return 1.0
        return self.true_positives / denominator

    @property
    def f1_score(self) -> float:
        """Harmonic mean of precision and recall."""
        precision = self.precision
        recall = self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    @property
    def mean_delay(self) -> float:
        """Mean detection delay over the true positives (0.0 if none)."""
        if not self.delays:
            return 0.0
        return sum(self.delays) / len(self.delays)

    def merge(self, other: "DriftEvaluation") -> "DriftEvaluation":
        """Return a new evaluation with the counts of both (micro-average)."""
        return DriftEvaluation(
            true_positives=self.true_positives + other.true_positives,
            false_positives=self.false_positives + other.false_positives,
            false_negatives=self.false_negatives + other.false_negatives,
            delays=self.delays + other.delays,
            matches=self.matches + other.matches,
        )

    def as_dict(self) -> dict:
        """Plain-dict summary used by the reporting helpers."""
        return {
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1_score,
            "mean_delay": self.mean_delay,
        }


def evaluate_detections(
    drift_positions: Sequence[int],
    detections: Sequence[int],
    stream_length: int,
    max_delay: Optional[int] = None,
) -> DriftEvaluation:
    """Match detections against ground-truth drifts.

    Parameters
    ----------
    drift_positions:
        Ground-truth drift positions (ascending).
    detections:
        Positions at which the detector flagged a drift (ascending).
    stream_length:
        Total number of stream elements (bounds the last acceptance window).
    max_delay:
        Optional cap on the acceptance window; by default a drift can be
        matched by any detection before the *next* drift.
    """
    drifts = sorted(int(p) for p in drift_positions)
    flagged = sorted(int(p) for p in detections)
    if any(p < 0 or p > stream_length for p in drifts):
        raise ConfigurationError("drift positions must lie within the stream")

    windows: List[Tuple[int, int]] = []
    for index, position in enumerate(drifts):
        end = drifts[index + 1] if index + 1 < len(drifts) else stream_length
        if max_delay is not None:
            end = min(end, position + max_delay)
        windows.append((position, end))

    # Single-pass two-pointer match: windows are ascending and disjoint
    # (each ends no later than the next drift starts), so a detection that
    # falls before the current window can never match a later one — advance
    # past it and never look back.  Equivalent to rescanning the full
    # detection list per window (the randomized cross-check test pins this),
    # but O(drifts + detections) instead of O(drifts x detections).
    matches: List[DriftMatch] = []
    cursor = 0
    n_flagged = len(flagged)
    for position, end in windows:
        while cursor < n_flagged and flagged[cursor] < position:
            cursor += 1
        if cursor < n_flagged and flagged[cursor] < end:
            matched = flagged[cursor]
            matches.append(DriftMatch(position, matched, matched - position))
            cursor += 1
        else:
            matches.append(DriftMatch(position, None, None))

    true_positives = sum(1 for match in matches if match.detected)
    false_negatives = len(matches) - true_positives
    false_positives = len(flagged) - true_positives
    delays = [match.delay for match in matches if match.delay is not None]

    return DriftEvaluation(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
        delays=delays,
        matches=matches,
    )


def micro_average(evaluations: Sequence[DriftEvaluation]) -> DriftEvaluation:
    """Micro-average several runs by summing their TP/FP/FN counts."""
    total = DriftEvaluation()
    for evaluation in evaluations:
        total = total.merge(evaluation)
    return total
