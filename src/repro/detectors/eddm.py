"""EDDM — Early Drift Detection Method (Baena-García et al. 2006).

EDDM monitors the *distance between consecutive errors* rather than the error
rate itself: as a classifier improves, errors become rarer and the average
distance between them grows.  EDDM tracks the running mean ``p'`` and standard
deviation ``s'`` of that distance, remembers the maximum of ``p' + 2 s'``, and
flags:

* a *warning* when ``(p' + 2 s') / (p'_max + 2 s'_max) < alpha``,
* a *drift*  when ``(p' + 2 s') / (p'_max + 2 s'_max) < beta``,

after at least ``min_num_errors`` errors have been observed.  Defaults
(``alpha = 0.95``, ``beta = 0.9``, 30 errors) follow the original paper and
the MOA implementation.
"""

from __future__ import annotations

import math

from repro.core.base import DetectionResult, DriftDetector, DriftType
from repro.exceptions import ConfigurationError

__all__ = ["Eddm"]


class Eddm(DriftDetector):
    """Early Drift Detection Method for binary error streams.

    Parameters
    ----------
    alpha:
        Warning threshold on the normalised distance statistic.
    beta:
        Drift threshold on the normalised distance statistic (must be smaller
        than ``alpha``).
    min_num_errors:
        Number of observed errors before warnings/drifts can be flagged.
    min_num_instances:
        Number of observed instances before warnings/drifts can be flagged.
    """

    def __init__(
        self,
        alpha: float = 0.95,
        beta: float = 0.9,
        min_num_errors: int = 30,
        min_num_instances: int = 30,
    ) -> None:
        super().__init__()
        if not 0.0 < beta < alpha < 1.0:
            raise ConfigurationError(
                f"need 0 < beta < alpha < 1, got alpha={alpha}, beta={beta}"
            )
        if min_num_errors < 1 or min_num_instances < 1:
            raise ConfigurationError("minimum counts must be >= 1")
        self._alpha = alpha
        self._beta = beta
        self._min_num_errors = min_num_errors
        self._min_num_instances = min_num_instances
        self._init_state()

    def _init_state(self) -> None:
        self._n = 0
        self._n_errors = 0
        self._last_error_index = 0
        self._distance_mean = 0.0
        self._distance_m2 = 0.0
        self._max_level = 0.0

    # ----------------------------------------------------------- properties

    @property
    def n_errors(self) -> int:
        """Number of errors observed since the last reset."""
        return self._n_errors

    @property
    def mean_distance(self) -> float:
        """Running mean of the distance between consecutive errors."""
        return self._distance_mean

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        error = value > 0.5
        self._n += 1

        statistics = {"n": float(self._n), "n_errors": float(self._n_errors)}
        if not error:
            return DetectionResult(statistics=statistics)

        distance = float(self._n - self._last_error_index)
        self._last_error_index = self._n
        self._n_errors += 1

        delta = distance - self._distance_mean
        self._distance_mean += delta / self._n_errors
        self._distance_m2 += delta * (distance - self._distance_mean)
        variance = (
            self._distance_m2 / (self._n_errors - 1) if self._n_errors > 1 else 0.0
        )
        std = math.sqrt(max(variance, 0.0))
        level = self._distance_mean + 2.0 * std

        statistics.update(
            {
                "distance": distance,
                "mean_distance": self._distance_mean,
                "std_distance": std,
                "level": level,
                "max_level": self._max_level,
            }
        )

        if self._n < self._min_num_instances or self._n_errors < self._min_num_errors:
            if level > self._max_level:
                self._max_level = level
            return DetectionResult(statistics=statistics)

        if level > self._max_level:
            self._max_level = level
            return DetectionResult(statistics=statistics)

        ratio = level / self._max_level if self._max_level > 0 else 1.0
        statistics["ratio"] = ratio

        if ratio < self._beta:
            self._init_state()
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        if ratio < self._alpha:
            return DetectionResult(warning_detected=True, statistics=statistics)
        return DetectionResult(statistics=statistics)

    def reset(self) -> None:
        """Forget all statistics."""
        self._init_state()
        self._reset_counters()
