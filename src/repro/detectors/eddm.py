"""EDDM — Early Drift Detection Method (Baena-García et al. 2006).

EDDM monitors the *distance between consecutive errors* rather than the error
rate itself: as a classifier improves, errors become rarer and the average
distance between them grows.  EDDM tracks the running mean ``p'`` and standard
deviation ``s'`` of that distance, remembers the maximum of ``p' + 2 s'``, and
flags:

* a *warning* when ``(p' + 2 s') / (p'_max + 2 s'_max) < alpha``,
* a *drift*  when ``(p' + 2 s') / (p'_max + 2 s'_max) < beta``,

after at least ``min_num_errors`` errors have been observed.  Defaults
(``alpha = 0.95``, ``beta = 0.9``, 30 errors) follow the original paper and
the MOA implementation.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.core.base import (
    BatchResult,
    DetectionResult,
    DriftDetector,
    DriftType,
    as_value_array,
)
from repro.exceptions import ConfigurationError

__all__ = ["Eddm"]


class Eddm(DriftDetector):
    """Early Drift Detection Method for binary error streams.

    Parameters
    ----------
    alpha:
        Warning threshold on the normalised distance statistic.
    beta:
        Drift threshold on the normalised distance statistic (must be smaller
        than ``alpha``).
    min_num_errors:
        Number of observed errors before warnings/drifts can be flagged.
    min_num_instances:
        Number of observed instances before warnings/drifts can be flagged.
    """

    def __init__(
        self,
        alpha: float = 0.95,
        beta: float = 0.9,
        min_num_errors: int = 30,
        min_num_instances: int = 30,
    ) -> None:
        super().__init__()
        if not 0.0 < beta < alpha < 1.0:
            raise ConfigurationError(
                f"need 0 < beta < alpha < 1, got alpha={alpha}, beta={beta}"
            )
        if min_num_errors < 1 or min_num_instances < 1:
            raise ConfigurationError("minimum counts must be >= 1")
        self._alpha = alpha
        self._beta = beta
        self._min_num_errors = min_num_errors
        self._min_num_instances = min_num_instances
        self._init_state()

    def _init_state(self) -> None:
        self._n = 0
        self._n_errors = 0
        self._last_error_index = 0
        self._distance_mean = 0.0
        self._distance_m2 = 0.0
        self._max_level = 0.0

    # ----------------------------------------------------------- properties

    @property
    def n_errors(self) -> int:
        """Number of errors observed since the last reset."""
        return self._n_errors

    @property
    def mean_distance(self) -> float:
        """Running mean of the distance between consecutive errors."""
        return self._distance_mean

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        error = value > 0.5
        self._n += 1

        statistics = {"n": float(self._n), "n_errors": float(self._n_errors)}
        if not error:
            return DetectionResult(statistics=statistics)

        distance = float(self._n - self._last_error_index)
        self._last_error_index = self._n
        self._n_errors += 1

        delta = distance - self._distance_mean
        self._distance_mean += delta / self._n_errors
        self._distance_m2 += delta * (distance - self._distance_mean)
        variance = (
            self._distance_m2 / (self._n_errors - 1) if self._n_errors > 1 else 0.0
        )
        std = math.sqrt(max(variance, 0.0))
        level = self._distance_mean + 2.0 * std

        statistics.update(
            {
                "distance": distance,
                "mean_distance": self._distance_mean,
                "std_distance": std,
                "level": level,
                "max_level": self._max_level,
            }
        )

        if self._n < self._min_num_instances or self._n_errors < self._min_num_errors:
            if level > self._max_level:
                self._max_level = level
            return DetectionResult(statistics=statistics)

        if level > self._max_level:
            self._max_level = level
            return DetectionResult(statistics=statistics)

        ratio = level / self._max_level if self._max_level > 0 else 1.0
        statistics["ratio"] = ratio

        if ratio < self._beta:
            self._init_state()
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        if ratio < self._alpha:
            return DetectionResult(warning_detected=True, statistics=statistics)
        return DetectionResult(statistics=statistics)

    # ------------------------------------------------------- batched updates

    def update_batch(
        self, values: Iterable[float], collect_stats: bool = False
    ) -> BatchResult:
        """Batched update, bit-identical to the scalar loop.

        EDDM's state only changes at *error* elements, so the batch extracts
        the error positions with one vectorised comparison (the cumulative
        error count in numpy form) and runs the Welford distance recurrence —
        which is inherently sequential, like ECDD's EWMA — in a tight
        local-variable loop over just those positions.  Correct predictions,
        typically the large majority of a stream, cost one vectorised
        comparison instead of a ``DetectionResult`` allocation each.
        """
        if collect_stats or type(self)._update_one is not Eddm._update_one:
            return super().update_batch(values, collect_stats=collect_stats)
        arr = as_value_array(values)
        n = arr.shape[0]
        if n == 0:
            return BatchResult(0)
        error_positions = np.flatnonzero(arr > 0.5).tolist()
        drift_indices: List[int] = []
        warning_indices: List[int] = []

        alpha = self._alpha
        beta = self._beta
        min_instances = self._min_num_instances
        min_errors = self._min_num_errors
        sqrt = math.sqrt

        # ``n_offset`` maps chunk positions to the scalar instance counter:
        # scalar ``self._n`` after element ``pos`` equals ``n_offset + pos + 1``
        # (a drift zeroes the counter, i.e. rebases the offset).
        n_offset = self._n
        n_errors = self._n_errors
        last_error = self._last_error_index
        mean = self._distance_mean
        m2 = self._distance_m2
        max_level = self._max_level

        for pos in error_positions:
            n_now = n_offset + pos + 1
            distance = float(n_now - last_error)
            last_error = n_now
            n_errors += 1
            delta = distance - mean
            mean += delta / n_errors
            m2 += delta * (distance - mean)
            variance = m2 / (n_errors - 1) if n_errors > 1 else 0.0
            std = sqrt(max(variance, 0.0))
            level = mean + 2.0 * std
            if n_now < min_instances or n_errors < min_errors:
                if level > max_level:
                    max_level = level
                continue
            if level > max_level:
                max_level = level
                continue
            ratio = level / max_level if max_level > 0 else 1.0
            if ratio < beta:
                drift_indices.append(pos)
                warning_indices.append(pos)
                n_offset = -(pos + 1)
                n_errors = 0
                last_error = 0
                mean = 0.0
                m2 = 0.0
                max_level = 0.0
            elif ratio < alpha:
                warning_indices.append(pos)

        self._n = n_offset + n
        self._n_errors = n_errors
        self._last_error_index = last_error
        self._distance_mean = mean
        self._distance_m2 = m2
        self._max_level = max_level
        return self._finish_batch(
            n, drift_indices, warning_indices, DriftType.MEAN
        )

    def reset(self) -> None:
        """Forget all statistics."""
        self._init_state()
        self._reset_counters()

    # ---------------------------------------------------- snapshot / restore

    def _config_dict(self) -> dict:
        return {
            "alpha": self._alpha,
            "beta": self._beta,
            "min_num_errors": self._min_num_errors,
            "min_num_instances": self._min_num_instances,
        }

    def _state_dict(self) -> dict:
        return {
            "n": self._n,
            "n_errors": self._n_errors,
            "last_error_index": self._last_error_index,
            "distance_mean": self._distance_mean,
            "distance_m2": self._distance_m2,
            "max_level": self._max_level,
        }

    def _load_state(self, state: dict) -> None:
        self._n = int(state["n"])
        self._n_errors = int(state["n_errors"])
        self._last_error_index = int(state["last_error_index"])
        self._distance_mean = float(state["distance_mean"])
        self._distance_m2 = float(state["distance_m2"])
        self._max_level = float(state["max_level"])
