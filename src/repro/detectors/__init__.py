"""Baseline concept-drift detectors used in the OPTWIN evaluation.

The paper compares OPTWIN against ADWIN, DDM, EDDM, STEPD, and ECDD (all
re-implemented here from their original papers); :class:`PageHinkley` and
:class:`Kswin` are extra baselines commonly found alongside them, and
:class:`NoDriftDetector` is the "no detector" row of Table 2.

Every class implements :class:`repro.core.base.DriftDetector`, so they are
drop-in interchangeable with :class:`repro.core.optwin.Optwin`.
"""

from typing import Callable, Dict, Tuple, Type

from repro.core.base import DriftDetector
from repro.core.optwin import Optwin
from repro.detectors.adwin import Adwin
from repro.detectors.ddm import Ddm
from repro.detectors.ecdd import Ecdd
from repro.detectors.eddm import Eddm
from repro.detectors.hddm import HddmA
from repro.detectors.kswin import Kswin
from repro.detectors.no_detector import NoDriftDetector
from repro.detectors.page_hinkley import PageHinkley
from repro.detectors.rddm import Rddm
from repro.detectors.stepd import Stepd

__all__ = [
    "Adwin",
    "Ddm",
    "Eddm",
    "Stepd",
    "Ecdd",
    "PageHinkley",
    "Kswin",
    "Rddm",
    "HddmA",
    "NoDriftDetector",
    "Optwin",
    "detector_factories",
    "binary_only_detectors",
    "exported_detector_classes",
]


def exported_detector_classes() -> Tuple[Type[DriftDetector], ...]:
    """Every exported detector class — the paper line-up plus the extensions.

    This is the registry used by the cross-detector test suites (golden
    batch-vs-scalar equivalence, chunked-prequential smoke) so that a newly
    added detector is automatically picked up by them; keep it in sync with
    ``__all__``.
    """
    return (
        Adwin,
        Ddm,
        Eddm,
        Stepd,
        Ecdd,
        PageHinkley,
        Kswin,
        Rddm,
        HddmA,
        NoDriftDetector,
        Optwin,
    )


def detector_factories() -> Dict[str, Callable[[], DriftDetector]]:
    """Default-configuration factories for every detector, keyed by name.

    The configurations mirror the ones used in the paper's experiments: MOA
    defaults for the baselines and ``delta = 0.99``, ``w_max = 25000`` for the
    three OPTWIN variants (``rho`` in 0.1 / 0.5 / 1.0).
    """
    return {
        "ADWIN": Adwin,
        "DDM": Ddm,
        "EDDM": Eddm,
        "STEPD": Stepd,
        "ECDD": Ecdd,
        "OPTWIN rho=0.1": lambda: Optwin(rho=0.1),
        "OPTWIN rho=0.5": lambda: Optwin(rho=0.5),
        "OPTWIN rho=1.0": lambda: Optwin(rho=1.0),
    }


def binary_only_detectors() -> frozenset:
    """Names of detectors that only accept binary (0/1) error streams.

    DDM, EDDM, and ECDD assume Bernoulli inputs, so the paper excludes them
    from the non-binary (regression) experiments.
    """
    return frozenset({"DDM", "EDDM", "ECDD"})
