"""ECDD — EWMA Charts for Concept Drift Detection (Ross et al. 2012).

ECDD treats the misclassification indicators of a learner as a Bernoulli
stream and monitors them with an exponentially weighted moving average (EWMA)
chart.  The chart's control limit is ``p_estimate + L * sigma_z`` where ``L``
is chosen (via pre-computed polynomials in ``p_estimate``) so that the
expected time between false alarms equals the requested average run length
``ARL0``.  A warning zone at half the control limit is used, matching the MOA
baseline configuration of the OPTWIN paper.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.core.base import (
    BatchResult,
    DetectionResult,
    DriftDetector,
    DriftType,
    as_value_array,
)
from repro.exceptions import ConfigurationError
from repro.stats.ewma import EwmaEstimator, ecdd_base_limit, ecdd_control_limit

__all__ = ["Ecdd"]


class Ecdd(DriftDetector):
    """EWMA-chart drift detector for Bernoulli error streams.

    Parameters
    ----------
    arl0:
        Desired average run length between false positives (100, 400, or
        1000; 400 is the MOA default).
    lambda_:
        EWMA weight of the newest observation (0.2 in Ross et al.).
    warning_fraction:
        Fraction of the control limit at which the warning zone starts.
    min_num_instances:
        Number of observations before warnings/drifts can be flagged.
    """

    def __init__(
        self,
        arl0: int = 400,
        lambda_: float = 0.2,
        warning_fraction: float = 0.5,
        min_num_instances: int = 30,
    ) -> None:
        super().__init__()
        if not 0.0 < warning_fraction < 1.0:
            raise ConfigurationError(
                f"warning_fraction must be in (0, 1), got {warning_fraction}"
            )
        if min_num_instances < 1:
            raise ConfigurationError(
                f"min_num_instances must be >= 1, got {min_num_instances}"
            )
        # Validate arl0/lambda eagerly through the helpers.
        ecdd_control_limit(0.1, arl0, lambda_)
        self._arl0 = arl0
        self._warning_fraction = warning_fraction
        self._min_num_instances = min_num_instances
        self._lambda = lambda_
        self._estimator = EwmaEstimator(lambda_=lambda_)

    # ----------------------------------------------------------- properties

    @property
    def arl0(self) -> int:
        """Configured average run length between false alarms."""
        return self._arl0

    @property
    def p_estimate(self) -> float:
        """Current estimate of the pre-change error probability."""
        return self._estimator.p_estimate

    @property
    def z(self) -> float:
        """Current EWMA statistic."""
        return self._estimator.z

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        error = 1.0 if value > 0.5 else 0.0
        self._estimator.update(error)

        p_estimate = self._estimator.p_estimate
        sigma_z = self._estimator.z_std
        limit_factor = ecdd_control_limit(p_estimate, self._arl0, self._lambda)
        control_limit = p_estimate + limit_factor * sigma_z
        warning_limit = p_estimate + self._warning_fraction * limit_factor * sigma_z

        statistics = {
            "z": self._estimator.z,
            "p_estimate": p_estimate,
            "sigma_z": sigma_z,
            "control_limit": control_limit,
            "warning_limit": warning_limit,
        }

        if self._estimator.count < self._min_num_instances:
            return DetectionResult(statistics=statistics)

        if self._estimator.z > control_limit:
            self._estimator.reset()
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        if self._estimator.z > warning_limit:
            return DetectionResult(warning_detected=True, statistics=statistics)
        return DetectionResult(statistics=statistics)

    # ------------------------------------------------------- batched updates

    def update_batch(
        self, values: Iterable[float], collect_stats: bool = False
    ) -> BatchResult:
        """Batched update, bit-identical to the scalar loop.

        The EWMA recurrence is inherently sequential, so it runs in a tight
        local-variable loop that performs exactly the scalar arithmetic — but
        with the error binarisation vectorised, the constant part of the
        control limit hoisted out, and none of the per-element
        ``DetectionResult``/statistics-dict allocations of the scalar path.
        """
        if collect_stats or type(self)._update_one is not Ecdd._update_one:
            return super().update_batch(values, collect_stats=collect_stats)
        arr = as_value_array(values)
        n = arr.shape[0]
        if n == 0:
            return BatchResult(0)
        errors = np.where(arr > 0.5, 1.0, 0.0).tolist()
        drift_indices: List[int] = []
        warning_indices: List[int] = []

        lambda_ = self._lambda
        one_minus = 1.0 - lambda_
        half = lambda_ / (2.0 - lambda_)
        min_n = self._min_num_instances
        warning_fraction = self._warning_fraction
        # Constant factor of ecdd_control_limit(): only the p-dependent
        # skewness adjustment varies per element.
        base_limit = ecdd_base_limit(self._arl0, lambda_)

        count, p_estimate, z, variance_factor = self._estimator.state()
        sqrt = math.sqrt
        for index, error in enumerate(errors):
            count += 1
            p_estimate += (error - p_estimate) / count
            if count == 1:
                z = error
            else:
                z = one_minus * z + lambda_ * error
            decay = one_minus ** (2 * count)
            variance_factor = half * (1.0 - decay)
            if count < min_n:
                continue
            bernoulli_var = p_estimate * (1.0 - p_estimate)
            sigma_z = sqrt(max(bernoulli_var * variance_factor, 0.0))
            p_clamped = min(max(p_estimate, 0.0), 0.5)
            limit_factor = base_limit * (0.7 + 0.6 * min(p_clamped, 0.5))
            if z > p_estimate + limit_factor * sigma_z:
                drift_indices.append(index)
                warning_indices.append(index)
                count = 0
                p_estimate = 0.0
                z = 0.0
                variance_factor = 0.0
            elif z > p_estimate + warning_fraction * limit_factor * sigma_z:
                warning_indices.append(index)
        self._estimator.set_state(count, p_estimate, z, variance_factor)
        return self._finish_batch(
            n, drift_indices, warning_indices, DriftType.MEAN
        )

    def reset(self) -> None:
        """Forget all statistics."""
        self._estimator.reset()
        self._reset_counters()

    # ---------------------------------------------------- snapshot / restore

    def _config_dict(self) -> dict:
        return {
            "arl0": self._arl0,
            "lambda_": self._lambda,
            "warning_fraction": self._warning_fraction,
            "min_num_instances": self._min_num_instances,
        }

    def _state_dict(self) -> dict:
        count, p_estimate, z, variance_factor = self._estimator.state()
        return {
            "count": count,
            "p_estimate": p_estimate,
            "z": z,
            "variance_factor": variance_factor,
        }

    def _load_state(self, state: dict) -> None:
        self._estimator.set_state(
            int(state["count"]),
            float(state["p_estimate"]),
            float(state["z"]),
            float(state["variance_factor"]),
        )
