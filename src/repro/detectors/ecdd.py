"""ECDD — EWMA Charts for Concept Drift Detection (Ross et al. 2012).

ECDD treats the misclassification indicators of a learner as a Bernoulli
stream and monitors them with an exponentially weighted moving average (EWMA)
chart.  The chart's control limit is ``p_estimate + L * sigma_z`` where ``L``
is chosen (via pre-computed polynomials in ``p_estimate``) so that the
expected time between false alarms equals the requested average run length
``ARL0``.  A warning zone at half the control limit is used, matching the MOA
baseline configuration of the OPTWIN paper.
"""

from __future__ import annotations

from repro.core.base import DetectionResult, DriftDetector, DriftType
from repro.exceptions import ConfigurationError
from repro.stats.ewma import EwmaEstimator, ecdd_control_limit

__all__ = ["Ecdd"]


class Ecdd(DriftDetector):
    """EWMA-chart drift detector for Bernoulli error streams.

    Parameters
    ----------
    arl0:
        Desired average run length between false positives (100, 400, or
        1000; 400 is the MOA default).
    lambda_:
        EWMA weight of the newest observation (0.2 in Ross et al.).
    warning_fraction:
        Fraction of the control limit at which the warning zone starts.
    min_num_instances:
        Number of observations before warnings/drifts can be flagged.
    """

    def __init__(
        self,
        arl0: int = 400,
        lambda_: float = 0.2,
        warning_fraction: float = 0.5,
        min_num_instances: int = 30,
    ) -> None:
        super().__init__()
        if not 0.0 < warning_fraction < 1.0:
            raise ConfigurationError(
                f"warning_fraction must be in (0, 1), got {warning_fraction}"
            )
        if min_num_instances < 1:
            raise ConfigurationError(
                f"min_num_instances must be >= 1, got {min_num_instances}"
            )
        # Validate arl0/lambda eagerly through the helpers.
        ecdd_control_limit(0.1, arl0)
        self._arl0 = arl0
        self._warning_fraction = warning_fraction
        self._min_num_instances = min_num_instances
        self._lambda = lambda_
        self._estimator = EwmaEstimator(lambda_=lambda_)

    # ----------------------------------------------------------- properties

    @property
    def arl0(self) -> int:
        """Configured average run length between false alarms."""
        return self._arl0

    @property
    def p_estimate(self) -> float:
        """Current estimate of the pre-change error probability."""
        return self._estimator.p_estimate

    @property
    def z(self) -> float:
        """Current EWMA statistic."""
        return self._estimator.z

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        error = 1.0 if value > 0.5 else 0.0
        self._estimator.update(error)

        p_estimate = self._estimator.p_estimate
        sigma_z = self._estimator.z_std
        limit_factor = ecdd_control_limit(p_estimate, self._arl0)
        control_limit = p_estimate + limit_factor * sigma_z
        warning_limit = p_estimate + self._warning_fraction * limit_factor * sigma_z

        statistics = {
            "z": self._estimator.z,
            "p_estimate": p_estimate,
            "sigma_z": sigma_z,
            "control_limit": control_limit,
            "warning_limit": warning_limit,
        }

        if self._estimator.count < self._min_num_instances:
            return DetectionResult(statistics=statistics)

        if self._estimator.z > control_limit:
            self._estimator.reset()
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        if self._estimator.z > warning_limit:
            return DetectionResult(warning_detected=True, statistics=statistics)
        return DetectionResult(statistics=statistics)

    def reset(self) -> None:
        """Forget all statistics."""
        self._estimator.reset()
        self._reset_counters()
