"""A detector that never flags anything.

Table 2 of the OPTWIN paper includes a "No drift detector" row: the learner is
never reset, which provides the lower baseline for the accuracy comparison.
Having it implement the common :class:`~repro.core.base.DriftDetector`
interface keeps the evaluation code free of special cases.
"""

from __future__ import annotations

from repro.core.base import DetectionResult, DriftDetector

__all__ = ["NoDriftDetector"]


class NoDriftDetector(DriftDetector):
    """Null detector: consumes values and never reports a drift or warning."""

    def _update_one(self, value: float) -> DetectionResult:
        return DetectionResult()

    def reset(self) -> None:
        """Nothing to forget beyond the bookkeeping counters."""
        self._reset_counters()
