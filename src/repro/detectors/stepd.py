"""STEPD — Statistical Test of Equal Proportions Detector (Nishida & Yamauchi 2007).

STEPD assumes that a learner's accuracy over a *recent* window of ``window_size``
predictions should be statistically indistinguishable from its accuracy over
all *earlier* predictions.  At every element it runs the classic two-sample
test of equal proportions (with continuity correction) between the two
segments and flags a warning at significance ``alpha_warning`` and a drift at
``alpha_drift``, after which it resets.  Defaults follow the original paper
(window of 30, ``alpha_drift = 0.003``, ``alpha_warning = 0.05``).

STEPD consumes *correctness* information; like the MOA baseline it accepts an
error indicator and internally converts it (values ``> 0.5`` count as errors).
Real-valued inputs are thresholded the same way, which is how the OPTWIN paper
could run STEPD on its non-binary streams.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List

import numpy as np

from repro.core.base import (
    BatchResult,
    DetectionResult,
    DriftDetector,
    DriftType,
    as_value_array,
)
from repro.exceptions import ConfigurationError
from repro.stats.distributions import normal_cdf, normal_ppf
from repro.stats.proportions import (
    equal_proportions_statistics,
    equal_proportions_test,
)

__all__ = ["Stepd"]


class Stepd(DriftDetector):
    """Statistical-test-of-equal-proportions drift detector.

    Parameters
    ----------
    window_size:
        Size of the recent window (30 in the original paper).
    alpha_drift:
        Significance level at which a drift is flagged.
    alpha_warning:
        Significance level at which a warning is flagged (must be larger than
        ``alpha_drift``).
    """

    def __init__(
        self,
        window_size: int = 30,
        alpha_drift: float = 0.003,
        alpha_warning: float = 0.05,
    ) -> None:
        super().__init__()
        if window_size < 2:
            raise ConfigurationError(f"window_size must be >= 2, got {window_size}")
        if not 0.0 < alpha_drift < alpha_warning < 1.0:
            raise ConfigurationError(
                "need 0 < alpha_drift < alpha_warning < 1, got "
                f"alpha_drift={alpha_drift}, alpha_warning={alpha_warning}"
            )
        self._window_size = window_size
        self._alpha_drift = alpha_drift
        self._alpha_warning = alpha_warning
        # Conservative screen for the batched path: any statistic whose exact
        # one-sided p-value could fall below ``alpha_warning`` exceeds this
        # (Acklam's ppf is accurate to ~1e-9; the margin is orders of
        # magnitude wider), so the exact ``normal_cdf`` is only evaluated for
        # the rare candidates near or past the warning threshold.
        self._screen_statistic = normal_ppf(1.0 - alpha_warning) - 1e-6
        self._init_state()

    def _init_state(self) -> None:
        self._recent: Deque[float] = deque(maxlen=self._window_size)
        self._recent_correct = 0.0
        self._older_count = 0
        self._older_correct = 0.0

    # ----------------------------------------------------------- properties

    @property
    def window_size(self) -> int:
        """Size of the recent window."""
        return self._window_size

    @property
    def overall_accuracy(self) -> float:
        """Accuracy over everything seen since the last reset."""
        total = self._older_count + len(self._recent)
        if total == 0:
            return 0.0
        return (self._older_correct + self._recent_correct) / total

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        correct = 0.0 if value > 0.5 else 1.0

        if len(self._recent) == self._window_size:
            oldest = self._recent.popleft()
            self._recent_correct -= oldest
            self._older_count += 1
            self._older_correct += oldest
        self._recent.append(correct)
        self._recent_correct += correct

        statistics = {
            "recent_count": float(len(self._recent)),
            "older_count": float(self._older_count),
        }

        if self._older_count < self._window_size or len(self._recent) < self._window_size:
            return DetectionResult(statistics=statistics)

        outcome = equal_proportions_test(
            successes_recent=self._recent_correct,
            n_recent=len(self._recent),
            successes_older=self._older_correct,
            n_older=self._older_count,
        )
        statistics["statistic"] = outcome.statistic
        statistics["p_value"] = outcome.p_value

        if outcome.p_value < self._alpha_drift:
            self._init_state()
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        if outcome.p_value < self._alpha_warning:
            return DetectionResult(warning_detected=True, statistics=statistics)
        return DetectionResult(statistics=statistics)

    # ------------------------------------------------------- batched updates

    def update_batch(
        self, values: Iterable[float], collect_stats: bool = False
    ) -> BatchResult:
        """Closed-form batched update (bit-identical to the scalar loop).

        Between resets STEPD's two segment summaries have closed forms in the
        cumulative correct count: one prefix sum over the retained recent
        window plus the segment yields every per-element
        ``(recent_correct, older_count, older_correct)`` triple at once (the
        0/1 sums are exact integers, so they equal the scalar deque
        bookkeeping bit for bit), and the two-proportion z statistics for the
        whole segment are one call to
        :func:`repro.stats.proportions.equal_proportions_statistics`.  The
        exact scalar p-value is evaluated only for the few candidates that
        pass a conservative statistic screen; a drift (which resets the
        state) ends the vectorised segment.
        """
        if collect_stats or type(self)._update_one is not Stepd._update_one:
            return super().update_batch(values, collect_stats=collect_stats)
        arr = as_value_array(values)
        n = arr.shape[0]
        if n == 0:
            return BatchResult(0)
        corrects = np.where(arr > 0.5, 0.0, 1.0)
        drift_indices: List[int] = []
        warning_indices: List[int] = []
        window = self._window_size
        alpha_drift = self._alpha_drift
        alpha_warning = self._alpha_warning
        screen = self._screen_statistic
        position = 0
        limit = self._BATCH_CHUNK
        while position < n:
            # Bounded segments keep the whole call O(n) even on streams where
            # drifts (which restart the closed form) are frequent.
            segment = corrects[position : position + limit]
            count = segment.shape[0]
            retained = len(self._recent)
            combined = np.empty(retained + count, dtype=np.float64)
            combined[:retained] = self._recent
            combined[retained:] = segment
            prefix = np.empty(retained + count + 1, dtype=np.float64)
            prefix[0] = 0.0
            np.cumsum(combined, out=prefix[1:])

            totals = retained + 1 + np.arange(count)
            popped = np.maximum(totals - window, 0)
            recent_count = np.minimum(totals, window)
            recent_correct = prefix[totals] - prefix[popped]
            older_count = self._older_count + popped
            older_correct = self._older_correct + prefix[popped]
            testable = (recent_count == window) & (older_count >= window)

            statistics = equal_proportions_statistics(
                recent_correct,
                recent_count,
                older_correct,
                np.maximum(older_count, 1),
            )
            candidates = np.flatnonzero(testable & (statistics > screen))

            drift_rel = -1
            for rel in candidates.tolist():
                p_value = 1.0 - normal_cdf(float(statistics[rel]))
                if p_value < alpha_drift:
                    drift_rel = rel
                    break
                if p_value < alpha_warning:
                    warning_indices.append(position + rel)

            if drift_rel < 0:
                final_total = retained + count
                keep = min(final_total, window)
                self._recent = deque(
                    combined[final_total - keep :].tolist(), maxlen=window
                )
                self._recent_correct = float(recent_correct[-1])
                self._older_count = int(older_count[-1])
                self._older_correct = float(older_correct[-1])
                position += count
                limit = min(limit * 4, self._BATCH_CHUNK)
                continue

            drift_index = position + drift_rel
            drift_indices.append(drift_index)
            warning_indices.append(drift_index)
            self._init_state()
            position = drift_index + 1
            limit = self._BATCH_RESTART

        return self._finish_batch(
            n, drift_indices, warning_indices, DriftType.MEAN
        )

    def reset(self) -> None:
        """Forget all statistics."""
        self._init_state()
        self._reset_counters()

    # ---------------------------------------------------- snapshot / restore

    def _config_dict(self) -> dict:
        return {
            "window_size": self._window_size,
            "alpha_drift": self._alpha_drift,
            "alpha_warning": self._alpha_warning,
        }

    def _state_dict(self) -> dict:
        return {
            "recent": list(self._recent),
            "recent_correct": self._recent_correct,
            "older_count": self._older_count,
            "older_correct": self._older_correct,
        }

    def _load_state(self, state: dict) -> None:
        self._recent = deque(
            (float(value) for value in state["recent"]), maxlen=self._window_size
        )
        self._recent_correct = float(state["recent_correct"])
        self._older_count = int(state["older_count"])
        self._older_correct = float(state["older_correct"])
