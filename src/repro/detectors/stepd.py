"""STEPD — Statistical Test of Equal Proportions Detector (Nishida & Yamauchi 2007).

STEPD assumes that a learner's accuracy over a *recent* window of ``window_size``
predictions should be statistically indistinguishable from its accuracy over
all *earlier* predictions.  At every element it runs the classic two-sample
test of equal proportions (with continuity correction) between the two
segments and flags a warning at significance ``alpha_warning`` and a drift at
``alpha_drift``, after which it resets.  Defaults follow the original paper
(window of 30, ``alpha_drift = 0.003``, ``alpha_warning = 0.05``).

STEPD consumes *correctness* information; like the MOA baseline it accepts an
error indicator and internally converts it (values ``> 0.5`` count as errors).
Real-valued inputs are thresholded the same way, which is how the OPTWIN paper
could run STEPD on its non-binary streams.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.core.base import DetectionResult, DriftDetector, DriftType
from repro.exceptions import ConfigurationError
from repro.stats.proportions import equal_proportions_test

__all__ = ["Stepd"]


class Stepd(DriftDetector):
    """Statistical-test-of-equal-proportions drift detector.

    Parameters
    ----------
    window_size:
        Size of the recent window (30 in the original paper).
    alpha_drift:
        Significance level at which a drift is flagged.
    alpha_warning:
        Significance level at which a warning is flagged (must be larger than
        ``alpha_drift``).
    """

    def __init__(
        self,
        window_size: int = 30,
        alpha_drift: float = 0.003,
        alpha_warning: float = 0.05,
    ) -> None:
        super().__init__()
        if window_size < 2:
            raise ConfigurationError(f"window_size must be >= 2, got {window_size}")
        if not 0.0 < alpha_drift < alpha_warning < 1.0:
            raise ConfigurationError(
                "need 0 < alpha_drift < alpha_warning < 1, got "
                f"alpha_drift={alpha_drift}, alpha_warning={alpha_warning}"
            )
        self._window_size = window_size
        self._alpha_drift = alpha_drift
        self._alpha_warning = alpha_warning
        self._init_state()

    def _init_state(self) -> None:
        self._recent: Deque[float] = deque(maxlen=self._window_size)
        self._recent_correct = 0.0
        self._older_count = 0
        self._older_correct = 0.0

    # ----------------------------------------------------------- properties

    @property
    def window_size(self) -> int:
        """Size of the recent window."""
        return self._window_size

    @property
    def overall_accuracy(self) -> float:
        """Accuracy over everything seen since the last reset."""
        total = self._older_count + len(self._recent)
        if total == 0:
            return 0.0
        return (self._older_correct + self._recent_correct) / total

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        correct = 0.0 if value > 0.5 else 1.0

        if len(self._recent) == self._window_size:
            oldest = self._recent.popleft()
            self._recent_correct -= oldest
            self._older_count += 1
            self._older_correct += oldest
        self._recent.append(correct)
        self._recent_correct += correct

        statistics = {
            "recent_count": float(len(self._recent)),
            "older_count": float(self._older_count),
        }

        if self._older_count < self._window_size or len(self._recent) < self._window_size:
            return DetectionResult(statistics=statistics)

        outcome = equal_proportions_test(
            successes_recent=self._recent_correct,
            n_recent=len(self._recent),
            successes_older=self._older_correct,
            n_older=self._older_count,
        )
        statistics["statistic"] = outcome.statistic
        statistics["p_value"] = outcome.p_value

        if outcome.p_value < self._alpha_drift:
            self._init_state()
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        if outcome.p_value < self._alpha_warning:
            return DetectionResult(warning_detected=True, statistics=statistics)
        return DetectionResult(statistics=statistics)

    def reset(self) -> None:
        """Forget all statistics."""
        self._init_state()
        self._reset_counters()
