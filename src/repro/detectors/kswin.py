"""KSWIN — Kolmogorov–Smirnov windowing drift detector (extension baseline).

KSWIN keeps a sliding window of the last ``window_size`` values and compares
the most recent ``stat_size`` of them against a uniform random sample of the
older part using the two-sample Kolmogorov–Smirnov test.  Because the KS test
is distribution-free it reacts to changes in *any* aspect of the value
distribution, which makes it a useful extra point of comparison for OPTWIN's
variance-sensitive behaviour.
"""

from __future__ import annotations

import bisect
import math
import random
from collections import deque
from typing import Deque, List, Sequence

from repro.core.base import DetectionResult, DriftDetector, DriftType
from repro.exceptions import ConfigurationError

__all__ = ["Kswin"]


def _ks_statistic(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (maximum ECDF distance).

    Ties are handled by evaluating both empirical CDFs at every distinct value
    (using right-continuous counts), so heavily discrete inputs such as 0/1
    error indicators are measured correctly.
    """
    sorted_a = sorted(sample_a)
    sorted_b = sorted(sample_b)
    n_a, n_b = len(sorted_a), len(sorted_b)
    d_max = 0.0
    for value in sorted(set(sorted_a) | set(sorted_b)):
        cdf_a = bisect.bisect_right(sorted_a, value) / n_a
        cdf_b = bisect.bisect_right(sorted_b, value) / n_b
        d_max = max(d_max, abs(cdf_a - cdf_b))
    return d_max


class Kswin(DriftDetector):
    """Kolmogorov–Smirnov windowing drift detector.

    Parameters
    ----------
    alpha:
        Significance level of the KS test.
    window_size:
        Total number of recent values retained.
    stat_size:
        Size of the "recent" sample compared against the older data.
    seed:
        Seed of the internal random sampler (KSWIN subsamples the older part
        of its window).
    """

    def __init__(
        self,
        alpha: float = 0.005,
        window_size: int = 100,
        stat_size: int = 30,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        if stat_size >= window_size:
            raise ConfigurationError(
                f"stat_size ({stat_size}) must be smaller than window_size "
                f"({window_size})"
            )
        if stat_size < 2:
            raise ConfigurationError(f"stat_size must be >= 2, got {stat_size}")
        self._alpha = alpha
        self._window_size = window_size
        self._stat_size = stat_size
        self._seed = seed
        self._rng = random.Random(seed)
        self._window: Deque[float] = deque(maxlen=window_size)

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        self._window.append(value)
        statistics = {"window_size": float(len(self._window))}

        if len(self._window) < self._window_size:
            return DetectionResult(statistics=statistics)

        values: List[float] = list(self._window)
        recent = values[-self._stat_size:]
        older = values[: -self._stat_size]
        sample_older = self._rng.sample(older, self._stat_size)

        d_stat = _ks_statistic(recent, sample_older)
        # Two-sample KS critical value at significance alpha.
        n = self._stat_size
        critical = math.sqrt(-0.5 * math.log(self._alpha / 2.0)) * math.sqrt(2.0 / n)
        statistics.update({"ks_statistic": d_stat, "critical": critical})

        if d_stat > critical:
            # Keep only the recent sample as the new history.
            self._window = deque(recent, maxlen=self._window_size)
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.DISTRIBUTION,
                statistics=statistics,
            )
        return DetectionResult(statistics=statistics)

    def reset(self) -> None:
        """Forget all retained values."""
        self._window = deque(maxlen=self._window_size)
        self._rng = random.Random(self._seed)
        self._reset_counters()
