"""KSWIN — Kolmogorov–Smirnov windowing drift detector (extension baseline).

KSWIN keeps a sliding window of the last ``window_size`` values and compares
the most recent ``stat_size`` of them against a uniform random sample of the
older part using the two-sample Kolmogorov–Smirnov test.  Because the KS test
is distribution-free it reacts to changes in *any* aspect of the value
distribution, which makes it a useful extra point of comparison for OPTWIN's
variance-sensitive behaviour.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Deque, Iterable, List, Sequence

import numpy as np

from repro.core.base import (
    BatchResult,
    DetectionResult,
    DriftDetector,
    DriftType,
    as_value_array,
)
from repro.exceptions import ConfigurationError

__all__ = ["Kswin"]


def _ks_statistic(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (maximum ECDF distance).

    Ties are handled by evaluating both empirical CDFs at every distinct value
    (using right-continuous counts), so heavily discrete inputs such as 0/1
    error indicators are measured correctly.  Implemented as a sorted-merge:
    both samples are sorted once and the two ECDFs are evaluated at every
    distinct value with vectorised ``np.searchsorted`` rank lookups — the
    counts and divisions are exactly those of a per-value ``bisect`` loop, so
    the statistic is bit-identical to the naive formulation.
    """
    sorted_a = np.sort(np.asarray(sample_a, dtype=np.float64))
    sorted_b = np.sort(np.asarray(sample_b, dtype=np.float64))
    # Evaluating at every sample value (duplicates included) reaches the same
    # maximum as evaluating at the distinct values only, and skips a
    # uniquifying pass.
    points = np.concatenate((sorted_a, sorted_b))
    cdf_a = np.searchsorted(sorted_a, points, side="right") / sorted_a.shape[0]
    cdf_b = np.searchsorted(sorted_b, points, side="right") / sorted_b.shape[0]
    return float(np.max(np.abs(cdf_a - cdf_b)))


class Kswin(DriftDetector):
    """Kolmogorov–Smirnov windowing drift detector.

    Parameters
    ----------
    alpha:
        Significance level of the KS test.
    window_size:
        Total number of recent values retained.
    stat_size:
        Size of the "recent" sample compared against the older data.
    seed:
        Seed of the internal random sampler (KSWIN subsamples the older part
        of its window).
    """

    def __init__(
        self,
        alpha: float = 0.005,
        window_size: int = 100,
        stat_size: int = 30,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        if stat_size >= window_size:
            raise ConfigurationError(
                f"stat_size ({stat_size}) must be smaller than window_size "
                f"({window_size})"
            )
        if window_size < 2 * stat_size:
            # The older part of a full window holds window_size - stat_size
            # values and is subsampled down to stat_size of them, so anything
            # between stat_size and 2 * stat_size would pass construction and
            # then crash in random.Random.sample at element window_size.
            raise ConfigurationError(
                f"window_size ({window_size}) must be at least 2 * stat_size "
                f"({2 * stat_size}) so the older window segment can supply a "
                f"sample of {stat_size} values"
            )
        if stat_size < 2:
            raise ConfigurationError(f"stat_size must be >= 2, got {stat_size}")
        self._alpha = alpha
        self._window_size = window_size
        self._stat_size = stat_size
        self._seed = seed
        self._rng = random.Random(seed)
        self._window: Deque[float] = deque(maxlen=window_size)
        # Two-sample KS critical value at significance alpha; constant in the
        # configuration, shared by the scalar and batched paths.
        self._critical = math.sqrt(-0.5 * math.log(alpha / 2.0)) * math.sqrt(
            2.0 / stat_size
        )

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        self._window.append(value)
        statistics = {"window_size": float(len(self._window))}

        if len(self._window) < self._window_size:
            return DetectionResult(statistics=statistics)

        values: List[float] = list(self._window)
        recent = values[-self._stat_size:]
        older = values[: -self._stat_size]
        sample_older = self._rng.sample(older, self._stat_size)

        d_stat = _ks_statistic(recent, sample_older)
        critical = self._critical
        statistics.update({"ks_statistic": d_stat, "critical": critical})

        if d_stat > critical:
            # Keep only the recent sample as the new history.
            self._window = deque(recent, maxlen=self._window_size)
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.DISTRIBUTION,
                statistics=statistics,
            )
        return DetectionResult(statistics=statistics)

    # ------------------------------------------------------- batched updates

    def update_batch(
        self, values: Iterable[float], collect_stats: bool = False
    ) -> BatchResult:
        """Batched update, bit-identical to the scalar loop.

        The sliding window is maintained as a plain list for the duration of
        the batch (no per-element ``list(deque)`` copy), partially filled
        windows — after construction and after every drift, when the window
        was shrunk to the recent sample — are bulk-extended without any test,
        and the KS statistic itself is the vectorised sorted-merge of
        :func:`_ks_statistic`.  The RNG subsample of the older segment is
        drawn per tested element exactly as in scalar mode, so the random
        state (and therefore every subsequent detection) stays identical.
        """
        if collect_stats or type(self)._update_one is not Kswin._update_one:
            return super().update_batch(values, collect_stats=collect_stats)
        arr = as_value_array(values)
        n = arr.shape[0]
        if n == 0:
            return BatchResult(0)
        data = arr.tolist()
        drift_indices: List[int] = []
        window = list(self._window)
        window_size = self._window_size
        stat_size = self._stat_size
        rng_sample = self._rng.sample
        critical = self._critical

        index = 0
        while index < n:
            if len(window) < window_size - 1:
                # Elements that leave the window still short of full never
                # run a test; append them in one slice.
                take = min(window_size - 1 - len(window), n - index)
                window.extend(data[index : index + take])
                index += take
                if index >= n:
                    break
            window.append(data[index])
            if len(window) > window_size:
                del window[0]
            recent = window[-stat_size:]
            sample_older = rng_sample(window[:-stat_size], stat_size)
            if _ks_statistic(recent, sample_older) > critical:
                drift_indices.append(index)
                window = recent
            index += 1

        self._window = deque(window, maxlen=window_size)
        return self._finish_batch(
            n, drift_indices, list(drift_indices), DriftType.DISTRIBUTION
        )

    def reset(self) -> None:
        """Forget all retained values."""
        self._window = deque(maxlen=self._window_size)
        self._rng = random.Random(self._seed)
        self._reset_counters()

    # ---------------------------------------------------- snapshot / restore

    def _config_dict(self) -> dict:
        return {
            "alpha": self._alpha,
            "window_size": self._window_size,
            "stat_size": self._stat_size,
            "seed": self._seed,
        }

    def _state_dict(self) -> dict:
        # random.Random.getstate() is (version, 625-int internal state,
        # gauss_next); the tuple layers are flattened to lists for JSON.
        version, internal, gauss_next = self._rng.getstate()
        return {
            "window": list(self._window),
            "rng": {
                "version": version,
                "internal": list(internal),
                "gauss_next": gauss_next,
            },
        }

    def _load_state(self, state: dict) -> None:
        self._window = deque(
            (float(value) for value in state["window"]), maxlen=self._window_size
        )
        rng_state = state["rng"]
        self._rng.setstate(
            (
                int(rng_state["version"]),
                tuple(int(word) for word in rng_state["internal"]),
                rng_state["gauss_next"],
            )
        )
