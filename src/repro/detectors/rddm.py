"""RDDM — Reactive Drift Detection Method (Barros et al. 2017).

RDDM is the DDM variant cited by the OPTWIN paper (reference [4]).  DDM's
statistics keep growing between drifts, which makes it sluggish on long stable
periods; RDDM bounds the number of instances that contribute to the error-rate
estimate and, when a warning lasts too long or the stable period exceeds
``max_concept_size``, it *reactively* recomputes the statistics from the most
recent predictions stored in a small buffer.

Included as an extension baseline (it is not part of the paper's evaluation
line-up but is the natural "modernised DDM" to compare against).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque

from repro.core.base import DetectionResult, DriftDetector, DriftType
from repro.exceptions import ConfigurationError

__all__ = ["Rddm"]


class Rddm(DriftDetector):
    """Reactive Drift Detection Method for binary error streams.

    Parameters
    ----------
    min_num_instances:
        Observations required before warnings/drifts can be flagged.
    warning_level, drift_level:
        Multiples of the minimum standard deviation above the minimum error
        rate at which the warning / drift zones start (as in DDM).
    max_concept_size:
        Maximum number of instances folded into the statistics before RDDM
        recomputes them from the recent-prediction buffer.
    min_stable_size:
        Number of recent predictions replayed when the statistics are rebuilt.
    warning_limit:
        Maximum number of consecutive warning instances before RDDM forces a
        drift (a long warning usually means a slow gradual drift).
    """

    def __init__(
        self,
        min_num_instances: int = 129,
        warning_level: float = 1.773,
        drift_level: float = 2.258,
        max_concept_size: int = 40_000,
        min_stable_size: int = 7_000,
        warning_limit: int = 1_400,
    ) -> None:
        super().__init__()
        if min_num_instances < 1:
            raise ConfigurationError(
                f"min_num_instances must be >= 1, got {min_num_instances}"
            )
        if not 0 < warning_level < drift_level:
            raise ConfigurationError(
                "need 0 < warning_level < drift_level, got "
                f"{warning_level} / {drift_level}"
            )
        if min_stable_size < 1 or max_concept_size <= min_stable_size:
            raise ConfigurationError(
                "need max_concept_size > min_stable_size >= 1, got "
                f"{max_concept_size} / {min_stable_size}"
            )
        if warning_limit < 1:
            raise ConfigurationError(f"warning_limit must be >= 1, got {warning_limit}")
        self._min_num_instances = min_num_instances
        self._warning_level = warning_level
        self._drift_level = drift_level
        self._max_concept_size = max_concept_size
        self._min_stable_size = min_stable_size
        self._warning_limit = warning_limit
        self._recent: Deque[float] = deque(maxlen=min_stable_size)
        self._init_statistics()
        self._warning_count = 0

    def _init_statistics(self) -> None:
        self._n = 0
        self._error_rate = 0.0
        self._p_min = math.inf
        self._s_min = math.inf
        self._ps_min = math.inf

    # ------------------------------------------------------------- helpers

    def _fold(self, error: float) -> float:
        """Fold one 0/1 error into the statistics; return the current std."""
        self._n += 1
        self._error_rate += (error - self._error_rate) / self._n
        std = math.sqrt(max(self._error_rate * (1.0 - self._error_rate), 0.0) / self._n)
        if self._n >= self._min_num_instances and self._error_rate + std <= self._ps_min:
            self._p_min = self._error_rate
            self._s_min = std
            self._ps_min = self._error_rate + std
        return std

    def _rebuild_from_recent(self) -> None:
        """Reactive step: recompute the statistics from the recent buffer."""
        self._init_statistics()
        for error in self._recent:
            self._fold(error)

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        error = 1.0 if value > 0.5 else 0.0
        self._recent.append(error)
        std = self._fold(error)

        statistics = {
            "n": float(self._n),
            "error_rate": self._error_rate,
            "std": std,
            "warning_count": float(self._warning_count),
        }

        if self._n < self._min_num_instances:
            return DetectionResult(statistics=statistics)

        level = self._error_rate + std
        drift = level >= self._p_min + self._drift_level * self._s_min
        warning = level >= self._p_min + self._warning_level * self._s_min

        if warning and not drift:
            self._warning_count += 1
            if self._warning_count >= self._warning_limit:
                drift = True
        elif not warning:
            self._warning_count = 0

        if not drift and self._n >= self._max_concept_size:
            # Long stable concept: refresh the statistics reactively so the
            # detector stays sensitive to future changes.
            self._rebuild_from_recent()
            statistics["rebuilt"] = 1.0
            return DetectionResult(warning_detected=warning, statistics=statistics)

        if drift:
            self._warning_count = 0
            self._init_statistics()
            # Re-seed the statistics with the recent (post-drift) behaviour so
            # detection can resume immediately — the "reactive" idea.
            for recent_error in list(self._recent)[-self._min_num_instances:]:
                self._fold(recent_error)
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        return DetectionResult(warning_detected=warning, statistics=statistics)

    def reset(self) -> None:
        """Forget all statistics and the recent-prediction buffer."""
        self._init_statistics()
        self._recent.clear()
        self._warning_count = 0
        self._reset_counters()
