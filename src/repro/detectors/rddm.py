"""RDDM — Reactive Drift Detection Method (Barros et al. 2017).

RDDM is the DDM variant cited by the OPTWIN paper (reference [4]).  DDM's
statistics keep growing between drifts, which makes it sluggish on long stable
periods; RDDM bounds the number of instances that contribute to the error-rate
estimate and, when a warning lasts too long or the stable period exceeds
``max_concept_size``, it *reactively* recomputes the statistics from the most
recent predictions stored in a small buffer.

Included as an extension baseline (it is not part of the paper's evaluation
line-up but is the natural "modernised DDM" to compare against).
"""

from __future__ import annotations

import math
from collections import deque
from itertools import islice
from typing import Deque, Iterable, List

import numpy as np

from repro.core.base import (
    BatchResult,
    DetectionResult,
    DriftDetector,
    DriftType,
    as_value_array,
    seeded_running_argmin,
)
from repro.exceptions import ConfigurationError
from repro.stats.incremental import seeded_segment_means

__all__ = ["Rddm"]


class Rddm(DriftDetector):
    """Reactive Drift Detection Method for binary error streams.

    Parameters
    ----------
    min_num_instances:
        Observations required before warnings/drifts can be flagged.
    warning_level, drift_level:
        Multiples of the minimum standard deviation above the minimum error
        rate at which the warning / drift zones start (as in DDM).
    max_concept_size:
        Maximum number of instances folded into the statistics before RDDM
        recomputes them from the recent-prediction buffer.
    min_stable_size:
        Number of recent predictions replayed when the statistics are rebuilt.
    warning_limit:
        Maximum number of consecutive warning instances before RDDM forces a
        drift (a long warning usually means a slow gradual drift).
    """

    def __init__(
        self,
        min_num_instances: int = 129,
        warning_level: float = 1.773,
        drift_level: float = 2.258,
        max_concept_size: int = 40_000,
        min_stable_size: int = 7_000,
        warning_limit: int = 1_400,
    ) -> None:
        super().__init__()
        if min_num_instances < 1:
            raise ConfigurationError(
                f"min_num_instances must be >= 1, got {min_num_instances}"
            )
        if not 0 < warning_level < drift_level:
            raise ConfigurationError(
                "need 0 < warning_level < drift_level, got "
                f"{warning_level} / {drift_level}"
            )
        if min_stable_size < 1 or max_concept_size <= min_stable_size:
            raise ConfigurationError(
                "need max_concept_size > min_stable_size >= 1, got "
                f"{max_concept_size} / {min_stable_size}"
            )
        if warning_limit < 1:
            raise ConfigurationError(f"warning_limit must be >= 1, got {warning_limit}")
        self._min_num_instances = min_num_instances
        self._warning_level = warning_level
        self._drift_level = drift_level
        self._max_concept_size = max_concept_size
        self._min_stable_size = min_stable_size
        self._warning_limit = warning_limit
        self._recent: Deque[float] = deque(maxlen=min_stable_size)
        self._init_statistics()
        self._warning_count = 0

    def _init_statistics(self) -> None:
        self._n = 0
        self._error_sum = 0.0
        self._error_rate = 0.0
        self._p_min = math.inf
        self._s_min = math.inf
        self._ps_min = math.inf

    # ------------------------------------------------------------- helpers

    def _fold(self, error: float) -> float:
        """Fold one 0/1 error into the statistics; return the current std."""
        self._n += 1
        # Sum-based mean: the error sum over 0/1 indicators is an exact
        # integer, so the rate equals the batched cumulative-sum formulation
        # bit for bit (an incremental mean would drift by rounding ulps).
        self._error_sum += error
        self._error_rate = self._error_sum / self._n
        std = math.sqrt(max(self._error_rate * (1.0 - self._error_rate), 0.0) / self._n)
        if self._n >= self._min_num_instances and self._error_rate + std <= self._ps_min:
            self._p_min = self._error_rate
            self._s_min = std
            self._ps_min = self._error_rate + std
        return std

    def _rebuild_from_recent(self) -> None:
        """Reactive step: recompute the statistics from the recent buffer."""
        self._init_statistics()
        for error in self._recent:
            self._fold(error)

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        error = 1.0 if value > 0.5 else 0.0
        self._recent.append(error)
        std = self._fold(error)

        statistics = {
            "n": float(self._n),
            "error_rate": self._error_rate,
            "std": std,
            "warning_count": float(self._warning_count),
        }

        if self._n < self._min_num_instances:
            return DetectionResult(statistics=statistics)

        level = self._error_rate + std
        drift = level >= self._p_min + self._drift_level * self._s_min
        warning = level >= self._p_min + self._warning_level * self._s_min

        if warning and not drift:
            self._warning_count += 1
            if self._warning_count >= self._warning_limit:
                drift = True
        elif not warning:
            self._warning_count = 0

        if not drift and self._n >= self._max_concept_size:
            # Long stable concept: refresh the statistics reactively so the
            # detector stays sensitive to future changes.
            self._rebuild_from_recent()
            statistics["rebuilt"] = 1.0
            return DetectionResult(warning_detected=warning, statistics=statistics)

        if drift:
            self._warning_count = 0
            self._init_statistics()
            # Re-seed the statistics with the recent (post-drift) behaviour so
            # detection can resume immediately — the "reactive" idea.  The
            # tail is taken through the reverse iterator so a drift costs
            # O(min_num_instances), not a copy of the whole recent buffer.
            tail = list(islice(reversed(self._recent), self._min_num_instances))
            for recent_error in reversed(tail):
                self._fold(recent_error)
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        return DetectionResult(warning_detected=warning, statistics=statistics)

    # ------------------------------------------------------- batched updates

    #: Elements run through the plain scalar path after each boundary event
    #: before vectorisation resumes.  On drift-dense streams (a detector
    #: firing every few elements) the fixed numpy setup of a vectorised
    #: segment costs more than it saves, so the batch degrades gracefully to
    #: scalar speed instead of re-paying the setup per event; another drift
    #: inside the burst extends it.
    _SCALAR_BURST = 24

    def update_batch(
        self, values: Iterable[float], collect_stats: bool = False
    ) -> BatchResult:
        """Closed-form batched update (bit-identical to the scalar loop).

        Between boundary events every RDDM quantity has a closed form in the
        cumulative error count: the error rate is an exact integer sum divided
        by ``n``, the ``p_min``/``s_min`` tracking is a running minimum served
        by ``np.minimum.accumulate``, and the consecutive-warning counter is a
        vectorised run length.  The events that end a vectorised segment —
        a drift (natural or warning-limit forced) and the reactive rebuild at
        ``max_concept_size`` — are each executed through the scalar
        ``_update_one`` for that single element, so the refold/rebuild
        behaviour is the scalar code itself.
        """
        if collect_stats or type(self)._update_one is not Rddm._update_one:
            return super().update_batch(values, collect_stats=collect_stats)
        arr = as_value_array(values)
        n = arr.shape[0]
        if n == 0:
            return BatchResult(0)
        errors = np.where(arr > 0.5, 1.0, 0.0)
        drift_indices: List[int] = []
        warning_indices: List[int] = []
        position = 0
        limit = self._BATCH_CHUNK
        while position < n:
            segment = errors[position : position + limit]
            count = segment.shape[0]
            sums, counts, rates = seeded_segment_means(
                self._error_sum, self._n, segment
            )
            stds = np.sqrt(np.maximum(rates * (1.0 - rates), 0.0) / counts)

            start_valid = max(0, self._min_num_instances - self._n - 1)
            if start_valid >= count:
                self._n += count
                self._error_sum = float(sums[-1])
                self._error_rate = float(rates[-1])
                self._recent.extend(segment.tolist())
                position += count
                limit = min(limit * 4, self._BATCH_CHUNK)
                continue

            rates_v = rates[start_valid:]
            stds_v = stds[start_valid:]
            levels_v = rates_v + stds_v
            m = levels_v.shape[0]

            # The min update uses <= so ties move the (p_min, s_min) pair
            # forward, exactly like the scalar ``_fold``.
            change_index = seeded_running_argmin(levels_v, self._ps_min)
            gather = np.maximum(change_index, 0)
            p_min = np.where(change_index >= 0, rates_v[gather], self._p_min)
            s_min = np.where(change_index >= 0, stds_v[gather], self._s_min)

            natural = levels_v >= p_min + self._drift_level * s_min
            warning = levels_v >= p_min + self._warning_level * s_min

            # Consecutive-warning run length, seeded with the current counter:
            # a non-warning element resets the run, warnings extend it.
            pos_v = np.arange(m)
            last_block = np.where(~warning, pos_v, -1)
            np.maximum.accumulate(last_block, out=last_block)
            runs = np.where(
                last_block >= 0,
                pos_v - last_block,
                pos_v + 1 + self._warning_count,
            )
            forced = warning & ~natural & (runs >= self._warning_limit)
            drift = natural | forced
            rebuild = (counts[start_valid:] >= self._max_concept_size) & ~drift

            event_positions = np.flatnonzero(drift | rebuild)
            if event_positions.size == 0:
                for rel in np.flatnonzero(warning):
                    warning_indices.append(position + start_valid + int(rel))
                self._n += count
                self._error_sum = float(sums[-1])
                self._error_rate = float(rates[-1])
                final_change = int(change_index[-1])
                if final_change >= 0:
                    self._p_min = float(rates_v[final_change])
                    self._s_min = float(stds_v[final_change])
                    self._ps_min = float(levels_v[final_change])
                self._warning_count = int(runs[-1]) if warning[-1] else 0
                self._recent.extend(segment.tolist())
                position += count
                limit = min(limit * 4, self._BATCH_CHUNK)
                continue

            # Commit the closed-form state up to (excluding) the event element,
            # then run that element through the scalar path so the refold /
            # rebuild logic is executed verbatim.
            event_rel = int(event_positions[0])
            consumed = start_valid + event_rel
            for rel in np.flatnonzero(warning[:event_rel]):
                warning_indices.append(position + start_valid + int(rel))
            if consumed > 0:
                self._n += consumed
                self._error_sum = float(sums[consumed - 1])
                self._error_rate = float(rates[consumed - 1])
            if event_rel > 0:
                prior_change = int(change_index[event_rel - 1])
                if prior_change >= 0:
                    self._p_min = float(rates_v[prior_change])
                    self._s_min = float(stds_v[prior_change])
                    self._ps_min = float(levels_v[prior_change])
                self._warning_count = (
                    int(runs[event_rel - 1]) if warning[event_rel - 1] else 0
                )
            self._recent.extend(segment[:consumed].tolist())
            position += consumed
            burst_remaining = 1
            while burst_remaining > 0 and position < n:
                outcome = self._update_one(float(arr[position]))
                if outcome.drift_detected:
                    drift_indices.append(position)
                    warning_indices.append(position)
                    burst_remaining = self._SCALAR_BURST
                else:
                    if outcome.warning_detected:
                        warning_indices.append(position)
                    burst_remaining -= 1
                position += 1
            limit = self._BATCH_RESTART

        return self._finish_batch(
            n, drift_indices, warning_indices, DriftType.MEAN
        )

    def reset(self) -> None:
        """Forget all statistics and the recent-prediction buffer."""
        self._init_statistics()
        self._recent.clear()
        self._warning_count = 0
        self._reset_counters()

    # ---------------------------------------------------- snapshot / restore

    def _config_dict(self) -> dict:
        return {
            "min_num_instances": self._min_num_instances,
            "warning_level": self._warning_level,
            "drift_level": self._drift_level,
            "max_concept_size": self._max_concept_size,
            "min_stable_size": self._min_stable_size,
            "warning_limit": self._warning_limit,
        }

    def _state_dict(self) -> dict:
        return {
            "n": self._n,
            "error_sum": self._error_sum,
            "error_rate": self._error_rate,
            "p_min": self._p_min,
            "s_min": self._s_min,
            "ps_min": self._ps_min,
            "recent": list(self._recent),
            "warning_count": self._warning_count,
        }

    def _load_state(self, state: dict) -> None:
        self._n = int(state["n"])
        self._error_sum = float(state["error_sum"])
        self._error_rate = float(state["error_rate"])
        self._p_min = float(state["p_min"])
        self._s_min = float(state["s_min"])
        self._ps_min = float(state["ps_min"])
        self._recent = deque(
            (float(value) for value in state["recent"]), maxlen=self._min_stable_size
        )
        self._warning_count = int(state["warning_count"])
