"""DDM — Drift Detection Method (Gama et al. 2004).

DDM monitors the error rate ``p_i`` of a classifier over a Bernoulli error
stream together with its standard deviation ``s_i = sqrt(p_i (1 - p_i) / i)``.
It remembers the minimum of ``p + s`` seen so far (``p_min``, ``s_min``) and
flags:

* a *warning* when ``p_i + s_i >= p_min + warning_level * s_min``,
* a *drift*  when ``p_i + s_i >= p_min + drift_level * s_min``,

after which the statistics are reset.  The default levels (2 and 3) are the
ones from the original paper and the MOA implementation used as a baseline in
the OPTWIN evaluation.
"""

from __future__ import annotations

import math

from repro.core.base import DetectionResult, DriftDetector, DriftType
from repro.exceptions import ConfigurationError

__all__ = ["Ddm"]


class Ddm(DriftDetector):
    """Drift Detection Method for binary error streams.

    Parameters
    ----------
    min_num_instances:
        Number of observations before any warning/drift can be flagged.
    warning_level:
        Number of minimum standard deviations above the minimum error rate at
        which the warning zone starts.
    drift_level:
        Number of minimum standard deviations above the minimum error rate at
        which a drift is flagged.
    """

    def __init__(
        self,
        min_num_instances: int = 30,
        warning_level: float = 2.0,
        drift_level: float = 3.0,
    ) -> None:
        super().__init__()
        if min_num_instances < 1:
            raise ConfigurationError(
                f"min_num_instances must be >= 1, got {min_num_instances}"
            )
        if warning_level <= 0 or drift_level <= 0:
            raise ConfigurationError("warning_level and drift_level must be > 0")
        if warning_level >= drift_level:
            raise ConfigurationError(
                "warning_level must be smaller than drift_level "
                f"(got {warning_level} >= {drift_level})"
            )
        self._min_num_instances = min_num_instances
        self._warning_level = warning_level
        self._drift_level = drift_level
        self._init_state()

    def _init_state(self) -> None:
        self._n = 0
        self._error_rate = 0.0
        self._p_min = math.inf
        self._s_min = math.inf
        self._ps_min = math.inf

    # ----------------------------------------------------------- properties

    @property
    def error_rate(self) -> float:
        """Current estimate of the error probability."""
        return self._error_rate

    @property
    def p_min(self) -> float:
        """Minimum error rate recorded since the last reset."""
        return self._p_min

    @property
    def s_min(self) -> float:
        """Standard deviation recorded together with :attr:`p_min`."""
        return self._s_min

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        error = 1.0 if value > 0.5 else 0.0
        self._n += 1
        self._error_rate += (error - self._error_rate) / self._n
        std = math.sqrt(max(self._error_rate * (1.0 - self._error_rate), 0.0) / self._n)

        statistics = {
            "n": float(self._n),
            "error_rate": self._error_rate,
            "std": std,
        }

        if self._n < self._min_num_instances:
            return DetectionResult(statistics=statistics)

        if self._error_rate + std <= self._ps_min:
            self._p_min = self._error_rate
            self._s_min = std
            self._ps_min = self._error_rate + std

        level = self._error_rate + std
        statistics["p_min"] = self._p_min
        statistics["s_min"] = self._s_min

        if level >= self._p_min + self._drift_level * self._s_min:
            self._init_state()
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        if level >= self._p_min + self._warning_level * self._s_min:
            return DetectionResult(warning_detected=True, statistics=statistics)
        return DetectionResult(statistics=statistics)

    def reset(self) -> None:
        """Forget all statistics."""
        self._init_state()
        self._reset_counters()
