"""DDM — Drift Detection Method (Gama et al. 2004).

DDM monitors the error rate ``p_i`` of a classifier over a Bernoulli error
stream together with its standard deviation ``s_i = sqrt(p_i (1 - p_i) / i)``.
It remembers the minimum of ``p + s`` seen so far (``p_min``, ``s_min``) and
flags:

* a *warning* when ``p_i + s_i >= p_min + warning_level * s_min``,
* a *drift*  when ``p_i + s_i >= p_min + drift_level * s_min``,

after which the statistics are reset.  The default levels (2 and 3) are the
ones from the original paper and the MOA implementation used as a baseline in
the OPTWIN evaluation.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.core.base import (
    BatchResult,
    DetectionResult,
    DriftDetector,
    DriftType,
    as_value_array,
    seeded_running_argmin,
)
from repro.exceptions import ConfigurationError
from repro.stats.incremental import seeded_segment_means

__all__ = ["Ddm"]


class Ddm(DriftDetector):
    """Drift Detection Method for binary error streams.

    Parameters
    ----------
    min_num_instances:
        Number of observations before any warning/drift can be flagged.
    warning_level:
        Number of minimum standard deviations above the minimum error rate at
        which the warning zone starts.
    drift_level:
        Number of minimum standard deviations above the minimum error rate at
        which a drift is flagged.
    """

    def __init__(
        self,
        min_num_instances: int = 30,
        warning_level: float = 2.0,
        drift_level: float = 3.0,
    ) -> None:
        super().__init__()
        if min_num_instances < 1:
            raise ConfigurationError(
                f"min_num_instances must be >= 1, got {min_num_instances}"
            )
        if warning_level <= 0 or drift_level <= 0:
            raise ConfigurationError("warning_level and drift_level must be > 0")
        if warning_level >= drift_level:
            raise ConfigurationError(
                "warning_level must be smaller than drift_level "
                f"(got {warning_level} >= {drift_level})"
            )
        self._min_num_instances = min_num_instances
        self._warning_level = warning_level
        self._drift_level = drift_level
        self._init_state()

    def _init_state(self) -> None:
        self._n = 0
        self._error_sum = 0.0
        self._error_rate = 0.0
        self._p_min = math.inf
        self._s_min = math.inf
        self._ps_min = math.inf

    # ----------------------------------------------------------- properties

    @property
    def error_rate(self) -> float:
        """Current estimate of the error probability."""
        return self._error_rate

    @property
    def p_min(self) -> float:
        """Minimum error rate recorded since the last reset."""
        return self._p_min

    @property
    def s_min(self) -> float:
        """Standard deviation recorded together with :attr:`p_min`."""
        return self._s_min

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        error = 1.0 if value > 0.5 else 0.0
        self._n += 1
        # Sum-based mean: the error sum over 0/1 indicators is an exact
        # integer, so the rate equals the batched cumulative-sum formulation
        # bit for bit (an incremental mean would drift by rounding ulps).
        self._error_sum += error
        self._error_rate = self._error_sum / self._n
        std = math.sqrt(max(self._error_rate * (1.0 - self._error_rate), 0.0) / self._n)

        statistics = {
            "n": float(self._n),
            "error_rate": self._error_rate,
            "std": std,
        }

        if self._n < self._min_num_instances:
            return DetectionResult(statistics=statistics)

        if self._error_rate + std <= self._ps_min:
            self._p_min = self._error_rate
            self._s_min = std
            self._ps_min = self._error_rate + std

        level = self._error_rate + std
        statistics["p_min"] = self._p_min
        statistics["s_min"] = self._s_min

        if level >= self._p_min + self._drift_level * self._s_min:
            self._init_state()
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        if level >= self._p_min + self._warning_level * self._s_min:
            return DetectionResult(warning_detected=True, statistics=statistics)
        return DetectionResult(statistics=statistics)

    # ------------------------------------------------------- batched updates

    def update_batch(
        self, values: Iterable[float], collect_stats: bool = False
    ) -> BatchResult:
        """Closed-form batched update (bit-identical to the scalar loop).

        Between resets every DDM quantity has a closed form in the cumulative
        error count: the error rate is an exact integer sum divided by ``n``,
        the ``p_min``/``s_min`` pair is a running minimum served by
        ``np.minimum.accumulate``, and the drift/warning comparisons are plain
        vector comparisons.  Only a drift (which resets the statistics) ends a
        vectorised segment.
        """
        if collect_stats or type(self)._update_one is not Ddm._update_one:
            return super().update_batch(values, collect_stats=collect_stats)
        arr = as_value_array(values)
        n = arr.shape[0]
        if n == 0:
            return BatchResult(0)
        errors = (arr > 0.5).astype(np.float64)
        drift_indices: List[int] = []
        warning_indices: List[int] = []
        position = 0
        limit = self._BATCH_CHUNK
        while position < n:
            # Bounded segments keep the whole call O(n) even on streams where
            # drifts (which restart the closed form) are frequent.
            segment = errors[position : position + limit]
            count = segment.shape[0]
            sums, counts, rates = seeded_segment_means(
                self._error_sum, self._n, segment
            )
            stds = np.sqrt(np.maximum(rates * (1.0 - rates), 0.0) / counts)
            levels = rates + stds

            start_valid = max(0, self._min_num_instances - self._n - 1)
            if start_valid >= count:
                self._n += count
                self._error_sum = float(sums[-1])
                self._error_rate = float(rates[-1])
                position += count
                limit = min(limit * 4, self._BATCH_CHUNK)
                continue

            rates_v = rates[start_valid:]
            stds_v = stds[start_valid:]
            levels_v = levels[start_valid:]

            # The min update uses <= so ties move the (p_min, s_min) pair
            # forward, exactly like the scalar code.
            change_index = seeded_running_argmin(levels_v, self._ps_min)
            gather = np.maximum(change_index, 0)
            p_min = np.where(change_index >= 0, rates_v[gather], self._p_min)
            s_min = np.where(change_index >= 0, stds_v[gather], self._s_min)

            drift = levels_v >= p_min + self._drift_level * s_min
            warning = (~drift) & (
                levels_v >= p_min + self._warning_level * s_min
            )

            drift_positions = np.flatnonzero(drift)
            if drift_positions.size == 0:
                for rel in np.flatnonzero(warning):
                    warning_indices.append(position + start_valid + int(rel))
                self._n += count
                self._error_sum = float(sums[-1])
                self._error_rate = float(rates[-1])
                final_change = int(change_index[-1])
                if final_change >= 0:
                    self._p_min = float(rates_v[final_change])
                    self._s_min = float(stds_v[final_change])
                    self._ps_min = float(levels_v[final_change])
                position += count
                limit = min(limit * 4, self._BATCH_CHUNK)
                continue

            drift_rel = int(drift_positions[0])
            for rel in np.flatnonzero(warning[:drift_rel]):
                warning_indices.append(position + start_valid + int(rel))
            drift_index = position + start_valid + drift_rel
            drift_indices.append(drift_index)
            warning_indices.append(drift_index)
            self._init_state()
            position = drift_index + 1
            limit = self._BATCH_RESTART

        return self._finish_batch(
            n, drift_indices, warning_indices, DriftType.MEAN
        )

    def reset(self) -> None:
        """Forget all statistics."""
        self._init_state()
        self._reset_counters()

    # ---------------------------------------------------- snapshot / restore

    def _config_dict(self) -> dict:
        return {
            "min_num_instances": self._min_num_instances,
            "warning_level": self._warning_level,
            "drift_level": self._drift_level,
        }

    def _state_dict(self) -> dict:
        return {
            "n": self._n,
            "error_sum": self._error_sum,
            "error_rate": self._error_rate,
            "p_min": self._p_min,
            "s_min": self._s_min,
            "ps_min": self._ps_min,
        }

    def _load_state(self, state: dict) -> None:
        self._n = int(state["n"])
        self._error_sum = float(state["error_sum"])
        self._error_rate = float(state["error_rate"])
        self._p_min = float(state["p_min"])
        self._s_min = float(state["s_min"])
        self._ps_min = float(state["ps_min"])
