"""ADWIN — ADaptive WINdowing drift detector (Bifet & Gavaldà 2007).

ADWIN keeps a variable-length window ``W`` of the most recent values and flags
a drift whenever two adjacent sub-windows have means whose difference exceeds
a threshold ``epsilon_cut`` derived from the Hoeffding/normal bound at
confidence ``delta``.  To stay sub-linear in memory it stores the window as an
exponential histogram: buckets of exponentially growing size, at most
``max_buckets`` per size level, so memory is O(``max_buckets`` * log |W|) and
the cut check is O(log |W|) per element.

This is a from-scratch re-implementation following the original paper and the
behaviour of the MOA/River versions (normal-approximation ``epsilon_cut``,
check clock, bucket compression), which is what the OPTWIN paper used as its
main baseline.
"""

from __future__ import annotations

import math
from typing import Iterable, List

from repro.core.base import (
    BatchResult,
    DetectionResult,
    DriftDetector,
    DriftType,
    as_value_array,
)
from repro.exceptions import ConfigurationError

__all__ = ["Adwin"]


class _Bucket:
    """One exponential-histogram bucket: a summary of ``2**level`` elements."""

    __slots__ = ("total", "variance")

    def __init__(self, total: float = 0.0, variance: float = 0.0) -> None:
        self.total = total
        self.variance = variance


class _BucketRow:
    """All buckets of one size level, newest last."""

    __slots__ = ("buckets",)

    def __init__(self) -> None:
        self.buckets: List[_Bucket] = []


class Adwin(DriftDetector):
    """Adaptive-windowing drift detector.

    Parameters
    ----------
    delta:
        Confidence parameter of the cut test; smaller values make the detector
        more conservative.  The MOA default (used by the OPTWIN paper's
        baselines) is ``0.002``.
    clock:
        The cut check runs every ``clock`` elements (32 in MOA); set to 1 to
        check at every element.
    max_buckets:
        Maximum number of buckets per size level before compression.
    min_window_length:
        Minimum number of elements in each sub-window for a cut to be allowed.
    min_n_for_check:
        Minimum total window size before any cut check runs.
    """

    def __init__(
        self,
        delta: float = 0.002,
        clock: int = 32,
        max_buckets: int = 5,
        min_window_length: int = 5,
        min_n_for_check: int = 10,
    ) -> None:
        super().__init__()
        if not 0.0 < delta < 1.0:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        if clock < 1:
            raise ConfigurationError(f"clock must be >= 1, got {clock}")
        if max_buckets < 1:
            raise ConfigurationError(f"max_buckets must be >= 1, got {max_buckets}")
        self._delta = delta
        self._clock = clock
        self._max_buckets = max_buckets
        self._min_window_length = min_window_length
        self._min_n_for_check = min_n_for_check
        self._init_state()

    def _init_state(self) -> None:
        self._rows: List[_BucketRow] = [_BucketRow()]
        self._width = 0
        self._total = 0.0
        self._variance = 0.0
        self._ticks = 0

    # ----------------------------------------------------------- properties

    @property
    def delta(self) -> float:
        """Confidence parameter of the cut test."""
        return self._delta

    @property
    def width(self) -> int:
        """Current number of elements summarised by the window."""
        return self._width

    @property
    def estimation(self) -> float:
        """Current estimate of the stream mean (mean of the window)."""
        return self._total / self._width if self._width else 0.0

    @property
    def variance_estimate(self) -> float:
        """Current estimate of the stream variance."""
        return self._variance / self._width if self._width else 0.0

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        self._insert_element(value)
        self._compress_buckets()
        self._ticks += 1

        drift = False
        if self._ticks % self._clock == 0 and self._width >= self._min_n_for_check:
            drift = self._detect_and_shrink()

        statistics = {
            "window_size": float(self._width),
            "estimation": self.estimation,
        }
        if drift:
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        return DetectionResult(statistics=statistics)

    # ------------------------------------------------------- batched updates

    def update_batch(
        self, values: Iterable[float], collect_stats: bool = False
    ) -> BatchResult:
        """Chunked update, bit-identical to the scalar loop.

        ADWIN's exponential histogram is inherently sequential (every insert
        can cascade compressions and every cut shrinks the window), so the
        batch cannot be expressed in closed form.  Instead the per-element
        work is run in a tight loop that keeps the running ``width`` /
        ``total`` / ``variance`` in locals, inlines the level-0 insert,
        invokes bucket compression only when level 0 actually overflows, and
        synchronises with the instance state only at check-clock ticks —
        eliminating the per-element ``DetectionResult``/statistics-dict
        allocations and attribute traffic of the scalar path while driving
        the bucket structure through exactly the same sequence of states.
        """
        if collect_stats or type(self)._update_one is not Adwin._update_one:
            return super().update_batch(values, collect_stats=collect_stats)
        arr = as_value_array(values)
        n = arr.shape[0]
        if n == 0:
            return BatchResult(0)
        drift_indices: List[int] = []

        rows = self._rows
        row0_buckets = rows[0].buckets
        compress_trigger = self._max_buckets + 1
        clock = self._clock
        min_check = self._min_n_for_check
        ticks = self._ticks
        width = self._width
        total = self._total
        variance = self._variance

        for index, value in enumerate(arr.tolist()):
            # Inline _insert_element on the local running aggregates.
            row0_buckets.insert(0, _Bucket(total=value, variance=0.0))
            if width > 0:
                mean = total / width
                variance += (width * (value - mean) ** 2) / (width + 1)
            width += 1
            total += value
            if len(row0_buckets) > compress_trigger:
                # Inline the level-0 merge (the overwhelmingly common case:
                # two single-element buckets, size 1, variance 0) and cascade
                # into _compress_buckets only when level 1 overflows too.
                # _compress_buckets never touches the running aggregates, so
                # they stay in locals.
                if len(rows) < 2:
                    rows.append(_BucketRow())
                next_buckets = rows[1].buckets
                older = row0_buckets.pop()
                newer = row0_buckets.pop()
                merged_variance = (
                    older.variance
                    + newer.variance
                    + 0.5 * (older.total - newer.total) ** 2
                )
                next_buckets.insert(
                    0,
                    _Bucket(
                        total=older.total + newer.total, variance=merged_variance
                    ),
                )
                if len(next_buckets) > compress_trigger:
                    self._compress_buckets(level=1)
            ticks += 1
            if ticks % clock == 0 and width >= min_check:
                self._width = width
                self._total = total
                self._variance = variance
                if self._detect_and_shrink():
                    drift_indices.append(index)
                width = self._width
                total = self._total
                variance = self._variance

        self._width = width
        self._total = total
        self._variance = variance
        self._ticks = ticks
        return self._finish_batch(
            n, drift_indices, list(drift_indices), DriftType.MEAN
        )

    def reset(self) -> None:
        """Drop the whole window and restart."""
        self._init_state()
        self._reset_counters()

    # ---------------------------------------------------- snapshot / restore

    def _config_dict(self) -> dict:
        return {
            "delta": self._delta,
            "clock": self._clock,
            "max_buckets": self._max_buckets,
            "min_window_length": self._min_window_length,
            "min_n_for_check": self._min_n_for_check,
        }

    def _state_dict(self) -> dict:
        # The exponential histogram, level by level (newest bucket first
        # within a level, mirroring the in-memory order).
        return {
            "rows": [
                [[bucket.total, bucket.variance] for bucket in row.buckets]
                for row in self._rows
            ],
            "width": self._width,
            "total": self._total,
            "variance": self._variance,
            "ticks": self._ticks,
        }

    def _load_state(self, state: dict) -> None:
        rows: List[_BucketRow] = []
        for row_payload in state["rows"]:
            row = _BucketRow()
            row.buckets = [
                _Bucket(total=float(total), variance=float(variance))
                for total, variance in row_payload
            ]
            rows.append(row)
        if not rows:
            rows = [_BucketRow()]
        self._rows = rows
        self._width = int(state["width"])
        self._total = float(state["total"])
        self._variance = float(state["variance"])
        self._ticks = int(state["ticks"])

    # ----------------------------------------------------------- internals

    def _insert_element(self, value: float) -> None:
        row0 = self._rows[0]
        row0.buckets.insert(0, _Bucket(total=value, variance=0.0))
        if self._width > 0:
            mean = self._total / self._width
            self._variance += (self._width * (value - mean) ** 2) / (self._width + 1)
        self._width += 1
        self._total += value

    def _compress_buckets(self, level: int = 0) -> None:
        while level < len(self._rows):
            row = self._rows[level]
            if len(row.buckets) <= self._max_buckets + 1:
                break
            if level + 1 >= len(self._rows):
                self._rows.append(_BucketRow())
            next_row = self._rows[level + 1]
            # Merge the two oldest buckets of this level into one of the next.
            older = row.buckets.pop()
            newer = row.buckets.pop()
            size = float(2 ** level)
            mean_older = older.total / size
            mean_newer = newer.total / size
            merged_variance = (
                older.variance
                + newer.variance
                + size * size / (2.0 * size) * (mean_older - mean_newer) ** 2
            )
            next_row.buckets.insert(
                0, _Bucket(total=older.total + newer.total, variance=merged_variance)
            )
            level += 1

    def _iter_buckets_oldest_first(self):
        """Yield ``(size, bucket)`` pairs from the oldest to the newest."""
        for level in range(len(self._rows) - 1, -1, -1):
            size = 2 ** level
            for bucket in reversed(self._rows[level].buckets):
                yield size, bucket

    def _detect_and_shrink(self) -> bool:
        """Run the adjacent-sub-window cut test; shrink the window on drift."""
        drift_detected = False
        keep_checking = True
        while keep_checking:
            keep_checking = False
            n0 = 0.0
            sum0 = 0.0
            n1 = float(self._width)
            sum1 = self._total
            buckets = list(self._iter_buckets_oldest_first())
            # The newest bucket can never be the whole right-hand window.
            for size, bucket in buckets[:-1]:
                n0 += size
                sum0 += bucket.total
                n1 -= size
                sum1 -= bucket.total
                if n0 < self._min_window_length or n1 < self._min_window_length:
                    continue
                mean0 = sum0 / n0
                mean1 = sum1 / n1
                if abs(mean0 - mean1) > self._epsilon_cut(n0, n1):
                    drift_detected = True
                    keep_checking = True
                    self._drop_oldest_bucket()
                    break
        return drift_detected

    def _epsilon_cut(self, n0: float, n1: float) -> float:
        """Normal-approximation threshold from the ADWIN paper (Section 4)."""
        harmonic = 1.0 / (1.0 / n0 + 1.0 / n1)
        delta_prime = self._delta / math.log(max(self._width, 2))
        log_term = math.log(2.0 / delta_prime)
        variance = self.variance_estimate
        return math.sqrt((2.0 / harmonic) * variance * log_term) + (
            2.0 / (3.0 * harmonic)
        ) * log_term

    def _drop_oldest_bucket(self) -> None:
        """Remove the oldest bucket (the window's left edge) after a cut."""
        for level in range(len(self._rows) - 1, -1, -1):
            row = self._rows[level]
            if not row.buckets:
                continue
            bucket = row.buckets.pop()
            size = 2 ** level
            if self._width > size:
                mean_bucket = bucket.total / size
                mean_rest = (self._total - bucket.total) / (self._width - size)
                self._variance -= bucket.variance + (
                    size * (self._width - size) / self._width
                ) * (mean_bucket - mean_rest) ** 2
                self._variance = max(self._variance, 0.0)
            else:
                self._variance = 0.0
            self._width -= size
            self._total -= bucket.total
            if self._width <= 0:
                self._width = 0
                self._total = 0.0
                self._variance = 0.0
            return
