"""HDDM_A — drift detection with Hoeffding's inequality (Frías-Blanco et al. 2015).

HDDM_A monitors the running average of the values seen since the last reset
and compares, for every prefix, the average *before* a candidate cut point
with the overall average using Hoeffding's bound: if the recent data is worse
than the best historical prefix by more than the bound allows, a drift is
flagged.  The implementation below follows the moving-average (A_test) variant
with the standard one-sided bounds; it is an extension baseline (not part of
the paper's line-up) that, like OPTWIN, works for arbitrary bounded inputs.
"""

from __future__ import annotations

import math

from repro.core.base import DetectionResult, DriftDetector, DriftType
from repro.exceptions import ConfigurationError

__all__ = ["HddmA"]


class HddmA(DriftDetector):
    """Hoeffding-bound drift detector (average variant, increases only).

    Parameters
    ----------
    drift_confidence:
        Confidence for the drift bound (smaller = more conservative).
    warning_confidence:
        Confidence for the warning bound; must be larger than
        ``drift_confidence``.
    value_range:
        Width of the input range (1.0 for error indicators or normalised
        losses); required by Hoeffding's inequality.
    """

    def __init__(
        self,
        drift_confidence: float = 0.001,
        warning_confidence: float = 0.005,
        value_range: float = 1.0,
    ) -> None:
        super().__init__()
        if not 0.0 < drift_confidence < warning_confidence < 1.0:
            raise ConfigurationError(
                "need 0 < drift_confidence < warning_confidence < 1, got "
                f"{drift_confidence} / {warning_confidence}"
            )
        if value_range <= 0.0:
            raise ConfigurationError(f"value_range must be > 0, got {value_range}")
        self._drift_confidence = drift_confidence
        self._warning_confidence = warning_confidence
        self._value_range = value_range
        self._init_state()

    def _init_state(self) -> None:
        self._total_count = 0
        self._total_sum = 0.0
        self._best_count = 0
        self._best_sum = 0.0
        self._best_bound = math.inf

    # ------------------------------------------------------------- helpers

    def _hoeffding_bound(self, n: float, confidence: float) -> float:
        return self._value_range * math.sqrt(math.log(1.0 / confidence) / (2.0 * n))

    def _update_best_prefix(self) -> None:
        """Keep the prefix whose upper confidence bound on the mean is lowest."""
        mean = self._total_sum / self._total_count
        bound = mean + self._hoeffding_bound(self._total_count, self._drift_confidence)
        if bound < self._best_bound:
            self._best_bound = bound
            self._best_count = self._total_count
            self._best_sum = self._total_sum

    def _exceeds(self, confidence: float) -> bool:
        """Whether the post-prefix data is worse than the best prefix allows."""
        recent_count = self._total_count - self._best_count
        if recent_count < 1 or self._best_count < 1:
            return False
        recent_mean = (self._total_sum - self._best_sum) / recent_count
        best_mean = self._best_sum / self._best_count
        harmonic = 1.0 / (1.0 / recent_count + 1.0 / self._best_count)
        epsilon = self._value_range * math.sqrt(
            math.log(1.0 / confidence) / (2.0 * harmonic)
        )
        return recent_mean - best_mean > epsilon

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        self._total_count += 1
        self._total_sum += value
        self._update_best_prefix()

        statistics = {
            "n": float(self._total_count),
            "mean": self._total_sum / self._total_count,
            "best_prefix_n": float(self._best_count),
        }

        if self._exceeds(self._drift_confidence):
            self._init_state()
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        if self._exceeds(self._warning_confidence):
            return DetectionResult(warning_detected=True, statistics=statistics)
        return DetectionResult(statistics=statistics)

    def reset(self) -> None:
        """Forget all statistics."""
        self._init_state()
        self._reset_counters()
