"""HDDM_A — drift detection with Hoeffding's inequality (Frías-Blanco et al. 2015).

HDDM_A monitors the running average of the values seen since the last reset
and compares, for every prefix, the average *before* a candidate cut point
with the overall average using Hoeffding's bound: if the recent data is worse
than the best historical prefix by more than the bound allows, a drift is
flagged.  The implementation below follows the moving-average (A_test) variant
with the standard one-sided bounds; it is an extension baseline (not part of
the paper's line-up) that, like OPTWIN, works for arbitrary bounded inputs.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.core.base import (
    BatchResult,
    DetectionResult,
    DriftDetector,
    DriftType,
    as_value_array,
    seeded_running_argmin,
)
from repro.exceptions import ConfigurationError
from repro.stats.incremental import seeded_segment_means

__all__ = ["HddmA"]


class HddmA(DriftDetector):
    """Hoeffding-bound drift detector (average variant, increases only).

    Parameters
    ----------
    drift_confidence:
        Confidence for the drift bound (smaller = more conservative).
    warning_confidence:
        Confidence for the warning bound; must be larger than
        ``drift_confidence``.
    value_range:
        Width of the input range (1.0 for error indicators or normalised
        losses); required by Hoeffding's inequality.
    """

    def __init__(
        self,
        drift_confidence: float = 0.001,
        warning_confidence: float = 0.005,
        value_range: float = 1.0,
    ) -> None:
        super().__init__()
        if not 0.0 < drift_confidence < warning_confidence < 1.0:
            raise ConfigurationError(
                "need 0 < drift_confidence < warning_confidence < 1, got "
                f"{drift_confidence} / {warning_confidence}"
            )
        if value_range <= 0.0:
            raise ConfigurationError(f"value_range must be > 0, got {value_range}")
        self._drift_confidence = drift_confidence
        self._warning_confidence = warning_confidence
        self._value_range = value_range
        self._init_state()

    def _init_state(self) -> None:
        self._total_count = 0
        self._total_sum = 0.0
        self._best_count = 0
        self._best_sum = 0.0
        self._best_bound = math.inf

    # ------------------------------------------------------------- helpers

    def _hoeffding_bound(self, n: float, confidence: float) -> float:
        return self._value_range * math.sqrt(math.log(1.0 / confidence) / (2.0 * n))

    def _update_best_prefix(self) -> None:
        """Keep the prefix whose upper confidence bound on the mean is lowest."""
        mean = self._total_sum / self._total_count
        bound = mean + self._hoeffding_bound(self._total_count, self._drift_confidence)
        if bound < self._best_bound:
            self._best_bound = bound
            self._best_count = self._total_count
            self._best_sum = self._total_sum

    def _exceeds(self, confidence: float) -> bool:
        """Whether the post-prefix data is worse than the best prefix allows."""
        recent_count = self._total_count - self._best_count
        if recent_count < 1 or self._best_count < 1:
            return False
        recent_mean = (self._total_sum - self._best_sum) / recent_count
        best_mean = self._best_sum / self._best_count
        harmonic = 1.0 / (1.0 / recent_count + 1.0 / self._best_count)
        epsilon = self._value_range * math.sqrt(
            math.log(1.0 / confidence) / (2.0 * harmonic)
        )
        return recent_mean - best_mean > epsilon

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        self._total_count += 1
        self._total_sum += value
        self._update_best_prefix()

        statistics = {
            "n": float(self._total_count),
            "mean": self._total_sum / self._total_count,
            "best_prefix_n": float(self._best_count),
        }

        if self._exceeds(self._drift_confidence):
            self._init_state()
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        if self._exceeds(self._warning_confidence):
            return DetectionResult(warning_detected=True, statistics=statistics)
        return DetectionResult(statistics=statistics)

    # ------------------------------------------------------- batched updates

    def update_batch(
        self, values: Iterable[float], collect_stats: bool = False
    ) -> BatchResult:
        """Vectorised prefix-bound evaluation (bit-identical to the scalar loop).

        Between resets every HDDM_A quantity has a closed form in the
        cumulative sum: the prefix means come from one seeded cumulative sum,
        the best-prefix tracking is a running strict minimum of the Hoeffding
        upper bounds served by ``np.minimum.accumulate`` plus an index gather,
        and both ``_exceeds`` tests are plain vector comparisons.  Only a
        drift (which resets the statistics) ends a vectorised segment.
        """
        if collect_stats or type(self)._update_one is not HddmA._update_one:
            return super().update_batch(values, collect_stats=collect_stats)
        arr = as_value_array(values)
        n = arr.shape[0]
        if n == 0:
            return BatchResult(0)
        drift_indices: List[int] = []
        warning_indices: List[int] = []
        value_range = self._value_range
        drift_log = math.log(1.0 / self._drift_confidence)
        warning_log = math.log(1.0 / self._warning_confidence)
        position = 0
        limit = self._BATCH_CHUNK
        while position < n:
            # Bounded segments keep the whole call O(n) even on streams where
            # drifts (which restart the closed form) are frequent.
            segment = arr[position : position + limit]
            count = segment.shape[0]
            sums, counts, means = seeded_segment_means(
                self._total_sum, self._total_count, segment
            )
            bounds = means + value_range * np.sqrt(drift_log / (2.0 * counts))

            # The best-prefix update uses strict <, so ties keep the earlier
            # prefix, exactly like the scalar code.
            change_index = seeded_running_argmin(
                bounds, self._best_bound, strict=True
            )
            gather = np.maximum(change_index, 0)
            best_count = np.where(
                change_index >= 0, counts[gather], float(self._best_count)
            )
            best_sum = np.where(change_index >= 0, sums[gather], self._best_sum)

            recent_count = counts - best_count
            valid = (recent_count >= 1.0) & (best_count >= 1.0)
            safe_recent = np.where(valid, recent_count, 1.0)
            safe_best = np.where(valid, best_count, 1.0)
            recent_mean = (sums - best_sum) / safe_recent
            best_mean = best_sum / safe_best
            harmonic = 1.0 / (1.0 / safe_recent + 1.0 / safe_best)
            difference = recent_mean - best_mean
            drift = valid & (
                difference
                > value_range * np.sqrt(drift_log / (2.0 * harmonic))
            )
            warning = (
                valid
                & ~drift
                & (
                    difference
                    > value_range * np.sqrt(warning_log / (2.0 * harmonic))
                )
            )

            drift_positions = np.flatnonzero(drift)
            if drift_positions.size == 0:
                for rel in np.flatnonzero(warning):
                    warning_indices.append(position + int(rel))
                self._total_count += count
                self._total_sum = float(sums[-1])
                final_change = int(change_index[-1])
                if final_change >= 0:
                    self._best_count = int(counts[final_change])
                    self._best_sum = float(sums[final_change])
                    self._best_bound = float(bounds[final_change])
                position += count
                limit = min(limit * 4, self._BATCH_CHUNK)
                continue

            drift_rel = int(drift_positions[0])
            for rel in np.flatnonzero(warning[:drift_rel]):
                warning_indices.append(position + int(rel))
            drift_index = position + drift_rel
            drift_indices.append(drift_index)
            warning_indices.append(drift_index)
            self._init_state()
            position = drift_index + 1
            limit = self._BATCH_RESTART

        return self._finish_batch(
            n, drift_indices, warning_indices, DriftType.MEAN
        )

    def reset(self) -> None:
        """Forget all statistics."""
        self._init_state()
        self._reset_counters()

    # ---------------------------------------------------- snapshot / restore

    def _config_dict(self) -> dict:
        return {
            "drift_confidence": self._drift_confidence,
            "warning_confidence": self._warning_confidence,
            "value_range": self._value_range,
        }

    def _state_dict(self) -> dict:
        return {
            "total_count": self._total_count,
            "total_sum": self._total_sum,
            "best_count": self._best_count,
            "best_sum": self._best_sum,
            "best_bound": self._best_bound,
        }

    def _load_state(self, state: dict) -> None:
        self._total_count = int(state["total_count"])
        self._total_sum = float(state["total_sum"])
        self._best_count = int(state["best_count"])
        self._best_sum = float(state["best_sum"])
        self._best_bound = float(state["best_bound"])
