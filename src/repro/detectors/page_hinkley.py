"""Page–Hinkley test for change detection (extension baseline).

The Page–Hinkley (PH) test is a sequential analysis technique that accumulates
the difference between the observed values and their running mean, minus a
tolerance ``delta``, and flags a change when the accumulated sum drifts more
than ``threshold`` away from its minimum.  It is a common additional baseline
in the drift-detection literature (and available in MOA/River), so it is
included here as an extension beyond the paper's baseline set.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.core.base import (
    BatchResult,
    DetectionResult,
    DriftDetector,
    DriftType,
    as_value_array,
)
from repro.exceptions import ConfigurationError
from repro.stats.incremental import seeded_segment_means

__all__ = ["PageHinkley"]


class PageHinkley(DriftDetector):
    """Page–Hinkley change detector for increases in the monitored value.

    Parameters
    ----------
    delta:
        Tolerance subtracted from each deviation; small values make the test
        more sensitive.
    threshold:
        Detection threshold ``lambda`` on the accumulated statistic.
    alpha:
        Forgetting factor applied to the cumulative sum (1.0 disables
        forgetting).
    min_num_instances:
        Number of observations before a drift can be flagged.
    """

    def __init__(
        self,
        delta: float = 0.005,
        threshold: float = 50.0,
        alpha: float = 0.9999,
        min_num_instances: int = 30,
    ) -> None:
        super().__init__()
        if delta < 0:
            raise ConfigurationError(f"delta must be >= 0, got {delta}")
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold}")
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if min_num_instances < 1:
            raise ConfigurationError(
                f"min_num_instances must be >= 1, got {min_num_instances}"
            )
        self._delta = delta
        self._threshold = threshold
        self._alpha = alpha
        self._min_num_instances = min_num_instances
        self._init_state()

    def _init_state(self) -> None:
        self._n = 0
        self._sum = 0.0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        self._n += 1
        # Sum-based mean: ``np.add.accumulate`` performs the same left-to-right
        # additions, so the batched path reproduces this value bit for bit.
        self._sum += value
        self._mean = self._sum / self._n
        self._cumulative = self._alpha * self._cumulative + (
            value - self._mean - self._delta
        )
        self._minimum = min(self._minimum, self._cumulative)
        statistic = self._cumulative - self._minimum

        statistics = {
            "n": float(self._n),
            "mean": self._mean,
            "statistic": statistic,
            "threshold": self._threshold,
        }

        if self._n < self._min_num_instances:
            return DetectionResult(statistics=statistics)

        if statistic > self._threshold:
            self._init_state()
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        return DetectionResult(statistics=statistics)

    # ------------------------------------------------------- batched updates

    def update_batch(
        self, values: Iterable[float], collect_stats: bool = False
    ) -> BatchResult:
        """Batched update, bit-identical to the scalar loop.

        The running means of a whole between-drift segment are produced by one
        exact cumulative sum; the forgetting recurrence of the PH statistic is
        sequential, so it runs in a tight local-variable loop over the
        pre-computed deviations without any per-element allocations.
        """
        if collect_stats or type(self)._update_one is not PageHinkley._update_one:
            return super().update_batch(values, collect_stats=collect_stats)
        arr = as_value_array(values)
        n = arr.shape[0]
        if n == 0:
            return BatchResult(0)
        drift_indices: List[int] = []
        alpha = self._alpha
        threshold = self._threshold
        min_n = self._min_num_instances
        position = 0
        limit = self._BATCH_CHUNK
        while position < n:
            # Bounded segments keep the whole call O(n) even on streams where
            # drifts (which restart the closed form) are frequent.
            segment = arr[position : position + limit]
            count = segment.shape[0]
            sums, _, means = seeded_segment_means(self._sum, self._n, segment)
            deviations = ((segment - means) - self._delta).tolist()

            cumulative = self._cumulative
            minimum = self._minimum
            n_before = self._n
            drift_rel = -1
            for rel, deviation in enumerate(deviations):
                cumulative = alpha * cumulative + deviation
                minimum = min(minimum, cumulative)
                if n_before + rel + 1 < min_n:
                    continue
                if cumulative - minimum > threshold:
                    drift_rel = rel
                    break
            if drift_rel < 0:
                self._n += count
                self._sum = float(sums[-1])
                self._mean = float(means[-1])
                self._cumulative = cumulative
                self._minimum = minimum
                position += count
                limit = min(limit * 4, self._BATCH_CHUNK)
                continue
            drift_indices.append(position + drift_rel)
            self._init_state()
            position += drift_rel + 1
            limit = self._BATCH_RESTART

        return self._finish_batch(
            n, drift_indices, list(drift_indices), DriftType.MEAN
        )

    def reset(self) -> None:
        """Forget all statistics."""
        self._init_state()
        self._reset_counters()

    # ---------------------------------------------------- snapshot / restore

    def _config_dict(self) -> dict:
        return {
            "delta": self._delta,
            "threshold": self._threshold,
            "alpha": self._alpha,
            "min_num_instances": self._min_num_instances,
        }

    def _state_dict(self) -> dict:
        return {
            "n": self._n,
            "sum": self._sum,
            "mean": self._mean,
            "cumulative": self._cumulative,
            "minimum": self._minimum,
        }

    def _load_state(self, state: dict) -> None:
        self._n = int(state["n"])
        self._sum = float(state["sum"])
        self._mean = float(state["mean"])
        self._cumulative = float(state["cumulative"])
        self._minimum = float(state["minimum"])
