"""Page–Hinkley test for change detection (extension baseline).

The Page–Hinkley (PH) test is a sequential analysis technique that accumulates
the difference between the observed values and their running mean, minus a
tolerance ``delta``, and flags a change when the accumulated sum drifts more
than ``threshold`` away from its minimum.  It is a common additional baseline
in the drift-detection literature (and available in MOA/River), so it is
included here as an extension beyond the paper's baseline set.
"""

from __future__ import annotations

from repro.core.base import DetectionResult, DriftDetector, DriftType
from repro.exceptions import ConfigurationError

__all__ = ["PageHinkley"]


class PageHinkley(DriftDetector):
    """Page–Hinkley change detector for increases in the monitored value.

    Parameters
    ----------
    delta:
        Tolerance subtracted from each deviation; small values make the test
        more sensitive.
    threshold:
        Detection threshold ``lambda`` on the accumulated statistic.
    alpha:
        Forgetting factor applied to the cumulative sum (1.0 disables
        forgetting).
    min_num_instances:
        Number of observations before a drift can be flagged.
    """

    def __init__(
        self,
        delta: float = 0.005,
        threshold: float = 50.0,
        alpha: float = 0.9999,
        min_num_instances: int = 30,
    ) -> None:
        super().__init__()
        if delta < 0:
            raise ConfigurationError(f"delta must be >= 0, got {delta}")
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold}")
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if min_num_instances < 1:
            raise ConfigurationError(
                f"min_num_instances must be >= 1, got {min_num_instances}"
            )
        self._delta = delta
        self._threshold = threshold
        self._alpha = alpha
        self._min_num_instances = min_num_instances
        self._init_state()

    def _init_state(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    # ------------------------------------------------------------- updates

    def _update_one(self, value: float) -> DetectionResult:
        self._n += 1
        self._mean += (value - self._mean) / self._n
        self._cumulative = self._alpha * self._cumulative + (
            value - self._mean - self._delta
        )
        self._minimum = min(self._minimum, self._cumulative)
        statistic = self._cumulative - self._minimum

        statistics = {
            "n": float(self._n),
            "mean": self._mean,
            "statistic": statistic,
            "threshold": self._threshold,
        }

        if self._n < self._min_num_instances:
            return DetectionResult(statistics=statistics)

        if statistic > self._threshold:
            self._init_state()
            return DetectionResult(
                drift_detected=True,
                warning_detected=True,
                drift_type=DriftType.MEAN,
                statistics=statistics,
            )
        return DetectionResult(statistics=statistics)

    def reset(self) -> None:
        """Forget all statistics."""
        self._init_state()
        self._reset_counters()
