"""repro — a from-scratch reproduction of OPTWIN (Tosi & Theobald, ICDE 2024).

The package provides:

* :mod:`repro.core` — the OPTWIN drift detector and its optimal-cut machinery;
* :mod:`repro.detectors` — ADWIN, DDM, EDDM, STEPD, ECDD and extra baselines;
* :mod:`repro.stats` — the statistical substrate (incremental statistics,
  t/F tests, Wilcoxon);
* :mod:`repro.streams` — MOA-style stream generators, drift composition,
  error streams, and real-world surrogates;
* :mod:`repro.learners` — incremental learners (Naive Bayes, Hoeffding tree,
  perceptron, kNN) and the MLP surrogate of the paper's CNN;
* :mod:`repro.evaluation` — prequential evaluation, drift scoring, experiment
  runner, significance tests, reporting;
* :mod:`repro.pipelines` — drift-aware online-learning pipelines;
* :mod:`repro.experiments` — one driver per table/figure of the paper;
* :mod:`repro.serving` — a multi-tenant serving layer hosting thousands of
  long-lived monitors with bit-exact checkpoint/restore
  (``detector.state_dict()`` / ``load_state_dict()``), alert sinks, and a
  JSON-lines TCP server (``python -m repro.serving``); see
  ``docs/serving.md``.

Quickstart
----------
>>> from repro import Optwin
>>> detector = Optwin(delta=0.99, rho=0.5)
>>> for i, error in enumerate(error_stream):          # doctest: +SKIP
...     if detector.update(error).drift_detected:
...         print(f"drift at element {i}")

Performance
-----------
For high-throughput streams, feed detectors in chunks through the batched
API — it reports bit-identical drift indices at a fraction of the scalar
per-element cost.  Every exported detector has a batched fast path (OPTWIN,
DDM, RDDM, HDDM-A and STEPD evaluate whole between-drift segments in closed
form; EDDM, ECDD and Page-Hinkley run their sequential recurrences
allocation-free; ADWIN and KSWIN strip the per-element overhead from their
inherently sequential updates):

>>> drift_indices = detector.update_many(error_chunk)     # doctest: +SKIP
>>> outcome = detector.update_batch(error_chunk)          # doctest: +SKIP

Per-element diagnostics (the ``statistics`` dicts) are only materialised when
``update_batch(..., collect_stats=True)`` asks for them.  See
``docs/performance.md`` for the full story, the chunked prequential
evaluation (``detector_batch_size``), and how to run
``benchmarks/bench_runtime_per_element.py``.
"""

from repro.core import DetectionResult, DriftDetector, DriftType, Optwin, OptwinConfig
from repro.detectors import (
    Adwin,
    Ddm,
    Ecdd,
    Eddm,
    Kswin,
    NoDriftDetector,
    PageHinkley,
    Stepd,
)
from repro.exceptions import (
    ConfigurationError,
    NotEnoughDataError,
    NotFittedError,
    ReproError,
    StreamExhaustedError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Optwin",
    "OptwinConfig",
    "DriftDetector",
    "DetectionResult",
    "DriftType",
    "Adwin",
    "Ddm",
    "Eddm",
    "Stepd",
    "Ecdd",
    "PageHinkley",
    "Kswin",
    "NoDriftDetector",
    "ReproError",
    "ConfigurationError",
    "NotEnoughDataError",
    "NotFittedError",
    "StreamExhaustedError",
]
