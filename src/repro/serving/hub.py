"""MonitorHub — a multi-tenant registry of long-lived drift monitors.

The hub hosts many named ``(tenant, monitor_id) → detector`` entries
concurrently, feeds them through the detectors' vectorised ``update_batch``
fast paths, fires :class:`~repro.serving.sinks.DriftAlert` events on
warning/drift transitions, and checkpoints the whole registry to disk so a
restarted process resumes every monitor bit-exactly where it stopped.

Design points:

* **Batched ingestion** — :meth:`MonitorHub.ingest` accepts an arbitrary
  interleaving of per-monitor events, buffers them per monitor, and flushes
  each monitor's buffer with a single ``update_batch`` call (grouped so that
  same-configured monitors flush consecutively and share per-configuration
  caches such as OPTWIN's cut tables).  This is what turns one-Python-call-
  per-event serving into vectorised serving; ``benchmarks/
  bench_serving_throughput.py`` measures the gap.
* **Checkpoint/restore** — :meth:`MonitorHub.checkpoint` writes one JSON
  document (schema-versioned, atomic tmp-file + ``os.replace``) containing a
  bit-exact snapshot of every detector plus a config hash of the hub
  composition, following the orchestrator's resume-from-partial idiom.  A hub
  constructed with the same ``checkpoint_dir`` resumes from it automatically.
* **Alert transitions** — sinks fire on *transitions*: one ``"warning"``
  alert per entry into the warning zone (not per warning element) and one
  ``"drift"`` alert per flagged drift.
* **Durable alert bus** — with a ``wal_dir``, every alert is appended to a
  segmented, CRC-checked, fsync'd write-ahead log (:class:`~repro.serving.
  wal.AlertWal`) *before* any sink sees it, each alert carrying a monotonic
  per-monitor sequence number that also lives in the checkpoint schema.  A
  restarted hub replays the WAL tail past its checkpoint to its sinks
  (:meth:`replay_wal`, flagged ``redelivered``) and suppresses the live
  re-fires a producer's replay regenerates — ``kill -9`` loses no alert and
  delivers none twice (see ``docs/serving.md``, "Durability & delivery
  semantics", and ``tests/integration/test_wal_crash_matrix.py``).
"""

from __future__ import annotations

import json
import logging
import numbers
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.base import BatchResult, DriftDetector, as_value_array
from repro.exceptions import ConfigurationError, SnapshotError
from repro.obs.journal import EventJournal
from repro.obs.prom import UpdateTimings
from repro.obs.trace import SpanHandle, TraceContext, Tracer
from repro.serving.metrics import LatencyWindow, RateMeter
from repro.serving.sinks import AlertSink, DriftAlert
from repro.serving.snapshot import (
    atomic_write_json,
    build_detector,
    restore_detector,
    sanitize,
    snapshot_detector,
)
from repro.serving.wal import AlertWal

__all__ = ["MonitorHub", "ObserveResult", "HUB_SCHEMA_VERSION", "CHECKPOINT_FILENAME"]

logger = logging.getLogger(__name__)

#: Version of the hub checkpoint document schema.  Version 2 added the
#: per-monitor ``alert_seq`` counter (the WAL replay watermark); version-1
#: checkpoints are still readable (their counters restore as zero, which is
#: correct — they predate the WAL).
HUB_SCHEMA_VERSION = 2

#: Checkpoint schema versions :meth:`MonitorHub._restore_from` accepts.
_READABLE_SCHEMA_VERSIONS = (1, 2)

#: File name of the hub checkpoint inside ``checkpoint_dir``.
CHECKPOINT_FILENAME = "hub-checkpoint.json"

_MonitorKey = Tuple[str, str]
#: One ingestion event: ``(tenant, monitor_id, value-or-chunk)``.
Event = Tuple[str, str, Union[float, Sequence[float]]]


@dataclass(frozen=True)
class ObserveResult:
    """Outcome of feeding one monitor a chunk of values.

    ``offset`` is the monitor's lifetime element count before the chunk, so
    ``drift_positions`` / ``warning_positions`` are global stream positions.
    """

    tenant: str
    monitor_id: str
    offset: int
    batch: BatchResult

    @property
    def n_processed(self) -> int:
        """Number of elements consumed from the chunk."""
        return self.batch.n_processed

    @property
    def drift_positions(self) -> List[int]:
        """Lifetime stream positions where drifts were flagged."""
        return [self.offset + index for index in self.batch.drift_indices]

    @property
    def warning_positions(self) -> List[int]:
        """Lifetime stream positions where the warning zone was active."""
        return [self.offset + index for index in self.batch.warning_indices]


class _MonitorEntry:
    """One hosted monitor: identity, detector, and alert-transition state."""

    __slots__ = (
        "tenant",
        "monitor_id",
        "detector",
        "group_key",
        "in_warning",
        "alert_seq",
        "timing_recorder",
    )

    def __init__(
        self,
        tenant: str,
        monitor_id: str,
        detector: DriftDetector,
        in_warning: bool = False,
        alert_seq: int = 0,
    ) -> None:
        self.tenant = tenant
        self.monitor_id = monitor_id
        self.detector = detector
        self.group_key = _group_key(detector)
        self.in_warning = in_warning
        #: Sequence number of this monitor's most recently *assigned* alert
        #: (1-based; 0 = never alerted).  Deterministic: a restored monitor
        #: re-fed the same elements re-assigns the same numbers.
        self.alert_seq = alert_seq
        #: Lazily-bound per-monitor update-timing handle (hub instrumentation).
        self.timing_recorder: Optional[Any] = None


def _coalesce(parts: List[Any]) -> "np.ndarray":
    """Concatenate buffered ingest payloads (scalars and chunks) in order.

    Scalars are anything :class:`numbers.Real` plus ``np.bool_`` (which
    registers in no ``numbers`` ABC) — numpy scalars such as ``np.int64``
    are *not* ``int`` and used to fall through to the chunk branch, where
    ``np.fromiter`` blows up on a 0-d value.
    """
    if len(parts) == 1:
        part = parts[0]
        if isinstance(part, (numbers.Real, np.bool_)):
            return np.asarray([float(part)], dtype=np.float64)
        return as_value_array(part)
    arrays: List["np.ndarray"] = []
    scalars: List[float] = []
    for part in parts:
        if isinstance(part, (numbers.Real, np.bool_)):
            scalars.append(float(part))
            continue
        if scalars:
            arrays.append(np.asarray(scalars, dtype=np.float64))
            scalars = []
        arrays.append(as_value_array(part))
    if scalars:
        arrays.append(np.asarray(scalars, dtype=np.float64))
    return np.concatenate(arrays)


def _group_key(detector: DriftDetector) -> str:
    """Configuration identity used to group same-configured monitors."""
    return json.dumps(
        {"detector": type(detector).__name__, "config": sanitize(detector._config_dict())},
        sort_keys=True,
        separators=(",", ":"),
    )


class MonitorHub:
    """Registry and execution engine for many concurrent drift monitors.

    Parameters
    ----------
    checkpoint_dir:
        Directory for hub checkpoints.  When it already holds a checkpoint,
        the hub resumes from it (pass ``resume=False`` to start fresh).
    sinks:
        Alert sinks notified of warning/drift transitions.
    checkpoint_every:
        Automatically checkpoint after this many observed values (across all
        monitors); ``None`` disables automatic checkpointing.
    wal_dir:
        Directory of the durable alert write-ahead log (``None`` disables
        the WAL).  With a WAL, every alert and per-monitor ingest watermark
        is logged before sinks fire, and a resumed hub re-delivers the
        post-checkpoint alert tail to its sinks exactly once.
    wal_fsync:
        WAL durability mode — ``"batch"`` (default; one fsync per
        ``ingest``/``observe`` flush), ``"always"`` (per record), or
        ``"off"`` (OS flush only).
    wal_segment_bytes, wal_retain_segments:
        Segment rotation size and history retention of the WAL (see
        :class:`~repro.serving.wal.AlertWal`).
    wal_auto_replay:
        Replay the WAL tail to the constructor-provided ``sinks`` during
        construction (the library default).  Front-ends that attach sinks
        *after* construction (the TCP server's alert queue) pass ``False``
        and call :meth:`replay_wal` once their sinks are in place.
    tracer:
        A :class:`~repro.obs.trace.Tracer`; defaults to a disabled one
        (``sample_rate=0``), so tracing costs one predicate per call site
        until a front-end opts in.
    journal:
        An :class:`~repro.obs.journal.EventJournal` shared with the
        front-end; defaults to a private bounded ring (the hub always
        journals — WAL rotations, slow flushes — so the black box exists
        before anyone configures observability).
    slow_flush_ms:
        Journal a ``slow_flush`` event whenever an ``ingest``/``observe``
        flush takes at least this many milliseconds (``None`` disables).
    instrument:
        Record per-detector-class update-time histograms and per-monitor
        cost attribution (:class:`~repro.obs.prom.UpdateTimings`).  On by
        default; ``False`` is the measured-baseline seam of
        ``benchmarks/bench_obs_overhead.py``.
    """

    def __init__(
        self,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        sinks: Iterable[AlertSink] = (),
        checkpoint_every: Optional[int] = None,
        resume: bool = True,
        wal_dir: Optional[Union[str, Path]] = None,
        wal_fsync: str = "batch",
        wal_segment_bytes: int = 4 * 1024 * 1024,
        wal_retain_segments: int = 8,
        wal_auto_replay: bool = True,
        tracer: Optional[Tracer] = None,
        journal: Optional[EventJournal] = None,
        slow_flush_ms: Optional[float] = None,
        instrument: bool = True,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if checkpoint_every is not None and checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_dir — without one the "
                "periodic checkpoints would silently never be written"
            )
        self._checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self._sinks: List[AlertSink] = list(sinks)
        self._checkpoint_every = checkpoint_every
        self._entries: Dict[_MonitorKey, _MonitorEntry] = {}
        #: group key → monitor keys, in registration order; flush order of
        #: :meth:`ingest` so same-configured monitors run consecutively.
        self._groups: Dict[str, List[_MonitorKey]] = {}
        self._n_events = 0
        self._events_since_checkpoint = 0
        self._n_sink_failures = 0
        self._sink_failures_by_tenant: Dict[str, int] = {}
        #: Per-monitor ``alert_seq`` as recorded in the restored checkpoint
        #: (the replay floor: alerts at or below it were delivered before
        #: the checkpoint was written).
        self._checkpoint_seq: Dict[_MonitorKey, int] = {}
        #: Per-monitor highest seq already delivered to sinks by a previous
        #: process or this process's restore replay; live re-fires at or
        #: below it are suppressed instead of double-delivered.
        self._replayed_through: Dict[_MonitorKey, int] = {}
        self._n_replay_suppressed = 0
        self._n_wal_replayed = 0
        self._flush_latency = LatencyWindow(1024)
        self._ingest_rate = RateMeter(window=60.0)
        self._tracer = tracer if tracer is not None else Tracer()
        self._owns_journal = journal is None
        self._journal = journal if journal is not None else EventJournal(capacity=256)
        if slow_flush_ms is not None and slow_flush_ms <= 0:
            raise ConfigurationError(
                f"slow_flush_ms must be positive, got {slow_flush_ms}"
            )
        self._slow_flush_ms = slow_flush_ms
        self._timings: Optional[UpdateTimings] = (
            UpdateTimings() if instrument else None
        )
        #: Timings parked by :meth:`set_instrumented` so a pause/resume
        #: cycle keeps its accumulated attribution.
        self._paused_timings: Optional[UpdateTimings] = None
        #: Span of the flush in progress, so deep call sites (sink emits)
        #: can hang children off it without threading a parameter through.
        self._active_span: Optional[SpanHandle] = None
        if resume and self._checkpoint_dir is not None:
            path = self._checkpoint_dir / CHECKPOINT_FILENAME
            if path.is_file():
                self._restore_from(path)
        self._wal: Optional[AlertWal] = None
        self._wal_replay_pending = False
        if wal_dir is not None:
            self._wal = AlertWal(
                wal_dir,
                fsync=wal_fsync,
                segment_bytes=wal_segment_bytes,
                retain_segments=wal_retain_segments,
                on_rotate=self._on_wal_rotate,
            )
            if resume:
                self._wal_replay_pending = True
                if wal_auto_replay:
                    self.replay_wal()

    # ---------------------------------------------------------- registration

    def register(
        self,
        tenant: str,
        monitor_id: str,
        detector: Union[str, DriftDetector] = "OPTWIN",
        params: Optional[Mapping[str, Any]] = None,
        exist_ok: bool = False,
    ) -> DriftDetector:
        """Register a monitor and return its detector.

        ``detector`` is a registry name (e.g. ``"OPTWIN"``, ``"Adwin"``)
        built with ``params`` as constructor kwargs, or a ready-made
        :class:`DriftDetector` instance.  Registering an existing key raises
        unless ``exist_ok`` is set, in which case the existing detector is
        returned when the requested configuration matches (the idempotent
        re-register of a client reconnecting after a hub restart).
        """
        key = (str(tenant), str(monitor_id))
        if isinstance(detector, DriftDetector):
            if params is not None:
                raise ConfigurationError(
                    "params are only valid with a detector name, not an instance"
                )
            candidate = detector
        else:
            candidate = build_detector(detector, params)
        existing = self._entries.get(key)
        if existing is not None:
            if not exist_ok:
                raise ConfigurationError(
                    f"monitor {key[0]}/{key[1]} is already registered"
                )
            if existing.group_key != _group_key(candidate):
                raise ConfigurationError(
                    f"monitor {key[0]}/{key[1]} exists with a different "
                    "detector configuration"
                )
            return existing.detector
        entry = _MonitorEntry(key[0], key[1], candidate)
        self._entries[key] = entry
        self._groups.setdefault(entry.group_key, []).append(key)
        return candidate

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: _MonitorKey) -> bool:
        return tuple(key) in self._entries

    def monitors(self) -> Iterator[Tuple[str, str, DriftDetector]]:
        """Iterate ``(tenant, monitor_id, detector)`` in registration order."""
        for (tenant, monitor_id), entry in self._entries.items():
            yield tenant, monitor_id, entry.detector

    def detector(self, tenant: str, monitor_id: str) -> DriftDetector:
        """The detector behind one monitor (raises for unknown keys)."""
        return self._entry(tenant, monitor_id).detector

    def _entry(self, tenant: str, monitor_id: str) -> _MonitorEntry:
        entry = self._entries.get((str(tenant), str(monitor_id)))
        if entry is None:
            raise ConfigurationError(
                f"unknown monitor {tenant}/{monitor_id}; register it first"
            )
        return entry

    def add_sink(self, sink: AlertSink) -> None:
        """Attach an additional alert sink."""
        self._sinks.append(sink)

    # ------------------------------------------------------------ relocation

    def export_monitors(
        self, keys: Iterable[_MonitorKey]
    ) -> List[Dict[str, Any]]:
        """Snapshot selected monitors for relocation to another hub.

        Returns one record per key in the checkpoint's ``monitors`` schema
        (identity, transition state, ``alert_seq``, bit-exact detector
        snapshot) — exactly what :meth:`import_monitors` consumes on the
        receiving hub.  Read-only: the exporting hub keeps serving the
        monitors until :meth:`forget_monitors` drops them.  This is the
        state hand-off underneath :meth:`~repro.serving.sharded.ShardedHub.
        reshard`.
        """
        records: List[Dict[str, Any]] = []
        for tenant, monitor_id in keys:
            entry = self._entry(tenant, monitor_id)
            records.append(
                {
                    "tenant": entry.tenant,
                    "monitor_id": entry.monitor_id,
                    "in_warning": entry.in_warning,
                    "alert_seq": entry.alert_seq,
                    "snapshot": snapshot_detector(entry.detector),
                }
            )
        return records

    def import_monitors(self, records: Iterable[Dict[str, Any]]) -> int:
        """Adopt monitors exported from another hub; return the count.

        Restores each record bit-exactly — detector state, warning-zone
        transition flag, and the ``alert_seq`` counter, so the monitor's
        next alert continues the sequence the exporting hub left off at
        (exactly-once delivery survives the move).  A key that already
        exists raises :class:`ConfigurationError` before anything is
        adopted.  The hub's lifetime event count adopts each detector's
        ``n_seen`` (and :meth:`forget_monitors` sheds it), keeping
        cluster-wide ``n_events`` invariant across relocations.
        """
        records = list(records)
        for record in records:
            key = (str(record["tenant"]), str(record["monitor_id"]))
            if key in self._entries:
                raise ConfigurationError(
                    f"monitor {key[0]}/{key[1]} is already registered"
                )
        for record in records:
            try:
                detector = restore_detector(record["snapshot"])
                entry = _MonitorEntry(
                    str(record["tenant"]),
                    str(record["monitor_id"]),
                    detector,
                    in_warning=bool(record["in_warning"]),
                    alert_seq=int(record.get("alert_seq", 0)),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise SnapshotError(f"corrupt monitor export record: {exc}") from exc
            key = (entry.tenant, entry.monitor_id)
            self._entries[key] = entry
            self._groups.setdefault(entry.group_key, []).append(key)
            self._n_events += detector.n_seen
            if self._wal is not None:
                self._wal.append_watermark(
                    entry.tenant, entry.monitor_id, detector.n_seen
                )
        if records:
            self._commit_wal()
        return len(records)

    def forget_monitors(self, keys: Iterable[_MonitorKey]) -> int:
        """Drop monitors handed off to another hub; return how many existed.

        Unknown keys are skipped (forget is the idempotent second half of a
        relocation, and crash recovery may retry it).  With a WAL, a
        ``delivered`` marker is appended at each monitor's ``alert_seq``
        first: every alert this hub ever fired for the monitor was delivered
        before the hand-off, so a later crash-replay of this shard's WAL
        must not re-deliver the departed monitor's tail.
        """
        n = 0
        for tenant, monitor_id in keys:
            key = (str(tenant), str(monitor_id))
            entry = self._entries.pop(key, None)
            if entry is None:
                continue
            group = self._groups.get(entry.group_key)
            if group is not None:
                try:
                    group.remove(key)
                except ValueError:
                    pass
                if not group:
                    del self._groups[entry.group_key]
            self._n_events = max(0, self._n_events - entry.detector.n_seen)
            self._checkpoint_seq.pop(key, None)
            self._replayed_through.pop(key, None)
            if self._wal is not None and entry.alert_seq > 0:
                self._wal.append_delivered(
                    entry.tenant, entry.monitor_id, entry.alert_seq
                )
            n += 1
        if n:
            self._commit_wal()
        return n

    # ------------------------------------------------------------- ingestion

    def observe(
        self,
        tenant: str,
        monitor_id: str,
        values: Union[float, Sequence[float]],
        trace_ctx: Optional[TraceContext] = None,
    ) -> ObserveResult:
        """Feed one monitor a value or chunk of values (oldest first)."""
        entry = self._entry(tenant, monitor_id)
        span = self._tracer.begin(
            "hub.observe", trace_ctx, tenant=entry.tenant, monitor=entry.monitor_id
        )
        started = time.perf_counter()
        self._active_span = span
        try:
            result = self._feed(entry, values, span)
            self._commit_wal(span)
        finally:
            self._active_span = None
        elapsed = time.perf_counter() - started
        self._flush_latency.add(elapsed)
        if span is not None:
            span.add(n=result.n_processed)
            span.end()
        self._note_slow_flush(elapsed, 1)
        self._maybe_checkpoint()
        return result

    def observe_with_stats(
        self,
        tenant: str,
        monitor_id: str,
        values: Union[float, Sequence[float]],
        trace_ctx: Optional[TraceContext] = None,
    ) -> Tuple[ObserveResult, Dict[str, Any]]:
        """Feed one monitor and return ``(outcome, per-monitor stats)``.

        One call for front-ends that report post-update counters with every
        response; on a sharded hub the pair costs a single worker round-trip
        instead of two.
        """
        outcome = self.observe(tenant, monitor_id, values, trace_ctx=trace_ctx)
        return outcome, self.stats(tenant, monitor_id)

    def ingest(
        self,
        events: Iterable[Event],
        trace_ctx: Optional[TraceContext] = None,
    ) -> List[ObserveResult]:
        """Feed an interleaved batch of events through the vectorised paths.

        Events for the same monitor keep their relative order; each monitor's
        buffered values are flushed with a single ``update_batch`` call, and
        monitors flush group by group so same-configured detectors run
        consecutively.  Returns one :class:`ObserveResult` per monitor that
        received data, in flush order.  ``trace_ctx`` stitches this flush
        under a front-end's span (a sharded fan-out, the TCP server's
        request span); without one the hub's own tracer samples a root.
        """
        # Buffer whole payloads (scalars or chunks) per monitor and coalesce
        # once at flush time — per-element Python conversion here would cost
        # more than the vectorised detector work it feeds.
        span = self._tracer.begin("hub.ingest", trace_ctx)
        started = time.perf_counter()
        buffers: Dict[_MonitorKey, List[Any]] = {}
        for tenant, monitor_id, payload in events:
            key = (str(tenant), str(monitor_id))
            if key not in self._entries:
                raise ConfigurationError(
                    f"unknown monitor {key[0]}/{key[1]}; register it first"
                )
            buffers.setdefault(key, []).append(payload)
        results: List[ObserveResult] = []
        self._active_span = span
        try:
            for keys in self._groups.values():
                for key in keys:
                    parts = buffers.get(key)
                    if parts:
                        results.append(
                            self._feed(self._entries[key], _coalesce(parts), span)
                        )
            self._commit_wal(span)
        finally:
            self._active_span = None
        elapsed = time.perf_counter() - started
        self._flush_latency.add(elapsed)
        if span is not None:
            span.add(
                n_monitors=len(results),
                n_events=sum(outcome.n_processed for outcome in results),
            )
            span.end()
        self._note_slow_flush(elapsed, len(results))
        self._maybe_checkpoint()
        return results

    def _feed(
        self,
        entry: _MonitorEntry,
        values: Union[float, Sequence[float]],
        span: Optional[SpanHandle] = None,
    ) -> ObserveResult:
        # as_value_array accepts bare real scalars (incl. numpy scalars) and
        # 0-d arrays directly, yielding a one-element chunk.
        chunk = as_value_array(values)
        detector = entry.detector
        offset = detector.n_seen
        # Gated so the unsampled path never pays for the kwargs dict — this
        # runs once per monitor per flush, the hottest instrumented site.
        child = None
        if span is not None:
            child = self._tracer.start_span(
                "monitor.update_batch",
                span,
                tenant=entry.tenant,
                monitor=entry.monitor_id,
                detector=type(detector).__name__,
                n=int(chunk.shape[0]),
            )
        if self._timings is not None:
            recorder = entry.timing_recorder
            if recorder is None:
                recorder = entry.timing_recorder = self._timings.recorder(
                    type(detector).__name__, entry.tenant, entry.monitor_id
                )
            # tick() counts every call but elects only a sample of them for
            # the clock reads + histogram insert — the unsampled path is one
            # increment, keeping instrumented ingest inside its <2% budget.
            if recorder.tick():
                update_started = time.perf_counter()
                batch = detector.update_batch(chunk)
                recorder.record(
                    time.perf_counter() - update_started, batch.n_processed
                )
            else:
                batch = detector.update_batch(chunk)
        else:
            batch = detector.update_batch(chunk)
        if child is not None:
            child.end()
        self._n_events += batch.n_processed
        self._events_since_checkpoint += batch.n_processed
        self._ingest_rate.add(batch.n_processed)
        self._fire_alerts(entry, batch, offset)
        if self._wal is not None and batch.n_processed > 0:
            self._wal.append_watermark(
                entry.tenant, entry.monitor_id, detector.n_seen
            )
        return ObserveResult(entry.tenant, entry.monitor_id, offset, batch)

    def _commit_wal(self, span: Optional[SpanHandle] = None) -> None:
        if self._wal is not None:
            child = self._tracer.start_span("wal.commit", span)
            self._wal.commit()
            if child is not None:
                child.end()

    def _note_slow_flush(self, elapsed: float, n_monitors: int) -> None:
        if self._slow_flush_ms is None:
            return
        ms = elapsed * 1000.0
        if ms >= self._slow_flush_ms:
            self._journal.record(
                "slow_flush",
                ms=round(ms, 3),
                threshold_ms=self._slow_flush_ms,
                n_monitors=n_monitors,
            )

    def _on_wal_rotate(self, info: Dict[str, Any]) -> None:
        self._journal.record("wal_rotate", **info)

    def _fire_alerts(
        self, entry: _MonitorEntry, batch: BatchResult, offset: int
    ) -> None:
        n = batch.n_processed
        if not batch.warning_indices:
            if n > 0:
                entry.in_warning = False
            return
        detector = entry.detector
        drift_set = set(batch.drift_indices)
        n_drifts_before = detector.n_drifts - len(batch.drift_indices)
        drift_number = 0
        # Index of the previous warning element; -1 "continues" a zone that
        # was active at the end of the previous chunk, -2 never matches.
        prev_warn = -1 if entry.in_warning else -2
        for index in batch.warning_indices:
            if index in drift_set:
                drift_number += 1
                self._fire(
                    entry, "drift", offset + index, n_drifts_before + drift_number
                )
                # The drift resets the detector, ending any warning zone.
                prev_warn = -2
            else:
                if index != prev_warn + 1:
                    self._fire(
                        entry,
                        "warning",
                        offset + index,
                        n_drifts_before + drift_number,
                    )
                prev_warn = index
        entry.in_warning = prev_warn == n - 1

    def _fire(
        self, entry: _MonitorEntry, kind: str, position: int, n_drifts: int
    ) -> None:
        """Assign the next sequence number, log to the WAL, deliver to sinks.

        The order is the durability contract: the WAL append happens before
        any sink sees the alert, so a crash at any point leaves the alert
        either (a) durable in the WAL — re-delivered by the restore replay —
        or (b) not yet durable — but then the detector state that produced
        it also rolls back to the checkpoint, and the producer's replay
        re-fires it with the *same* sequence number (alert numbering is a
        deterministic function of the element stream).  Re-fires the restore
        already delivered (``seq <= replayed_through``) are suppressed, not
        double-delivered.
        """
        entry.alert_seq += 1
        seq = entry.alert_seq
        key = (entry.tenant, entry.monitor_id)
        alert = DriftAlert(
            tenant=entry.tenant,
            monitor_id=entry.monitor_id,
            kind=kind,
            position=position,
            detector=type(entry.detector).__name__,
            n_drifts=n_drifts,
            seq=seq,
            ts=time.time(),
        )
        if seq <= self._replayed_through.get(key, 0):
            self._n_replay_suppressed += 1
            return
        if self._wal is not None:
            self._wal.append_alert(alert)
        self._emit(alert)

    def _emit(self, alert: DriftAlert) -> None:
        """Deliver one alert to every sink, tolerating per-sink failures.

        A raising sink is a *reporting* problem, never a monitoring problem:
        the detectors already consumed the values by the time alerts fire, so
        letting a sink exception escape ``observe``/``ingest`` would abort the
        flush half-way and leave the caller believing state it cannot see —
        exactly the divergence a checkpointed serving system cannot afford.
        Failures are counted (``stats()["n_sink_failures"]``), logged, and the
        remaining sinks still receive the alert.
        """
        for sink in self._sinks:
            child = self._tracer.start_span(
                "sink.emit", self._active_span, sink=type(sink).__name__
            )
            try:
                sink.emit(alert)
            except Exception:
                self._n_sink_failures += 1
                self._sink_failures_by_tenant[alert.tenant] = (
                    self._sink_failures_by_tenant.get(alert.tenant, 0) + 1
                )
                logger.exception(
                    "alert sink %r failed for %s/%s; detector state is "
                    "unaffected",
                    sink,
                    alert.tenant,
                    alert.monitor_id,
                )
            finally:
                if child is not None:
                    child.end()

    # ------------------------------------------------------------ WAL replay

    @property
    def wal_replay_pending(self) -> bool:
        """True while a restored WAL tail has not yet been replayed."""
        return self._wal_replay_pending

    def replay_wal(self) -> int:
        """Re-deliver the WAL's post-checkpoint alert tail to the sinks.

        Every WAL alert whose sequence number exceeds both the restored
        checkpoint's ``alert_seq`` and the log's delivered-through marker is
        emitted once more, flagged ``redelivered=True``, in original append
        order.  A delivered-through marker is then appended (bounding the
        duplication window of a crash *during* replay), and the replayed
        numbers become suppression floors for the live re-fires a producer's
        replay-from-watermark regenerates.  Idempotent: the second call (and
        a hub without a WAL) returns 0 without delivering anything.
        """
        if self._wal is None or not self._wal_replay_pending:
            return 0
        self._wal_replay_pending = False
        replayed: Dict[_MonitorKey, int] = {}
        n = 0
        for record in self._wal.iter_alerts():
            key = (str(record.get("tenant")), str(record.get("monitor_id")))
            seq = int(record.get("seq", 0))
            floor = max(
                self._checkpoint_seq.get(key, 0),
                self._wal.delivered_through(*key),
                replayed.get(key, 0),
            )
            if seq <= floor:
                continue
            self._emit(DriftAlert.from_dict(record).as_redelivery())
            replayed[key] = seq
            n += 1
        for (tenant, monitor_id), seq in replayed.items():
            self._wal.append_delivered(tenant, monitor_id, seq)
        self._wal.commit()
        # Suppression floors cover everything any process ever delivered:
        # pre-checkpoint live deliveries, prior processes' replays (the
        # delivered markers), and this replay.
        floors: Dict[_MonitorKey, int] = dict(self._checkpoint_seq)
        for key in self._wal.watermarks():
            # Watermark keys enumerate every monitor the WAL ever saw.
            floors.setdefault(key, 0)
        for key in list(floors):
            floors[key] = max(
                floors[key],
                self._wal.delivered_through(*key),
                replayed.get(key, 0),
            )
        for key, seq in replayed.items():
            floors[key] = max(floors.get(key, 0), seq)
        self._replayed_through = {k: v for k, v in floors.items() if v > 0}
        self._n_wal_replayed += n
        return n

    def wal_watermarks(self) -> Dict[_MonitorKey, int]:
        """Highest WAL-recorded ``n_seen`` per monitor (empty without a WAL).

        After a crash this can exceed the restored detectors' ``n_seen`` —
        the gap is exactly the event range a producer must replay.
        """
        return self._wal.watermarks() if self._wal is not None else {}

    def alerts_history(
        self,
        tenant: Optional[str] = None,
        monitor_id: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        limit: int = 1000,
    ) -> List[Dict[str, Any]]:
        """Query the WAL-backed alert history (newest ``limit`` matches).

        Requires a ``wal_dir``; filters by tenant, monitor, and inclusive
        ``ts`` range.  History depth is bounded by WAL segment retention.
        """
        if self._wal is None:
            raise ConfigurationError(
                "alert history needs a WAL; construct the hub with wal_dir"
            )
        return self._wal.alerts_history(
            tenant=tenant,
            monitor_id=monitor_id,
            since=since,
            until=until,
            limit=limit,
        )

    # ---------------------------------------------------------------- stats

    @property
    def n_events(self) -> int:
        """Total number of values observed across all monitors (lifetime)."""
        return self._n_events

    @property
    def n_sink_failures(self) -> int:
        """Number of alert deliveries swallowed because a sink raised."""
        return self._n_sink_failures

    def stats(
        self, tenant: Optional[str] = None, monitor_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """Aggregate counters, optionally narrowed to a tenant or monitor.

        Every field of a tenant-narrowed aggregate is scoped to that tenant:
        ``n_events`` is the sum of the tenant's monitors' lifetime ``n_seen``
        and ``n_sink_failures`` counts failed deliveries of that tenant's
        alerts.  The hub-wide aggregate reports the hub's own lifetime event
        count (which excludes elements a pre-positioned detector instance saw
        before registration).
        """
        if monitor_id is not None and tenant is None:
            raise ConfigurationError(
                "per-monitor stats need the tenant as well as the monitor id"
            )
        if tenant is not None and monitor_id is not None:
            entry = self._entry(tenant, monitor_id)
            detector = entry.detector
            stats = {
                "tenant": entry.tenant,
                "monitor_id": entry.monitor_id,
                "detector": type(detector).__name__,
                "n_seen": detector.n_seen,
                "n_drifts": detector.n_drifts,
                "n_warnings": detector.n_warnings,
                "in_warning": entry.in_warning,
                "alert_seq": entry.alert_seq,
            }
            if self._wal is not None:
                watermark = self._wal.watermarks().get(
                    (entry.tenant, entry.monitor_id)
                )
                if watermark is not None:
                    stats["wal_watermark"] = watermark
            return stats
        entries = [
            entry
            for entry in self._entries.values()
            if tenant is None or entry.tenant == str(tenant)
        ]
        if tenant is None:
            n_events = self._n_events
            n_sink_failures = self._n_sink_failures
        else:
            n_events = sum(entry.detector.n_seen for entry in entries)
            n_sink_failures = self._sink_failures_by_tenant.get(str(tenant), 0)
        return {
            "n_monitors": len(entries),
            "n_tenants": len({entry.tenant for entry in entries}),
            "n_events": n_events,
            "n_drifts": sum(entry.detector.n_drifts for entry in entries),
            "n_warnings": sum(entry.detector.n_warnings for entry in entries),
            "n_sink_failures": n_sink_failures,
        }

    def metrics(self) -> Dict[str, Any]:
        """Operational telemetry: rates, latency percentiles, WAL and sinks.

        The ``metrics`` wire op serialises this dict directly.  All latency
        summaries are in milliseconds over a bounded recent window;
        ``ingest_rate`` is events/second over the last minute.
        """
        return {
            "n_monitors": len(self._entries),
            "n_events": self._n_events,
            "n_flushes": self._flush_latency.n_total,
            "ingest_rate": round(self._ingest_rate.rate(), 3),
            "flush_latency_ms": self._flush_latency.summary_ms(),
            "n_sink_failures": self._n_sink_failures,
            "n_wal_replayed": self._n_wal_replayed,
            "n_replay_suppressed": self._n_replay_suppressed,
            "wal": self._wal.stats() if self._wal is not None else None,
            "sinks": [
                {"sink": type(sink).__name__, **sink.stats()}
                for sink in self._sinks
            ],
            "detector_update": (
                self._timings.snapshot() if self._timings is not None else None
            ),
            "trace": self._tracer.stats(),
        }

    # --------------------------------------------------------- observability

    @property
    def tracer(self) -> Tracer:
        """The hub's span recorder (disabled unless configured otherwise)."""
        return self._tracer

    @property
    def journal(self) -> EventJournal:
        """The hub's operational event journal (always on, bounded)."""
        return self._journal

    def drain_trace(self) -> List[Dict[str, Any]]:
        """Return and clear the tracer's finished spans (the ``trace`` op)."""
        return self._tracer.drain()

    def journal_events(
        self, limit: Optional[int] = None, kind: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Recent operational events, oldest first (the ``events`` op)."""
        return self._journal.events(limit=limit, kind=kind)

    def set_instrumented(self, enabled: bool) -> None:
        """Pause or resume per-update timing instrumentation at runtime.

        Pausing stops the clock reads on the ingest hot path but keeps the
        accumulated cost attribution, so a later resume continues the same
        histograms and counters.  A hub built with ``instrument=False``
        starts timing from zero on its first resume.
        """
        if enabled:
            if self._timings is None:
                self._timings = self._paused_timings
                self._paused_timings = None
                if self._timings is None:
                    self._timings = UpdateTimings()
                    # Cached recorders feed rows owned by a previous
                    # UpdateTimings; drop them so _feed re-registers each
                    # monitor against the new one.
                    for entry in self._entries.values():
                        entry.timing_recorder = None
        elif self._timings is not None:
            self._paused_timings = self._timings
            self._timings = None

    # ------------------------------------------------------- checkpointing

    def composition_hash(self) -> str:
        """Config hash of the hub's monitor composition.

        Reuses the orchestrator's config-hash idiom: a short SHA-256 over the
        canonical JSON of process-independent tokens (tenant, monitor id,
        detector class, configuration) so that two hubs hosting the same
        monitors hash identically regardless of registration order.
        """
        from repro.experiments.orchestrator import grid_config_hash

        tokens = sorted(
            (entry.tenant, entry.monitor_id, entry.group_key)
            for entry in self._entries.values()
        )
        return grid_config_hash({"monitors": [list(token) for token in tokens]})

    def wal_head(self) -> Optional[Dict[str, Any]]:
        """The WAL's identity head (for the cluster manifest); ``None`` without one."""
        return self._wal.head() if self._wal is not None else None

    def checkpoint(self, directory: Optional[Union[str, Path]] = None) -> Path:
        """Atomically write the full hub state; return the checkpoint path.

        The document is strict JSON with a ``schema_version`` field, one
        bit-exact detector snapshot per monitor (including its ``alert_seq``
        replay watermark), and the composition hash.  The write goes to a
        temp file in the target directory followed by ``os.replace``, so a
        crash mid-write never corrupts the previous checkpoint.  The WAL (if
        any) is committed first — its durable state always covers the
        checkpoint — and pruned after, since a successful checkpoint makes
        every logged alert replay-unnecessary (retention beyond that is the
        ``alerts_history`` depth).
        """
        target_dir = Path(directory) if directory else self._checkpoint_dir
        if target_dir is None:
            raise ConfigurationError(
                "no checkpoint directory configured; pass one to checkpoint()"
            )
        self._commit_wal()
        target_dir.mkdir(parents=True, exist_ok=True)
        document = {
            "schema_version": HUB_SCHEMA_VERSION,
            "config_hash": self.composition_hash(),
            "n_events": self._n_events,
            "monitors": [
                {
                    "tenant": entry.tenant,
                    "monitor_id": entry.monitor_id,
                    "in_warning": entry.in_warning,
                    "alert_seq": entry.alert_seq,
                    "snapshot": snapshot_detector(entry.detector),
                }
                for entry in self._entries.values()
            ],
        }
        path = atomic_write_json(target_dir / CHECKPOINT_FILENAME, document)
        self._events_since_checkpoint = 0
        if self._wal is not None:
            self._wal.prune()
        return path

    def _maybe_checkpoint(self) -> None:
        if (
            self._checkpoint_every is not None
            and self._checkpoint_dir is not None
            and self._events_since_checkpoint >= self._checkpoint_every
        ):
            self.checkpoint()

    def _restore_from(self, path: Path) -> None:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"cannot read hub checkpoint {path}: {exc}") from exc
        version = document.get("schema_version")
        if version not in _READABLE_SCHEMA_VERSIONS:
            raise SnapshotError(
                f"hub checkpoint schema version {version!r} is not supported "
                f"(expected one of {_READABLE_SCHEMA_VERSIONS})"
            )
        try:
            self._n_events = int(document["n_events"])
            for record in document["monitors"]:
                detector = restore_detector(record["snapshot"])
                entry = _MonitorEntry(
                    str(record["tenant"]),
                    str(record["monitor_id"]),
                    detector,
                    in_warning=bool(record["in_warning"]),
                    alert_seq=int(record.get("alert_seq", 0)),
                )
                key = (entry.tenant, entry.monitor_id)
                self._entries[key] = entry
                self._groups.setdefault(entry.group_key, []).append(key)
                self._checkpoint_seq[key] = entry.alert_seq
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"corrupt hub checkpoint {path}: {exc}") from exc

    def close(self) -> None:
        """Close the WAL, all attached sinks, and the hub-owned journal."""
        if self._wal is not None:
            self._wal.close()
        for sink in self._sinks:
            sink.close()
        if self._owns_journal:
            self._journal.close()
