"""Durable write-ahead log for the serving layer's alert bus.

The hub's durability story used to be checkpoint-granular: every alert
emitted between ``hub-checkpoint.json`` writes lived only in bounded
in-memory queues and died with the process.  :class:`AlertWal` closes that
gap — every :class:`~repro.serving.sinks.DriftAlert` (and every per-monitor
ingest watermark) is appended to an fsync'd on-disk log *before* any sink
sees it, so a ``kill -9`` loses nothing that was flushed, and a restarted
hub re-delivers the post-checkpoint tail to its sinks exactly once
(see :meth:`repro.serving.hub.MonitorHub.replay_wal`).

Storage model
-------------
* **Segments** — the log is a directory of numbered segment files
  (``wal-00000001.log``, ``wal-00000002.log``, ...).  Appends always go to
  the highest-numbered segment; when it exceeds ``segment_bytes`` the log
  rotates to a fresh segment (the directory entry is fsync'd so the new
  file survives a crash).  :meth:`prune` (called after a successful hub
  checkpoint, when no record is needed for replay any more) drops the
  oldest segments beyond ``retain_segments`` — the retained tail is what
  the ``alerts_history`` wire op serves.
* **Records** — each record is an 8-byte header ``<uint32 length, uint32
  CRC32>`` followed by a compact-JSON payload.  On open, the last segment
  is scanned record by record; a torn tail (truncated header, truncated
  payload, or CRC mismatch — the signature of a crash mid-append) is
  *truncated away*, never "repaired", so a recovered log replays only
  records that were written in full.
* **Identity** — ``wal-meta.json`` names the log with a random ``wal_id``
  on first open.  The sharded cluster manifest records each shard's
  ``(wal_id, segment_index)`` head at checkpoint time; resuming against a
  WAL directory whose identity or segment sequence disagrees with the
  manifest raises :class:`~repro.exceptions.SnapshotError` instead of
  silently double-delivering another cluster's alerts.

Record types (the ``"t"`` field):

* ``"alert"`` — one emitted :class:`DriftAlert`, appended before sink
  delivery, carrying the monitor's monotonic ``seq`` number;
* ``"watermark"`` — a monitor's lifetime ``n_seen`` after a flush, so an
  operator can see how far ingestion got past the last checkpoint;
* ``"delivered"`` — a per-monitor delivered-through ``seq`` marker,
  appended after a restore replay re-delivers the tail, bounding the
  duplication window of a crash *during* replay to at-least-once.

Durability modes (``fsync=``): ``"always"`` fsyncs after every record,
``"batch"`` (default) fsyncs once per :meth:`commit` — the hub commits once
per ``ingest``/``observe`` flush, making the flush the durability unit —
and ``"off"`` flushes to the OS but never fsyncs (contents survive a
process crash, not a power loss).

Crash testing: the environment variable ``REPRO_WAL_FAILPOINT`` set to
``kill-after-alert:N`` makes the Nth alert append fsync itself and then
``SIGKILL`` the process — the "after WAL append, before sink emit" crash
point of the recovery test matrix.
"""

from __future__ import annotations

# repro: allow-file(durability) -- wal.py IS the WAL framing layer the durability rule routes other serving code to: CRC32-framed appends, torn-tail truncation on open, and the explicit fsync policy here are the durability primitive itself

import json
import logging
import os
import signal
import struct
import time
import zlib
from collections import deque
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    IO,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.exceptions import ConfigurationError, SnapshotError
from repro.serving.metrics import LatencyWindow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sinks reuse
    from repro.serving.sinks import DriftAlert  # flush_handle from here)

__all__ = [
    "AlertWal",
    "WAL_SCHEMA_VERSION",
    "WAL_META_FILENAME",
    "flush_handle",
    "fsync_directory",
    "read_wal_head",
]

logger = logging.getLogger(__name__)

#: Version of the WAL record/meta schema.
WAL_SCHEMA_VERSION = 1

#: File name of the log's identity document inside the WAL directory.
WAL_META_FILENAME = "wal-meta.json"

#: ``<uint32 payload length, uint32 CRC32(payload)>`` little-endian header.
_HEADER = struct.Struct("<II")

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"

#: Environment variable holding the crash-injection failpoint spec.
FAILPOINT_ENV = "REPRO_WAL_FAILPOINT"

_FSYNC_MODES = ("always", "batch", "off")

_MonitorKey = Tuple[str, str]


def flush_handle(handle: IO[Any], fsync: bool) -> None:
    """Flush a writable file handle, optionally through to the platter.

    The one flush helper shared by the WAL and :class:`JsonlAuditSink`'s
    ``fsync=True`` mode — ``flush()`` alone hands the bytes to the OS
    (they survive a process crash), ``os.fsync`` makes them survive a
    power loss too.
    """
    handle.flush()
    if fsync:
        os.fsync(handle.fileno())


def fsync_directory(directory: Union[str, Path]) -> None:
    """fsync a directory so a newly created/renamed entry survives a crash.

    A no-op on platforms that cannot open directories (e.g. Windows) —
    the file data itself is already fsync'd by the callers.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"


def _segment_index(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def _list_segments(directory: Path) -> List[Tuple[int, Path]]:
    segments = []
    if directory.is_dir():
        for path in directory.iterdir():
            index = _segment_index(path)
            if index is not None:
                segments.append((index, path))
    segments.sort()
    return segments


def _scan_segment(path: Path) -> Tuple[List[Dict[str, Any]], int, bool]:
    """Parse one segment; return ``(records, good_offset, torn)``.

    ``good_offset`` is the byte offset after the last intact record; a
    truncated header/payload or CRC mismatch marks the tail torn and stops
    the scan (everything before it is intact — records are appended
    strictly in order).
    """
    records: List[Dict[str, Any]] = []
    offset = 0
    data = path.read_bytes()
    size = len(data)
    while offset + _HEADER.size <= size:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            return records, offset, True
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return records, offset, True
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return records, offset, True
        records.append(record)
        offset = end
    return records, offset, offset != size


def read_wal_head(directory: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Read a WAL directory's identity head without opening it for append.

    Returns ``{"wal_id": ..., "segment_index": ...}`` (the highest segment
    number on disk, ``0`` when the directory holds only the meta file), or
    ``None`` when the directory holds no WAL at all.  Used by the sharded
    cluster to validate each shard's WAL against the manifest before any
    replay happens.
    """
    directory = Path(directory)
    meta_path = directory / WAL_META_FILENAME
    if not meta_path.is_file():
        return None
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"cannot read WAL meta {meta_path}: {exc}") from exc
    segments = _list_segments(directory)
    return {
        "wal_id": meta.get("wal_id"),
        "segment_index": segments[-1][0] if segments else 0,
    }


class _Failpoint:
    """Crash injection for recovery tests (``REPRO_WAL_FAILPOINT``)."""

    def __init__(self, spec: Optional[str]) -> None:
        self.kill_after_alert: Optional[int] = None
        if spec:
            kind, _, count = spec.partition(":")
            if kind == "kill-after-alert" and count.isdigit():
                self.kill_after_alert = int(count)
            else:
                logger.warning("ignoring malformed %s=%r", FAILPOINT_ENV, spec)

    def maybe_fire(self, n_alert_appends: int, handle: IO[Any]) -> None:
        if (
            self.kill_after_alert is not None
            and n_alert_appends >= self.kill_after_alert
        ):
            # Make the just-appended record durable, then die the hard way:
            # the record is on disk, no sink has seen it.
            flush_handle(handle, fsync=True)
            os.kill(os.getpid(), signal.SIGKILL)


class AlertWal:
    """Segmented, CRC-checked, fsync'd write-ahead log of the alert bus.

    Parameters
    ----------
    directory:
        The log's directory (created if missing); see the module docstring
        for the layout.
    fsync:
        ``"always"`` | ``"batch"`` | ``"off"`` — when appended records are
        forced to the platter (see module docstring).
    segment_bytes:
        Rotate to a fresh segment once the current one exceeds this size
        (checked at :meth:`commit` boundaries, so one batch never spans a
        rotation mid-way).
    retain_segments:
        :meth:`prune` keeps at most this many segments; older ones are the
        alert history that expires first.
    on_rotate:
        Optional callback invoked after each segment rotation with
        ``{"segment_index", "previous_segment"}`` — the hub journals these
        so an operator can correlate WAL growth with ingest load.  Must not
        raise (it runs on the commit path).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fsync: str = "batch",
        segment_bytes: int = 4 * 1024 * 1024,
        retain_segments: int = 8,
        on_rotate: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        if fsync not in _FSYNC_MODES:
            raise ConfigurationError(
                f"fsync must be one of {_FSYNC_MODES}, got {fsync!r}"
            )
        if segment_bytes < 4096:
            raise ConfigurationError(
                f"segment_bytes must be >= 4096, got {segment_bytes}"
            )
        if retain_segments < 1:
            raise ConfigurationError(
                f"retain_segments must be >= 1, got {retain_segments}"
            )
        self._directory = Path(directory)
        self._fsync_mode = fsync
        self._segment_bytes = segment_bytes
        self._retain_segments = retain_segments
        self._on_rotate = on_rotate
        self._directory.mkdir(parents=True, exist_ok=True)
        self._meta = self._load_or_create_meta()
        self._watermarks: Dict[_MonitorKey, int] = {}
        self._delivered: Dict[_MonitorKey, int] = {}
        self._closed = False
        self._dirty = False
        self._n_appends = 0
        self._n_alert_appends = 0
        self._n_commits = 0
        self._bytes_written = 0
        self._fsync_latency = LatencyWindow(256)
        self._failpoint = _Failpoint(os.environ.get(FAILPOINT_ENV))
        self._recover()

    # ------------------------------------------------------------- recovery

    def _load_or_create_meta(self) -> Dict[str, Any]:
        path = self._directory / WAL_META_FILENAME
        if path.is_file():
            try:
                meta = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                raise SnapshotError(f"cannot read WAL meta {path}: {exc}") from exc
            version = meta.get("schema_version")
            if version != WAL_SCHEMA_VERSION:
                raise SnapshotError(
                    f"WAL schema version {version!r} is not supported "
                    f"(expected {WAL_SCHEMA_VERSION})"
                )
            return meta
        meta = {
            "schema_version": WAL_SCHEMA_VERSION,
            "wal_id": os.urandom(8).hex(),
            "created": time.time(),
        }
        # Imported here (not at module top) to avoid a cycle: snapshot.py
        # reuses this module's fsync_directory helper.
        from repro.serving.snapshot import atomic_write_json

        atomic_write_json(path, meta)
        return meta

    def _recover(self) -> None:
        """Scan existing segments, truncate the torn tail, open for append."""
        segments = _list_segments(self._directory)
        for position, (index, path) in enumerate(segments):
            records, good_offset, torn = _scan_segment(path)
            last = position == len(segments) - 1
            if torn:
                if last:
                    logger.warning(
                        "truncating torn WAL tail of %s at byte %d", path, good_offset
                    )
                    with open(path, "r+b") as handle:
                        handle.truncate(good_offset)
                        flush_handle(handle, fsync=True)
                else:  # pragma: no cover - needs manual corruption mid-log
                    logger.error(
                        "WAL segment %s is corrupt at byte %d; records past "
                        "that point are unreadable",
                        path,
                        good_offset,
                    )
            for record in records:
                self._absorb(record)
        if segments:
            self._segment_index = segments[-1][0]
        else:
            self._segment_index = 1
            fsync_directory(self._directory)
        self._segment_path = self._directory / _segment_name(self._segment_index)
        self._handle = open(self._segment_path, "ab")
        self._segment_size = self._handle.tell()

    def _absorb(self, record: Dict[str, Any]) -> None:
        kind = record.get("t")
        key = (str(record.get("tenant")), str(record.get("monitor_id")))
        if kind == "watermark":
            self._watermarks[key] = max(
                self._watermarks.get(key, 0), int(record.get("n_seen", 0))
            )
        elif kind == "delivered":
            self._delivered[key] = max(
                self._delivered.get(key, 0), int(record.get("seq", 0))
            )

    # -------------------------------------------------------------- appends

    def append_alert(self, alert: "DriftAlert") -> None:
        """Record one alert (call *before* any sink sees it)."""
        record = alert.to_dict()
        record["t"] = "alert"
        self._append(record)
        self._n_alert_appends += 1
        self._failpoint.maybe_fire(self._n_alert_appends, self._handle)

    def append_watermark(self, tenant: str, monitor_id: str, n_seen: int) -> None:
        """Record a monitor's lifetime ingest position after a flush."""
        key = (str(tenant), str(monitor_id))
        self._watermarks[key] = max(self._watermarks.get(key, 0), int(n_seen))
        self._append(
            {"t": "watermark", "tenant": key[0], "monitor_id": key[1], "n_seen": int(n_seen)}
        )

    def append_delivered(self, tenant: str, monitor_id: str, seq: int) -> None:
        """Record that sinks received this monitor's alerts through ``seq``."""
        key = (str(tenant), str(monitor_id))
        self._delivered[key] = max(self._delivered.get(key, 0), int(seq))
        self._append(
            {"t": "delivered", "tenant": key[0], "monitor_id": key[1], "seq": int(seq)}
        )

    def _append(self, record: Dict[str, Any]) -> None:
        if self._closed:
            raise SnapshotError("WAL is closed")
        payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
        self._handle.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
        self._handle.write(payload)
        self._segment_size += _HEADER.size + len(payload)
        self._bytes_written += _HEADER.size + len(payload)
        self._n_appends += 1
        self._dirty = True
        if self._fsync_mode == "always":
            self._flush(fsync=True)

    def commit(self) -> None:
        """Make the batch since the last commit durable; maybe rotate.

        The hub calls this once per ``ingest``/``observe`` flush — in the
        default ``"batch"`` mode this is the one fsync the whole flush
        pays, which is what keeps WAL-on throughput within the benchmark's
        2x budget (``benchmarks/bench_wal_overhead.py``).
        """
        if self._closed or not self._dirty:
            return
        self._flush(fsync=self._fsync_mode == "batch")
        if self._segment_size >= self._segment_bytes:
            self.rotate()

    def _flush(self, fsync: bool) -> None:
        if fsync:
            started = time.perf_counter()
            flush_handle(self._handle, fsync=True)
            self._fsync_latency.add(time.perf_counter() - started)
        else:
            flush_handle(self._handle, fsync=False)
        self._dirty = False

    def rotate(self) -> None:
        """Close the current segment and start the next one."""
        if self._closed:
            return
        flush_handle(self._handle, fsync=self._fsync_mode != "off")
        self._handle.close()
        previous = _segment_name(self._segment_index)
        self._segment_index += 1
        self._segment_path = self._directory / _segment_name(self._segment_index)
        self._handle = open(self._segment_path, "ab")
        self._segment_size = 0
        self._dirty = False
        fsync_directory(self._directory)
        if self._on_rotate is not None:
            self._on_rotate(
                {"segment_index": self._segment_index, "previous_segment": previous}
            )

    def prune(self) -> int:
        """Drop the oldest segments beyond ``retain_segments``; return count.

        Call after a successful checkpoint: every alert on disk is then
        ``<=`` the checkpointed sequence numbers, so no segment is needed
        for replay and retention is purely an alert-history policy.  The
        current (open) segment is never pruned.
        """
        segments = _list_segments(self._directory)
        removed = 0
        while len(segments) > self._retain_segments:
            index, path = segments.pop(0)
            if index == self._segment_index:
                break
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - defensive
                logger.warning("could not prune WAL segment %s", path)
                break
        if removed:
            fsync_directory(self._directory)
        return removed

    # -------------------------------------------------------------- reading

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """All intact records across all segments, oldest first.

        Reads from disk (committed state); uncommitted buffered appends are
        flushed first so callers always see the latest records.
        """
        if not self._closed and self._dirty:
            self._flush(fsync=False)
        for _, path in _list_segments(self._directory):
            records, _, _ = _scan_segment(path)
            for record in records:
                yield record

    def iter_alerts(self) -> Iterator[Dict[str, Any]]:
        """Alert records across all segments, in append order."""
        for record in self.iter_records():
            if record.get("t") == "alert":
                yield record

    def alerts_history(
        self,
        tenant: Optional[str] = None,
        monitor_id: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        limit: int = 1000,
    ) -> List[Dict[str, Any]]:
        """The most recent retained alerts matching the filters, oldest first.

        ``since``/``until`` bound the alert timestamp (inclusive); ``limit``
        keeps the *newest* matches.  History depth is bounded by segment
        retention — pruned segments' alerts are gone.
        """
        if limit < 1:
            raise ConfigurationError(f"limit must be >= 1, got {limit}")
        matches: deque = deque(maxlen=limit)
        for record in self.iter_alerts():
            if tenant is not None and record.get("tenant") != str(tenant):
                continue
            if monitor_id is not None and record.get("monitor_id") != str(monitor_id):
                continue
            ts = float(record.get("ts", 0.0))
            if since is not None and ts < since:
                continue
            if until is not None and ts > until:
                continue
            record = dict(record)
            record.pop("t", None)
            matches.append(record)
        return list(matches)

    # ---------------------------------------------------------------- state

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def wal_id(self) -> str:
        """Random identity assigned at first open (recorded in manifests)."""
        return str(self._meta["wal_id"])

    @property
    def segment_index(self) -> int:
        """Index of the segment currently open for append."""
        return self._segment_index

    @property
    def fsync_mode(self) -> str:
        return self._fsync_mode

    def watermarks(self) -> Dict[_MonitorKey, int]:
        """Highest recorded ``n_seen`` per monitor (checkpoint + WAL tail)."""
        return dict(self._watermarks)

    def delivered_through(self, tenant: str, monitor_id: str) -> int:
        """Highest ``seq`` a delivered-marker records for one monitor."""
        return self._delivered.get((str(tenant), str(monitor_id)), 0)

    def head(self) -> Dict[str, Any]:
        """Identity head recorded in the sharded cluster manifest."""
        return {"wal_id": self.wal_id, "segment_index": self._segment_index}

    def stats(self) -> Dict[str, Any]:
        """Operational counters for the ``metrics`` wire op."""
        segments = _list_segments(self._directory)
        return {
            "fsync_mode": self._fsync_mode,
            "segment_index": self._segment_index,
            "n_segments": len(segments),
            "n_appends": self._n_appends,
            "n_alerts": self._n_alert_appends,
            "bytes_written": self._bytes_written,
            "fsync_latency_ms": self._fsync_latency.summary_ms(),
        }

    def close(self) -> None:
        if self._closed:
            return
        try:
            self._flush(fsync=self._fsync_mode != "off")
        except ValueError:  # pragma: no cover - handle already closed
            pass
        self._handle.close()
        self._closed = True
