"""Lightweight operational telemetry for the serving layer.

Two small instruments back the hub's ``metrics`` wire op — both O(1) per
observation, allocation-free on the hot path, and cheap enough to run inside
every ingest flush:

* :class:`LatencyWindow` — a bounded ring of the most recent durations
  (flush latency, WAL fsync latency) summarised as percentiles on demand;
* :class:`RateMeter` — a sliding-window event counter reporting a rate in
  events/second (per-shard ingest rate).

Neither instrument is thread-safe by itself; the hub mutates them only from
its own (single-threaded) flush path, matching the rest of the hub's
concurrency model.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

__all__ = ["LatencyWindow", "RateMeter", "percentile"]


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty sequence."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
    if not sorted_values:
        raise ConfigurationError("percentile of an empty sequence is undefined")
    index = round(fraction * (len(sorted_values) - 1))
    return float(sorted_values[index])


class LatencyWindow:
    """Rolling window of the most recent durations, in seconds.

    ``summary_ms()`` reports count/mean/p50/p95/p99/max in milliseconds over
    the retained window (an empty window reports zeros with ``count=0``),
    plus the lifetime ``n_total`` — the shape the ``metrics`` op serialises
    directly.  ``count`` is the number of samples the percentiles actually
    cover; ``n_total`` keeps counting after old samples fall out of the ring.
    """

    def __init__(self, maxlen: int = 512) -> None:
        if maxlen < 1:
            raise ConfigurationError(f"maxlen must be >= 1, got {maxlen}")
        self._durations: Deque[float] = deque(maxlen=maxlen)
        self._n_total = 0

    def add(self, seconds: float) -> None:
        """Record one duration."""
        self._durations.append(float(seconds))
        self._n_total += 1

    def __len__(self) -> int:
        return len(self._durations)

    @property
    def n_total(self) -> int:
        """Lifetime number of recorded durations (window evictions included)."""
        return self._n_total

    def summary_ms(self) -> Dict[str, Any]:
        """Percentile summary of the retained window, in milliseconds."""
        if not self._durations:
            return {
                "count": 0,
                "n_total": self._n_total,
                "mean": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
                "max": 0.0,
            }
        ordered = sorted(self._durations)
        scale = 1000.0
        return {
            "count": len(ordered),
            "n_total": self._n_total,
            "mean": round(scale * sum(ordered) / len(ordered), 4),
            "p50": round(scale * percentile(ordered, 0.50), 4),
            "p95": round(scale * percentile(ordered, 0.95), 4),
            "p99": round(scale * percentile(ordered, 0.99), 4),
            "max": round(scale * ordered[-1], 4),
        }


class RateMeter:
    """Sliding-window event counter reporting events/second.

    Counts are bucketed as ``(timestamp, n)`` pairs; :meth:`rate` sums the
    buckets newer than ``window`` seconds and divides by the *covered* time
    span (so a meter that has only been running for two seconds reports a
    two-second rate, not a sixty-second average diluted by silence).
    """

    def __init__(
        self, window: float = 60.0, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        self._window = float(window)
        self._clock = clock
        self._buckets: Deque[Tuple[float, int]] = deque()
        self._n_total = 0
        self._started = clock()

    def add(self, n: int = 1, now: Optional[float] = None) -> None:
        """Record ``n`` events at ``now`` (defaults to the meter's clock)."""
        if n <= 0:
            return
        stamp = self._clock() if now is None else float(now)
        self._buckets.append((stamp, int(n)))
        self._n_total += int(n)
        self._evict(stamp)

    def _evict(self, now: float) -> None:
        horizon = now - self._window
        while self._buckets and self._buckets[0][0] < horizon:
            self._buckets.popleft()

    @property
    def n_total(self) -> int:
        """Lifetime event count."""
        return self._n_total

    def rate(self, now: Optional[float] = None) -> float:
        """Events/second over the (covered part of the) sliding window."""
        stamp = self._clock() if now is None else float(now)
        self._evict(stamp)
        if not self._buckets:
            return 0.0
        count = sum(n for _, n in self._buckets)
        covered = min(self._window, max(stamp - self._started, 1e-9))
        return count / covered
