"""ShardedHub — scale the monitor hub out across worker processes.

A single :class:`~repro.serving.hub.MonitorHub` serves ~1000 monitors at
batch speed, but all tenant ingest funnels through one GIL-bound Python
process.  :class:`ShardedHub` removes that ceiling by partitioning the
``(tenant, monitor_id)`` keyspace across N shared-nothing worker processes:

* **Deterministic routing** — :func:`route_shard` hashes the key with
  BLAKE2b (process-independent, unlike the salted builtin ``hash``) so the
  same monitor lands on the same shard in every run, every process, and
  every restart.  No routing table needs to be persisted or synchronised.
* **Fan-out ingestion** — :meth:`ShardedHub.ingest` partitions an
  interleaved event batch into one message per shard (preserving each
  monitor's event order), sends them all, and only then collects replies —
  the shards run their vectorised flushes concurrently on separate cores.
* **Per-shard checkpoints + cluster manifest** — every worker owns a
  ``shard-NN/hub-checkpoint.json`` written with the hub's atomic snapshot
  machinery, and :meth:`ShardedHub.checkpoint` records a
  ``cluster-manifest.json`` with the shard count and per-shard composition
  hashes.  ``kill -9`` of any worker loses nothing past that shard's last
  checkpoint (:meth:`respawn_shard` resumes it bit-exactly), and opening a
  checkpoint directory with a different ``n_shards`` raises
  :class:`~repro.exceptions.SnapshotError` instead of silently mis-routing.
* **Aggregation** — ``ObserveResult``s, ``stats()`` counters, and alert
  drains come back over the worker pipes; alerts buffer in one
  :class:`~repro.serving.sinks.QueueSink` per shard and
  :meth:`drain_alerts` merges them (with the total dropped-alert count).

Detectors cross the process boundary via their ``__reduce__`` hook, which
pickles through the bit-exact ``state_dict`` snapshot contract, so
registering a pre-positioned detector instance on a shard is loss-free.
"""

from __future__ import annotations

import hashlib
import logging
import multiprocessing
import signal
from multiprocessing.connection import Connection
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.core.base import DriftDetector
from repro.exceptions import ConfigurationError, ShardError, SnapshotError
from repro.serving.hub import Event, MonitorHub, ObserveResult
from repro.serving.sinks import AlertSink, DriftAlert, JsonlAuditSink, QueueSink, WebhookSink
from repro.serving.snapshot import atomic_write_json
from repro.serving.wal import read_wal_head

__all__ = [
    "ShardedHub",
    "route_shard",
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA_VERSION",
]

logger = logging.getLogger(__name__)

#: Version of the cluster manifest document schema.
MANIFEST_SCHEMA_VERSION = 1

#: File name of the cluster manifest inside ``checkpoint_dir``.
MANIFEST_FILENAME = "cluster-manifest.json"

_MonitorKey = Tuple[str, str]


def route_shard(tenant: str, monitor_id: str, n_shards: int) -> int:
    """Deterministic stable shard of a ``(tenant, monitor_id)`` key.

    BLAKE2b over the NUL-joined key (tenant and monitor ids are free-form
    strings; NUL keeps ``("a", "b/c")`` and ``("a/b", "c")`` distinct), taken
    modulo the shard count.  Stable across processes, interpreter restarts,
    and platforms — the property the per-shard checkpoints rely on.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    digest = hashlib.blake2b(
        f"{tenant}\x00{monitor_id}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % n_shards


def _shard_dirname(index: int) -> str:
    return f"shard-{index:02d}"


# --------------------------------------------------------------- worker side


def _safe_send(conn: Connection, reply: Tuple[str, Any]) -> None:
    """Send a reply, downgrading unpicklable payloads to a ShardError."""
    try:
        conn.send(reply)
    except Exception as exc:  # pragma: no cover - defensive
        conn.send(("error", ShardError(f"worker reply failed to serialize: {exc!r}")))


def _shard_worker_main(
    index: int,
    conn: Connection,
    checkpoint_dir: Optional[str],
    checkpoint_every: Optional[int],
    resume: bool,
    alert_buffer: Optional[int],
    audit_log: Optional[str],
    wal_dir: Optional[str] = None,
    wal_fsync: str = "batch",
    webhook: Optional[str] = None,
    webhook_dead_letter: Optional[str] = None,
) -> None:
    """Request/reply loop of one shard worker (one ``MonitorHub`` per shard).

    Every request is a ``(op, payload)`` tuple and gets exactly one
    ``("ok", value)`` or ``("error", exception)`` reply, so the parent and
    worker can never desynchronise.  Library errors (``ReproError`` family)
    travel back as values and are re-raised in the parent; the worker itself
    stays alive.  EOF on the pipe (parent gone) ends the worker.
    """
    # The parent owns shutdown: terminal Ctrl-C must not kill workers before
    # the parent has written its final checkpoint.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        # Sinks are built *before* the hub so they are constructor-provided
        # and the resume-time WAL replay re-delivers the post-checkpoint
        # alert tail into them (a sink attached afterwards would miss it).
        alerts = QueueSink(maxlen=alert_buffer)
        sinks: List[AlertSink] = [alerts]
        if audit_log is not None:
            sinks.append(JsonlAuditSink(audit_log))
        if webhook is not None:
            sinks.append(
                WebhookSink(webhook, dead_letter_path=webhook_dead_letter)
            )
        hub = MonitorHub(
            checkpoint_dir=checkpoint_dir,
            sinks=sinks,
            checkpoint_every=checkpoint_every,
            resume=resume,
            wal_dir=wal_dir,
            wal_fsync=wal_fsync,
        )
    except BaseException as exc:
        _safe_send(conn, ("error", exc))
        return

    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if op == "ingest":
                result: Any = hub.ingest(payload[0])
            elif op == "observe":
                result = hub.observe(*payload)
            elif op == "observe_stats":
                result = hub.observe_with_stats(*payload)
            elif op == "register":
                tenant, monitor_id, spec, params, exist_ok = payload
                detector = hub.register(
                    tenant, monitor_id, spec, params=params, exist_ok=exist_ok
                )
                result = {
                    "detector": type(detector).__name__,
                    "n_seen": detector.n_seen,
                }
            elif op == "stats":
                result = hub.stats(*payload)
            elif op == "alerts":
                result = (alerts.drain(), alerts.n_dropped)
            elif op == "list_monitors":
                result = [
                    (tenant, monitor_id, type(detector).__name__)
                    for tenant, monitor_id, detector in hub.monitors()
                ]
            elif op == "metrics":
                result = hub.metrics()
            elif op == "alerts_history":
                result = hub.alerts_history(**payload[0])
            elif op == "checkpoint":
                path = hub.checkpoint()
                result = {
                    "path": str(path),
                    "config_hash": hub.composition_hash(),
                    "n_events": hub.n_events,
                    "n_monitors": len(hub),
                    "wal": hub.wal_head(),
                }
            elif op == "describe":
                result = {
                    "config_hash": hub.composition_hash(),
                    "n_events": hub.n_events,
                    "n_monitors": len(hub),
                    "wal": hub.wal_head(),
                }
            elif op == "composition_hash":
                result = hub.composition_hash()
            elif op == "stop":
                _safe_send(conn, ("ok", None))
                break
            else:
                raise ShardError(f"unknown worker op {op!r}")
        except Exception as exc:
            _safe_send(conn, ("error", exc))
        else:
            _safe_send(conn, ("ok", result))
    hub.close()
    conn.close()


# --------------------------------------------------------------- parent side


class ShardedHub:
    """Partition the monitor keyspace across N shared-nothing worker processes.

    The public surface mirrors :class:`MonitorHub` (``register`` /
    ``observe`` / ``ingest`` / ``stats`` / ``checkpoint`` / ``close``) so the
    TCP server fronts either interchangeably, with two deliberate
    differences: detectors live only inside the workers (``register`` returns
    an info dict, not the instance), and alerts are polled with
    :meth:`drain_alerts` instead of parent-side sinks.

    Parameters
    ----------
    n_shards:
        Number of worker processes.  Fixed for the lifetime of a checkpoint
        directory — resuming with a different count raises
        :class:`SnapshotError` (re-shard explicitly instead of mis-routing).
    checkpoint_dir:
        Cluster checkpoint root; each shard owns ``shard-NN/`` inside it and
        the manifest records the composition.
    checkpoint_every:
        Per-shard auto-checkpoint period, counted in values observed by that
        shard (forwarded to each worker's ``MonitorHub``).
    resume:
        Resume every shard from its checkpoint when present.
    alert_buffer:
        ``maxlen`` of each shard's in-worker :class:`QueueSink` (``None`` =
        unbounded); dropped-alert counts aggregate in :meth:`drain_alerts`.
    audit_log:
        When set, each worker appends alerts to ``<audit_log>.shard-NN``
        (one file per shard — concurrent writers never interleave a line).
    wal_dir:
        Root of the durable alert write-ahead logs; each shard owns
        ``<wal_dir>/shard-NN`` (shared-nothing, like the checkpoints).  The
        cluster manifest records every shard's ``(wal_id, segment_index)``
        head, and resuming against WAL directories that disagree with the
        manifest raises :class:`SnapshotError` (see :meth:`_validate_manifest`).
    wal_fsync:
        WAL durability mode forwarded to every shard (``"batch"`` |
        ``"always"`` | ``"off"``).
    webhook:
        When set, each worker POSTs alerts to this URL through a
        :class:`~repro.serving.sinks.WebhookSink` (bounded retries, circuit
        breaker — a down endpoint never blocks ingest).
    webhook_dead_letter:
        Dead-letter JSONL root for undeliverable webhook alerts; each shard
        writes ``<path>.shard-NN``.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).
    request_timeout:
        Seconds to wait for a worker's reply before declaring it hung
        (``None`` = wait forever).  A worker that is alive but wedged (a
        deadlock, a ``SIGSTOP``) would otherwise block the caller
        indefinitely while ``dead_shards()`` reports a healthy cluster; on
        timeout the worker is killed — turning "hung" into "dead", which the
        respawn machinery knows how to recover — and :class:`ShardError` is
        raised.  Size it well above the slowest expected flush: a false
        positive costs a checkpoint rollback.
    """

    def __init__(
        self,
        n_shards: int,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = None,
        resume: bool = True,
        alert_buffer: Optional[int] = 10_000,
        audit_log: Optional[str] = None,
        wal_dir: Optional[Union[str, Path]] = None,
        wal_fsync: str = "batch",
        webhook: Optional[str] = None,
        webhook_dead_letter: Optional[str] = None,
        start_method: Optional[str] = None,
        request_timeout: Optional[float] = None,
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        if checkpoint_every is not None and checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_dir — without one the "
                "periodic checkpoints would silently never be written"
            )
        self._n_shards = n_shards
        self._checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self._checkpoint_every = checkpoint_every
        self._resume = resume
        if request_timeout is not None and request_timeout <= 0:
            raise ConfigurationError(
                f"request_timeout must be positive, got {request_timeout}"
            )
        self._alert_buffer = alert_buffer
        self._audit_log = audit_log
        self._wal_dir = Path(wal_dir) if wal_dir else None
        self._wal_fsync = wal_fsync
        self._webhook = webhook
        self._webhook_dead_letter = webhook_dead_letter
        self._request_timeout = request_timeout
        self._context = multiprocessing.get_context(start_method)
        self._closed = False
        self._registry: Dict[_MonitorKey, int] = {}
        self._processes: List[Optional[multiprocessing.process.BaseProcess]] = [
            None
        ] * n_shards
        self._conns: List[Optional[Connection]] = [None] * n_shards

        if resume:
            self._validate_manifest()
        try:
            for index in range(n_shards):
                self._spawn(index, resume=resume)
            for index in range(n_shards):
                self._adopt_shard_monitors(index)
            if self._checkpoint_dir is not None:
                # Write the manifest up front, not only in checkpoint():
                # per-shard auto-checkpoints (checkpoint_every) never touch
                # it, and without a manifest the shard-count guard cannot
                # fire — a divisor reshard (4 → 2) would then pass the
                # routing check (digest % 4 ∈ {0, 1} implies the same
                # digest % 2) and silently drop the other shards' monitors.
                self._write_manifest(self._broadcast("describe"))
        except BaseException:
            # A failed resume (corrupt shard checkpoint, mis-assembled
            # directories) must not leak live worker processes and pipes.
            self.close()
            raise

    # ------------------------------------------------------------- lifecycle

    def _validate_manifest(self) -> None:
        if self._checkpoint_dir is None:
            return
        path = self._checkpoint_dir / MANIFEST_FILENAME
        if not path.is_file():
            return
        import json

        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise SnapshotError(f"cannot read cluster manifest {path}: {exc}") from exc
        version = manifest.get("schema_version")
        if version != MANIFEST_SCHEMA_VERSION:
            raise SnapshotError(
                f"cluster manifest schema version {version!r} is not supported "
                f"(expected {MANIFEST_SCHEMA_VERSION})"
            )
        recorded = manifest.get("n_shards")
        if recorded != self._n_shards:
            raise SnapshotError(
                f"checkpoint directory {self._checkpoint_dir} was written by a "
                f"{recorded}-shard cluster but this hub has {self._n_shards} "
                "shards; the routing hash would silently send monitors to the "
                "wrong shard — re-shard the checkpoint or start fresh"
            )
        self._validate_wal_heads(manifest)

    def _validate_wal_heads(self, manifest: Dict[str, Any]) -> None:
        """Refuse to resume against WAL directories the manifest disowns.

        The manifest records each shard's ``(wal_id, segment_index)`` head at
        checkpoint time.  A WAL directory with a *different* ``wal_id``
        belongs to another cluster (or was swapped by hand) — replaying it
        would re-deliver someone else's alerts; a highest on-disk segment
        *older* than the recorded head means segments were deleted or the
        directory was restored from an earlier backup — the replay floor
        bookkeeping inside it can no longer be trusted.  Both are
        mis-assembly, so both raise instead of replaying.
        """
        if self._wal_dir is None:
            return
        for entry in manifest.get("shards", []):
            recorded_head = entry.get("wal")
            if not recorded_head:
                continue
            index = int(entry.get("index", -1))
            if not 0 <= index < self._n_shards:
                continue
            wal_dir = self._wal_dir / _shard_dirname(index)
            disk_head = read_wal_head(wal_dir)
            if disk_head is None:
                raise SnapshotError(
                    f"cluster manifest records a WAL for shard {index} "
                    f"(wal_id {recorded_head.get('wal_id')!r}) but {wal_dir} "
                    "holds none; the WAL directory was removed or swapped — "
                    "refusing to resume without it"
                )
            if disk_head.get("wal_id") != recorded_head.get("wal_id"):
                raise SnapshotError(
                    f"WAL directory {wal_dir} has wal_id "
                    f"{disk_head.get('wal_id')!r} but the cluster manifest "
                    f"recorded {recorded_head.get('wal_id')!r}; this WAL "
                    "belongs to a different cluster — refusing to replay it"
                )
            recorded_segment = int(recorded_head.get("segment_index", 0))
            if int(disk_head.get("segment_index", 0)) < recorded_segment:
                raise SnapshotError(
                    f"WAL directory {wal_dir} ends at segment "
                    f"{disk_head.get('segment_index')} but the cluster "
                    f"manifest recorded segment {recorded_segment}; the WAL "
                    "segment sequence went backwards (deleted segments or an "
                    "older backup) — refusing to replay it"
                )

    def _shard_wal_dir(self, index: int) -> Optional[str]:
        if self._wal_dir is None:
            return None
        return str(self._wal_dir / _shard_dirname(index))

    def _shard_checkpoint_dir(self, index: int) -> Optional[str]:
        if self._checkpoint_dir is None:
            return None
        return str(self._checkpoint_dir / _shard_dirname(index))

    def _spawn(self, index: int, resume: bool) -> None:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        audit = (
            f"{self._audit_log}.{_shard_dirname(index)}"
            if self._audit_log is not None
            else None
        )
        dead_letter = (
            f"{self._webhook_dead_letter}.{_shard_dirname(index)}"
            if self._webhook_dead_letter is not None
            else None
        )
        process = self._context.Process(
            target=_shard_worker_main,
            args=(
                index,
                child_conn,
                self._shard_checkpoint_dir(index),
                self._checkpoint_every,
                resume,
                self._alert_buffer,
                audit,
                self._shard_wal_dir(index),
                self._wal_fsync,
                self._webhook,
                dead_letter,
            ),
            name=f"repro-shard-{index:02d}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._processes[index] = process
        self._conns[index] = parent_conn

    def _adopt_shard_monitors(self, index: int) -> None:
        """Mirror a (re)spawned shard's resumed monitors into the registry.

        Doubles as the startup handshake — a worker whose hub failed to
        construct (corrupt shard checkpoint, bad directory) surfaces the real
        exception here instead of an opaque dead pipe later.  Every resumed
        key must route to the shard that holds it; a violation means the
        checkpoint directory was assembled from a different cluster layout
        (e.g. shard directories swapped by hand), which is a correctness
        error, not a warning.
        """
        self._registry = {
            key: shard for key, shard in self._registry.items() if shard != index
        }
        for tenant, monitor_id, _ in self._call(index, "list_monitors"):
            expected = route_shard(tenant, monitor_id, self._n_shards)
            if expected != index:
                raise SnapshotError(
                    f"monitor {tenant}/{monitor_id} resumed on shard {index} "
                    f"but routes to shard {expected}; the shard checkpoints "
                    "do not belong to this cluster layout"
                )
            self._registry[(tenant, monitor_id)] = index

    #: Seconds :meth:`close` waits for a worker's ``stop`` reply before
    #: falling back to ``terminate()``.  Bounded regardless of
    #: ``request_timeout`` — an unbounded wait on a wedged-but-alive worker
    #: would hang shutdown and make the terminate fallback unreachable.
    _STOP_REPLY_TIMEOUT = 5.0

    def close(self) -> None:
        """Stop every worker (graceful ``stop`` op, then terminate stragglers)."""
        if self._closed:
            return
        stopping: List[int] = []
        for index, process in enumerate(self._processes):
            if process is None or not process.is_alive():
                continue
            try:
                self._conns[index].send(("stop", ()))
            except Exception:
                continue
            stopping.append(index)
        for index in stopping:
            # Bounded wait for the reply; a wedged worker is terminated below.
            try:
                if self._conns[index].poll(self._STOP_REPLY_TIMEOUT):
                    self._conns[index].recv()
            except Exception:
                pass
        self._closed = True
        for index, process in enumerate(self._processes):
            if process is None:
                continue
            process.join(timeout=self._STOP_REPLY_TIMEOUT)
            if process.is_alive():
                process.terminate()
                process.join(timeout=self._STOP_REPLY_TIMEOUT)
            if process.is_alive():
                # SIGTERM stays *pending* on a SIGSTOPped worker; SIGKILL
                # is the only signal guaranteed to reap a wedged process.
                process.kill()
                process.join(timeout=self._STOP_REPLY_TIMEOUT)
            conn = self._conns[index]
            if conn is not None:
                conn.close()

    def __enter__(self) -> "ShardedHub":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------- transport

    def _recv(self, index: int) -> Tuple[str, Any]:
        """Receive one reply, enforcing ``request_timeout`` when configured.

        A timeout kills the worker (a hung worker's late reply would
        desynchronise the pipe, and ``process.is_alive()`` cannot see a
        deadlock) so the shard becomes *dead* — the state ``dead_shards()``
        reports and ``respawn_shard`` recovers from its checkpoint.
        """
        conn = self._conns[index]
        if self._request_timeout is not None and not conn.poll(
            self._request_timeout
        ):
            process = self._processes[index]
            if process is not None and process.is_alive():
                logger.error(
                    "shard %d worker did not reply within %.1fs; killing it",
                    index,
                    self._request_timeout,
                )
                process.kill()
                process.join(timeout=5)
            raise ShardError(
                f"shard {index} worker did not reply within "
                f"{self._request_timeout}s and was killed; "
                f"respawn_shard({index}) resumes it from its checkpoint"
            )
        return conn.recv()

    def _call(self, index: int, op: str, *payload: Any) -> Any:
        conn = self._conns[index]
        if self._closed or conn is None:
            raise ShardError(f"sharded hub is closed (shard {index})")
        try:
            conn.send((op, payload))
            kind, value = self._recv(index)
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise ShardError(
                f"shard {index} worker is not responding ({exc!r}); "
                f"respawn_shard({index}) resumes it from its checkpoint"
            ) from exc
        if kind == "error":
            raise value
        return value

    def _broadcast(
        self, op: str, *payload: Any, tolerate_dead: bool = False
    ) -> List[Any]:
        """Send one request to every shard, then collect every reply.

        All sends complete before the first receive so the workers overlap
        their compute; replies are collected from *every* shard before any
        error is re-raised, keeping each pipe strictly request/reply aligned.
        With ``tolerate_dead`` the replies of the live shards are returned
        even when some workers are gone (degraded-cluster reads).
        """
        return self._fan_out(
            range(self._n_shards),
            [(op, payload)] * self._n_shards,
            tolerate_dead=tolerate_dead,
        )

    def _fan_out(
        self,
        indices: Iterable[int],
        messages: List[Tuple[str, Tuple[Any, ...]]],
        tolerate_dead: bool = False,
    ) -> List[Any]:
        """Fan requests out to ``indices``; return the replies in that order.

        A dead shard never aborts the exchange half-way: the replies of the
        shards that did get the request are always collected (or their pipes
        would desynchronise into returning stale replies to the *next*
        request).  With ``tolerate_dead=False`` a dead shard then raises
        :class:`ShardError`; with ``tolerate_dead=True`` its reply is simply
        absent — for read paths that must keep working on a degraded cluster
        (``stats``/``drain_alerts``).  Errors raised *by* live workers
        (``ReproError`` family) propagate in both modes.
        """
        indices = list(indices)
        if self._closed:
            raise ShardError("sharded hub is closed")
        # Phase 1: send to every reachable shard.
        sent: List[int] = []
        dead_error: Optional[BaseException] = None
        worker_error: Optional[BaseException] = None
        caller_error: Optional[BaseException] = None
        for index, (op, payload) in zip(indices, messages):
            try:
                self._conns[index].send((op, payload))
            except (BrokenPipeError, OSError) as exc:
                error = ShardError(
                    f"shard {index} worker is not responding ({exc!r}); "
                    f"respawn_shard({index}) resumes it from its checkpoint"
                )
                error.__cause__ = exc
                dead_error = dead_error or error
            except Exception as exc:
                # The *payload* failed to serialize (e.g. a generator event
                # chunk the pickler rejects before anything hits the pipe) —
                # a caller error, not a dead shard.  Stop sending, but still
                # drain the shards already sent to, or their pipes would
                # hand the pending replies to the next unrelated request.
                caller_error = exc
                break
            else:
                sent.append(index)
        # Phase 2: collect one reply per delivered request.
        replies: List[Any] = []
        for index in sent:
            try:
                kind, value = self._recv(index)
            except (EOFError, OSError) as exc:
                error = ShardError(
                    f"shard {index} worker died mid-request ({exc!r}); "
                    f"respawn_shard({index}) resumes it from its checkpoint"
                )
                error.__cause__ = exc
                dead_error = dead_error or error
                continue
            except ShardError as exc:  # _recv timeout killed a hung worker
                dead_error = dead_error or exc
                continue
            if kind == "error":
                worker_error = worker_error or value
            else:
                replies.append(value)
        if caller_error is not None:
            raise caller_error
        if worker_error is not None:
            raise worker_error
        if dead_error is not None and not tolerate_dead:
            raise dead_error
        return replies

    # ---------------------------------------------------------- registration

    def register(
        self,
        tenant: str,
        monitor_id: str,
        detector: Union[str, DriftDetector] = "OPTWIN",
        params: Optional[Mapping[str, Any]] = None,
        exist_ok: bool = False,
    ) -> Dict[str, Any]:
        """Register a monitor on its shard; return ``{"detector", "n_seen"}``.

        Accepts a registry name plus params, or a ready-made detector
        instance (shipped to the worker via the bit-exact snapshot pickle).
        Unlike :meth:`MonitorHub.register` the live detector object stays
        inside the worker — shared-nothing means the parent never holds one.
        """
        key = (str(tenant), str(monitor_id))
        shard = route_shard(key[0], key[1], self._n_shards)
        info = self._call(
            shard, "register", key[0], key[1], detector, dict(params) if params else None, exist_ok
        )
        self._registry[key] = shard
        return info

    def shard_of(self, tenant: str, monitor_id: str) -> int:
        """The shard index a key routes to (registered or not)."""
        return route_shard(str(tenant), str(monitor_id), self._n_shards)

    def __len__(self) -> int:
        return len(self._registry)

    def __contains__(self, key: _MonitorKey) -> bool:
        return tuple(key) in self._registry

    @property
    def n_shards(self) -> int:
        """Number of worker processes the keyspace is partitioned across."""
        return self._n_shards

    def monitor_keys(self) -> Iterator[Tuple[str, str, int]]:
        """Iterate ``(tenant, monitor_id, shard_index)`` over the registry."""
        for (tenant, monitor_id), shard in self._registry.items():
            yield tenant, monitor_id, shard

    def _shard_for(self, tenant: str, monitor_id: str) -> Tuple[_MonitorKey, int]:
        key = (str(tenant), str(monitor_id))
        shard = self._registry.get(key)
        if shard is None:
            raise ConfigurationError(
                f"unknown monitor {key[0]}/{key[1]}; register it first"
            )
        return key, shard

    # ------------------------------------------------------------- ingestion

    def observe(
        self, tenant: str, monitor_id: str, values: Any
    ) -> ObserveResult:
        """Feed one monitor a value or chunk of values (oldest first)."""
        key, shard = self._shard_for(tenant, monitor_id)
        return self._call(shard, "observe", key[0], key[1], values)

    def observe_with_stats(
        self, tenant: str, monitor_id: str, values: Any
    ) -> Tuple[ObserveResult, Dict[str, Any]]:
        """Feed one monitor and return ``(outcome, per-monitor stats)`` in a
        single worker round-trip (the server's ``observe`` op)."""
        key, shard = self._shard_for(tenant, monitor_id)
        return self._call(shard, "observe_stats", key[0], key[1], values)

    def ingest(self, events: Iterable[Event]) -> List[ObserveResult]:
        """Fan an interleaved event batch out as one message per shard.

        Events for the same monitor keep their relative order inside their
        shard's message, so each worker's ``MonitorHub.ingest`` sees exactly
        the per-monitor sequences a single hub would have seen — detections
        are bit-identical to the unsharded run.  Results aggregate in shard
        order (within a shard, the worker hub's flush order).
        """
        per_shard: Dict[int, List[Event]] = {}
        for tenant, monitor_id, payload in events:
            key, shard = self._shard_for(tenant, monitor_id)
            per_shard.setdefault(shard, []).append((key[0], key[1], payload))
        if not per_shard:
            return []
        indices = sorted(per_shard)
        replies = self._fan_out(
            indices, [("ingest", (per_shard[index],)) for index in indices]
        )
        results: List[ObserveResult] = []
        for reply in replies:
            results.extend(reply)
        return results

    # ----------------------------------------------------------------- stats

    def stats(
        self, tenant: Optional[str] = None, monitor_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """Aggregate counters across shards (or forward a per-monitor query).

        The hub-wide aggregate keeps working on a degraded cluster: dead
        shards are simply absent from the counter sums, and
        ``n_alive_shards < n_shards`` reports the degradation (this is how an
        operator *sees* a dead worker).  Per-monitor queries route to the
        owning shard and raise :class:`ShardError` when it is down.
        """
        if monitor_id is not None and tenant is None:
            raise ConfigurationError(
                "per-monitor stats need the tenant as well as the monitor id"
            )
        if tenant is not None and monitor_id is not None:
            key, shard = self._shard_for(tenant, monitor_id)
            return self._call(shard, "stats", key[0], key[1])
        shard_stats = self._broadcast("stats", tenant, None, tolerate_dead=True)
        keys = [
            key
            for key in self._registry
            if tenant is None or key[0] == str(tenant)
        ]
        return {
            "n_monitors": len(keys),
            "n_tenants": len({key[0] for key in keys}),
            "n_events": sum(stats["n_events"] for stats in shard_stats),
            "n_drifts": sum(stats["n_drifts"] for stats in shard_stats),
            "n_warnings": sum(stats["n_warnings"] for stats in shard_stats),
            "n_sink_failures": sum(
                stats["n_sink_failures"] for stats in shard_stats
            ),
            "n_shards": self._n_shards,
            "n_alive_shards": self._n_shards - len(self.dead_shards()),
        }

    @property
    def n_events(self) -> int:
        """Total values observed across all live shards (lifetime)."""
        return sum(
            stats["n_events"]
            for stats in self._broadcast("stats", None, None, tolerate_dead=True)
        )

    def metrics(self) -> Dict[str, Any]:
        """Cluster telemetry: summed counters plus every live shard's detail.

        Dead shards are absent from ``shards`` and from the sums —
        ``n_alive_shards`` reports the degradation.  Each shard entry is the
        worker hub's :meth:`MonitorHub.metrics` dict (ingest rate, flush
        latency percentiles, WAL and sink counters).
        """
        shard_metrics = self._broadcast("metrics", tolerate_dead=True)
        return {
            "n_shards": self._n_shards,
            "n_alive_shards": self._n_shards - len(self.dead_shards()),
            "n_monitors": len(self._registry),
            "n_events": sum(m["n_events"] for m in shard_metrics),
            "ingest_rate": round(sum(m["ingest_rate"] for m in shard_metrics), 3),
            "n_sink_failures": sum(m["n_sink_failures"] for m in shard_metrics),
            "n_wal_replayed": sum(m["n_wal_replayed"] for m in shard_metrics),
            "n_replay_suppressed": sum(
                m["n_replay_suppressed"] for m in shard_metrics
            ),
            "shards": shard_metrics,
        }

    def alerts_history(
        self,
        tenant: Optional[str] = None,
        monitor_id: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        limit: int = 1000,
    ) -> List[Dict[str, Any]]:
        """Query the WAL-backed alert history across shards.

        A fully-qualified ``(tenant, monitor_id)`` query routes to the owning
        shard; broader queries fan out to every live shard and merge by alert
        timestamp (keeping the newest ``limit`` matches).  Requires
        ``wal_dir``; a worker without one raises
        :class:`~repro.exceptions.ConfigurationError`.
        """
        filters = {
            "tenant": tenant,
            "monitor_id": monitor_id,
            "since": since,
            "until": until,
            "limit": limit,
        }
        if tenant is not None and monitor_id is not None:
            key, shard = self._shard_for(tenant, monitor_id)
            return self._call(shard, "alerts_history", filters)
        merged: List[Dict[str, Any]] = []
        for shard_history in self._broadcast(
            "alerts_history", filters, tolerate_dead=True
        ):
            merged.extend(shard_history)
        merged.sort(key=lambda record: (record.get("ts", 0.0), record.get("seq", 0)))
        return merged[-limit:]

    def drain_alerts(self) -> Tuple[List[DriftAlert], int]:
        """Drain every live shard's alert queue; return ``(alerts, n_dropped)``.

        Alerts merge in shard order (emission order within a shard);
        ``n_dropped`` is the lifetime count of alerts evicted from full
        shard queues.  Draining is destructive, so a dead shard must never
        abort the call — the surviving shards' alerts are returned (a strict
        mode would throw them away *after* the workers had already drained
        their queues).  A dead shard's undelivered alerts are gone with its
        worker; its detections re-fire during the post-respawn replay.
        """
        alerts: List[DriftAlert] = []
        n_dropped = 0
        for shard_alerts, shard_dropped in self._broadcast(
            "alerts", tolerate_dead=True
        ):
            alerts.extend(shard_alerts)
            n_dropped += shard_dropped
        return alerts, n_dropped

    # ------------------------------------------------------- checkpointing

    def checkpoint(self) -> Path:
        """Checkpoint every shard, then write the cluster manifest.

        Shards checkpoint concurrently (their own atomic
        ``hub-checkpoint.json``); the manifest records the shard count, each
        shard's composition hash and event count, and a cluster hash over
        the ordered shard hashes.  The manifest is advisory metadata written
        *after* the shard files — the shard checkpoints alone are sufficient
        to resume, and a crash between the two leaves a stale-but-harmless
        manifest (shard count is what resume validates).
        """
        if self._checkpoint_dir is None:
            raise ConfigurationError(
                "no checkpoint directory configured; pass one to ShardedHub()"
            )
        return self._write_manifest(self._broadcast("checkpoint"))

    def _write_manifest(self, reports: List[Dict[str, Any]]) -> Path:
        """Atomically record the cluster composition (also at construction,
        so shard-count validation works for clusters that only ever
        auto-checkpoint)."""
        from repro.experiments.orchestrator import grid_config_hash

        manifest = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "n_shards": self._n_shards,
            "cluster_hash": grid_config_hash(
                {"shards": [report["config_hash"] for report in reports]}
            ),
            "n_events": sum(report["n_events"] for report in reports),
            "shards": [
                {
                    "index": index,
                    "dir": _shard_dirname(index),
                    "config_hash": report["config_hash"],
                    "n_events": report["n_events"],
                    "n_monitors": report["n_monitors"],
                    "wal": report.get("wal"),
                }
                for index, report in enumerate(reports)
            ],
        }
        self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        return atomic_write_json(self._checkpoint_dir / MANIFEST_FILENAME, manifest)

    # ------------------------------------------------------ failure handling

    def dead_shards(self) -> List[int]:
        """Indices of shards whose worker process is no longer alive."""
        return [
            index
            for index, process in enumerate(self._processes)
            if process is not None and not process.is_alive()
        ]

    def respawn_shard(self, index: int) -> None:
        """Restart a dead shard worker, resuming from its own checkpoint.

        Everything that shard observed after its last checkpoint is gone —
        per-monitor ``n_seen`` (via :meth:`stats`) tells producers where to
        resume replay.  Monitors registered after the last checkpoint must be
        re-registered (``exist_ok=True`` is idempotent for the survivors).
        """
        if self._closed:
            # Spawning after close() would orphan a live worker nothing
            # will ever stop (close() early-returns on re-entry).
            raise ShardError("sharded hub is closed")
        if not 0 <= index < self._n_shards:
            raise ConfigurationError(f"no shard {index} in a {self._n_shards}-shard hub")
        process = self._processes[index]
        if process is not None and process.is_alive():
            raise ConfigurationError(
                f"shard {index} worker is still alive; it can only be "
                "respawned after it died"
            )
        if process is not None:
            process.join(timeout=5)
        conn = self._conns[index]
        if conn is not None:
            conn.close()
        logger.warning("respawning shard %d from its checkpoint", index)
        self._spawn(index, resume=True)
        self._adopt_shard_monitors(index)

    def respawn_dead_shards(self) -> List[int]:
        """Respawn every dead shard; return the indices that were restarted."""
        dead = self.dead_shards()
        for index in dead:
            self.respawn_shard(index)
        return dead

    def worker_pid(self, index: int) -> Optional[int]:
        """PID of a shard's worker process (``None`` before spawn)."""
        process = self._processes[index]
        return process.pid if process is not None else None
